//! Offline stub of `serde`.
//!
//! The build container has no network and no registry cache, so the real
//! serde cannot be fetched. The workspace only uses serde as a *marker*
//! ("this is a plain value type"): nothing serializes to bytes. These
//! marker traits plus the stub derives in `serde_derive` satisfy every
//! `#[derive(Serialize, Deserialize)]` and `T: Serialize + Deserialize`
//! bound in the tree while keeping the real serde API shape, so swapping
//! the real crates back in (by pointing the workspace dependency at
//! crates.io) requires no source changes.

#![forbid(unsafe_code)]

// The stub derives emit `impl ::serde::Serialize for ...`; make that path
// resolve inside this crate too (for the tests below).
extern crate self as serde;

/// Marker for serializable value types (stub: no methods).
pub trait Serialize {}

/// Marker for deserializable value types (stub: no methods).
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_markers!(
    bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, char, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize)]
    struct Plain {
        #[allow(dead_code)]
        x: u32,
    }

    #[derive(Serialize, Deserialize)]
    enum Choice {
        #[allow(dead_code)]
        A,
        #[allow(dead_code)]
        B(u8),
    }

    fn assert_serde<T: Serialize + for<'de> Deserialize<'de>>() {}

    #[test]
    fn derives_produce_marker_impls() {
        assert_serde::<Plain>();
        assert_serde::<Choice>();
        assert_serde::<Vec<f32>>();
        assert_serde::<[u64; 4]>();
    }
}
