//! Offline stub of `criterion` 0.5.
//!
//! The bench harness API (groups, `iter`, `iter_batched`, throughput) is
//! preserved so the workspace's `benches/` compile and run unchanged, but
//! measurement is a single timed pass per benchmark printed to stdout —
//! no sampling, statistics, or HTML reports. Good enough to smoke-run the
//! paper's figures offline; swap the real criterion back in for numbers
//! worth quoting.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Opaque hint preventing the optimiser from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup (ignored by the stub).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group (printed, not analysed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-benchmark timing driver.
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    /// Time `routine`, running it a fixed small number of times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let total = start.elapsed();
        println!(
            "    {:>12.3?}/iter over {} iters",
            total / self.iters as u32,
            self.iters
        );
    }

    /// Time `routine` on inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let inputs: Vec<I> = (0..self.iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        let total = start.elapsed();
        println!(
            "    {:>12.3?}/iter over {} iters (batched)",
            total / self.iters as u32,
            self.iters
        );
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declare the work per iteration (printed only).
    pub fn throughput(&mut self, t: Throughput) {
        println!("  [{}] throughput: {t:?}", self.name);
    }

    /// Run one benchmark in the group.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        println!("  {}/{}", self.name, id.into());
        let mut b = Bencher { iters: 3 };
        f(&mut b);
        self
    }

    /// End the group (no-op).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the sample size (recorded but unused by the stub).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Configure measurement time (ignored by the stub).
    pub fn measurement_time(self, _d: std::time::Duration) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            _parent: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        println!("bench {}", id.into());
        let mut b = Bencher { iters: 3 };
        f(&mut b);
        self
    }
}

/// Declare a bench group: plain `criterion_group!(name, fns...)` or the
/// long form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_the_routine() {
        let mut count = 0u64;
        let mut b = Bencher { iters: 3 };
        b.iter(|| count += 1);
        assert_eq!(count, 3);
    }

    #[test]
    fn batched_runs_setup_per_iteration() {
        let mut b = Bencher { iters: 3 };
        let mut sum = 0u64;
        b.iter_batched(|| 2u64, |x| sum += x, BatchSize::SmallInput);
        assert_eq!(sum, 6);
    }

    #[test]
    fn groups_chain() {
        let mut c = Criterion::default().sample_size(5);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("a", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
