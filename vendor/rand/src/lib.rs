//! Offline stub of `rand` 0.8.
//!
//! Implements the small API slice this workspace uses — `SmallRng`,
//! `SeedableRng::seed_from_u64` and `Rng::gen_range` over primitive
//! ranges — on top of a SplitMix64 generator. Fully deterministic per
//! seed, which is all the workloads' matrix generators require.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a value of type `T` from a range-like object.
pub trait SampleRange<T> {
    /// Draw one sample using `rng`.
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = ((rng() as u128) % span) as i128;
                    (self.start as i128 + r) as $t
                }
            }
        )*
    };
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    // 53 uniform mantissa bits in [0, 1).
                    let frac = (rng() >> 11) as f64 / (1u64 << 53) as f64;
                    let v = self.start as f64 + frac * (self.end as f64 - self.start as f64);
                    let v = v as $t;
                    if v >= self.end { self.start } else { v }
                }
            }
        )*
    };
}

impl_float_range!(f32, f64);

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut draw = || self.next_u64();
        range.sample(&mut draw)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stub for rand's `SmallRng`).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    /// The stub's `StdRng` is the same generator.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        assert_eq!(va, vb);
        let mut c = SmallRng::seed_from_u64(8);
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y = r.gen_range(5usize..7);
            assert!((5..7).contains(&y));
            let z = r.gen_range(-10i32..-3);
            assert!((-10..-3).contains(&z));
        }
    }

    #[test]
    fn floats_cover_the_range() {
        let mut r = SmallRng::seed_from_u64(2);
        let v: Vec<f32> = (0..2000).map(|_| r.gen_range(0.0f32..1.0)).collect();
        assert!(v.iter().any(|&x| x < 0.1));
        assert!(v.iter().any(|&x| x > 0.9));
    }
}
