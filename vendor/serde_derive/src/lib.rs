//! Offline stub of `serde_derive`.
//!
//! The workspace builds in a sealed container with no access to crates.io,
//! so the real serde cannot be vendored. Nothing in the workspace performs
//! actual serialization — `serde` is used purely as a value-type marker
//! (see `crates/dspsim/tests/config_serde.rs`) — so the derives here emit
//! empty impls of the stub's marker traits.
//!
//! Limitations (sufficient for this workspace): derived types must not be
//! generic. A generic type will produce a compile error at the impl site,
//! which is the desired loud failure mode.

use proc_macro::{TokenStream, TokenTree};

/// Name of the `struct`/`enum` a derive is attached to.
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde stub derive: could not find type name in input")
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("serde stub: generated impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("serde stub: generated impl must parse")
}
