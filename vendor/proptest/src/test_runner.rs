//! Test-runner support types: config, deterministic RNG, case rejection.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Marker returned by `prop_assume!` to discard the current case.
#[derive(Debug)]
pub struct Reject;

/// Deterministic SplitMix64 stream, seeded from the test name so every
/// test sees a stable but distinct sequence across runs and platforms.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (FNV-1a hash).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}
