//! Strategies: deterministic value generators.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// draws one value directly from the deterministic RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice over boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the (non-empty) list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + r) as $t
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    let v = self.start as f64 + frac * (self.end as f64 - self.start as f64);
                    let v = v as $t;
                    if v >= self.end { self.start } else { v }
                }
            }
        )*
    };
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}
