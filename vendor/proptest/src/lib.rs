//! Offline mini-`proptest`.
//!
//! The build container cannot reach crates.io, so this crate reimplements
//! the slice of proptest's API the workspace's property tests use:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strat, ...) {...} }`
//! * range strategies (`0u16..64`, `-1e6f32..1e6`), tuples, `Just`,
//!   `prop_oneof!`, `.prop_map(...)`, `.boxed()` / `BoxedStrategy`,
//!   `prop::collection::vec(elem, len_range)`
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`, `ProptestConfig`
//!
//! Differences from the real crate: generation is a fixed deterministic
//! stream per test (seeded from the test name), there is **no shrinking**,
//! and failures panic with the offending values in the message instead of
//! persisting a regression file. For a simulator test-suite that is fully
//! deterministic anyway, that trade keeps behaviour reproducible while
//! requiring no dependencies.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// `use proptest::prelude::*;` — mirrors the real prelude closely enough
/// for this workspace: the `Strategy` trait, common strategy types, the
/// config type and the `prop` alias for the crate root.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Assert a condition inside a `proptest!` body; panics (fails the test
/// case) with the stringified condition or a custom message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!("prop_assert failed: {}: {}", stringify!($cond), format!($($fmt)+));
        }
    };
}

/// Assert two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    panic!("prop_assert_eq failed: {:?} != {:?}", l, r);
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    panic!(
                        "prop_assert_eq failed: {:?} != {:?}: {}",
                        l, r, format!($($fmt)+)
                    );
                }
            }
        }
    };
}

/// Reject the current case (it is regenerated, not counted as run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Reject);
        }
    };
}

/// Uniform choice between strategies (all coerced to `BoxedStrategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The `proptest!` block macro: expands each contained function into a
/// `#[test]` that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(20);
            while accepted < config.cases && attempts < max_attempts {
                attempts += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // The closure gives `prop_assume!`'s early `return` a scope.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::core::result::Result<(), $crate::test_runner::Reject> =
                    (|| { $body Ok(()) })();
                if outcome.is_ok() {
                    accepted += 1;
                }
            }
            assert!(
                accepted >= config.cases.min(1),
                "proptest stub: every generated case was rejected by prop_assume!"
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(
            a in 1usize..10,
            (x, y) in (0u16..64, -4i32..4),
            v in prop::collection::vec(-1.0f32..1.0, 1..8),
        ) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(x < 64);
            prop_assert!((-4..4).contains(&y));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|t| (-1.0..1.0).contains(t)));
        }

        #[test]
        fn map_oneof_just_and_assume(
            e in arb_even(),
            pick in prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|x| x)],
        ) {
            prop_assume!(e > 0);
            prop_assert_eq!(e % 2, 0);
            prop_assert!(pick == 1 || pick == 2 || pick == 5 || pick == 6, "pick={}", pick);
        }

        #[test]
        fn boxed_strategies_compose(
            s in prop::collection::vec(arb_even().boxed(), 2..4),
        ) {
            prop_assert!(s.len() == 2 || s.len() == 3);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut r1 = crate::test_runner::TestRng::deterministic("seed");
        let mut r2 = crate::test_runner::TestRng::deterministic("seed");
        let s = 0u64..1_000_000;
        let a: Vec<u64> = (0..16).map(|_| s.clone().generate(&mut r1)).collect();
        let b: Vec<u64> = (0..16).map(|_| s.clone().generate(&mut r2)).collect();
        assert_eq!(a, b);
    }
}
