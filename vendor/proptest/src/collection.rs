//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Length specification for [`vec`]: a fixed length or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange(Range<usize>);

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange(n..n + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange(r)
    }
}

/// Strategy producing `Vec`s of values from `elem`.
pub struct VecStrategy<S> {
    elem: S,
    size: Range<usize>,
}

/// A vector strategy with lengths drawn from `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    let SizeRange(size) = size.into();
    assert!(size.start < size.end, "empty vec length range");
    VecStrategy { elem, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}
