//! Ablation-style component benches for the design choices DESIGN.md
//! calls out: modulo scheduling vs the naive II bound, line-scheduler
//! cost, assembler round-trip, and DMA timing arithmetic.

use criterion::{criterion_group, criterion_main, Criterion};
use dspsim::{transfer_time, Dma2d, DmaPath, ExecMode, HwConfig, Machine};
use ftimm_isa::asm;
use kernelgen::modsched::schedule;
use kernelgen::{candidates, KernelSpec, MicroKernel};

fn bench(c: &mut Criterion) {
    let cfg = HwConfig::default();
    let mut g = c.benchmark_group("components");

    g.bench_function("tiling_candidates", |b| {
        let spec = KernelSpec::new(6, 512, 64).unwrap();
        b.iter(|| candidates(&spec, &cfg).unwrap())
    });
    g.bench_function("modulo_schedule", |b| {
        let spec = KernelSpec::new(6, 512, 64).unwrap();
        let t = candidates(&spec, &cfg).unwrap()[0];
        b.iter(|| schedule(t, &cfg).unwrap())
    });
    g.bench_function("assembler_round_trip", |b| {
        let k = MicroKernel::generate(KernelSpec::new(6, 64, 96).unwrap(), &cfg).unwrap();
        let text = asm::render(&k.program);
        b.iter(|| asm::parse(&text).unwrap())
    });
    g.bench_function("dma_timing_model", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for streams in 1..=8 {
                acc += transfer_time(&cfg, DmaPath::DdrToAm, 1 << 20, streams);
            }
            acc
        })
    });
    g.bench_function("machine_dma_functional_1mib", |b| {
        let mut m = Machine::with_mode(ExecMode::Fast);
        m.ddr.write_f32(1 << 20, 1.0).unwrap(); // materialise
        b.iter(|| {
            m.dma_sync(0, DmaPath::DdrToAm, &Dma2d::flat(0, 0, 512 * 1024))
                .unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
