//! Criterion bench for Fig. 5: multi-core sweep evaluation cost, and the
//! functional (data-moving) simulation of a reduced multi-core point in
//! both ftIMM strategies.

use bench::Harness;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dspsim::{ExecMode, HwConfig, Machine};
use ftimm::{FtImm, GemmProblem, GemmShape, Strategy};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    let h = Harness::new();
    for (name, m, n, k) in [
        ("type1_2e16_32_32", 1usize << 16, 32usize, 32usize),
        ("type2_32_32_2e16", 32, 32, 1 << 16),
        ("type3_20480_32_20480", 20480, 32, 20480),
    ] {
        g.bench_function(format!("timing_{name}"), |b| {
            let shape = GemmShape::new(m, n, k);
            b.iter(|| h.seconds(&shape, Strategy::Auto, 8))
        });
    }

    // Functional multi-core run at reduced scale (real data movement).
    g.bench_function("functional_mpar_2048x32x256", |b| {
        let ft = FtImm::new(HwConfig::default());
        b.iter_batched(
            || {
                let mut m = Machine::with_mode(ExecMode::Fast);
                let p = GemmProblem::alloc(&mut m, 2048, 32, 256).unwrap();
                (m, p)
            },
            |(mut m, p)| ft.gemm(&mut m, &p, Strategy::MPar, 8).unwrap(),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
