//! Criterion bench for Fig. 3: micro-kernel auto-generation across the
//! full (M, K, N) sweep, plus execution throughput of a representative
//! kernel (lane-FMAs per second of host time) on every tier: the
//! hazard-checked interpreter and both host tiers behind the
//! [`KernelExecutor`] dispatch point.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dspsim::{ExecMode, HwConfig, KernelBindings, Machine};
use kernelgen::{HostTier, KernelCache, KernelExecutor, KernelSpec};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let cfg = HwConfig::default();
    let mut g = c.benchmark_group("fig3");
    g.bench_function("full_sweep_generation", |b| {
        b.iter(|| {
            // Fresh cache each iteration: measures raw generation.
            let cache = KernelCache::new(cfg.clone());
            for k in [512usize, 32] {
                for n in [96usize, 64, 32] {
                    for m in 1..=14usize {
                        let _ = cache.get(KernelSpec::new(m, k, n).unwrap()).unwrap();
                    }
                }
            }
        })
    });

    let ex = KernelExecutor::new(Arc::new(KernelCache::new(cfg.clone())));
    let kernel = ex
        .kernels()
        .get(KernelSpec::new(6, 512, 96).unwrap())
        .unwrap();
    g.throughput(Throughput::Elements(kernel.spec.useful_flops() / 2));
    g.bench_function("interpret_uk_ms6_ka512_na96", |b| {
        let mut m = Machine::with_mode(ExecMode::Interpret);
        let bind = KernelBindings {
            a_off: 0,
            b_off: 0,
            c_off: 512 * 1024,
        };
        b.iter(|| m.run_kernel(0, &kernel.program, bind, false).unwrap())
    });
    for tier in [HostTier::Fast, HostTier::Compiled] {
        let name = match tier {
            HostTier::Fast => "fast_uk_ms6_ka512_na96",
            HostTier::Compiled => "compiled_uk_ms6_ka512_na96",
        };
        g.bench_function(name, |b| {
            let a = vec![1.0f32; 6 * 512];
            let bm = vec![1.0f32; 512 * 96];
            let mut cm = vec![0.0f32; 6 * 96];
            b.iter(|| ex.execute(tier, &kernel, &a, &bm, &mut cm).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
