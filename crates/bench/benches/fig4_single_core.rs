//! Criterion bench for Fig. 4: the single-core ftIMM-vs-TGEMM sweep on
//! the timing model (measures the simulator's evaluation cost per paper
//! panel).

use bench::Harness;
use criterion::{criterion_group, criterion_main, Criterion};
use ftimm::{GemmShape, Strategy};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    let h = Harness::new();
    g.bench_function("headline_point_ftimm", |b| {
        let shape = GemmShape::new(20480, 32, 20480);
        b.iter(|| h.seconds(&shape, Strategy::Auto, 1))
    });
    g.bench_function("headline_point_tgemm", |b| {
        let shape = GemmShape::new(20480, 32, 20480);
        b.iter(|| h.tgemm_gflops(&shape, 1))
    });
    g.bench_function("type2_point", |b| {
        let shape = GemmShape::new(32, 32, 65536);
        b.iter(|| h.seconds(&shape, Strategy::Auto, 1))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
