//! Criterion bench for Fig. 6: scalability-curve evaluation (all three
//! shapes × four core counts on the timing model).

use bench::Harness;
use criterion::{criterion_group, criterion_main, Criterion};
use ftimm::{GemmShape, Strategy};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    let h = Harness::new();
    for cores in [1usize, 2, 4, 8] {
        g.bench_function(format!("type3_{cores}core"), |b| {
            let shape = GemmShape::new(20480, 32, 20480);
            b.iter(|| h.seconds(&shape, Strategy::Auto, cores))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
