//! Criterion bench for Tables I–III: generating and rendering the three
//! pipeline-table kernels (measures the kernel generator's end-to-end
//! latency for the paper's regimes).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dspsim::HwConfig;
use kernelgen::{KernelSpec, MicroKernel};

fn bench(c: &mut Criterion) {
    let cfg = HwConfig::default();
    let mut g = c.benchmark_group("tables_i_iii");
    for (name, n_a, m_u, k_u) in [
        ("table1_na96", 96usize, 6usize, 1usize),
        ("table2_na64", 64, 6, 2),
        ("table3_na32", 32, 6, 2),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || KernelSpec::new(6, 512, n_a).unwrap(),
                |spec| MicroKernel::generate_forced(spec, m_u, k_u, &cfg).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    g.bench_function("render_all", |b| {
        b.iter(|| bench::tables::render(&bench::tables::compute()))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
