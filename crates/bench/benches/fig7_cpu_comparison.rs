//! Criterion bench for Fig. 7: the CPU model's prediction cost, the
//! functional host OpenBLAS-style SGEMM on an irregular shape, and the
//! full efficiency-comparison sweep.

use cpublas::CpuConfig;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    let cfg = CpuConfig::default();
    g.bench_function("cpu_model_predict", |b| {
        b.iter(|| cpublas::predict(&cfg, 20480, 32, 20480))
    });

    let (m, n, k) = (2048usize, 32usize, 512usize);
    let a = vec![1.0f32; m * k];
    let bm = vec![1.0f32; k * n];
    g.throughput(Throughput::Elements((m * n * k) as u64));
    g.bench_function("host_openblas_style_2048x32x512", |b| {
        let mut cm = vec![0.0f32; m * n];
        b.iter(|| cpublas::sgemm(m, n, k, &a, &bm, &mut cm, 8))
    });
    g.bench_function("efficiency_point", |b| {
        use ftimm::backend::Backend;
        use ftimm::{GemmShape, Strategy};
        let h = bench::Harness::new();
        let shape = GemmShape::new(20480, 32, 20480);
        b.iter(|| {
            let dsp = h.dsp_backend(Strategy::Auto, 8).predict(&shape).efficiency;
            let cpu = h.cpu_predict(&shape).efficiency;
            dsp / cpu
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
