//! Host kernel-execution tiers: the compiled SIMD lowering against the
//! scalar mirror on the paper's Table I–III micro-kernel regimes.
//!
//! Not a paper figure — this is the perf trajectory of the host
//! execution path itself.  Every functional simulation (`ExecMode::Fast`
//! / `ExecMode::Compiled`) spends its host wall-clock inside the kernel
//! executor, so the `compiled` tier's speedup over `fast` is the direct
//! lever on fuzzer throughput and bench turnaround.  `BENCH_kernel_exec.json`
//! is emitted by the `kernel_exec` binary and archived by CI, which
//! gates on [`Report::min_speedup`] — but only when the host actually
//! runs the SIMD lowering ([`kernelgen::simd_level`] returns
//! `"avx2+fma"`); on scalar-fallback hosts both tiers execute the same
//! code and the gate degrades to a warning.

use crate::common::format_table;
use dspsim::HwConfig;
use kernelgen::{HostTier, KernelCache, KernelExecutor, KernelSpec, MicroKernel};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// One measured micro-kernel regime.
#[derive(Debug, Clone)]
pub struct Row {
    /// Human label ("Table I", …).
    pub label: String,
    /// The panel spec executed.
    pub spec: KernelSpec,
    /// Depth unroll of the kernel measured.
    pub k_u: usize,
    /// Timed executions per tier.
    pub iters: usize,
    /// Mean seconds per execution, scalar mirror tier.
    pub fast_s: f64,
    /// Mean seconds per execution, compiled SIMD tier.
    pub compiled_s: f64,
}

impl Row {
    /// Compiled-over-fast speedup for this regime.
    pub fn speedup(&self) -> f64 {
        self.fast_s / self.compiled_s.max(1e-12)
    }
}

/// The whole report.
#[derive(Debug, Clone)]
pub struct Report {
    /// What the compiled tier lowered to on this host.
    pub simd_level: &'static str,
    /// One row per Table I–III regime (plus the tuned control).
    pub rows: Vec<Row>,
}

impl Report {
    /// The smallest compiled/fast speedup across the rows (the CI gate
    /// asserts on this conservative figure).
    pub fn min_speedup(&self) -> f64 {
        self.rows
            .iter()
            .map(Row::speedup)
            .fold(f64::INFINITY, f64::min)
    }
}

/// One measured regime: label, `n_a`, and the forced `(m_u, k_u)`
/// tiling (`None` lets the generator tune).
type Regime = (&'static str, usize, Option<(usize, usize)>);

/// The regimes measured: the paper's Table I–III innermost-loop shapes
/// (forced to the tables' exact `(m_u, k_u)` tilings) plus one
/// auto-tuned tall panel as a control.
const REGIMES: [Regime; 4] = [
    ("Table I", 96, Some((6, 1))),
    ("Table II", 64, Some((6, 2))),
    ("Table III", 32, Some((6, 2))),
    ("tuned 12x512x96", 96, None),
];

/// Wall-clock seconds per execution of `kernel` under `tier`, averaged
/// over an adaptively-sized batch.
fn time_tier(ex: &KernelExecutor, tier: HostTier, kernel: &MicroKernel, iters: usize) -> f64 {
    let spec = kernel.spec;
    let ld = spec.na_pad();
    let fill = |n: usize, s: u32| -> Vec<f32> {
        (0..n)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(s);
                ((x % 513) as f32 - 256.0) / 16.0
            })
            .collect()
    };
    let a = fill(spec.m_s * spec.k_a, 1);
    let b = fill(spec.k_a * ld, 2);
    let c0 = fill(spec.m_s * ld, 3);
    let mut c = c0.clone();
    // Warm the executor memo so lowering cost stays out of the timing.
    ex.execute(tier, kernel, &a, &b, &mut c).expect("warmup");
    let t0 = Instant::now();
    for _ in 0..iters {
        // Reset C so accumulators stay in range; the copy is ~k_a times
        // cheaper than the kernel and identical across tiers.
        c.copy_from_slice(&c0);
        ex.execute(tier, kernel, &a, &b, &mut c).expect("execute");
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

/// Measure every regime.  `iters = 0` sizes each batch so a measurement
/// takes roughly 100 ms of the scalar tier.
pub fn compute(iters: usize) -> Report {
    let cfg = HwConfig::default();
    let ex = KernelExecutor::new(Arc::new(KernelCache::new(cfg.clone())));
    let rows = REGIMES
        .iter()
        .map(|&(label, n_a, forced)| {
            let spec = match forced {
                Some(_) => KernelSpec::new(6, 512, n_a),
                None => KernelSpec::new(12, 512, n_a),
            }
            .expect("valid spec");
            let kernel = match forced {
                Some((m_u, k_u)) => {
                    MicroKernel::generate_forced(spec, m_u, k_u, &cfg).expect("kernel generates")
                }
                None => MicroKernel::generate(spec, &cfg).expect("kernel generates"),
            };
            let iters = if iters > 0 {
                iters
            } else {
                let probe = time_tier(&ex, HostTier::Fast, &kernel, 3);
                ((0.1 / probe.max(1e-9)) as usize).clamp(10, 20_000)
            };
            let fast_s = time_tier(&ex, HostTier::Fast, &kernel, iters);
            let compiled_s = time_tier(&ex, HostTier::Compiled, &kernel, iters);
            Row {
                label: label.to_string(),
                spec,
                k_u: kernel.blocks[0].k_u,
                iters,
                fast_s,
                compiled_s,
            }
        })
        .collect();
    Report {
        simd_level: kernelgen::simd_level(),
        rows,
    }
}

/// Render the printable report table.
pub fn render(report: &Report) -> String {
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{}x{}x{}", r.spec.m_s, r.spec.k_a, r.spec.n_a),
                format!("{}", r.k_u),
                format!("{}", r.iters),
                format!("{:.2}us", r.fast_s * 1e6),
                format!("{:.2}us", r.compiled_s * 1e6),
                format!("{:.1}x", r.speedup()),
            ]
        })
        .collect();
    format_table(
        &format!(
            "Kernel execution — compiled ({}) vs fast (scalar mirror), host wall-clock",
            report.simd_level
        ),
        &[
            "regime",
            "m_sxk_axn_a",
            "k_u",
            "iters",
            "fast",
            "compiled",
            "speedup",
        ],
        &rows,
    )
}

/// Serialise the report as the `BENCH_kernel_exec.json` document.
pub fn render_json(report: &Report) -> String {
    let mut s = format!(
        "{{\n  \"schema\": \"ftimm-bench-kernel-exec-v1\",\n  \"simd_level\": \"{}\",\n  \"rows\": [\n",
        report.simd_level
    );
    for (i, r) in report.rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"regime\": \"{}\", \"m_s\": {}, \"k_a\": {}, \"n_a\": {}, \"k_u\": {}, \
             \"iters\": {}, \"fast_s\": {:?}, \"compiled_s\": {:?}, \"speedup\": {:?}}}",
            r.label,
            r.spec.m_s,
            r.spec.k_a,
            r.spec.n_a,
            r.k_u,
            r.iters,
            r.fast_s,
            r.compiled_s,
            r.speedup()
        );
        s.push_str(if i + 1 < report.rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"min_speedup\": {:?}", report.min_speedup());
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_the_three_tables_and_serialises() {
        // Tiny fixed batch: this is a structure test, not a measurement.
        let report = compute(10);
        assert_eq!(report.rows.len(), 4);
        assert_eq!(report.rows[0].label, "Table I");
        assert_eq!(report.rows[0].k_u, 1);
        assert_eq!(report.rows[1].k_u, 2);
        for r in &report.rows {
            assert!(r.fast_s > 0.0 && r.compiled_s > 0.0, "{}", r.label);
        }
        let s = render_json(&report);
        assert!(s.contains("ftimm-bench-kernel-exec-v1"));
        assert!(s.contains("\"regime\": \"Table III\""));
        assert!(s.contains("min_speedup"));
        assert!(s.contains(&format!("\"simd_level\": \"{}\"", report.simd_level)));
    }
}
