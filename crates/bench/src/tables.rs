//! Tables I–III — the generated assembly pipelines for the three
//! micro-kernel regimes, rendered from actually-generated kernels (the
//! paper's tables are hand-drawn; ours are emitted by the scheduler).

use dspsim::HwConfig;
use ftimm_isa::PipelineTable;
#[cfg(test)]
use ftimm_isa::Unit;
use kernelgen::{KernelSpec, MicroKernel};

/// A generated pipeline table with its source kernel.
pub struct TableRepro {
    /// Paper table number (1–3).
    pub number: usize,
    /// The kernel regime description.
    pub regime: &'static str,
    /// The generated kernel.
    pub kernel: MicroKernel,
    /// The rendered table (steady-state loop body).
    pub table: PipelineTable,
}

/// Generate all three tables.  The forced tilings pin the regimes the
/// paper depicts: `k_u = 1` for Table I, `k_u = 2` for Tables II/III.
pub fn compute() -> Vec<TableRepro> {
    let cfg = HwConfig::default();
    let gen = |number, regime, n_a, m_u, k_u| {
        let kernel = MicroKernel::generate_forced(
            KernelSpec::new(6, 512, n_a).expect("valid spec"),
            m_u,
            k_u,
            &cfg,
        )
        .expect("kernel generates");
        let table = PipelineTable::from_innermost_loop(
            format!(
                "Table {number}: {regime} (body = 2 pipelined iterations, II = {})",
                kernel.blocks[0].ii
            ),
            &kernel.program,
        )
        .expect("kernel has a steady-state loop");
        TableRepro {
            number,
            regime,
            kernel,
            table,
        }
    };
    vec![
        gen(1, "m_s >= t_fma, 64 < n_a <= 96", 96, 6, 1),
        gen(2, "m_s = 6, 32 < n_a <= 64", 64, 6, 2),
        gen(3, "m_s = 6, 0 < n_a <= 32", 32, 6, 2),
    ]
}

/// Render all tables plus per-unit occupancy summaries.
pub fn render(tables: &[TableRepro]) -> String {
    let mut out = String::new();
    for t in tables {
        out.push_str(&t.table.to_string());
        out.push_str(&format!(
            "FMAC occupancy: {:.1}%  (theoretical upper bound {:.1}%)\n\n",
            100.0 * t.table.fmac_occupancy(),
            100.0 * t.kernel.upper_bound
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_fills_all_three_fmac_units() {
        let tables = compute();
        let t1 = &tables[0];
        for u in [Unit::VectorFmac1, Unit::VectorFmac2, Unit::VectorFmac3] {
            assert_eq!(
                t1.table.occupancy(u),
                Some(1.0),
                "Table I: {u} not fully occupied"
            );
        }
        // The scalar broadcast chain appears as in the paper's rows.
        assert!(t1.table.occupancy(Unit::ScalarFmac2).unwrap_or(0.0) > 0.9);
        assert!(t1.table.occupancy(Unit::ScalarLs1).is_some());
    }

    #[test]
    fn table_ii_uses_packed_loads_and_sieu() {
        let tables = compute();
        let t2 = &tables[1];
        // The k_u = 2 regime needs the SIEU (SBALE2H) and SVBCAST2 rows —
        // exactly the extra rows the paper's Table II adds over Table I.
        assert!(t2.table.occupancy(Unit::Sieu).unwrap_or(0.0) > 0.5);
        assert_eq!(t2.kernel.blocks[0].ii, 8, "paper's 8-cycle body");
        assert!(t2.table.fmac_occupancy() > 0.99);
    }

    #[test]
    fn table_iii_shows_the_broadcast_wall() {
        let tables = compute();
        let t3 = &tables[2];
        // n_a ≤ 32: at most 2/3 of the FMAC slots can be used.
        let occ = t3.table.fmac_occupancy();
        assert!(occ <= 2.0 / 3.0 + 1e-9, "{occ}");
        assert!(occ > 0.6, "{occ}");
        assert!((t3.kernel.upper_bound - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn kernels_behind_tables_execute_correctly() {
        // The printed tables come from real kernels; spot-check one runs.
        use dspsim::{ExecMode, KernelBindings, Machine};
        let tables = compute();
        let k = &tables[2].kernel;
        let mut m = Machine::with_mode(ExecMode::Interpret);
        let rep = m
            .run_kernel(
                0,
                &k.program,
                KernelBindings {
                    a_off: 0,
                    b_off: 0,
                    c_off: 256 * 1024,
                },
                true,
            )
            .unwrap();
        assert_eq!(rep.cycles, k.cycles);
    }

    #[test]
    fn render_contains_all_three_tables() {
        let s = render(&compute());
        assert!(s.contains("Table 1"));
        assert!(s.contains("Table 2"));
        assert!(s.contains("Table 3"));
        assert!(s.contains("VFMULAS32"));
        assert!(s.contains("SVBCAST"));
    }
}
