//! Planner report: what the cost-model planner chose for the paper's
//! representative shapes, how its analytic prediction compares with the
//! timing-model simulation, and what the plan cache buys on a repeated
//! shape (cold vs. warm planning wall-clock).
//!
//! Not a paper figure — this starts the perf trajectory for the planning
//! layer itself: `BENCH_planner.json` is emitted by the `planner` binary
//! and archived by CI, so regressions in planning cost or in the
//! analytic/simulated agreement are visible over time.

use crate::common::format_table;
use dspsim::HwConfig;
use ftimm::{ChosenStrategy, FtImm, GemmShape, Plan, Strategy};
use std::fmt::Write as _;
use std::time::Instant;

/// One planned shape.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Shape planned.
    pub shape: GemmShape,
    /// The resolved plan (origin, predicted and simulated seconds).
    pub plan: Plan,
    /// Wall-clock seconds of the cold `plan_full` call (cache miss:
    /// analytic ranking plus top-K timing simulations).
    pub cold_plan_s: f64,
    /// Wall-clock seconds of the immediate repeat (cache hit).
    pub warm_plan_s: f64,
}

impl Row {
    /// Cold-over-warm planning speedup the cache delivered.
    pub fn speedup(&self) -> f64 {
        self.cold_plan_s / self.warm_plan_s.max(1e-9)
    }
}

/// The whole report.
#[derive(Debug, Clone)]
pub struct Report {
    /// One row per paper shape.
    pub rows: Vec<Row>,
}

impl Report {
    /// The smallest cold/warm speedup across the rows (the CI gate
    /// asserts on this conservative figure).
    pub fn min_speedup(&self) -> f64 {
        self.rows
            .iter()
            .map(Row::speedup)
            .fold(f64::INFINITY, f64::min)
    }
}

/// The shapes reported on: the paper's type-1 and type-2 extremes, the
/// type-3 double-irregular case and a regular shape (Fig. 5 / Table IV
/// territory).
pub const SHAPES: [(usize, usize, usize); 4] = [
    (1 << 16, 32, 32),
    (32, 32, 1 << 16),
    (20480, 32, 20480),
    (4096, 512, 4096),
];

/// Plan every report shape cold and warm on one shared context.
pub fn compute() -> Report {
    let ft = FtImm::new(HwConfig::default());
    let rows = SHAPES
        .iter()
        .map(|&(m, n, k)| {
            let shape = GemmShape::new(m, n, k);
            let t0 = Instant::now();
            let plan = ft.plan_full(&shape, Strategy::Auto, 8);
            let cold_plan_s = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let again = ft.plan_full(&shape, Strategy::Auto, 8);
            let warm_plan_s = t1.elapsed().as_secs_f64();
            assert_eq!(plan, again, "planning must be deterministic");
            Row {
                shape,
                plan,
                cold_plan_s,
                warm_plan_s,
            }
        })
        .collect();
    Report { rows }
}

fn strategy_tag(s: &ChosenStrategy) -> &'static str {
    match s {
        ChosenStrategy::MPar(_) => "M-par",
        ChosenStrategy::KPar(_) => "K-par",
        ChosenStrategy::TGemm => "TGEMM",
    }
}

/// Render the printable report table.
pub fn render(report: &Report) -> String {
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.shape.to_string(),
                strategy_tag(&r.plan.strategy).to_string(),
                format!("{:.3e}", r.plan.predicted_s),
                format!("{:.3e}", r.plan.simulated_s),
                format!("{}", r.plan.candidates),
                format!("{}", r.plan.simulations),
                format!("{:.1}ms", r.cold_plan_s * 1e3),
                format!("{:.1}us", r.warm_plan_s * 1e6),
                format!("{:.0}x", r.speedup()),
            ]
        })
        .collect();
    format_table(
        "Planner — chosen plan, predicted vs simulated seconds, cache speedup (8 cores)",
        &[
            "MxNxK",
            "plan",
            "predicted_s",
            "simulated_s",
            "cands",
            "sims",
            "cold",
            "warm",
            "speedup",
        ],
        &rows,
    )
}

/// Serialise the report as the `BENCH_planner.json` document.
pub fn render_json(report: &Report) -> String {
    let mut s = String::from("{\n  \"schema\": \"ftimm-bench-planner-v1\",\n  \"rows\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"m\": {}, \"n\": {}, \"k\": {}, \"plan\": \"{}\", \"origin\": \"{}\", \
             \"predicted_s\": {:?}, \"simulated_s\": {:?}, \"candidates\": {}, \
             \"simulations\": {}, \"cold_plan_s\": {:?}, \"warm_plan_s\": {:?}}}",
            r.shape.m,
            r.shape.n,
            r.shape.k,
            strategy_tag(&r.plan.strategy),
            r.plan.origin.tag(),
            r.plan.predicted_s,
            r.plan.simulated_s,
            r.plan.candidates,
            r.plan.simulations,
            r.cold_plan_s,
            r.warm_plan_s
        );
        s.push_str(if i + 1 < report.rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"min_speedup\": {:?}", report.min_speedup());
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn cached() -> &'static Report {
        static P: OnceLock<Report> = OnceLock::new();
        P.get_or_init(compute)
    }

    #[test]
    fn planner_picks_the_paper_strategies_for_the_extreme_types() {
        let report = cached();
        let plan_for = |m: usize, n: usize, k: usize| {
            report
                .rows
                .iter()
                .find(|r| r.shape == GemmShape::new(m, n, k))
                .unwrap()
                .plan
        };
        assert!(matches!(
            plan_for(1 << 16, 32, 32).strategy,
            ChosenStrategy::MPar(_)
        ));
        assert!(matches!(
            plan_for(32, 32, 1 << 16).strategy,
            ChosenStrategy::KPar(_)
        ));
    }

    #[test]
    fn every_row_was_simulated_and_predicted() {
        for r in &cached().rows {
            assert!(r.plan.simulated_s.is_finite(), "{}", r.shape);
            assert!(r.plan.predicted_s.is_finite(), "{}", r.shape);
            assert!(r.plan.simulations >= 2, "{}", r.shape);
        }
    }

    #[test]
    fn warm_planning_is_much_faster_than_cold() {
        // The CI smoke gate asserts 10x; leave headroom here so a loaded
        // test machine does not flake.
        assert!(
            cached().min_speedup() > 5.0,
            "min speedup {}",
            cached().min_speedup()
        );
    }

    #[test]
    fn json_document_carries_every_row() {
        let s = render_json(cached());
        assert!(s.contains("ftimm-bench-planner-v1"));
        for r in &cached().rows {
            assert!(s.contains(&format!("\"m\": {}", r.shape.m)));
        }
        assert!(s.contains("min_speedup"));
    }
}
