//! Ablation study: how much each of ftIMM's three mechanisms contributes
//! (§IV: auto-generated micro-kernels, shape-matched parallelisation,
//! dynamic block adjusting).  Not a paper figure — this backs the paper's
//! §III analysis with measurements on the model.
//!
//! Configurations, from baseline to full system:
//! 1. `TGEMM`            — fixed 96-wide kernel, fixed blocks, N-parallel;
//! 2. `FixedBlocks`      — ftIMM parallelisation with the *initial* CMR
//!    blocks (dynamic adjusting disabled);
//! 3. `RulesOnly`        — adjusted blocks, rule-based strategy choice;
//! 4. `Full`             — adjusted blocks + model-based strategy choice.

use crate::common::{format_table, Harness};
use ftimm::{ChosenStrategy, GemmShape, IrregularType, Strategy};

/// One ablation row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Shape evaluated.
    pub shape: GemmShape,
    /// GFLOPS per configuration, in the order documented above.
    pub gflops: [f64; 4],
}

/// Configuration labels.
pub const CONFIGS: [&str; 4] = ["TGEMM", "FixedBlocks", "RulesOnly", "Full"];

/// Evaluate the ablation on representative shapes of the three types.
pub fn compute() -> Vec<Row> {
    let h = Harness::new();
    let cores = 8;
    let shapes = [
        GemmShape::new(1 << 18, 32, 32),
        GemmShape::new(2880, 32, 8192), // 9 fixed-size chunks over 8 cores
        GemmShape::new(32, 32, 1 << 18),
        GemmShape::new(20480, 32, 20480),
        GemmShape::new(20480, 96, 20480),
    ];
    shapes
        .into_iter()
        .map(|shape| {
            let gf = |t: f64| shape.flops() as f64 / t / 1e9;
            // 1. TGEMM baseline.
            let t_tg = h.ft.predict_seconds(&shape, &ChosenStrategy::TGemm, cores);
            // 2. ftIMM parallelisation with unadjusted initial blocks.
            let fixed = match shape.classify() {
                IrregularType::SkinnyTallTimesTallSkinny => {
                    ChosenStrategy::KPar(ftimm::initial_kpar(h.ft.cache(), h.ft.cfg(), cores))
                }
                _ => ChosenStrategy::MPar(ftimm::initial_mpar(h.ft.cache(), h.ft.cfg(), cores)),
            };
            let t_fixed = h.ft.predict_seconds(&shape, &fixed, cores);
            // 3. Rule-based dynamic adjusting.
            let rules = h.ft.plan(&shape, Strategy::Rules, cores);
            let t_rules = h.ft.predict_seconds(&shape, &rules, cores);
            // 4. Full ftIMM (model-based auto selection).
            let auto = h.ft.plan(&shape, Strategy::Auto, cores);
            let t_auto = h.ft.predict_seconds(&shape, &auto, cores);
            Row {
                shape,
                gflops: [gf(t_tg), gf(t_fixed), gf(t_rules), gf(t_auto)],
            }
        })
        .collect()
}

/// Render the ablation table.
pub fn render(rows: &[Row]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![r.shape.to_string()];
            cells.extend(r.gflops.iter().map(|g| format!("{g:.1}")));
            cells.push(format!("{:.2}x", r.gflops[3] / r.gflops[0]));
            cells
        })
        .collect();
    format_table(
        "Ablation — contribution of each ftIMM mechanism (GFLOPS, 8 cores)",
        &[
            "MxNxK",
            CONFIGS[0],
            CONFIGS[1],
            CONFIGS[2],
            CONFIGS[3],
            "full/tgemm",
        ],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn cached() -> &'static [Row] {
        static P: OnceLock<Vec<Row>> = OnceLock::new();
        P.get_or_init(compute)
    }

    #[test]
    fn each_mechanism_is_non_degrading_overall() {
        for r in cached() {
            let [tgemm, fixed, rules, full] = r.gflops;
            // Fixed-block ftIMM already beats TGEMM (kernels + strategy).
            assert!(fixed > tgemm, "{}: {fixed} vs {tgemm}", r.shape);
            // Dynamic adjusting is at worst neutral against fixed blocks.
            assert!(rules >= fixed * 0.9, "{}: {rules} vs {fixed}", r.shape);
            // Auto never loses to rules (it evaluates them).
            assert!(full >= rules * 0.999, "{}: {full} vs {rules}", r.shape);
        }
    }

    #[test]
    fn adjusting_rebalances_chunked_m() {
        // 2880 rows: the fixed m_a = 320 gives 9 chunks over 8 cores (one
        // core does double work); adjusting resizes m_a so the chunks
        // divide evenly.
        let rows = cached();
        let r = rows
            .iter()
            .find(|r| r.shape == GemmShape::new(2880, 32, 8192))
            .unwrap();
        let gain = r.gflops[2] / r.gflops[1];
        assert!(gain > 1.1, "adjusting gain only {gain}");
    }

    #[test]
    fn render_has_all_configs() {
        let s = render(cached());
        for c in CONFIGS {
            assert!(s.contains(c));
        }
    }
}
