//! Ablation study: how much each of ftIMM's three mechanisms contributes
//! (§IV: auto-generated micro-kernels, shape-matched parallelisation,
//! dynamic block adjusting).  Not a paper figure — this backs the paper's
//! §III analysis with measurements on the model.
//!
//! Configurations, from baseline to full system:
//! 1. `TGEMM`            — fixed 96-wide kernel, fixed blocks, N-parallel;
//! 2. `FixedBlocks`      — ftIMM parallelisation with the *initial* CMR
//!    blocks (dynamic adjusting disabled);
//! 3. `RulesOnly`        — adjusted blocks, rule-based strategy choice;
//! 4. `Full`             — adjusted blocks + model-based strategy choice.

use crate::common::{format_table, Harness};
use dspsim::HwConfig;
use ftimm::{ChosenStrategy, FtImm, GemmShape, IrregularType, Strategy};

/// One ablation row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Shape evaluated.
    pub shape: GemmShape,
    /// GFLOPS per configuration, in the order documented above.
    pub gflops: [f64; 4],
}

/// Configuration labels.
pub const CONFIGS: [&str; 4] = ["TGEMM", "FixedBlocks", "RulesOnly", "Full"];

/// Evaluate the ablation on representative shapes of the three types.
pub fn compute() -> Vec<Row> {
    let h = Harness::new();
    let cores = 8;
    let shapes = [
        GemmShape::new(1 << 18, 32, 32),
        GemmShape::new(2880, 32, 8192), // 9 fixed-size chunks over 8 cores
        GemmShape::new(32, 32, 1 << 18),
        GemmShape::new(20480, 32, 20480),
        GemmShape::new(20480, 96, 20480),
    ];
    shapes
        .into_iter()
        .map(|shape| {
            let gf = |t: f64| shape.flops() as f64 / t / 1e9;
            // 1. TGEMM baseline.
            let t_tg = h.ft.predict_seconds(&shape, &ChosenStrategy::TGemm, cores);
            // 2. ftIMM parallelisation with unadjusted initial blocks.
            let fixed = match shape.classify() {
                IrregularType::SkinnyTallTimesTallSkinny => {
                    ChosenStrategy::KPar(ftimm::initial_kpar(h.ft.cache(), h.ft.cfg(), cores))
                }
                _ => ChosenStrategy::MPar(ftimm::initial_mpar(h.ft.cache(), h.ft.cfg(), cores)),
            };
            let t_fixed = h.ft.predict_seconds(&shape, &fixed, cores);
            // 3. Rule-based dynamic adjusting.
            let rules = h.ft.plan(&shape, Strategy::Rules, cores);
            let t_rules = h.ft.predict_seconds(&shape, &rules, cores);
            // 4. Full ftIMM (model-based auto selection).
            let auto = h.ft.plan(&shape, Strategy::Auto, cores);
            let t_auto = h.ft.predict_seconds(&shape, &auto, cores);
            Row {
                shape,
                gflops: [gf(t_tg), gf(t_fixed), gf(t_rules), gf(t_auto)],
            }
        })
        .collect()
}

/// Plan-cache ablation: the same `Strategy::Auto` planning request
/// repeated on contexts with the memo enabled vs disabled.
#[derive(Debug, Clone, Copy)]
pub struct CacheRow {
    /// Shape planned.
    pub shape: GemmShape,
    /// Times the request was issued.
    pub repeats: u32,
    /// Total planning wall-clock with the default cache, seconds.
    pub cached_s: f64,
    /// Total planning wall-clock with a zero-capacity cache, seconds.
    pub uncached_s: f64,
    /// Timing simulations the cached context ran (the first request's
    /// only — hits simulate nothing).
    pub cached_sims: u64,
    /// Timing simulations the uncached context ran (grows per repeat).
    pub uncached_sims: u64,
}

/// Measure the plan-cache ablation: `repeats` identical Auto requests
/// against a cached and an uncached context.
pub fn compute_plan_cache(repeats: u32) -> CacheRow {
    let shape = GemmShape::new(4096, 32, 4096);
    let time_plans = |ft: &FtImm| {
        let t0 = std::time::Instant::now();
        for _ in 0..repeats {
            ft.plan_full(&shape, Strategy::Auto, 8);
        }
        t0.elapsed().as_secs_f64()
    };
    let cached = FtImm::new(HwConfig::default());
    let cached_s = time_plans(&cached);
    let uncached = FtImm::with_plan_cache_capacity(HwConfig::default(), 0);
    let uncached_s = time_plans(&uncached);
    CacheRow {
        shape,
        repeats,
        cached_s,
        uncached_s,
        cached_sims: cached.timing_simulations(),
        uncached_sims: uncached.timing_simulations(),
    }
}

/// Render the plan-cache ablation lines.
pub fn render_plan_cache(r: &CacheRow) -> String {
    format!(
        "Plan-cache ablation — {} Auto plans of {}:\n\
         cache on : {:.3e}s total, {} timing simulations\n\
         cache off: {:.3e}s total, {} timing simulations ({:.0}x slower)\n",
        r.repeats,
        r.shape,
        r.cached_s,
        r.cached_sims,
        r.uncached_s,
        r.uncached_sims,
        r.uncached_s / r.cached_s.max(1e-12)
    )
}

/// Render the ablation table.
pub fn render(rows: &[Row]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![r.shape.to_string()];
            cells.extend(r.gflops.iter().map(|g| format!("{g:.1}")));
            cells.push(format!("{:.2}x", r.gflops[3] / r.gflops[0]));
            cells
        })
        .collect();
    format_table(
        "Ablation — contribution of each ftIMM mechanism (GFLOPS, 8 cores)",
        &[
            "MxNxK",
            CONFIGS[0],
            CONFIGS[1],
            CONFIGS[2],
            CONFIGS[3],
            "full/tgemm",
        ],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn cached() -> &'static [Row] {
        static P: OnceLock<Vec<Row>> = OnceLock::new();
        P.get_or_init(compute)
    }

    #[test]
    fn each_mechanism_is_non_degrading_overall() {
        for r in cached() {
            let [tgemm, fixed, rules, full] = r.gflops;
            // Fixed-block ftIMM already beats TGEMM (kernels + strategy).
            assert!(fixed > tgemm, "{}: {fixed} vs {tgemm}", r.shape);
            // Dynamic adjusting is at worst neutral against fixed blocks.
            assert!(rules >= fixed * 0.9, "{}: {rules} vs {fixed}", r.shape);
            // Auto never loses to rules (it evaluates them).
            assert!(full >= rules * 0.999, "{}: {full} vs {rules}", r.shape);
        }
    }

    #[test]
    fn adjusting_rebalances_chunked_m() {
        // 2880 rows: the fixed m_a = 320 gives 9 chunks over 8 cores (one
        // core does double work); adjusting resizes m_a so the chunks
        // divide evenly.
        let rows = cached();
        let r = rows
            .iter()
            .find(|r| r.shape == GemmShape::new(2880, 32, 8192))
            .unwrap();
        let gain = r.gflops[2] / r.gflops[1];
        assert!(gain > 1.1, "adjusting gain only {gain}");
    }

    #[test]
    fn plan_cache_eliminates_repeat_simulations() {
        let r = compute_plan_cache(3);
        // The cached context simulates only on the first request; the
        // uncached one re-simulates every time.
        assert!(r.cached_sims > 0);
        assert_eq!(r.uncached_sims % r.cached_sims, 0);
        assert_eq!(r.uncached_sims / r.cached_sims, 3);
        assert!(r.uncached_s > r.cached_s, "{r:?}");
        assert!(render_plan_cache(&r).contains("cache off"));
    }

    #[test]
    fn render_has_all_configs() {
        let s = render(cached());
        for c in CONFIGS {
            assert!(s.contains(c));
        }
    }
}
