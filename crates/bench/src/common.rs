//! Shared measurement harness.

use cpublas::CpuConfig;
use dspsim::HwConfig;
use ftimm::backend::{Backend, BackendPrediction, CpuBackend, DspBackend};
use ftimm::{ChosenStrategy, FtImm, GemmShape, Strategy};

/// A configured measurement context (kernel cache shared across points).
pub struct Harness {
    /// The ftIMM library instance.
    pub ft: FtImm,
    /// The CPU comparator configuration.
    pub cpu: CpuConfig,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

impl Harness {
    /// Default hardware.
    pub fn new() -> Self {
        Harness {
            ft: FtImm::new(HwConfig::default()),
            cpu: CpuConfig::default(),
        }
    }

    /// Simulated seconds of a strategy on a shape (timing model).
    pub fn seconds(&self, shape: &GemmShape, strategy: Strategy, cores: usize) -> f64 {
        let plan = self.ft.plan(shape, strategy, cores);
        self.ft.predict_seconds(shape, &plan, cores)
    }

    /// Simulated GFLOPS of a strategy on a shape.
    pub fn gflops(&self, shape: &GemmShape, strategy: Strategy, cores: usize) -> f64 {
        shape.flops() as f64 / self.seconds(shape, strategy, cores) / 1e9
    }

    /// Simulated GFLOPS of the TGEMM baseline.
    pub fn tgemm_gflops(&self, shape: &GemmShape, cores: usize) -> f64 {
        let t = self
            .ft
            .predict_seconds(shape, &ChosenStrategy::TGemm, cores);
        shape.flops() as f64 / t / 1e9
    }

    /// The plan dynamic adjusting picks (for labelling).
    pub fn plan_tag(&self, shape: &GemmShape, cores: usize) -> &'static str {
        match self.ft.plan(shape, Strategy::Auto, cores) {
            ChosenStrategy::MPar(_) => "M-par",
            ChosenStrategy::KPar(_) => "K-par",
            ChosenStrategy::TGemm => "TGEMM",
        }
    }

    /// Cluster peak in GFLOPS.
    pub fn dsp_peak_gflops(&self) -> f64 {
        self.ft.cfg().cluster_peak_flops() / 1e9
    }

    /// The DSP cluster as a [`Backend`] (predictions through the shared
    /// plan cache).
    pub fn dsp_backend(&self, strategy: Strategy, cores: usize) -> DspBackend<'_> {
        DspBackend::new(&self.ft, strategy, cores)
    }

    /// The CPU comparator as a [`Backend`] — the same model and config
    /// the sharded engine's spill lane charges, so every chart and gate
    /// compares against the device that would actually absorb failover.
    pub fn cpu_backend(&self) -> CpuBackend {
        CpuBackend::new(self.cpu)
    }

    /// CPU-model prediction for a shape through the [`Backend`] trait.
    pub fn cpu_predict(&self, shape: &GemmShape) -> BackendPrediction {
        self.cpu_backend().predict(shape)
    }
}

/// Format a data table: header plus rows of fixed-width columns.
pub fn format_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = format!("{title}\n");
    let line = |cells: &[String], widths: &[usize]| {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let hdr: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&line(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row, &widths));
        out.push('\n');
    }
    out
}

/// The N sweep used across the paper's Fig 4/5/7 panels.
pub const N_SWEEP: [usize; 6] = [16, 32, 48, 64, 80, 96];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_sane_gflops() {
        let h = Harness::new();
        let s = GemmShape::new(4096, 32, 512);
        let g = h.gflops(&s, Strategy::Auto, 8);
        assert!(g > 1.0 && g < h.dsp_peak_gflops(), "{g}");
        let t = h.tgemm_gflops(&s, 8);
        assert!(t > 0.0 && t < g);
    }

    #[test]
    fn table_formatting_aligns_columns() {
        let s = format_table(
            "T",
            &["a", "bbb"],
            &[vec!["1".into(), "2".into()], vec!["10".into(), "20".into()]],
        );
        assert!(s.starts_with("T\n"));
        assert!(s.contains("---"));
        assert!(s.lines().count() >= 4);
    }
}
