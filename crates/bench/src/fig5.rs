//! Fig. 5 — multi-core (8-core GPDSP cluster) performance of ftIMM vs
//! TGEMM on the three irregular types, with the roofline bound (paper
//! highlights: up to 4.2× / 5.8× / 7.2× over TGEMM for types 1/2/3, and
//! up to 67 % of the roofline).

use crate::common::{format_table, Harness, N_SWEEP};
use ftimm::roofline::roofline_gflops;
use ftimm::{GemmShape, Strategy};

/// One measured point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Problem shape.
    pub shape: GemmShape,
    /// ftIMM GFLOPS (8 cores).
    pub ftimm: f64,
    /// TGEMM GFLOPS (8 cores).
    pub tgemm: f64,
    /// Roofline bound in GFLOPS.
    pub roofline: f64,
}

impl Point {
    /// ftIMM speedup over TGEMM.
    pub fn speedup(&self) -> f64 {
        self.ftimm / self.tgemm
    }

    /// Fraction of the roofline achieved by ftIMM.
    pub fn roofline_fraction(&self) -> f64 {
        self.ftimm / self.roofline
    }
}

/// One panel of Fig 5.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Label.
    pub label: &'static str,
    /// Points.
    pub points: Vec<Point>,
}

const CORES: usize = 8;

fn point(h: &Harness, m: usize, n: usize, k: usize) -> Point {
    let shape = GemmShape::new(m, n, k);
    Point {
        shape,
        ftimm: h.gflops(&shape, Strategy::Auto, CORES),
        tgemm: h.tgemm_gflops(&shape, CORES),
        roofline: roofline_gflops(h.ft.cfg(), &shape, CORES),
    }
}

/// Compute all six panels on 8 cores.
///
/// Debug builds use truncated M/K sweeps so `cargo test` stays fast; the
/// release harness (`--bin fig5`, benches) runs the paper's full ranges.
pub fn compute() -> Vec<Panel> {
    let h = Harness::new();
    let top = if cfg!(debug_assertions) { 19 } else { 22 };
    let m_sweep: Vec<usize> = (16..=top).map(|e| 1usize << e).collect();
    let k_sweep = m_sweep.clone();
    let mk_sweep = if cfg!(debug_assertions) {
        vec![4096usize, 12288, 20480]
    } else {
        vec![4096usize, 8192, 12288, 16384, 20480]
    };
    vec![
        Panel {
            label: "(a) type 1: M=2^16, N=K swept",
            points: N_SWEEP.iter().map(|&n| point(&h, 1 << 16, n, n)).collect(),
        },
        Panel {
            label: "(b) type 2: K=2^16, M=N swept",
            points: N_SWEEP.iter().map(|&n| point(&h, n, n, 1 << 16)).collect(),
        },
        Panel {
            label: "(c) type 3: M=K=20480, N swept",
            points: N_SWEEP
                .iter()
                .map(|&n| point(&h, 20480, n, 20480))
                .collect(),
        },
        Panel {
            label: "(d) type 1: N=K=32, M swept",
            points: m_sweep.iter().map(|&m| point(&h, m, 32, 32)).collect(),
        },
        Panel {
            label: "(e) type 2: M=N=32, K swept",
            points: k_sweep.iter().map(|&k| point(&h, 32, 32, k)).collect(),
        },
        Panel {
            label: "(f) type 3: N=32, M=K swept",
            points: mk_sweep.iter().map(|&mk| point(&h, mk, 32, mk)).collect(),
        },
    ]
}

/// Render the panels.
pub fn render(panels: &[Panel]) -> String {
    let mut out =
        String::from("Fig. 5 — ftIMM vs TGEMM on 8 cores of a GPDSP cluster (GFLOPS)\n\n");
    for p in panels {
        let rows: Vec<Vec<String>> = p
            .points
            .iter()
            .map(|pt| {
                vec![
                    pt.shape.to_string(),
                    format!("{:.1}", pt.ftimm),
                    format!("{:.1}", pt.tgemm),
                    format!("{:.2}x", pt.speedup()),
                    format!("{:.1}", pt.roofline),
                    format!("{:.0}%", 100.0 * pt.roofline_fraction()),
                ]
            })
            .collect();
        out.push_str(&format_table(
            p.label,
            &["MxNxK", "ftIMM", "TGEMM", "speedup", "roofline", "%roof"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn cached() -> &'static [Panel] {
        static P: OnceLock<Vec<Panel>> = OnceLock::new();
        P.get_or_init(compute)
    }

    fn panels() -> &'static [Panel] {
        cached()
    }

    #[test]
    fn ftimm_wins_every_multicore_point_with_multi_x_peaks() {
        let mut max_speedup = 0.0f64;
        for p in panels() {
            for pt in &p.points {
                assert!(pt.speedup() > 1.0, "{}: {:?}", p.label, pt);
                max_speedup = max_speedup.max(pt.speedup());
            }
        }
        // Paper: up to 7.2×; we require a clear multi-× peak.
        assert!(max_speedup > 3.0, "max speedup only {max_speedup}");
    }

    #[test]
    fn roofline_is_respected_and_approached() {
        let mut best_frac = 0.0f64;
        for p in panels() {
            for pt in &p.points {
                assert!(
                    pt.ftimm <= pt.roofline * 1.001,
                    "{}: above roofline {:?}",
                    p.label,
                    pt
                );
                best_frac = best_frac.max(pt.roofline_fraction());
            }
        }
        // Paper: up to 67 % of the roofline.
        assert!(best_frac > 0.5, "best roofline fraction {best_frac}");
        assert!(best_frac < 1.0);
    }

    #[test]
    fn larger_m_helps_type1() {
        // Fig 5(d): benefit grows with M (better reuse).
        let panels = panels();
        let d = &panels[3];
        let first = d.points.first().unwrap();
        let last = d.points.last().unwrap();
        assert!(last.ftimm > first.ftimm);
        assert!(last.speedup() >= first.speedup() * 0.95);
    }

    #[test]
    fn type3_outperforms_other_types_at_same_n() {
        // §V-C3: the third type achieves the highest absolute GFLOPS.
        let panels = panels();
        let at_n32 = |idx: usize| {
            panels[idx]
                .points
                .iter()
                .find(|pt| pt.shape.n == 32)
                .unwrap()
                .ftimm
        };
        let t1 = at_n32(0);
        let t2 = at_n32(1);
        let t3 = at_n32(2);
        assert!(t3 > t1 && t3 > t2, "t3 {t3} vs t1 {t1}, t2 {t2}");
    }

    #[test]
    fn type2_gains_with_k() {
        // Fig 5(e): more K amortises the reduction overhead.
        let panels = panels();
        let e = &panels[4];
        assert!(e.points.last().unwrap().ftimm >= e.points.first().unwrap().ftimm * 0.9);
    }

    #[test]
    fn render_includes_roofline() {
        let s = render(panels());
        assert!(s.contains("%roof"));
        assert!(s.contains("(f)"));
    }
}
