//! Fig. 7 — efficiency of irregular-shaped GEMM: ftIMM on one GPDSP
//! cluster (peak 2764.8 GFLOPS) vs OpenBLAS on the 16-core ARMv8 CPU
//! (peak 281.6 GFLOPS), both against the same 42.6 GB/s DDR bandwidth.
//! Efficiency is achieved/peak per device; the paper reports ftIMM ahead
//! in most cases, by up to 3.1×.

use crate::common::{format_table, Harness, N_SWEEP};
use ftimm::{GemmShape, Strategy};

/// One efficiency comparison point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Problem shape.
    pub shape: GemmShape,
    /// ftIMM efficiency vs cluster peak.
    pub dsp_efficiency: f64,
    /// Modelled OpenBLAS efficiency vs CPU peak.
    pub cpu_efficiency: f64,
}

impl Point {
    /// ftIMM-to-OpenBLAS efficiency ratio.
    pub fn ratio(&self) -> f64 {
        self.dsp_efficiency / self.cpu_efficiency
    }
}

/// One panel.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Label.
    pub label: &'static str,
    /// Points.
    pub points: Vec<Point>,
}

fn point(h: &Harness, m: usize, n: usize, k: usize) -> Point {
    // Both devices through the same Backend trait the failover engine
    // dispatches on: one code path, one config.
    let shape = GemmShape::new(m, n, k);
    let dsp_gf = h.gflops(&shape, Strategy::Auto, 8);
    let cpu = h.cpu_predict(&shape);
    Point {
        shape,
        dsp_efficiency: dsp_gf / h.dsp_peak_gflops(),
        cpu_efficiency: cpu.efficiency,
    }
}

/// Compute the three panels.
pub fn compute() -> Vec<Panel> {
    let h = Harness::new();
    vec![
        Panel {
            label: "(a) type 1: M=2^16, N=K swept",
            points: N_SWEEP.iter().map(|&n| point(&h, 1 << 16, n, n)).collect(),
        },
        Panel {
            label: "(b) type 2: K=2^16, M=N swept",
            points: N_SWEEP.iter().map(|&n| point(&h, n, n, 1 << 16)).collect(),
        },
        Panel {
            label: "(c) type 3: M=K=20480, N swept",
            points: N_SWEEP
                .iter()
                .map(|&n| point(&h, 20480, n, 20480))
                .collect(),
        },
    ]
}

/// Render the panels.
pub fn render(panels: &[Panel]) -> String {
    let mut out = String::from(
        "Fig. 7 — Efficiency: ftIMM on a GPDSP cluster vs OpenBLAS on the 16-core CPU\n\n",
    );
    for p in panels {
        let rows: Vec<Vec<String>> = p
            .points
            .iter()
            .map(|pt| {
                vec![
                    pt.shape.to_string(),
                    format!("{:.1}%", 100.0 * pt.dsp_efficiency),
                    format!("{:.1}%", 100.0 * pt.cpu_efficiency),
                    format!("{:.2}x", pt.ratio()),
                ]
            })
            .collect();
        out.push_str(&format_table(
            p.label,
            &["MxNxK", "ftIMM eff", "OpenBLAS eff", "ratio"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn cached() -> &'static [Panel] {
        static P: OnceLock<Vec<Panel>> = OnceLock::new();
        P.get_or_init(compute)
    }

    #[test]
    fn ftimm_leads_in_most_cases_up_to_about_3x() {
        let panels = cached();
        let mut wins = 0usize;
        let mut total = 0usize;
        let mut max_ratio = 0.0f64;
        for p in panels {
            for pt in &p.points {
                total += 1;
                if pt.ratio() > 1.0 {
                    wins += 1;
                }
                max_ratio = max_ratio.max(pt.ratio());
            }
        }
        assert!(
            wins * 2 > total,
            "ftIMM should lead in most cases ({wins}/{total})"
        );
        // Paper: "up to 3.1×".
        assert!(max_ratio > 1.5, "max ratio {max_ratio}");
        assert!(max_ratio < 8.0, "max ratio {max_ratio} implausibly large");
    }

    #[test]
    fn efficiencies_are_valid_fractions() {
        for p in cached() {
            for pt in &p.points {
                assert!(pt.dsp_efficiency > 0.0 && pt.dsp_efficiency < 1.0);
                assert!(pt.cpu_efficiency > 0.0 && pt.cpu_efficiency < 1.0);
            }
        }
    }

    #[test]
    fn type3_efficiency_grows_with_n_for_both_devices() {
        let panels = cached();
        let c = &panels[2];
        let first = c.points.first().unwrap();
        let last = c.points.last().unwrap();
        assert!(last.dsp_efficiency > first.dsp_efficiency);
        assert!(last.cpu_efficiency > first.cpu_efficiency);
    }

    #[test]
    fn render_shows_ratios() {
        let s = render(cached());
        assert!(s.contains("ratio"));
        assert!(s.contains("OpenBLAS eff"));
    }
}
