//! Heterogeneous failover report: the cost of spilling to the host CPU
//! lane when every DSP cluster is lost, on the Table I–III regimes.
//!
//! Not a paper figure — the paper's machine never loses its cluster;
//! this measures the engine's last fault domain (DESIGN.md §4.4).  Each
//! regime runs a single-cluster timing-mode job twice: fault-free, and
//! with the cluster killed mid-shard under
//! [`ftimm::SpillPolicy::LastResort`] so the checkpointed remainder
//! resumes on the CPU lane.  The lane charges simulated time from the
//! `cpublas` analytic model, so the CI gate cross-checks the measured
//! lane occupancy against an *independent* prediction of the spilled
//! stripe, computed through the same [`ftimm::predict_cpu_stripe`]
//! helper the co-execution planner consults (one call site for the CPU
//! model, so the gate and the planner cannot drift apart):
//! `BENCH_hetero.json`'s `--assert-cpu-model` bound fails the build
//! when they diverge (default tolerance ±30%).

use crate::cluster::{CORES, REGIMES};
use crate::common::format_table;
use dspsim::{BackendKind, ExecMode, FaultPlan, HwConfig};
use ftimm::{
    ClusterPool, EngineConfig, FtImm, GemmShape, ResilienceConfig, ShardedConfig, ShardedEngine,
    ShardedJob, ShardedOutcome, ShardedReport, SpillPolicy, Strategy, TenantSpec,
};
use std::fmt::Write as _;

/// One regime's spill measurement.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Regime label (`table1-type1`, …).
    pub regime: &'static str,
    /// The shape run.
    pub shape: GemmShape,
    /// Fault-free single-cluster makespan.
    pub fault_free_s: f64,
    /// Makespan with the mid-shard cluster kill and CPU spill.
    pub with_kill_s: f64,
    /// Rows the CPU lane absorbed (salvage remainder).
    pub rows_spilled: usize,
    /// Measured CPU-lane busy seconds across its dispatches.
    pub cpu_lane_s: f64,
    /// Independent `cpublas` model prediction for the spilled stripe.
    pub model_cpu_s: f64,
}

impl Row {
    /// Measured lane time over the model's prediction (1.0 = the lane
    /// charges exactly what the analytic model says it should).
    pub fn model_ratio(&self) -> f64 {
        self.cpu_lane_s / self.model_cpu_s.max(1e-12)
    }

    /// End-to-end cost of losing the cluster, as a multiple of the
    /// fault-free makespan.
    pub fn slowdown(&self) -> f64 {
        self.with_kill_s / self.fault_free_s.max(1e-12)
    }
}

/// The whole report.
#[derive(Debug, Clone)]
pub struct Report {
    /// One row per Table I–III regime.
    pub rows: Vec<Row>,
}

impl Report {
    /// Largest relative error between the measured CPU-lane time and
    /// the model prediction — the quantity the CI gate bounds.
    pub fn max_model_error(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| (r.model_ratio() - 1.0).abs())
            .fold(0.0, f64::max)
    }
}

fn cfg() -> ShardedConfig {
    ShardedConfig {
        engine: EngineConfig {
            resilience: ResilienceConfig {
                ckpt_rows: 64,
                ..ResilienceConfig::default()
            },
            ..EngineConfig::default()
        },
        spill: SpillPolicy::LastResort,
        ..ShardedConfig::default()
    }
}

fn run_completed(ft: &FtImm, eng: &mut ShardedEngine, shape: &GemmShape) -> Box<ShardedReport> {
    let t = eng.register_tenant(TenantSpec::new("bench", 5));
    eng.submit(
        t,
        ShardedJob::timing(shape.m, shape.n, shape.k, Strategy::Auto, CORES),
    );
    let mut records = eng.run_all(ft);
    assert_eq!(records.len(), 1);
    match records.remove(0).outcome {
        ShardedOutcome::Completed { report, .. } => report,
        other => panic!("{shape}: expected completion, got {}", other.label()),
    }
}

fn measure(ft: &FtImm, regime: &'static str, shape: GemmShape) -> Row {
    // Fault-free single-cluster baseline (also the kill-window probe).
    let pool = ClusterPool::new(&HwConfig::default(), ExecMode::Timing, 1);
    let mut eng = ShardedEngine::new(pool, cfg());
    let clean = run_completed(ft, &mut eng, &shape);
    let shard0_s = clean.shard_runs[0].seconds;

    // Kill the only cluster halfway through its shard: the checkpointed
    // remainder must resume on the CPU lane.
    let pool = ClusterPool::new(&HwConfig::default(), ExecMode::Timing, 1);
    let mut eng = ShardedEngine::new(pool, cfg());
    eng.install_faults(0, &FaultPlan::new(5).kill_cluster(shard0_s * 0.5));
    let killed = run_completed(ft, &mut eng, &shape);
    assert!(
        !killed.failovers.is_empty(),
        "{shape}: the kill must actually trigger a failover"
    );

    let (mut rows_spilled, mut cpu_lane_s) = (0usize, 0.0f64);
    for r in killed
        .shard_runs
        .iter()
        .filter(|r| r.backend == BackendKind::Cpu)
    {
        rows_spilled += r.r1 - r.r0;
        cpu_lane_s += r.seconds;
    }
    assert!(rows_spilled > 0, "{shape}: nothing reached the CPU lane");
    // The independent prediction: what the analytic model says the
    // spilled stripe costs on the comparator CPU.
    let model_cpu_s =
        ftimm::predict_cpu_stripe(&cfg().cpu, rows_spilled, shape.n, shape.k, 1.0).seconds;
    Row {
        regime,
        shape,
        fault_free_s: clean.seconds,
        with_kill_s: killed.seconds,
        rows_spilled,
        cpu_lane_s,
        model_cpu_s,
    }
}

/// Run the three-regime spill sweep.
pub fn compute() -> Report {
    let ft = FtImm::new(HwConfig::default());
    Report {
        rows: REGIMES
            .iter()
            .map(|&(regime, (m, n, k))| measure(&ft, regime, GemmShape::new(m, n, k)))
            .collect(),
    }
}

/// Render the printable report.
pub fn render(report: &Report) -> String {
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.regime.to_string(),
                r.shape.to_string(),
                format!("{:.3e}", r.fault_free_s),
                format!("{:.3e}", r.with_kill_s),
                format!("{}", r.rows_spilled),
                format!("{:.3e}", r.cpu_lane_s),
                format!("{:.3e}", r.model_cpu_s),
                format!("{:.3}", r.model_ratio()),
                format!("{:.2}x", r.slowdown()),
            ]
        })
        .collect();
    let mut s = format_table(
        "Heterogeneous failover — cluster killed mid-shard, remainder on the CPU lane",
        &[
            "regime",
            "MxNxK",
            "fault-free",
            "with kill",
            "rows→cpu",
            "cpu lane s",
            "model s",
            "ratio",
            "slowdown",
        ],
        &rows,
    );
    let _ = writeln!(
        s,
        "max model error: {:.1}% (gate: within the cpublas prediction)",
        100.0 * report.max_model_error()
    );
    s
}

/// Serialise the report as the `BENCH_hetero.json` document.
pub fn render_json(report: &Report) -> String {
    let mut s = String::from("{\n  \"schema\": \"ftimm-bench-hetero-v1\",\n  \"rows\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"regime\": \"{}\", \"m\": {}, \"n\": {}, \"k\": {}, \
             \"fault_free_s\": {:?}, \"with_kill_s\": {:?}, \"rows_spilled\": {}, \
             \"cpu_lane_s\": {:?}, \"model_cpu_s\": {:?}, \"model_ratio\": {:?}, \
             \"slowdown\": {:?}}}",
            r.regime,
            r.shape.m,
            r.shape.n,
            r.shape.k,
            r.fault_free_s,
            r.with_kill_s,
            r.rows_spilled,
            r.cpu_lane_s,
            r.model_cpu_s,
            r.model_ratio(),
            r.slowdown()
        );
        s.push_str(if i + 1 < report.rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"max_model_error\": {:?}", report.max_model_error());
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn cached() -> &'static Report {
        static P: OnceLock<Report> = OnceLock::new();
        P.get_or_init(compute)
    }

    #[test]
    fn every_regime_spills_and_completes() {
        let report = cached();
        assert_eq!(report.rows.len(), REGIMES.len());
        for r in &report.rows {
            assert!(r.rows_spilled > 0, "{}", r.regime);
            assert!(r.cpu_lane_s > 0.0, "{}", r.regime);
            assert!(
                r.with_kill_s > r.fault_free_s,
                "{}: losing the cluster cannot be free",
                r.regime
            );
        }
    }

    #[test]
    fn cpu_lane_time_matches_the_model_within_the_ci_gate() {
        // The CI bound is ±30%; the lane literally charges the model
        // pro-rata, so drift here means the charging path regressed
        // (double-counted spans, slowdown leakage, clamping bugs).
        let report = cached();
        assert!(
            report.max_model_error() <= 0.30,
            "max model error {:.1}%",
            100.0 * report.max_model_error()
        );
    }

    #[test]
    fn spilling_is_slower_than_the_dsp_but_bounded() {
        // The CPU peak is ~10x below the cluster's; a spill should cost
        // real time but never orders of magnitude beyond the device gap.
        for r in &cached().rows {
            let s = r.slowdown();
            assert!(s > 1.0 && s < 100.0, "{}: slowdown {s}", r.regime);
        }
    }

    #[test]
    fn json_document_carries_rows_and_the_gate_quantity() {
        let s = render_json(cached());
        assert!(s.contains("ftimm-bench-hetero-v1"));
        assert!(s.contains("max_model_error"));
        for (regime, _) in REGIMES {
            assert!(s.contains(regime));
        }
    }
}
