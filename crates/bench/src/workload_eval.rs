//! Workload evaluation (ours): the paper motivates irregular GEMMs with
//! k-means, im2col convolutions and FEM batches (§I); this module
//! measures ftIMM vs TGEMM vs the CPU baseline on those concrete shapes.

use crate::common::{format_table, Harness};
use ftimm::{GemmShape, Strategy};
use workloads::{gpt2_medium_head_projections, vgg16_layers, FemBatch, KmeansInstance};

/// One evaluated workload.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload name.
    pub name: String,
    /// Its GEMM shape.
    pub shape: GemmShape,
    /// ftIMM GFLOPS (8 cores, auto).
    pub ftimm: f64,
    /// TGEMM GFLOPS (8 cores).
    pub tgemm: f64,
    /// Modelled OpenBLAS GFLOPS on the CPU.
    pub cpu: f64,
}

/// Evaluate the workload suite.
pub fn compute() -> Vec<Row> {
    let h = Harness::new();
    let mut rows = Vec::new();
    let mut push = |name: String, shape: GemmShape| {
        rows.push(Row {
            name,
            shape,
            ftimm: h.gflops(&shape, Strategy::Auto, 8),
            tgemm: h.tgemm_gflops(&shape, 8),
            cpu: h.cpu_predict(&shape).flops_per_s / 1e9,
        });
    };
    // K-means: MNIST-like and tabular-like instances.
    for (samples, k, dims) in [(60_000, 10, 784), (1 << 20, 16, 32), (100_000, 64, 64)] {
        let inst = KmeansInstance {
            points: Vec::new(),
            centroids: Vec::new(),
            samples,
            k,
            dims,
        };
        push(format!("kmeans {samples}x{k}x{dims}"), inst.gemm_shape());
    }
    // CNN layers (batch 1, VGG-16 selection).
    for layer in vgg16_layers().into_iter().take(6) {
        push(format!("vgg16 {}", layer.name), layer.gemm_shape(1));
    }
    // Transformer prefill attention projections.
    for p in gpt2_medium_head_projections(4096).into_iter().take(1) {
        push(format!("gpt2m {} prefill4096", p.name), p.gemm_shape());
    }
    // FEM batches.
    for (count, r, i, c) in [
        (100_000usize, 10usize, 10usize, 4usize),
        (40_000, 20, 20, 8),
    ] {
        let b = FemBatch {
            elements: Vec::new(),
            operator: Vec::new(),
            count,
            rows: r,
            inner: i,
            cols: c,
        };
        push(format!("fem {count}x{r}x{i}x{c}"), b.gemm_shape());
    }
    rows
}

/// Render the table.
pub fn render(rows: &[Row]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.shape.to_string(),
                format!("{:.1}", r.ftimm),
                format!("{:.1}", r.tgemm),
                format!("{:.1}", r.cpu),
                format!("{:.2}x", r.ftimm / r.tgemm),
            ]
        })
        .collect();
    format_table(
        "Workload suite — simulated GFLOPS (ftIMM auto, 8 DSP cores)",
        &[
            "workload",
            "MxNxK",
            "ftIMM",
            "TGEMM",
            "CPU model",
            "vs TGEMM",
        ],
        &table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn cached() -> &'static [Row] {
        static P: OnceLock<Vec<Row>> = OnceLock::new();
        P.get_or_init(compute)
    }

    #[test]
    fn ftimm_beats_tgemm_on_every_irregular_workload() {
        for r in cached() {
            if r.shape.n <= 96 {
                assert!(r.ftimm > r.tgemm, "{}: {:?}", r.name, r);
            } else {
                // Extended Auto planning: never worse than TGEMM even on
                // regular (N > 96) layers.
                assert!(r.ftimm >= r.tgemm * 0.999, "{}: {:?}", r.name, r);
            }
        }
    }

    #[test]
    fn workload_shapes_cover_multiple_types() {
        use ftimm::IrregularType;
        let types: Vec<IrregularType> = cached().iter().map(|r| r.shape.classify()).collect();
        assert!(types.contains(&IrregularType::TallSkinnyTimesSmall));
        // Deep VGG layers leave the N ≤ 96 regime (regular path exists).
        assert!(types.contains(&IrregularType::Regular));
    }

    #[test]
    fn mnist_kmeans_runs_at_useful_rate() {
        let r = cached()
            .iter()
            .find(|r| r.name.starts_with("kmeans 60000"))
            .unwrap();
        // 60000×10×784 at ≥ 30 simulated GFLOPS ⇒ < 32 ms per Lloyd
        // iteration on the cluster.
        assert!(r.ftimm > 30.0, "{r:?}");
    }

    #[test]
    fn render_lists_all_rows() {
        let s = render(cached());
        assert!(s.contains("vgg16"));
        assert!(s.contains("fem"));
        assert!(s.contains("kmeans"));
    }
}
