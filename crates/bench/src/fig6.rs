//! Fig. 6 — scalability of ftIMM over 1–8 DSP cores on the three
//! irregular types at dimension 20480 (paper: sub-linear scaling because
//! the algorithms are bandwidth-bound; the reduction-based strategy
//! scales worst).

use crate::common::{format_table, Harness};
use ftimm::{GemmShape, Strategy};

/// Scalability curve for one shape.
#[derive(Debug, Clone)]
pub struct Curve {
    /// The shape.
    pub shape: GemmShape,
    /// Strategy label chosen by dynamic adjusting (8-core plan).
    pub strategy: &'static str,
    /// `(cores, speedup over 1 core)` points.
    pub points: Vec<(usize, f64)>,
}

/// Core counts evaluated.
pub const CORE_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Compute the three curves.
pub fn compute() -> Vec<Curve> {
    let h = Harness::new();
    [
        GemmShape::new(20480, 32, 32),
        GemmShape::new(32, 32, 20480),
        GemmShape::new(20480, 32, 20480),
    ]
    .into_iter()
    .map(|shape| {
        let t1 = h.seconds(&shape, Strategy::Auto, 1);
        let points = CORE_SWEEP
            .iter()
            .map(|&c| (c, t1 / h.seconds(&shape, Strategy::Auto, c)))
            .collect();
        Curve {
            shape,
            strategy: h.plan_tag(&shape, 8),
            points,
        }
    })
    .collect()
}

/// Render the curves.
pub fn render(curves: &[Curve]) -> String {
    let rows: Vec<Vec<String>> = curves
        .iter()
        .map(|c| {
            let mut row = vec![c.shape.to_string(), c.strategy.to_string()];
            row.extend(c.points.iter().map(|(_, s)| format!("{s:.2}x")));
            row
        })
        .collect();
    format_table(
        "Fig. 6 — Scalability (speedup over 1 core)",
        &["MxNxK", "strategy", "1", "2", "4", "8"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn cached() -> &'static [Curve] {
        static P: OnceLock<Vec<Curve>> = OnceLock::new();
        P.get_or_init(compute)
    }

    #[test]
    fn speedup_is_monotone_but_sublinear() {
        for c in cached() {
            let mut prev = 0.0;
            for &(cores, s) in &c.points {
                assert!(
                    s >= prev * 0.999,
                    "{}: regression at {cores} cores",
                    c.shape
                );
                assert!(
                    s <= cores as f64 + 1e-9,
                    "{}: superlinear {s} at {cores}",
                    c.shape
                );
                prev = s;
            }
            let (_, s8) = *c.points.last().unwrap();
            // "The scaling efficiency is not high" — bandwidth-bound.
            assert!(s8 < 7.0, "{}: {s8} too close to linear", c.shape);
            assert!(s8 > 1.2, "{}: {s8} barely scales", c.shape);
        }
    }

    #[test]
    fn one_core_speedup_is_exactly_one() {
        for c in cached() {
            assert!((c.points[0].1 - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn reduction_strategy_scales_worst() {
        // The paper attributes the worst curve to the K-parallel
        // (reduction) strategy; verify the K-par curve trails the others.
        let curves = cached();
        let kpar8 = curves
            .iter()
            .find(|c| c.strategy == "K-par")
            .map(|c| c.points.last().unwrap().1);
        if let Some(kpar8) = kpar8 {
            for c in curves {
                if c.strategy != "K-par" {
                    assert!(
                        c.points.last().unwrap().1 >= kpar8 * 0.95,
                        "{} unexpectedly below the K-par curve",
                        c.shape
                    );
                }
            }
        }
    }

    #[test]
    fn render_lists_all_core_counts() {
        let s = render(cached());
        assert!(s.contains("strategy"));
        assert!(s.contains("20480x32x20480"));
    }
}
