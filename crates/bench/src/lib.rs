//! # bench
//!
//! The reproduction harness: one module per table/figure of the paper's
//! evaluation (§V).  Each module exposes `compute()` returning structured
//! rows and `render()` producing the printable table; the `fig*`/`tables`
//! binaries print them, the criterion benches time them, and the
//! integration tests assert the paper's qualitative shapes on them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod cluster;
pub mod coexec;
pub mod common;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod hetero;
pub mod kernel_exec;
pub mod planner;
pub mod tables;
pub mod tune;
pub mod workload_eval;

pub use common::Harness;
