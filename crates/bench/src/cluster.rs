//! Multi-cluster report: weak-scaling efficiency of the sharded engine
//! from 1 to 4 cluster fault domains on the Table I–III regimes, plus
//! the measured cost of a checkpointed shard failover.
//!
//! Not a paper figure — the paper's FT-m7032 has four GPDSP clusters but
//! evaluates one; this extends the perf trajectory to the multi-cluster
//! front end (DESIGN.md §4.3).  `BENCH_cluster.json` is emitted by the
//! `cluster` binary and archived by CI; its `--assert-failover-overhead`
//! gate keeps recovery cost bounded by twice the lost shard's work.

use crate::common::format_table;
use dspsim::{ExecMode, FaultPlan, HwConfig, Profiler};
use ftimm::reference::fill_matrix;
use ftimm::{
    chrome_trace_json_clusters, ClusterPool, EngineConfig, FtImm, GemmShape, ResilienceConfig,
    ShardedConfig, ShardedEngine, ShardedJob, ShardedOutcome, ShardedReport, SpillPolicy, Strategy,
    TenantSpec,
};
use std::fmt::Write as _;

/// Cores driven per cluster (the paper's full GPDSP cluster).
pub const CORES: usize = 8;

/// Largest pool in the sweep.
pub const MAX_CLUSTERS: usize = 4;

/// The Table I–III regimes, as per-cluster base shapes: weak scaling
/// multiplies `m` by the cluster count (the engine shards over M), so
/// each cluster always owns one base problem's worth of rows.
pub const REGIMES: [(&str, (usize, usize, usize)); 3] = [
    ("table1-type1", (8192, 32, 32)),   // tall-skinny, M-parallel
    ("table2-type2", (32, 32, 8192)),   // short-wide, K-parallel
    ("table3-type3", (2560, 32, 2560)), // doubly irregular
];

/// One weak-scaling measurement.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Regime label (`table1-type1`, …).
    pub regime: &'static str,
    /// Clusters in the pool.
    pub clusters: usize,
    /// The scaled shape actually run (`m = base_m × clusters`).
    pub shape: GemmShape,
    /// Simulated makespan of the sharded run.
    pub seconds: f64,
    /// Weak-scaling efficiency: single-cluster base-problem time over
    /// this run's time (1.0 = perfect scaling).
    pub efficiency: f64,
}

/// The measured cost of one checkpointed shard failover (functional
/// 2-cluster run, cluster 0 killed halfway through its shard).
#[derive(Debug, Clone, Copy)]
pub struct FailoverCost {
    /// The killed shard's fault-free seconds (the work put at risk).
    pub shard_fault_free_s: f64,
    /// Fault-free sharded makespan.
    pub fault_free_s: f64,
    /// Makespan with the mid-shard cluster kill.
    pub with_kill_s: f64,
}

impl FailoverCost {
    /// Extra simulated seconds the recovery cost end to end.
    pub fn overhead_s(&self) -> f64 {
        self.with_kill_s - self.fault_free_s
    }

    /// Recovery overhead as a multiple of the lost shard's fault-free
    /// work — the quantity the CI gate bounds.
    pub fn overhead_ratio(&self) -> f64 {
        self.overhead_s() / self.shard_fault_free_s.max(1e-12)
    }
}

/// The whole report.
#[derive(Debug, Clone)]
pub struct Report {
    /// Weak-scaling rows, regime-major then cluster count.
    pub rows: Vec<Row>,
    /// The failover-cost probe.
    pub failover: FailoverCost,
}

impl Report {
    /// Smallest weak-scaling efficiency at the full pool size.
    pub fn min_efficiency(&self) -> f64 {
        self.rows
            .iter()
            .filter(|r| r.clusters == MAX_CLUSTERS)
            .map(|r| r.efficiency)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Parse a `--spill` flag value (`never`, `last-resort`, `deadline-aware`,
/// `coexec`).
pub fn parse_spill(s: &str) -> Option<SpillPolicy> {
    match s {
        "never" => Some(SpillPolicy::Never),
        "last-resort" => Some(SpillPolicy::LastResort),
        "deadline-aware" => Some(SpillPolicy::DeadlineAware),
        "coexec" => Some(SpillPolicy::CoExecute),
        _ => None,
    }
}

fn sharded_cfg(profile: bool) -> ShardedConfig {
    ShardedConfig {
        engine: EngineConfig {
            resilience: ResilienceConfig {
                ckpt_rows: 8,
                ..ResilienceConfig::default()
            },
            ..EngineConfig::default()
        },
        profile,
        ..ShardedConfig::default()
    }
}

fn run_completed(
    ft: &FtImm,
    eng: &mut ShardedEngine,
    job: ShardedJob,
    what: &str,
) -> Box<ShardedReport> {
    let t = eng.register_tenant(TenantSpec::new("bench", 5));
    eng.submit(t, job);
    let mut records = eng.run_all(ft);
    assert_eq!(records.len(), 1);
    match records.remove(0).outcome {
        ShardedOutcome::Completed { report, .. } => report,
        other => panic!("{what}: expected completion, got {}", other.label()),
    }
}

/// Simulated makespan of one timing-mode sharded run.
fn timing_seconds(ft: &FtImm, shape: &GemmShape, clusters: usize) -> f64 {
    let pool = ClusterPool::new(&HwConfig::default(), ExecMode::Timing, clusters);
    let mut eng = ShardedEngine::new(pool, sharded_cfg(false));
    let job = ShardedJob::timing(shape.m, shape.n, shape.k, Strategy::Auto, CORES);
    run_completed(ft, &mut eng, job, "timing run").seconds
}

/// Shape of the functional failover probe (big enough for several
/// checkpoint spans per shard, small enough for Fast mode in CI).
const PROBE: (usize, usize, usize) = (128, 32, 32);

fn probe_job() -> ShardedJob {
    let (m, n, k) = PROBE;
    ShardedJob::gemm(
        m,
        n,
        k,
        fill_matrix(m * k, 1),
        fill_matrix(k * n, 2),
        fill_matrix(m * n, 3),
        Strategy::Auto,
        CORES,
    )
}

/// Measure the failover cost; with `profile` on, also return the
/// per-cluster recordings of the killed run for Chrome-trace export.
fn failover_probe(ft: &FtImm, profile: bool) -> (FailoverCost, Vec<Vec<Profiler>>) {
    let pool = ClusterPool::new(&HwConfig::default(), ExecMode::Fast, 2);
    let mut eng = ShardedEngine::new(pool, sharded_cfg(false));
    let clean = run_completed(ft, &mut eng, probe_job(), "fault-free probe");
    let shard_fault_free_s = clean.shard_runs[0].seconds;

    let pool = ClusterPool::new(&HwConfig::default(), ExecMode::Fast, 2);
    let mut eng = ShardedEngine::new(pool, sharded_cfg(profile));
    eng.install_faults(0, &FaultPlan::new(5).kill_cluster(shard_fault_free_s * 0.5));
    let killed = run_completed(ft, &mut eng, probe_job(), "killed probe");
    assert!(
        !killed.failovers.is_empty(),
        "the probe kill must actually trigger a failover"
    );
    (
        FailoverCost {
            shard_fault_free_s,
            fault_free_s: clean.seconds,
            with_kill_s: killed.seconds,
        },
        eng.take_profilers(),
    )
}

/// Run the whole sweep: 3 regimes × 1..=4 clusters, plus the failover
/// probe.
pub fn compute() -> Report {
    let ft = FtImm::new(HwConfig::default());
    let mut rows = Vec::new();
    for (regime, (m0, n, k)) in REGIMES {
        let base = timing_seconds(&ft, &GemmShape::new(m0, n, k), 1);
        for clusters in 1..=MAX_CLUSTERS {
            let shape = GemmShape::new(m0 * clusters, n, k);
            let seconds = timing_seconds(&ft, &shape, clusters);
            rows.push(Row {
                regime,
                clusters,
                shape,
                seconds,
                efficiency: base / seconds.max(1e-12),
            });
        }
    }
    let (failover, _) = failover_probe(&ft, false);
    Report { rows, failover }
}

/// The per-cluster Chrome trace of the killed failover probe (the CI
/// artifact): one trace process per cluster, the death and the resumed
/// shard visible side by side.
pub fn failover_trace() -> String {
    let ft = FtImm::new(HwConfig::default());
    let (_, profilers) = failover_probe(&ft, true);
    let labelled: Vec<(String, Vec<&Profiler>)> = profilers
        .iter()
        .enumerate()
        .map(|(i, v)| (format!("cluster {i}"), v.iter().collect()))
        .collect();
    chrome_trace_json_clusters(&labelled)
}

/// The dual-backend Chrome trace (the `--spill` CI artifact): the lone
/// cluster is killed mid-shard under the given spill policy, the
/// checkpointed remainder resumes on the CPU lane, and the trace shows
/// both devices as separate processes — the DSP timeline ending at the
/// death, the CPU timeline carrying the spilled spans.
pub fn spill_trace(spill: SpillPolicy) -> String {
    let ft = FtImm::new(HwConfig::default());
    let pool = ClusterPool::new(&HwConfig::default(), ExecMode::Fast, 1);
    let mut eng = ShardedEngine::new(pool, sharded_cfg(false));
    let clean = run_completed(&ft, &mut eng, probe_job(), "fault-free spill probe");
    let shard_fault_free_s = clean.shard_runs[0].seconds;

    let pool = ClusterPool::new(&HwConfig::default(), ExecMode::Fast, 1);
    let cfg = ShardedConfig {
        spill,
        ..sharded_cfg(true)
    };
    let mut eng = ShardedEngine::new(pool, cfg);
    eng.install_faults(0, &FaultPlan::new(5).kill_cluster(shard_fault_free_s * 0.5));
    let killed = run_completed(&ft, &mut eng, probe_job(), "killed spill probe");
    assert!(
        !killed.failovers.is_empty(),
        "the spill probe kill must actually trigger a failover"
    );
    let profilers = eng.take_profilers();
    let cpu = eng.take_cpu_profiler();
    let mut labelled: Vec<(String, Vec<&Profiler>)> = profilers
        .iter()
        .enumerate()
        .map(|(i, v)| (format!("cluster {i}"), v.iter().collect()))
        .collect();
    labelled.push(("cpu".to_string(), vec![&cpu]));
    chrome_trace_json_clusters(&labelled)
}

/// Render the printable report.
pub fn render(report: &Report) -> String {
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.regime.to_string(),
                format!("{}", r.clusters),
                r.shape.to_string(),
                format!("{:.3e}", r.seconds),
                format!("{:.2}", r.efficiency),
            ]
        })
        .collect();
    let mut s = format_table(
        &format!("Weak scaling — sharded engine, 1..{MAX_CLUSTERS} clusters ({CORES} cores each)"),
        &["regime", "clusters", "MxNxK", "seconds", "efficiency"],
        &rows,
    );
    let f = &report.failover;
    let _ = writeln!(
        s,
        "failover probe: fault-free {:.3e}s, with kill {:.3e}s, overhead {:.3e}s \
         ({:.2}x the lost shard's {:.3e}s)",
        f.fault_free_s,
        f.with_kill_s,
        f.overhead_s(),
        f.overhead_ratio(),
        f.shard_fault_free_s
    );
    s
}

/// Serialise the report as the `BENCH_cluster.json` document.
pub fn render_json(report: &Report) -> String {
    let mut s = String::from("{\n  \"schema\": \"ftimm-bench-cluster-v1\",\n  \"rows\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"regime\": \"{}\", \"clusters\": {}, \"m\": {}, \"n\": {}, \"k\": {}, \
             \"seconds\": {:?}, \"efficiency\": {:?}}}",
            r.regime, r.clusters, r.shape.m, r.shape.n, r.shape.k, r.seconds, r.efficiency
        );
        s.push_str(if i + 1 < report.rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let f = &report.failover;
    let _ = writeln!(s, "  ],");
    let _ = writeln!(
        s,
        "  \"failover\": {{\"shard_fault_free_s\": {:?}, \"fault_free_s\": {:?}, \
         \"with_kill_s\": {:?}, \"overhead_s\": {:?}, \"overhead_ratio\": {:?}}},",
        f.shard_fault_free_s,
        f.fault_free_s,
        f.with_kill_s,
        f.overhead_s(),
        f.overhead_ratio()
    );
    let _ = writeln!(s, "  \"min_efficiency\": {:?}", report.min_efficiency());
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn cached() -> &'static Report {
        static P: OnceLock<Report> = OnceLock::new();
        P.get_or_init(compute)
    }

    #[test]
    fn sweep_covers_every_regime_and_pool_size() {
        let report = cached();
        assert_eq!(report.rows.len(), REGIMES.len() * MAX_CLUSTERS);
        for r in &report.rows {
            assert!(r.seconds > 0.0, "{} x{}", r.regime, r.clusters);
            assert!(r.efficiency.is_finite());
            if r.clusters == 1 {
                assert!(
                    (r.efficiency - 1.0).abs() < 1e-9,
                    "single-cluster efficiency is 1 by construction"
                );
            }
        }
    }

    #[test]
    fn scaling_is_imperfect_but_real() {
        // Weak scaling can't beat perfect by more than launch-overhead
        // noise, and a working sharder must not collapse either.
        for r in cached().rows.iter().filter(|r| r.clusters > 1) {
            assert!(
                r.efficiency <= 1.05,
                "{} x{}: {}",
                r.regime,
                r.clusters,
                r.efficiency
            );
            assert!(
                r.efficiency > 0.2,
                "{} x{}: {}",
                r.regime,
                r.clusters,
                r.efficiency
            );
        }
    }

    #[test]
    fn failover_overhead_is_bounded_by_twice_the_lost_shard() {
        let f = cached().failover;
        assert!(f.with_kill_s >= f.fault_free_s, "recovery cannot be free");
        assert!(
            f.overhead_ratio() <= 2.0,
            "overhead {:.2}x exceeds the 2x bound",
            f.overhead_ratio()
        );
    }

    #[test]
    fn json_document_carries_rows_and_the_failover_probe() {
        let s = render_json(cached());
        assert!(s.contains("ftimm-bench-cluster-v1"));
        assert!(s.contains("\"failover\""));
        assert!(s.contains("overhead_ratio"));
        assert!(s.contains("min_efficiency"));
        for (regime, _) in REGIMES {
            assert!(s.contains(regime));
        }
    }

    #[test]
    fn failover_trace_has_one_process_per_cluster() {
        let trace = failover_trace();
        assert!(trace.contains("\"name\":\"cluster 0\""));
        assert!(trace.contains("\"name\":\"cluster 1\""));
        assert!(trace.contains("cluster_failed"));
    }

    #[test]
    fn spill_trace_shows_both_backends() {
        let trace = spill_trace(ftimm::SpillPolicy::LastResort);
        assert!(trace.contains("\"name\":\"cluster 0\""));
        assert!(trace.contains("\"name\":\"cpu\""));
    }

    #[test]
    fn spill_flag_values_parse() {
        use ftimm::SpillPolicy::*;
        assert_eq!(parse_spill("never"), Some(Never));
        assert_eq!(parse_spill("last-resort"), Some(LastResort));
        assert_eq!(parse_spill("deadline-aware"), Some(DeadlineAware));
        assert_eq!(parse_spill("coexec"), Some(CoExecute));
        assert_eq!(parse_spill("sometimes"), None);
    }
}
