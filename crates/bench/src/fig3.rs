//! Fig. 3 — auto-generated micro-kernel efficiency.
//!
//! Six panels: K = 512 (a–c) and K = 32 (d–f), each with N ∈ {96, 64, 32},
//! sweeping the kernel height M.  The y-axis is efficiency against the
//! core's 345.6 GFLOPS peak; the paper reports bests of 98.2 / 96.4 /
//! 63.0 % (K = 512) and 77.4 / 65.4 / 46.6 % (K = 32).

use crate::common::format_table;
use dspsim::HwConfig;
use kernelgen::{upper_bound_efficiency, KernelCache, KernelSpec};

/// One measured kernel point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Kernel height (m_s).
    pub m: usize,
    /// Depth.
    pub k: usize,
    /// Width.
    pub n: usize,
    /// Efficiency on useful flops vs core peak.
    pub efficiency: f64,
    /// §IV-A3 theoretical upper bound for this width.
    pub upper_bound: f64,
}

/// One panel: fixed (K, N), swept M.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Panel label as in the paper (`(a)`…`(f)`).
    pub label: &'static str,
    /// Depth.
    pub k: usize,
    /// Width.
    pub n: usize,
    /// Measured points.
    pub points: Vec<Point>,
}

/// The M sweep (bounded by SM/register constraints as in the paper).
pub const M_SWEEP: [usize; 13] = [2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14];

/// Compute all six panels.
pub fn compute() -> Vec<Panel> {
    let cfg = HwConfig::default();
    let cache = KernelCache::new(cfg.clone());
    let panel = |label, k, n| {
        let points = M_SWEEP
            .iter()
            .map(|&m| {
                let kernel = cache
                    .get(KernelSpec::new(m, k, n).expect("valid spec"))
                    .expect("kernel generates");
                Point {
                    m,
                    k,
                    n,
                    efficiency: kernel.efficiency(&cfg),
                    upper_bound: upper_bound_efficiency(n),
                }
            })
            .collect();
        Panel {
            label,
            k,
            n,
            points,
        }
    };
    vec![
        panel("(a)", 512, 96),
        panel("(b)", 512, 64),
        panel("(c)", 512, 32),
        panel("(d)", 32, 96),
        panel("(e)", 32, 64),
        panel("(f)", 32, 32),
    ]
}

/// Render all panels as text tables.
pub fn render(panels: &[Panel]) -> String {
    let mut out = String::from("Fig. 3 — Micro-kernel efficiency (vs 345.6 GFLOPS core peak)\n\n");
    for p in panels {
        let rows: Vec<Vec<String>> = p
            .points
            .iter()
            .map(|pt| {
                vec![
                    pt.m.to_string(),
                    format!("{:.1}%", 100.0 * pt.efficiency),
                    format!("{:.1}%", 100.0 * pt.upper_bound),
                ]
            })
            .collect();
        out.push_str(&format_table(
            &format!("{} K={}, N={}", p.label, p.k, p.n),
            &["M", "efficiency", "upper bound"],
            &rows,
        ));
        let best = p
            .points
            .iter()
            .map(|pt| pt.efficiency)
            .fold(0.0f64, f64::max);
        out.push_str(&format!("best: {:.1}%\n\n", 100.0 * best));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// Tests share one computation of the figure.
    fn cached() -> &'static [Panel] {
        static P: OnceLock<Vec<Panel>> = OnceLock::new();
        P.get_or_init(compute)
    }

    fn best(panels: &[Panel], k: usize, n: usize) -> f64 {
        panels
            .iter()
            .find(|p| p.k == k && p.n == n)
            .unwrap()
            .points
            .iter()
            .map(|pt| pt.efficiency)
            .fold(0.0, f64::max)
    }

    #[test]
    fn efficiency_bands_match_paper() {
        let panels = cached();
        // K = 512: paper reports 98.2 / 96.4 / 63.0 %.
        assert!(best(panels, 512, 96) > 0.90);
        assert!(best(panels, 512, 64) > 0.88);
        let b32 = best(panels, 512, 32);
        assert!(b32 > 0.55 && b32 <= 2.0 / 3.0 + 1e-9, "{b32}");
        // K = 32: paper reports 77.4 / 65.4 / 46.6 % — ordering holds and
        // every band sits clearly below its K = 512 counterpart.
        let (s96, s64, s32) = (
            best(panels, 32, 96),
            best(panels, 32, 64),
            best(panels, 32, 32),
        );
        assert!(s96 < best(panels, 512, 96) && s96 > 0.55);
        assert!(s64 < best(panels, 512, 64));
        assert!(s32 < b32);
        assert!(s96 > s64 && s64 > s32, "{s96} {s64} {s32}");
    }

    #[test]
    fn no_point_exceeds_its_upper_bound() {
        for p in cached() {
            for pt in &p.points {
                assert!(
                    pt.efficiency <= pt.upper_bound + 1e-9,
                    "M={} N={} K={}: {} > {}",
                    pt.m,
                    pt.n,
                    pt.k,
                    pt.efficiency,
                    pt.upper_bound
                );
            }
        }
    }

    #[test]
    fn mod3_dips_appear_for_n64() {
        // Fig 3(b): M = 8, 10 underperform M = 6, 12 (pipelines not filled
        // when the FMAC slots don't divide by 3).
        let panels = cached();
        let p = panels.iter().find(|p| p.k == 512 && p.n == 64).unwrap();
        let eff = |m: usize| p.points.iter().find(|pt| pt.m == m).unwrap().efficiency;
        assert!(eff(6) > eff(8), "{} vs {}", eff(6), eff(8));
        assert!(eff(12) > eff(10), "{} vs {}", eff(12), eff(10));
    }

    #[test]
    fn render_contains_all_panels() {
        let panels = cached();
        let s = render(panels);
        for label in ["(a)", "(b)", "(c)", "(d)", "(e)", "(f)"] {
            assert!(s.contains(label));
        }
        assert!(s.contains("upper bound"));
    }
}
