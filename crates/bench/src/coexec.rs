//! Co-execution report: the Fig. 7 CPU/DSP crossover as a live planner
//! decision, on the Table I–III regimes.
//!
//! Each regime is costed and run against two host comparators — the
//! default `cpublas` model (a host an order of magnitude below the
//! cluster) and a fast host well past the crossover — so the sweep
//! exhibits all three planner picks: DSP-only, a genuine mixed
//! co-execution split, and CPU-only.  Per row the report carries the
//! three predicted makespans from [`ftimm::choose_coexec_split`] (both
//! backend cost models), the chosen M-tail fraction, and two *simulated*
//! makespans from real [`ftimm::ShardedEngine`] runs: one under
//! [`ftimm::SpillPolicy::Never`] (DSP-only baseline) and one under
//! [`ftimm::SpillPolicy::CoExecute`] (the planned split actually
//! dispatched, CPU lane as a peer from t = 0).
//!
//! The CI gate (`--assert-coexec-no-regression`) bounds the planner's
//! core promise: the chosen split is never predicted slower than the
//! best single backend — both degenerate candidates are always in the
//! search grid, so any regression means the chooser itself broke.

use crate::cluster::{CORES, MAX_CLUSTERS, REGIMES};
use crate::common::format_table;
use cpublas::CpuConfig;
use dspsim::{ExecMode, HwConfig};
use ftimm::{
    ClusterPool, EngineConfig, FtImm, GemmShape, ResilienceConfig, ShardedConfig, ShardedEngine,
    ShardedJob, ShardedOutcome, ShardedReport, SpillPolicy, Strategy, TenantSpec,
};
use std::fmt::Write as _;

/// Checkpoint grain shared by the chooser and both engine runs (the
/// split grid and the shard-boundary grid must be the same thing).
const GRAIN: usize = 64;

/// Which side of the crossover the planner landed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pick {
    /// `cpu_rows == 0`: the clusters keep everything.
    DspOnly,
    /// `0 < cpu_rows < m`: a genuine mixed split.
    CoExec,
    /// `cpu_rows == m`: the host takes the whole GEMM.
    CpuOnly,
}

impl Pick {
    /// Stable label used in the table and JSON document.
    pub fn label(self) -> &'static str {
        match self {
            Pick::DspOnly => "dsp-only",
            Pick::CoExec => "co-exec",
            Pick::CpuOnly => "cpu-only",
        }
    }
}

/// One (regime, host comparator) measurement.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Regime label (`table1-type1`, …).
    pub regime: &'static str,
    /// Host comparator label (`default-host` / `fast-host`).
    pub host: &'static str,
    /// The shape run.
    pub shape: GemmShape,
    /// Rows of the M tail the planner gave the CPU lane.
    pub cpu_rows: usize,
    /// Predicted makespan of the chosen split.
    pub predicted_s: f64,
    /// Predicted makespan of the best all-DSP plan.
    pub dsp_only_s: f64,
    /// Predicted makespan of the whole GEMM on the host.
    pub cpu_only_s: f64,
    /// Simulated makespan of a real engine run under `Never`.
    pub sim_dsp_only_s: f64,
    /// Simulated makespan of a real engine run under `CoExecute`.
    pub sim_coexec_s: f64,
}

impl Row {
    /// The planner's pick for this row.
    pub fn pick(&self) -> Pick {
        if self.cpu_rows == 0 {
            Pick::DspOnly
        } else if self.cpu_rows == self.shape.m {
            Pick::CpuOnly
        } else {
            Pick::CoExec
        }
    }

    /// Fraction of M placed on the CPU lane.
    pub fn split_frac(&self) -> f64 {
        self.cpu_rows as f64 / self.shape.m as f64
    }

    /// How much slower than the best single backend the chosen split is
    /// *predicted* to be (≤ 0 means it never regresses — the gate).
    pub fn regression(&self) -> f64 {
        self.predicted_s / self.dsp_only_s.min(self.cpu_only_s).max(1e-12) - 1.0
    }
}

/// The whole report.
#[derive(Debug, Clone)]
pub struct Report {
    /// One row per (regime, host comparator).
    pub rows: Vec<Row>,
}

impl Report {
    /// Worst predicted regression vs the best single backend across the
    /// sweep — the quantity the CI gate bounds at ~0.
    pub fn max_regression(&self) -> f64 {
        self.rows.iter().map(Row::regression).fold(0.0, f64::max)
    }

    /// Whether every planner pick shows up somewhere in the sweep (the
    /// crossover demonstrably has both sides plus the interior).
    pub fn covers_all_picks(&self) -> bool {
        [Pick::DspOnly, Pick::CoExec, Pick::CpuOnly]
            .iter()
            .all(|&p| self.rows.iter().any(|r| r.pick() == p))
    }
}

/// The two host comparators: the default model sits below the Fig. 7
/// crossover on the Table regimes, the fast host well past it.
pub fn hosts() -> [(&'static str, CpuConfig); 2] {
    [
        ("default-host", CpuConfig::default()),
        (
            "fast-host",
            CpuConfig {
                clock_hz: 2.2e12,
                ddr_bw: 42.6e12,
                barrier_s: 8e-9,
                ..CpuConfig::default()
            },
        ),
    ]
}

fn cfg(spill: SpillPolicy, cpu: CpuConfig) -> ShardedConfig {
    ShardedConfig {
        engine: EngineConfig {
            resilience: ResilienceConfig {
                ckpt_rows: GRAIN,
                ..ResilienceConfig::default()
            },
            ..EngineConfig::default()
        },
        spill,
        cpu,
        ..ShardedConfig::default()
    }
}

fn run_completed(ft: &FtImm, eng: &mut ShardedEngine, shape: &GemmShape) -> Box<ShardedReport> {
    let t = eng.register_tenant(TenantSpec::new("bench", 5));
    eng.submit(
        t,
        ShardedJob::timing(shape.m, shape.n, shape.k, Strategy::Auto, CORES),
    );
    let mut records = eng.run_all(ft);
    assert_eq!(records.len(), 1);
    match records.remove(0).outcome {
        ShardedOutcome::Completed { report, .. } => report,
        other => panic!("{shape}: expected completion, got {}", other.label()),
    }
}

fn measure(
    ft: &FtImm,
    regime: &'static str,
    host: &'static str,
    cpu: CpuConfig,
    shape: GemmShape,
) -> Row {
    let choice = ftimm::choose_coexec_split(
        ft,
        &shape,
        Strategy::Auto,
        CORES,
        MAX_CLUSTERS,
        GRAIN,
        &cpu,
        1.0,
    );

    // Simulated DSP-only baseline: the same pool with the lane off.
    let pool = ClusterPool::new(&HwConfig::default(), ExecMode::Timing, MAX_CLUSTERS);
    let mut eng = ShardedEngine::new(pool, cfg(SpillPolicy::Never, cpu));
    let dsp_run = run_completed(ft, &mut eng, &shape);

    // Simulated co-execution: the planner's split actually dispatched.
    let pool = ClusterPool::new(&HwConfig::default(), ExecMode::Timing, MAX_CLUSTERS);
    let mut eng = ShardedEngine::new(pool, cfg(SpillPolicy::CoExecute, cpu));
    let co_run = run_completed(ft, &mut eng, &shape);
    if choice.cpu_rows > 0 {
        assert!(
            eng.cpu_dispatches() > 0,
            "{shape}: planner placed a CPU tail but the lane never ran"
        );
    }

    Row {
        regime,
        host,
        shape,
        cpu_rows: choice.cpu_rows,
        predicted_s: choice.predicted_s,
        dsp_only_s: choice.dsp_only_s,
        cpu_only_s: choice.cpu_only_s,
        sim_dsp_only_s: dsp_run.seconds,
        sim_coexec_s: co_run.seconds,
    }
}

/// Run the sweep: Table I–III regimes × host comparators.
pub fn compute() -> Report {
    let ft = FtImm::new(HwConfig::default());
    let mut rows = Vec::new();
    for (host, cpu) in hosts() {
        for &(regime, (m, n, k)) in REGIMES.iter() {
            rows.push(measure(&ft, regime, host, cpu, GemmShape::new(m, n, k)));
        }
    }
    Report { rows }
}

/// Render the printable report.
pub fn render(report: &Report) -> String {
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.regime.to_string(),
                r.host.to_string(),
                r.shape.to_string(),
                r.pick().label().to_string(),
                format!("{:.3}", r.split_frac()),
                format!("{:.3e}", r.predicted_s),
                format!("{:.3e}", r.dsp_only_s),
                format!("{:.3e}", r.cpu_only_s),
                format!("{:.3e}", r.sim_dsp_only_s),
                format!("{:.3e}", r.sim_coexec_s),
            ]
        })
        .collect();
    let mut s = format_table(
        "Co-execution — the Fig. 7 crossover as a planner decision (CPU lane as a peer)",
        &[
            "regime",
            "host",
            "MxNxK",
            "pick",
            "cpu frac",
            "predicted",
            "dsp-only",
            "cpu-only",
            "sim dsp",
            "sim coexec",
        ],
        &rows,
    );
    let _ = writeln!(
        s,
        "max predicted regression vs best single backend: {:+.2e} (gate: <= 0)",
        report.max_regression()
    );
    s
}

/// Serialise the report as the `BENCH_coexec.json` document.
pub fn render_json(report: &Report) -> String {
    let mut s = String::from("{\n  \"schema\": \"ftimm-bench-coexec-v1\",\n  \"rows\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"regime\": \"{}\", \"host\": \"{}\", \"m\": {}, \"n\": {}, \"k\": {}, \
             \"pick\": \"{}\", \"cpu_rows\": {}, \"split_frac\": {:?}, \
             \"predicted_s\": {:?}, \"dsp_only_s\": {:?}, \"cpu_only_s\": {:?}, \
             \"sim_dsp_only_s\": {:?}, \"sim_coexec_s\": {:?}}}",
            r.regime,
            r.host,
            r.shape.m,
            r.shape.n,
            r.shape.k,
            r.pick().label(),
            r.cpu_rows,
            r.split_frac(),
            r.predicted_s,
            r.dsp_only_s,
            r.cpu_only_s,
            r.sim_dsp_only_s,
            r.sim_coexec_s,
        );
        s.push_str(if i + 1 < report.rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"max_regression\": {:?},", report.max_regression());
    let _ = writeln!(s, "  \"covers_all_picks\": {}", report.covers_all_picks());
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn cached() -> &'static Report {
        static P: OnceLock<Report> = OnceLock::new();
        P.get_or_init(compute)
    }

    #[test]
    fn sweep_covers_every_planner_pick() {
        let report = cached();
        assert_eq!(report.rows.len(), REGIMES.len() * hosts().len());
        assert!(
            report.covers_all_picks(),
            "picks: {:?}",
            report
                .rows
                .iter()
                .map(|r| (r.regime, r.host, r.pick().label()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn chosen_split_never_predicted_slower_than_best_single_backend() {
        // Both degenerate candidates are always searched, so the gate
        // quantity is exactly zero unless the chooser regresses.
        let report = cached();
        assert!(
            report.max_regression() <= 0.0,
            "max regression {:+.2e}",
            report.max_regression()
        );
    }

    #[test]
    fn mixed_splits_sit_on_the_grid_and_beat_the_dsp_baseline() {
        for r in &cached().rows {
            if r.pick() == Pick::CoExec {
                assert_eq!((r.shape.m - r.cpu_rows) % GRAIN, 0, "{}", r.regime);
                assert!(
                    r.sim_coexec_s < r.sim_dsp_only_s,
                    "{} {}: co-exec simulated {} vs dsp-only {}",
                    r.regime,
                    r.host,
                    r.sim_coexec_s,
                    r.sim_dsp_only_s
                );
            }
        }
    }

    #[test]
    fn json_document_carries_rows_and_the_gate_quantity() {
        let s = render_json(cached());
        assert!(s.contains("ftimm-bench-coexec-v1"));
        assert!(s.contains("max_regression"));
        assert!(s.contains("\"covers_all_picks\": true"));
        for (regime, _) in REGIMES {
            assert!(s.contains(regime));
        }
        for pick in ["dsp-only", "co-exec", "cpu-only"] {
            assert!(s.contains(pick), "missing pick {pick}");
        }
    }
}
