//! Tuner report: what the autotuner buys over the planner's analytic
//! pick on the paper's representative shapes, how much the fitted
//! calibration improves analytic-vs-simulated ranking agreement per
//! regime, and proof that a catalog warm start plans every shape with
//! zero timing simulations.
//!
//! Not a paper figure — `BENCH_tune.json` is emitted by the `tune`
//! binary and archived by CI with two gates: tuned plans are never
//! predicted slower than the analytic pick (`--assert-no-regression`),
//! and a fresh context loading the emitted `ftimm-plan-catalog-v1`
//! serves all shapes simulation-free (`--assert-warm-zero-sims`).

use crate::common::format_table;
use crate::planner::SHAPES;
use dspsim::{ExecMode, HwConfig, Machine};
use ftimm::{
    ranking_agreement, ChosenStrategy, FtImm, GemmShape, Plan, RegimeAgreement, Strategy,
    TuneConfig,
};
use std::fmt::Write as _;
use std::path::Path;

/// One tuned shape.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Shape tuned.
    pub shape: GemmShape,
    /// The untuned `Strategy::Auto` pick the search started from.
    pub default_plan: Plan,
    /// The tuned plan (what the catalog persists).
    pub tuned_plan: Plan,
    /// Whether the search adopted a bit-safe variant over the default.
    pub adopted: bool,
    /// Bit-safe variants considered beyond the planner's candidates.
    pub variants: u32,
    /// Total timing simulations the tune ran.
    pub simulations: u32,
}

impl Row {
    /// Predicted tuned-over-default speedup on the timing model
    /// (`>= 1.0` by construction).
    pub fn speedup(&self) -> f64 {
        self.default_plan.simulated_s / self.tuned_plan.simulated_s.max(1e-30)
    }
}

/// The whole report.
#[derive(Debug, Clone)]
pub struct Report {
    /// One row per paper shape.
    pub rows: Vec<Row>,
    /// Per-regime analytic-vs-simulated ranking agreement, raw and with
    /// the fitted calibration applied.
    pub agreement: Vec<RegimeAgreement>,
    /// Host seconds spent tuning, from the profiler's `tune` track.
    pub tuning_s: f64,
    /// Calibration records the tuning session produced.
    pub records: usize,
    /// Timing simulations the catalog warm-start context ran while
    /// re-planning every shape (the zero-sims gate).
    pub warm_simulations: u64,
    /// Catalog hits the warm-start context served.
    pub warm_catalog_hits: u64,
}

impl Report {
    /// Worst tuned-vs-default simulated-seconds regression across rows:
    /// positive means some tuned plan is predicted *slower* than its
    /// default (must never happen; the CI gate asserts on it).
    pub fn max_regression_s(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.tuned_plan.simulated_s - r.default_plan.simulated_s)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Tune every report shape on one context, persist the catalog at
/// `catalog_path`, then warm-start a fresh context from it and replan
/// everything to measure the zero-simulation claim.
pub fn compute(catalog_path: &Path) -> Report {
    let ft = FtImm::new(HwConfig::default());
    let mut machine = Machine::with_mode(ExecMode::Fast);
    machine.profile_begin(64);
    let rows: Vec<Row> = SHAPES
        .iter()
        .map(|&(m, n, k)| {
            let shape = GemmShape::new(m, n, k);
            let o = ft.tune_on(&mut machine, &shape, 8, &TuneConfig::default());
            Row {
                shape,
                default_plan: o.default_plan,
                tuned_plan: o.plan,
                adopted: o.adopted_variant,
                variants: o.variants,
                simulations: o.simulations,
            }
        })
        .collect();
    let tuning_s = machine.profile_end().aggregate().tuning_s();

    let records = ft.calibration_records();
    let agreement = ranking_agreement(&records, &ft.calibration());
    ft.save_plan_catalog(catalog_path)
        .unwrap_or_else(|e| panic!("saving catalog: {e}"));

    let warm = FtImm::with_plan_catalog(HwConfig::default(), catalog_path)
        .unwrap_or_else(|e| panic!("loading catalog: {e}"));
    for row in &rows {
        let plan = warm.plan_full(&row.shape, Strategy::Auto, 8);
        assert_eq!(
            plan, row.tuned_plan,
            "{}: catalog round-trip changed the plan",
            row.shape
        );
    }
    Report {
        rows,
        agreement,
        tuning_s,
        records: records.len(),
        warm_simulations: warm.timing_simulations(),
        warm_catalog_hits: warm.tuning_stats().catalog_hits,
    }
}

fn strategy_tag(s: &ChosenStrategy) -> &'static str {
    match s {
        ChosenStrategy::MPar(_) => "M-par",
        ChosenStrategy::KPar(_) => "K-par",
        ChosenStrategy::TGemm => "TGEMM",
    }
}

/// Render the printable report tables.
pub fn render(report: &Report) -> String {
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.shape.to_string(),
                strategy_tag(&r.tuned_plan.strategy).to_string(),
                format!("{:.3e}", r.default_plan.simulated_s),
                format!("{:.3e}", r.tuned_plan.simulated_s),
                format!("{:.3}x", r.speedup()),
                if r.adopted { "yes" } else { "no" }.to_string(),
                format!("{}", r.variants),
                format!("{}", r.simulations),
            ]
        })
        .collect();
    let mut s = format_table(
        "Tuner — default vs tuned simulated seconds per paper shape (8 cores)",
        &[
            "MxNxK",
            "plan",
            "default_s",
            "tuned_s",
            "speedup",
            "adopted",
            "variants",
            "sims",
        ],
        &rows,
    );
    let agreement: Vec<Vec<String>> = report
        .agreement
        .iter()
        .filter(|a| a.records > 0)
        .map(|a| {
            vec![
                format!("{:?}", a.regime),
                format!("{}", a.records),
                format!("{}", a.pairs),
                format!("{:.2}", a.raw_fraction()),
                format!("{:.2}", a.corrected_fraction()),
            ]
        })
        .collect();
    s.push('\n');
    s.push_str(&format_table(
        "Calibration — analytic-vs-simulated ranking agreement per regime",
        &["regime", "records", "pairs", "raw", "corrected"],
        &agreement,
    ));
    let _ = writeln!(
        s,
        "\ntuning took {:.1}ms host time ({} records); warm start: {} simulations, {} catalog hits",
        report.tuning_s * 1e3,
        report.records,
        report.warm_simulations,
        report.warm_catalog_hits
    );
    s
}

/// Serialise the report as the `BENCH_tune.json` document.
pub fn render_json(report: &Report) -> String {
    let mut s = String::from("{\n  \"schema\": \"ftimm-bench-tune-v1\",\n  \"rows\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"m\": {}, \"n\": {}, \"k\": {}, \"plan\": \"{}\", \"origin\": \"{}\", \
             \"default_simulated_s\": {:?}, \"tuned_simulated_s\": {:?}, \"speedup\": {:?}, \
             \"adopted\": {}, \"variants\": {}, \"simulations\": {}}}",
            r.shape.m,
            r.shape.n,
            r.shape.k,
            strategy_tag(&r.tuned_plan.strategy),
            r.tuned_plan.origin.tag(),
            r.default_plan.simulated_s,
            r.tuned_plan.simulated_s,
            r.speedup(),
            r.adopted,
            r.variants,
            r.simulations
        );
        s.push_str(if i + 1 < report.rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ],\n  \"agreement\": [\n");
    let reported: Vec<&RegimeAgreement> =
        report.agreement.iter().filter(|a| a.records > 0).collect();
    for (i, a) in reported.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"regime\": \"{:?}\", \"records\": {}, \"pairs\": {}, \"raw\": {:?}, \
             \"corrected\": {:?}}}",
            a.regime,
            a.records,
            a.pairs,
            a.raw_fraction(),
            a.corrected_fraction()
        );
        s.push_str(if i + 1 < reported.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"tuning_s\": {:?},", report.tuning_s);
    let _ = writeln!(s, "  \"records\": {},", report.records);
    let _ = writeln!(
        s,
        "  \"max_regression_s\": {:?},",
        report.max_regression_s()
    );
    let _ = writeln!(s, "  \"warm_simulations\": {},", report.warm_simulations);
    let _ = writeln!(s, "  \"warm_catalog_hits\": {}", report.warm_catalog_hits);
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn cached() -> &'static (Report, std::path::PathBuf) {
        static P: OnceLock<(Report, std::path::PathBuf)> = OnceLock::new();
        P.get_or_init(|| {
            let path = std::env::temp_dir()
                .join(format!("ftimm-bench-tune-test-{}.json", std::process::id()));
            (compute(&path), path)
        })
    }

    #[test]
    fn tuned_plans_are_never_predicted_slower() {
        let (report, _) = cached();
        assert!(
            report.max_regression_s() <= 0.0,
            "max regression {}s",
            report.max_regression_s()
        );
        for r in &report.rows {
            assert!(r.tuned_plan.simulated_s.is_finite(), "{}", r.shape);
            assert_eq!(r.tuned_plan.origin, ftimm::PlanOrigin::Tuned);
        }
    }

    #[test]
    fn warm_start_does_zero_simulations() {
        let (report, _) = cached();
        assert_eq!(report.warm_simulations, 0);
        assert_eq!(report.warm_catalog_hits, report.rows.len() as u64);
    }

    #[test]
    fn tune_phase_was_profiled_and_records_flowed() {
        let (report, _) = cached();
        assert!(report.tuning_s > 0.0);
        assert!(report.records > 0);
        assert!(report.agreement.iter().any(|a| a.records > 0));
    }

    #[test]
    fn emitted_catalog_parses_cleanly() {
        let (_, path) = cached();
        let load = ftimm::load_catalog(path).unwrap();
        assert_eq!(load.quarantined, 0);
        assert_eq!(load.catalog.entries.len(), SHAPES.len());
        assert!(!load.catalog.records.is_empty());
    }

    #[test]
    fn json_document_carries_rows_gates_and_agreement() {
        let (report, _) = cached();
        let s = render_json(report);
        assert!(s.contains("ftimm-bench-tune-v1"));
        for r in &report.rows {
            assert!(s.contains(&format!("\"m\": {}", r.shape.m)));
        }
        for key in [
            "max_regression_s",
            "warm_simulations",
            "agreement",
            "corrected",
        ] {
            assert!(s.contains(key), "missing {key}");
        }
    }
}
