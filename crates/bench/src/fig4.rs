//! Fig. 4 — single-core performance of ftIMM vs TGEMM on the three
//! irregular GEMM types (paper highlights: up to 2.0× at
//! 20480×32×20480; the N = 80 point dips below N = 64 in panels (b)/(c)
//! because of padded lanes and smaller blocks).

use crate::common::{format_table, Harness, N_SWEEP};
use ftimm::{GemmShape, Strategy};

/// One measured comparison point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Problem shape.
    pub shape: GemmShape,
    /// ftIMM GFLOPS (1 core).
    pub ftimm: f64,
    /// TGEMM GFLOPS (1 core).
    pub tgemm: f64,
}

impl Point {
    /// ftIMM speedup over TGEMM.
    pub fn speedup(&self) -> f64 {
        self.ftimm / self.tgemm
    }
}

/// One panel of Fig 4.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Label.
    pub label: &'static str,
    /// Points.
    pub points: Vec<Point>,
}

/// Compute the three panels (single core).
pub fn compute() -> Vec<Panel> {
    let h = Harness::new();
    let point = |m, n, k| {
        let shape = GemmShape::new(m, n, k);
        Point {
            shape,
            ftimm: h.gflops(&shape, Strategy::Auto, 1),
            tgemm: h.tgemm_gflops(&shape, 1),
        }
    };
    vec![
        Panel {
            label: "(a) tall-skinny × small: M=65536, N=K swept",
            points: N_SWEEP.iter().map(|&n| point(65536, n, n)).collect(),
        },
        Panel {
            label: "(b) skinny-tall × tall-skinny: K=65536, M=N swept",
            points: N_SWEEP.iter().map(|&n| point(n, n, 65536)).collect(),
        },
        Panel {
            label: "(c) regular × tall-skinny: M=K=20480, N swept",
            points: N_SWEEP.iter().map(|&n| point(20480, n, 20480)).collect(),
        },
    ]
}

/// Render the panels.
pub fn render(panels: &[Panel]) -> String {
    let mut out = String::from("Fig. 4 — Single-core ftIMM vs TGEMM (GFLOPS)\n\n");
    for p in panels {
        let rows: Vec<Vec<String>> = p
            .points
            .iter()
            .map(|pt| {
                vec![
                    pt.shape.to_string(),
                    format!("{:.1}", pt.ftimm),
                    format!("{:.1}", pt.tgemm),
                    format!("{:.2}x", pt.speedup()),
                ]
            })
            .collect();
        out.push_str(&format_table(
            p.label,
            &["MxNxK", "ftIMM", "TGEMM", "speedup"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn cached() -> &'static [Panel] {
        static P: OnceLock<Vec<Panel>> = OnceLock::new();
        P.get_or_init(compute)
    }

    #[test]
    fn ftimm_wins_every_single_core_point() {
        for p in cached() {
            for pt in &p.points {
                assert!(
                    pt.speedup() > 1.0,
                    "{}: ftIMM {} vs TGEMM {}",
                    pt.shape,
                    pt.ftimm,
                    pt.tgemm
                );
            }
        }
    }

    #[test]
    fn headline_speedup_reproduces() {
        // Paper: 2.0× at 20480×32×20480 on one core.
        let h = Harness::new();
        let shape = GemmShape::new(20480, 32, 20480);
        let s = h.gflops(&shape, Strategy::Auto, 1) / h.tgemm_gflops(&shape, 1);
        assert!(s > 1.5 && s < 4.0, "speedup {s}");
    }

    #[test]
    fn n80_dips_below_n64_for_type3() {
        // Paper Fig 4(b)/(c): the padded-lane N = 80 point underperforms
        // N = 64 for ftIMM.
        let panels = cached();
        let p = &panels[2];
        let gf = |n: usize| {
            p.points.iter().find(|pt| pt.shape.n == n).unwrap().ftimm / n as f64
            // per-column rate isolates the lane waste
        };
        assert!(gf(64) > gf(80), "{} vs {}", gf(64), gf(80));
    }

    #[test]
    fn benefit_grows_as_n_shrinks() {
        // "The improvement is especially obvious for much lower N."
        let panels = cached();
        for p in panels {
            let first = p.points.first().unwrap().speedup();
            let last = p.points.last().unwrap().speedup();
            assert!(
                first > last,
                "{}: speedup at N=16 ({first}) should exceed N=96 ({last})",
                p.label
            );
        }
    }

    #[test]
    fn render_mentions_all_shapes() {
        let panels = cached();
        let s = render(panels);
        assert!(s.contains("20480x96x20480"));
        assert!(s.contains("speedup"));
    }
}
