//! Regenerates every table and figure of the paper's evaluation in one go.
//! Run: `cargo run --release -p ftimm-bench --bin paper`
fn main() {
    println!("=== ftIMM reproduction: all tables and figures ===\n");
    print!(
        "{}",
        ftimm_bench::tables::render(&ftimm_bench::tables::compute())
    );
    print!(
        "{}",
        ftimm_bench::fig3::render(&ftimm_bench::fig3::compute())
    );
    print!(
        "{}",
        ftimm_bench::fig4::render(&ftimm_bench::fig4::compute())
    );
    print!(
        "{}",
        ftimm_bench::fig5::render(&ftimm_bench::fig5::compute())
    );
    print!(
        "{}",
        ftimm_bench::fig6::render(&ftimm_bench::fig6::compute())
    );
    print!(
        "{}",
        ftimm_bench::fig7::render(&ftimm_bench::fig7::compute())
    );
    print!(
        "{}",
        ftimm_bench::ablation::render(&ftimm_bench::ablation::compute())
    );
}
