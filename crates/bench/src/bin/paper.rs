//! Regenerates every table and figure of the paper's evaluation in one go.
//! Run: `cargo run --release -p bench --bin paper`
fn main() {
    println!("=== ftIMM reproduction: all tables and figures ===\n");
    print!("{}", bench::tables::render(&bench::tables::compute()));
    print!("{}", bench::fig3::render(&bench::fig3::compute()));
    print!("{}", bench::fig4::render(&bench::fig4::compute()));
    print!("{}", bench::fig5::render(&bench::fig5::compute()));
    print!("{}", bench::fig6::render(&bench::fig6::compute()));
    print!("{}", bench::fig7::render(&bench::fig7::compute()));
    print!("{}", bench::ablation::render(&bench::ablation::compute()));
}
