//! Ablation study: contribution of each ftIMM mechanism.
//! Run: `cargo run --release -p ftimm-bench --bin ablation`
fn main() {
    print!(
        "{}",
        ftimm_bench::ablation::render(&ftimm_bench::ablation::compute())
    );
}
