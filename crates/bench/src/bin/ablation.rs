//! Ablation study: contribution of each ftIMM mechanism.
//! Run: `cargo run --release -p bench --bin ablation`
fn main() {
    print!("{}", bench::ablation::render(&bench::ablation::compute()));
}
