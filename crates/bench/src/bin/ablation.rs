//! Ablation study: contribution of each ftIMM mechanism.
//! Run: `cargo run --release -p bench --bin ablation`
fn main() {
    print!("{}", bench::ablation::render(&bench::ablation::compute()));
    println!();
    print!(
        "{}",
        bench::ablation::render_plan_cache(&bench::ablation::compute_plan_cache(8))
    );
}
