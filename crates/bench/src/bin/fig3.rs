//! Regenerates Fig. 3 of the paper. Run: `cargo run --release -p ftimm-bench --bin fig3`
fn main() {
    let data = ftimm_bench::fig3::compute();
    print!("{}", ftimm_bench::fig3::render(&data));
}
