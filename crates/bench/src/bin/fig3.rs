//! Regenerates Fig. 3 of the paper. Run: `cargo run --release -p bench --bin fig3`
fn main() {
    let data = bench::fig3::compute();
    print!("{}", bench::fig3::render(&data));
}
