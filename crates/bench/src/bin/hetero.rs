//! Heterogeneous failover report: CPU-spill cost on the Table I–III
//! regimes and the model cross-check gate.
//!
//! Usage:
//! `cargo run --release -p bench --bin hetero -- [options]`
//!
//! Options:
//! * `--out FILE` — write the `BENCH_hetero.json` document
//! * `--assert-cpu-model X` — exit nonzero unless the measured CPU-lane
//!   time stays within `X` (fraction) of the independent `cpublas`
//!   model prediction on every regime (CI gate; the design target is
//!   0.3, i.e. ±30%)

fn main() {
    let mut out: Option<String> = None;
    let mut assert_model: Option<f64> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--out needs a path")),
                )
            }
            "--assert-cpu-model" => {
                assert_model = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--assert-cpu-model needs a number")),
                )
            }
            other => die(&format!("unrecognised argument `{other}`")),
        }
    }

    let report = bench::hetero::compute();
    print!("{}", bench::hetero::render(&report));

    if let Some(path) = &out {
        std::fs::write(path, bench::hetero::render_json(&report))
            .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("report written to {path}");
    }

    if let Some(max) = assert_model {
        let got = report.max_model_error();
        if got > max {
            eprintln!(
                "cpu-model check FAILED: lane time drifts {:.1}% from the cpublas \
                 prediction > allowed {:.1}%",
                100.0 * got,
                100.0 * max
            );
            std::process::exit(1);
        }
        println!(
            "cpu-model check OK: {:.1}% <= {:.1}%",
            100.0 * got,
            100.0 * max
        );
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: hetero [--out FILE] [--assert-cpu-model X]");
    std::process::exit(2);
}
