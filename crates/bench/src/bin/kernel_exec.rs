//! Kernel-execution tier report: compiled SIMD lowering vs scalar
//! mirror on the paper's Table I–III micro-kernel regimes.
//!
//! Usage:
//! `cargo run --release -p bench --bin kernel_exec -- [options]`
//!
//! Options:
//! * `--out FILE` — write the `BENCH_kernel_exec.json` document
//! * `--iters N` — fixed batch size per measurement (default: adaptive)
//! * `--assert-speedup X` — exit nonzero unless the smallest
//!   compiled/fast speedup reaches `X` (CI gate).  Enforced only when
//!   the compiled tier actually lowered to SIMD; on scalar-fallback
//!   hosts the gate prints a warning and passes, because both tiers run
//!   the same code there.

fn main() {
    let mut out: Option<String> = None;
    let mut iters = 0usize;
    let mut assert_speedup: Option<f64> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--out needs a path")),
                )
            }
            "--iters" => {
                iters = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--iters needs a number"))
            }
            "--assert-speedup" => {
                assert_speedup = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--assert-speedup needs a number")),
                )
            }
            other => die(&format!("unrecognised argument `{other}`")),
        }
    }

    let report = bench::kernel_exec::compute(iters);
    print!("{}", bench::kernel_exec::render(&report));

    if let Some(path) = &out {
        std::fs::write(path, bench::kernel_exec::render_json(&report))
            .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("report written to {path}");
    }

    if let Some(min) = assert_speedup {
        let got = report.min_speedup();
        if report.simd_level != "avx2+fma" {
            println!(
                "speedup check SKIPPED: compiled tier fell back to `{}` on this host \
                 (measured {got:.1}x)",
                report.simd_level
            );
        } else if got < min {
            eprintln!("speedup check FAILED: min speedup {got:.1}x < required {min}x");
            std::process::exit(1);
        } else {
            println!("speedup check OK: min speedup {got:.1}x >= {min}x");
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: kernel_exec [--out FILE] [--iters N] [--assert-speedup X]");
    std::process::exit(2);
}
