//! Regenerates Fig. 4 of the paper. Run: `cargo run --release -p bench --bin fig4`
fn main() {
    let data = bench::fig4::compute();
    print!("{}", bench::fig4::render(&data));
}
