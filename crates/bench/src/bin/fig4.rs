//! Regenerates Fig. 4 of the paper. Run: `cargo run --release -p ftimm-bench --bin fig4`
fn main() {
    let data = ftimm_bench::fig4::compute();
    print!("{}", ftimm_bench::fig4::render(&data));
}
