//! Co-execution report: the Fig. 7 crossover as a planner decision on
//! the Table I–III regimes, against two host comparators.
//!
//! Usage:
//! `cargo run --release -p bench --bin coexec -- [options]`
//!
//! Options:
//! * `--out FILE` — write the `BENCH_coexec.json` document
//! * `--assert-coexec-no-regression` — exit nonzero if the chosen split
//!   is predicted slower than the best single backend anywhere in the
//!   sweep, or if the sweep fails to exhibit all three planner picks
//!   (DSP-only, co-exec, CPU-only) — the CI gate

fn main() {
    let mut out: Option<String> = None;
    let mut assert_gate = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--out needs a path")),
                )
            }
            "--assert-coexec-no-regression" => assert_gate = true,
            other => die(&format!("unrecognised argument `{other}`")),
        }
    }

    let report = bench::coexec::compute();
    print!("{}", bench::coexec::render(&report));

    if let Some(path) = &out {
        std::fs::write(path, bench::coexec::render_json(&report))
            .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("report written to {path}");
    }

    if assert_gate {
        let got = report.max_regression();
        if got > 0.0 {
            eprintln!(
                "coexec check FAILED: chosen split predicted {:.2e} slower than \
                 the best single backend",
                got
            );
            std::process::exit(1);
        }
        if !report.covers_all_picks() {
            eprintln!(
                "coexec check FAILED: sweep does not exhibit all three planner \
                 picks (dsp-only / co-exec / cpu-only)"
            );
            std::process::exit(1);
        }
        println!("coexec check OK: no predicted regression, all picks exhibited");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: coexec [--out FILE] [--assert-coexec-no-regression]");
    std::process::exit(2);
}
