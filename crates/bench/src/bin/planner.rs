//! Planner report: chosen plans, predicted vs simulated seconds and the
//! plan-cache speedup on the paper's representative shapes.
//!
//! Usage:
//! `cargo run --release -p bench --bin planner -- [options]`
//!
//! Options:
//! * `--out FILE` — write the `BENCH_planner.json` document
//! * `--assert-warm-speedup X` — exit nonzero unless the smallest
//!   cold/warm planning speedup reaches `X` (CI smoke gate)

fn main() {
    let mut out: Option<String> = None;
    let mut assert_speedup: Option<f64> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--out needs a path")),
                )
            }
            "--assert-warm-speedup" => {
                assert_speedup = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--assert-warm-speedup needs a number")),
                )
            }
            other => die(&format!("unrecognised argument `{other}`")),
        }
    }

    let report = bench::planner::compute();
    print!("{}", bench::planner::render(&report));

    if let Some(path) = &out {
        std::fs::write(path, bench::planner::render_json(&report))
            .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("report written to {path}");
    }

    if let Some(min) = assert_speedup {
        let got = report.min_speedup();
        if got < min {
            eprintln!("warm-plan check FAILED: min speedup {got:.1}x < required {min}x");
            std::process::exit(1);
        }
        println!("warm-plan check OK: min speedup {got:.1}x >= {min}x");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: planner [--out FILE] [--assert-warm-speedup X]");
    std::process::exit(2);
}
