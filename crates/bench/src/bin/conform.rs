//! Conformance driver: seeded differential fuzzing plus corpus replay.
//!
//! Usage:
//! `cargo run -p bench --bin conform -- [--iters N] [--seed S] [--corpus DIR] [--no-replay]`
//!
//! Runs `N` seeded fuzz iterations through the conformance oracles,
//! prints the per-regime/per-oracle coverage table, replays every
//! persisted fixture in the corpus, and exits nonzero on any mismatch.
//! New mismatches are shrunk and written into the corpus directory as
//! minimal-repro fixtures.

use conformance::corpus::{default_corpus_dir, replay_dir, write_fixture};
use conformance::fuzzer::run_fuzz;
use dspsim::HwConfig;
use ftimm::FtImm;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    iters: u64,
    seed: u64,
    corpus: PathBuf,
    replay: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        iters: 200,
        seed: 7,
        corpus: default_corpus_dir(),
        replay: true,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| {
            argv.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value after {}", argv[i]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--iters" => {
                args.iters = need(i).parse().expect("--iters takes a number");
                i += 2;
            }
            "--seed" => {
                args.seed = need(i).parse().expect("--seed takes a number");
                i += 2;
            }
            "--corpus" => {
                args.corpus = PathBuf::from(need(i));
                i += 2;
            }
            "--no-replay" => {
                args.replay = false;
                i += 1;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let ft = FtImm::new(HwConfig::default());
    let mut failed = false;

    println!(
        "== conformance fuzz: {} iterations, seed {} ==",
        args.iters, args.seed
    );
    let summary = run_fuzz(&ft, args.seed, args.iters, |i, case, passed| {
        if !passed {
            println!("  case {i} FAILED: {case}");
        } else if (i + 1) % 50 == 0 {
            println!("  ... {} cases done", i + 1);
        }
    });
    println!("\n{}", summary.coverage_table());
    if !summary.mismatches.is_empty() {
        failed = true;
        println!("{} mismatch(es); shrunk repros:", summary.mismatches.len());
        for m in &summary.mismatches {
            println!("  {m}");
            match write_fixture(&args.corpus, m) {
                Ok(path) => println!("    fixture written: {}", path.display()),
                Err(e) => println!("    (could not persist fixture: {e})"),
            }
        }
    } else {
        println!("fuzz: {} cases, zero mismatches", args.iters);
    }

    if args.replay {
        println!("\n== corpus replay: {} ==", args.corpus.display());
        let outcomes = replay_dir(&ft, &args.corpus);
        let mut passed = 0usize;
        for o in &outcomes {
            match &o.result {
                Ok(()) => passed += 1,
                Err(why) => {
                    failed = true;
                    println!(
                        "  REPLAY FAILED {}: {why}",
                        o.path.file_name().unwrap_or_default().to_string_lossy()
                    );
                }
            }
        }
        println!("replay: {passed}/{} fixtures pass", outcomes.len());
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
