//! Regenerates Fig. 6 of the paper. Run: `cargo run --release -p ftimm-bench --bin fig6`
fn main() {
    let data = ftimm_bench::fig6::compute();
    print!("{}", ftimm_bench::fig6::render(&data));
}
