//! Regenerates Fig. 6 of the paper. Run: `cargo run --release -p bench --bin fig6`
fn main() {
    let data = bench::fig6::compute();
    print!("{}", bench::fig6::render(&data));
}
