//! Workload suite evaluation (k-means, VGG-16 layers, FEM batches).
//! Run: `cargo run --release -p ftimm-bench --bin workload_suite`
fn main() {
    print!(
        "{}",
        ftimm_bench::workload_eval::render(&ftimm_bench::workload_eval::compute())
    );
}
