//! Workload suite evaluation (k-means, VGG-16 layers, FEM batches).
//! Run: `cargo run --release -p bench --bin workload_suite`
fn main() {
    print!(
        "{}",
        bench::workload_eval::render(&bench::workload_eval::compute())
    );
}
