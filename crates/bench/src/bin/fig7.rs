//! Regenerates Fig. 7 of the paper. Run: `cargo run --release -p ftimm-bench --bin fig7`
fn main() {
    let data = ftimm_bench::fig7::compute();
    print!("{}", ftimm_bench::fig7::render(&data));
}
