//! Regenerates Fig. 7 of the paper. Run: `cargo run --release -p bench --bin fig7`
fn main() {
    let data = bench::fig7::compute();
    print!("{}", bench::fig7::render(&data));
}
