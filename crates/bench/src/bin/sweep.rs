//! Custom shape sweep: evaluate ftIMM (auto), both forced strategies and
//! TGEMM on user-supplied shapes.
//!
//! Usage: `cargo run --release -p bench --bin sweep -- M N K [M N K ...] [--cores C]`

use bench::Harness;
use ftimm::{GemmShape, Strategy};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cores = 8usize;
    let mut dims: Vec<usize> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--cores" {
            cores = it
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die("--cores needs a number"));
        } else if let Ok(v) = a.parse::<usize>() {
            dims.push(v);
        } else {
            die(&format!("unrecognised argument `{a}`"));
        }
    }
    if dims.is_empty() {
        dims = vec![4096, 32, 4096, 1 << 16, 32, 32, 32, 32, 1 << 16];
        eprintln!("(no shapes given; using defaults — pass M N K triples)");
    }
    if !dims.len().is_multiple_of(3) {
        die("shapes must be M N K triples");
    }

    let h = Harness::new();
    println!(
        "{:>20} {:>8} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "MxNxK", "type", "auto", "M-par", "K-par", "TGEMM", "best-spd"
    );
    for t in dims.chunks(3) {
        let shape = GemmShape::new(t[0], t[1], t[2]);
        let gf = |s: Strategy| {
            let plan = h.ft.plan(&shape, s, cores);
            shape.flops() as f64 / h.ft.predict_seconds(&shape, &plan, cores) / 1e9
        };
        let auto = gf(Strategy::Auto);
        let mpar = gf(Strategy::MPar);
        let kpar = gf(Strategy::KPar);
        let tg = h.tgemm_gflops(&shape, cores);
        let tag = match shape.classify() {
            ftimm::IrregularType::TallSkinnyTimesSmall => "type-1",
            ftimm::IrregularType::SkinnyTallTimesTallSkinny => "type-2",
            ftimm::IrregularType::RegularTimesTallSkinny => "type-3",
            ftimm::IrregularType::Small => "small",
            ftimm::IrregularType::Regular => "regular",
        };
        println!(
            "{:>20} {:>8} {:>9.1}G {:>9.1}G {:>9.1}G {:>9.1}G {:>8.2}x",
            shape.to_string(),
            tag,
            auto,
            mpar,
            kpar,
            tg,
            auto / tg
        );
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: sweep M N K [M N K ...] [--cores C]");
    std::process::exit(2);
}
