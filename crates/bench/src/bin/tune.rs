//! Tuner report: default vs tuned plans on the paper's representative
//! shapes, per-regime calibration agreement, and the catalog warm-start
//! proof.
//!
//! Usage:
//! `cargo run --release -p bench --bin tune -- [options]`
//!
//! Options:
//! * `--out FILE` — write the `BENCH_tune.json` document
//! * `--catalog FILE` — where to persist the `ftimm-plan-catalog-v1`
//!   (default `ftimm-plan-catalog.json` in the working directory)
//! * `--assert-no-regression` — exit nonzero if any tuned plan is
//!   predicted slower than the analytic default (CI gate)
//! * `--assert-warm-zero-sims` — exit nonzero unless the catalog
//!   warm-start context re-planned every shape with zero timing
//!   simulations (CI gate)

use std::path::PathBuf;

fn main() {
    let mut out: Option<String> = None;
    let mut catalog = PathBuf::from("ftimm-plan-catalog.json");
    let mut assert_no_regression = false;
    let mut assert_warm_zero_sims = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--out needs a path")),
                )
            }
            "--catalog" => {
                catalog = PathBuf::from(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--catalog needs a path")),
                )
            }
            "--assert-no-regression" => assert_no_regression = true,
            "--assert-warm-zero-sims" => assert_warm_zero_sims = true,
            other => die(&format!("unrecognised argument `{other}`")),
        }
    }

    let report = bench::tune::compute(&catalog);
    print!("{}", bench::tune::render(&report));
    println!("catalog written to {}", catalog.display());

    if let Some(path) = &out {
        std::fs::write(path, bench::tune::render_json(&report))
            .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("report written to {path}");
    }

    if assert_no_regression {
        let worst = report.max_regression_s();
        if worst > 0.0 {
            eprintln!(
                "no-regression check FAILED: a tuned plan is {worst:.3e}s slower than its default"
            );
            std::process::exit(1);
        }
        println!("no-regression check OK: worst tuned-vs-default delta {worst:.3e}s");
    }

    if assert_warm_zero_sims {
        if report.warm_simulations != 0 {
            eprintln!(
                "warm-zero-sims check FAILED: warm start ran {} timing simulations",
                report.warm_simulations
            );
            std::process::exit(1);
        }
        println!(
            "warm-zero-sims check OK: {} catalog hits, 0 simulations",
            report.warm_catalog_hits
        );
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: tune [--out FILE] [--catalog FILE] [--assert-no-regression] [--assert-warm-zero-sims]"
    );
    std::process::exit(2);
}
