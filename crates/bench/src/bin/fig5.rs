//! Regenerates Fig. 5 of the paper. Run: `cargo run --release -p ftimm-bench --bin fig5`
fn main() {
    let data = ftimm_bench::fig5::compute();
    print!("{}", ftimm_bench::fig5::render(&data));
}
