//! Regenerates Fig. 5 of the paper. Run: `cargo run --release -p bench --bin fig5`
fn main() {
    let data = bench::fig5::compute();
    print!("{}", bench::fig5::render(&data));
}
