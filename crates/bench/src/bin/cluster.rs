//! Multi-cluster report: weak-scaling efficiency of the sharded engine
//! on the Table I–III regimes and the measured shard-failover cost.
//!
//! Usage:
//! `cargo run --release -p bench --bin cluster -- [options]`
//!
//! Options:
//! * `--out FILE` — write the `BENCH_cluster.json` document
//! * `--trace FILE` — write the per-cluster Chrome trace of the killed
//!   failover probe (CI artifact; load in Perfetto)
//! * `--spill POLICY` — `never` (default), `last-resort` or
//!   `deadline-aware`; with spilling enabled the `--trace` artifact
//!   switches to the dual-backend probe (the lone cluster dies and the
//!   CPU lane carries the remainder, both devices as trace processes)
//! * `--assert-failover-overhead X` — exit nonzero unless the recovery
//!   overhead stays within `X` times the lost shard's fault-free work
//!   (CI gate; the design target is 2)

use ftimm::SpillPolicy;

fn main() {
    let mut out: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut spill = SpillPolicy::Never;
    let mut assert_overhead: Option<f64> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--out needs a path")),
                )
            }
            "--trace" => {
                trace = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--trace needs a path")),
                )
            }
            "--spill" => {
                spill = it
                    .next()
                    .and_then(|v| bench::cluster::parse_spill(v))
                    .unwrap_or_else(|| die("--spill takes never | last-resort | deadline-aware"))
            }
            "--assert-failover-overhead" => {
                assert_overhead = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--assert-failover-overhead needs a number")),
                )
            }
            other => die(&format!("unrecognised argument `{other}`")),
        }
    }

    let report = bench::cluster::compute();
    print!("{}", bench::cluster::render(&report));

    if let Some(path) = &out {
        std::fs::write(path, bench::cluster::render_json(&report))
            .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("report written to {path}");
    }

    if let Some(path) = &trace {
        let (json, what) = if spill == SpillPolicy::Never {
            (bench::cluster::failover_trace(), "per-cluster")
        } else {
            (bench::cluster::spill_trace(spill), "dual-backend")
        };
        std::fs::write(path, json).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("{what} trace written to {path}");
    }

    if let Some(max) = assert_overhead {
        let got = report.failover.overhead_ratio();
        if got > max {
            eprintln!(
                "failover-overhead check FAILED: recovery cost {got:.2}x the lost shard's \
                 work > allowed {max}x"
            );
            std::process::exit(1);
        }
        println!("failover-overhead check OK: {got:.2}x <= {max}x");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: cluster [--out FILE] [--trace FILE] [--spill POLICY] \
         [--assert-failover-overhead X]"
    );
    std::process::exit(2);
}
