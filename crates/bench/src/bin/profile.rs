//! Profile one GEMM through the instrumented executor: print the
//! per-phase breakdown and optionally export the JSON profile document
//! and a Chrome `trace_event` file.
//!
//! Usage:
//! `cargo run --release -p bench --bin profile -- [options] M N K`
//!
//! Options:
//! * `--strategy auto|rules|mpar|kpar|tgemm` (default `auto`)
//! * `--cores N` (default 8)
//! * `--mode interpret|fast|compiled|timing` (default `fast`)
//! * `--out-profile FILE` — write the profile JSON document
//! * `--out-trace FILE` — write a Chrome trace (`chrome://tracing`)
//! * `--assert-roofline FRAC` — exit nonzero unless achieved GFLOPS
//!   reaches `FRAC` of the roofline prediction (CI smoke gate)

use dspsim::{ExecMode, Machine, Phase, PhaseProfile};
use ftimm::{chrome_trace_json, profile_json, Executor, FtImm, GemmProblem, Strategy};

struct Args {
    m: usize,
    n: usize,
    k: usize,
    strategy: Strategy,
    cores: usize,
    mode: ExecMode,
    out_profile: Option<String>,
    out_trace: Option<String>,
    assert_roofline: Option<f64>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut dims: Vec<usize> = Vec::new();
    let mut args = Args {
        m: 0,
        n: 0,
        k: 0,
        strategy: Strategy::Auto,
        cores: 8,
        mode: ExecMode::Fast,
        out_profile: None,
        out_trace: None,
        assert_roofline: None,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match a.as_str() {
            "--strategy" => {
                args.strategy = match next("--strategy").as_str() {
                    "auto" => Strategy::Auto,
                    "rules" => Strategy::Rules,
                    "mpar" => Strategy::MPar,
                    "kpar" => Strategy::KPar,
                    "tgemm" => Strategy::TGemm,
                    other => die(&format!("unknown strategy `{other}`")),
                }
            }
            "--cores" => {
                args.cores = next("--cores")
                    .parse()
                    .unwrap_or_else(|_| die("--cores needs a number"))
            }
            "--mode" => {
                let tag = next("--mode");
                args.mode = ExecMode::from_tag(&tag)
                    .unwrap_or_else(|| die(&format!("unknown mode `{tag}`")))
            }
            "--out-profile" => args.out_profile = Some(next("--out-profile")),
            "--out-trace" => args.out_trace = Some(next("--out-trace")),
            "--assert-roofline" => {
                args.assert_roofline = Some(
                    next("--assert-roofline")
                        .parse()
                        .unwrap_or_else(|_| die("--assert-roofline needs a fraction")),
                )
            }
            _ => match a.parse::<usize>() {
                Ok(v) => dims.push(v),
                Err(_) => die(&format!("unrecognised argument `{a}`")),
            },
        }
    }
    if dims.len() != 3 {
        die("exactly one M N K triple is required");
    }
    (args.m, args.n, args.k) = (dims[0], dims[1], dims[2]);
    args
}

fn main() {
    let args = parse_args();
    let ft = FtImm::new(dspsim::HwConfig::default());
    let mut machine = Machine::new(ft.cfg().clone(), args.mode);
    let p = GemmProblem::alloc(&mut machine, args.m, args.n, args.k)
        .unwrap_or_else(|e| die(&format!("allocation failed: {e}")));
    if machine.mode.is_functional() {
        let fill = ftimm::reference::fill_matrix;
        p.a.upload(&mut machine, &fill(args.m * args.k, 1)).unwrap();
        p.b.upload(&mut machine, &fill(args.k * args.n, 2)).unwrap();
        p.c.upload(&mut machine, &vec![0.0; args.m * args.n])
            .unwrap();
    }

    let run = Executor::new(&ft)
        .strategy(args.strategy)
        .cores(args.cores)
        .profiled()
        .dispatch(&mut machine, &p)
        .unwrap_or_else(|e| die(&format!("dispatch rejected: {e}")));
    let report = match &run.result {
        Ok(r) => r,
        Err(e) => die(&format!("run failed: {e}")),
    };
    let prof = report.profile.expect("profiled run carries a profile");

    println!(
        "{}x{}x{}  plan={}  cores={}  mode={:?}",
        args.m, args.n, args.k, run.plan, report.cores_used, args.mode
    );
    print_phase_table(&prof);

    if let Some(path) = &args.out_profile {
        std::fs::write(path, profile_json(&prof))
            .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("profile written to {path}");
    }
    if let Some(path) = &args.out_trace {
        let profiler = run.profiler.as_ref().expect("profiled run keeps spans");
        std::fs::write(path, chrome_trace_json(profiler))
            .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("trace written to {path} (load in chrome://tracing)");
    }

    if let Some(frac) = args.assert_roofline {
        let bound = frac * prof.roofline_gflops;
        if prof.achieved_gflops < bound {
            eprintln!(
                "roofline check FAILED: achieved {:.1} GFLOPS < {frac} x roofline {:.1} GFLOPS",
                prof.achieved_gflops, prof.roofline_gflops
            );
            std::process::exit(1);
        }
        println!(
            "roofline check OK: achieved {:.1} GFLOPS >= {frac} x roofline {:.1} GFLOPS",
            prof.achieved_gflops, prof.roofline_gflops
        );
    }
}

fn print_phase_table(prof: &PhaseProfile) {
    println!("{:>12} {:>14} {:>8}", "phase", "seconds", "share");
    for phase in Phase::ALL {
        let s = prof.phase_seconds(phase);
        if s <= 0.0 {
            continue;
        }
        if phase == Phase::Plan {
            // Host-side planning time: outside the device window, so a
            // share of `total_s` would be meaningless.
            println!("{:>12} {:>14.6e} {:>8}", phase.name(), s, "(host)");
            continue;
        }
        println!(
            "{:>12} {:>14.6e} {:>7.1}%",
            phase.name(),
            s,
            100.0 * s / prof.total_s
        );
    }
    println!(
        "{:>12} {:>14.6e} {:>7.1}%",
        "idle",
        prof.total_s - prof.busy_s(),
        100.0 * (prof.total_s - prof.busy_s()) / prof.total_s
    );
    println!("{:>12} {:>14.6e}", "total", prof.total_s);
    println!(
        "dma/compute overlap: {:.1}% of the window ({} spans, {} events, {} dropped)",
        100.0 * prof.overlap_frac(),
        prof.spans,
        prof.events,
        prof.dropped
    );
    let occ: Vec<String> = (0..dspsim::PROFILE_CORES)
        .map(|c| format!("{:.0}%", 100.0 * prof.occupancy(c)))
        .collect();
    println!("core occupancy: [{}]", occ.join(" "));
    println!(
        "plan cache: {} hits, {} misses, {} evictions",
        prof.plan_hits, prof.plan_misses, prof.plan_evictions
    );
    println!(
        "roofline {:.1} GFLOPS, achieved {:.1} GFLOPS ({:.1}% of bound)",
        prof.roofline_gflops,
        prof.achieved_gflops,
        100.0 * prof.achieved_gflops / prof.roofline_gflops
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: profile [--strategy auto|rules|mpar|kpar|tgemm] [--cores N] \
         [--mode interpret|fast|compiled|timing] [--out-profile FILE] [--out-trace FILE] \
         [--assert-roofline FRAC] M N K"
    );
    std::process::exit(2);
}
