//! Regenerates Tables I-III of the paper (generated assembly pipelines).
//! Run: `cargo run --release -p bench --bin tables`
fn main() {
    let data = bench::tables::compute();
    print!("{}", bench::tables::render(&data));
}
