//! Regenerates Tables I-III of the paper (generated assembly pipelines).
//! Run: `cargo run --release -p ftimm-bench --bin tables`
fn main() {
    let data = ftimm_bench::tables::compute();
    print!("{}", ftimm_bench::tables::render(&data));
}
