//! The ISA static verifier: a lint pass over [`ftimm_isa::Program`].
//!
//! `Bundle::push` enforces issue rules *at construction*, and the
//! `dspsim` interpreter re-checks RAW latencies *at execution* — but a
//! program that was deserialized, hand-built, or mangled by a generator
//! bug can bypass the first, and `ExecMode::Fast`/`Timing` runs never hit
//! the second.  This pass re-derives every rule from the architectural
//! model alone, so it can vet any kernel `kernelgen` emits (or refuses
//! to) without executing it:
//!
//! * **structure** — loop levels within [`ftimm_isa::addr::MAX_LOOP_DEPTH`],
//!   no zero-trip loops;
//! * **issue rules** — operand signatures, opcode/unit-class membership,
//!   one instruction per unit, ≤ 5 scalar + ≤ 6 vector slots per cycle
//!   (`SBR` rides the control unit outside the scalar budget, matching
//!   the paper's tables);
//! * **hazards** — RAW against [`ftimm_isa::LatencyTable`] over the exact
//!   dynamic bundle order the interpreter executes (loop-carried
//!   included), plus WAW writes that would retire out of order;
//! * **register lifetime** — no read of a register the program never
//!   defined before that point;
//! * **occupancy** — [`kernelgen::verify_occupancy`]'s structured check.
//!
//! The pass collects every violation (it does not stop at the first) so
//! fuzzer reports and CI logs show the whole damage picture.

use ftimm_isa::{
    Bundle, Instruction, LatencyTable, Program, Section, Unit, MAX_SCALAR_SLOTS, MAX_VECTOR_SLOTS,
    NUM_SREGS, NUM_VREGS,
};
use std::fmt;

/// What a [`Violation`] found.
#[derive(Debug, Clone, PartialEq)]
pub enum ViolationKind {
    /// A loop section nests deeper than address expressions can index.
    LoopTooDeep {
        /// The offending level.
        level: u8,
    },
    /// A counted loop with zero trips (legal nowhere in the generator's
    /// output; `Program::cycles` would silently drop the body).
    ZeroTripLoop,
    /// An instruction whose operand lists don't match its opcode.
    MalformedInstruction {
        /// The ISA-level diagnostic.
        detail: String,
    },
    /// An instruction issued on a unit outside its opcode's class.
    WrongUnit {
        /// The mnemonic.
        mnemonic: &'static str,
    },
    /// Two instructions on the same unit in one cycle.
    DuplicateUnit,
    /// More scalar-side execution slots than the machine has.
    ScalarOverflow {
        /// Scalar-side instructions found (excluding `SBR`).
        got: usize,
    },
    /// More vector-side slots than the machine has.
    VectorOverflow {
        /// Vector-side instructions found.
        got: usize,
    },
    /// A register read before its producing write's latency elapsed.
    ReadAfterWrite {
        /// The register, as displayed (`R3` / `V17`).
        register: String,
        /// Cycle the write's result becomes readable.
        ready_cycle: u64,
    },
    /// A register whose two in-flight writes would retire out of order.
    WriteAfterWrite {
        /// The register, as displayed.
        register: String,
        /// Retire cycle of the earlier (still unretired) write.
        prior_retire_cycle: u64,
    },
    /// A register read that no prior instruction ever defined.
    UndefinedRead {
        /// The register, as displayed.
        register: String,
    },
    /// A unit that issues more instructions than the program has cycles.
    Occupancy {
        /// The structured diagnostic from `kernelgen`.
        diag: kernelgen::OccupancyViolation,
    },
}

/// One rule violation, located by dynamic cycle and (where meaningful)
/// unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Dynamic cycle (bundle index with loops expanded); `None` for
    /// whole-program checks such as occupancy.
    pub cycle: Option<u64>,
    /// The unit involved, when the rule is per-slot.
    pub unit: Option<Unit>,
    /// What went wrong.
    pub kind: ViolationKind,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.cycle {
            Some(c) => write!(f, "cycle {c}")?,
            None => write!(f, "program")?,
        }
        if let Some(u) = self.unit {
            write!(f, " [{u}]")?;
        }
        write!(f, ": ")?;
        match &self.kind {
            ViolationKind::LoopTooDeep { level } => write!(f, "loop level {level} too deep"),
            ViolationKind::ZeroTripLoop => write!(f, "zero-trip loop"),
            ViolationKind::MalformedInstruction { detail } => {
                write!(f, "malformed instruction: {detail}")
            }
            ViolationKind::WrongUnit { mnemonic } => {
                write!(f, "{mnemonic} cannot issue on this unit")
            }
            ViolationKind::DuplicateUnit => write!(f, "two instructions on one unit"),
            ViolationKind::ScalarOverflow { got } => {
                write!(f, "{got} scalar slots (max {MAX_SCALAR_SLOTS})")
            }
            ViolationKind::VectorOverflow { got } => {
                write!(f, "{got} vector slots (max {MAX_VECTOR_SLOTS})")
            }
            ViolationKind::ReadAfterWrite {
                register,
                ready_cycle,
            } => write!(f, "RAW hazard on {register} (ready at cycle {ready_cycle})"),
            ViolationKind::WriteAfterWrite {
                register,
                prior_retire_cycle,
            } => write!(
                f,
                "WAW hazard on {register} (prior write retires at cycle {prior_retire_cycle})"
            ),
            ViolationKind::UndefinedRead { register } => {
                write!(f, "read of never-written {register}")
            }
            ViolationKind::Occupancy { diag } => write!(f, "{diag}"),
        }
    }
}

/// Outcome of one verification pass.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// Program name (for logs).
    pub name: String,
    /// Dynamic cycles walked.
    pub cycles: u64,
    /// Every violation found, in discovery order.
    pub violations: Vec<Violation>,
}

impl VerifyReport {
    /// Whether the program passed every check.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "{}: clean ({} cycles)", self.name, self.cycles);
        }
        writeln!(
            f,
            "{}: {} violation(s) in {} cycles",
            self.name,
            self.violations.len(),
            self.cycles
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Caps how many violations a single pass accumulates: a corrupt loop
/// body repeats its damage every trip and would otherwise flood memory.
const MAX_VIOLATIONS: usize = 64;

struct VerifyState<'a> {
    lat: &'a LatencyTable,
    cycle: u64,
    /// `ready[r]` — first cycle register `r` may be read again.
    ready_s: [u64; NUM_SREGS],
    ready_v: [u64; NUM_VREGS],
    /// Whether the register has ever been written.
    def_s: [bool; NUM_SREGS],
    def_v: [bool; NUM_VREGS],
    violations: Vec<Violation>,
}

impl VerifyState<'_> {
    fn report(&mut self, cycle: Option<u64>, unit: Option<Unit>, kind: ViolationKind) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(Violation { cycle, unit, kind });
        }
    }

    fn check_bundle_static(&mut self, bundle: &Bundle) {
        let cycle = self.cycle;
        let slots = bundle.slots();
        let mut scalar_exec = 0usize;
        let mut vector = 0usize;
        for (i, (unit, inst)) in slots.iter().enumerate() {
            if let Err(e) = inst.validate() {
                self.report(
                    Some(cycle),
                    Some(*unit),
                    ViolationKind::MalformedInstruction {
                        detail: e.to_string(),
                    },
                );
            }
            if !inst.opcode.unit_class().members().contains(unit) {
                self.report(
                    Some(cycle),
                    Some(*unit),
                    ViolationKind::WrongUnit {
                        mnemonic: inst.opcode.mnemonic(),
                    },
                );
            }
            if slots[..i].iter().any(|(u, _)| u == unit) {
                self.report(Some(cycle), Some(*unit), ViolationKind::DuplicateUnit);
            }
            if unit.is_scalar_side() {
                if *unit != Unit::Control {
                    scalar_exec += 1;
                }
            } else {
                vector += 1;
            }
        }
        if scalar_exec > MAX_SCALAR_SLOTS {
            self.report(
                Some(cycle),
                None,
                ViolationKind::ScalarOverflow { got: scalar_exec },
            );
        }
        if vector > MAX_VECTOR_SLOTS {
            self.report(
                Some(cycle),
                None,
                ViolationKind::VectorOverflow { got: vector },
            );
        }
    }

    /// Hazard/lifetime checks, mirroring the interpreter's in-bundle
    /// order: instructions take effect one by one in canonical unit
    /// order, so a same-cycle def is *not* readable by its bundle-mates.
    fn check_bundle_dynamic(&mut self, bundle: &Bundle, inst_checks: bool) {
        let cycle = self.cycle;
        for (unit, inst) in bundle.slots().iter() {
            if inst_checks {
                self.check_instruction_hazards(cycle, *unit, inst);
            }
            let lat = self.lat.of(inst.opcode) as u64;
            for r in &inst.sdefs {
                self.ready_s[r.index()] = cycle + lat;
                self.def_s[r.index()] = true;
            }
            for r in &inst.vdefs {
                self.ready_v[r.index()] = cycle + lat;
                self.def_v[r.index()] = true;
            }
        }
        self.cycle += 1;
    }

    fn check_instruction_hazards(&mut self, cycle: u64, unit: Unit, inst: &Instruction) {
        let lat = self.lat.of(inst.opcode) as u64;
        for r in &inst.suses {
            let i = r.index();
            if !self.def_s[i] {
                self.report(
                    Some(cycle),
                    Some(unit),
                    ViolationKind::UndefinedRead {
                        register: r.to_string(),
                    },
                );
            } else if cycle < self.ready_s[i] {
                self.report(
                    Some(cycle),
                    Some(unit),
                    ViolationKind::ReadAfterWrite {
                        register: r.to_string(),
                        ready_cycle: self.ready_s[i],
                    },
                );
            }
        }
        for r in &inst.vuses {
            let i = r.index();
            if !self.def_v[i] {
                self.report(
                    Some(cycle),
                    Some(unit),
                    ViolationKind::UndefinedRead {
                        register: r.to_string(),
                    },
                );
            } else if cycle < self.ready_v[i] {
                self.report(
                    Some(cycle),
                    Some(unit),
                    ViolationKind::ReadAfterWrite {
                        register: r.to_string(),
                        ready_cycle: self.ready_v[i],
                    },
                );
            }
        }
        // WAW: a new write must not retire at or before an in-flight one.
        // (A register that is also read by this instruction was already
        // gated by the RAW check above — VFMULAS32's accumulator pattern.)
        for r in &inst.sdefs {
            let i = r.index();
            if !inst.suses.contains(r) && cycle < self.ready_s[i] && cycle + lat <= self.ready_s[i]
            {
                self.report(
                    Some(cycle),
                    Some(unit),
                    ViolationKind::WriteAfterWrite {
                        register: r.to_string(),
                        prior_retire_cycle: self.ready_s[i],
                    },
                );
            }
        }
        for r in &inst.vdefs {
            let i = r.index();
            if !inst.vuses.contains(r) && cycle < self.ready_v[i] && cycle + lat <= self.ready_v[i]
            {
                self.report(
                    Some(cycle),
                    Some(unit),
                    ViolationKind::WriteAfterWrite {
                        register: r.to_string(),
                        prior_retire_cycle: self.ready_v[i],
                    },
                );
            }
        }
    }
}

fn check_structure(sections: &[Section], state: &mut VerifyState<'_>) {
    for s in sections {
        if let Section::Loop { level, trips, body } = s {
            if (level.0 as usize) >= ftimm_isa::addr::MAX_LOOP_DEPTH {
                state.report(None, None, ViolationKind::LoopTooDeep { level: level.0 });
            }
            if *trips == 0 {
                state.report(None, None, ViolationKind::ZeroTripLoop);
            }
            check_structure(body, state);
        }
    }
}

/// Run the full lint pass over a program.
pub fn verify_program(program: &Program, lat: &LatencyTable) -> VerifyReport {
    let mut state = VerifyState {
        lat,
        cycle: 0,
        ready_s: [0; NUM_SREGS],
        ready_v: [0; NUM_VREGS],
        def_s: [false; NUM_SREGS],
        def_v: [false; NUM_VREGS],
        violations: Vec::new(),
    };
    check_structure(&program.sections, &mut state);

    // Pass 1 — per-bundle issue rules, each *static* bundle once (a loop
    // body's rule violations don't depend on the trip).
    for_each_static_bundle(&program.sections, &mut |b| {
        state.check_bundle_static(b);
        state.cycle += 1;
    });
    let static_ok = state.violations.is_empty();
    state.cycle = 0;

    // Pass 2 — hazards over the dynamic order (loop-carried effects need
    // the real trip sequence).  Skipped when the bundle structure itself
    // is broken: hazard states of malformed slots are meaningless.
    program
        .visit::<std::convert::Infallible>(&mut |_idx, bundle| {
            state.check_bundle_dynamic(bundle, static_ok);
            Ok(())
        })
        .unwrap_or_else(|e| match e {});

    if let Err(diag) = kernelgen::verify_occupancy(program) {
        state.report(None, Some(diag.unit), ViolationKind::Occupancy { diag });
    }

    VerifyReport {
        name: program.name.clone(),
        cycles: state.cycle,
        violations: state.violations,
    }
}

fn for_each_static_bundle(sections: &[Section], f: &mut impl FnMut(&Bundle)) {
    for s in sections {
        match s {
            Section::Straight(bundles) => bundles.iter().for_each(&mut *f),
            Section::Loop { body, .. } => for_each_static_bundle(body, f),
        }
    }
}

/// Verify a generated kernel against the default latency table, as the
/// fuzzer does for every kernel a plan pulls.
pub fn verify_kernel(kernel: &kernelgen::MicroKernel) -> VerifyReport {
    verify_program(&kernel.program, &LatencyTable::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspsim::HwConfig;
    use ftimm_isa::{AddrExpr, BufId, Instruction, LoopLevel, MemSpace, SReg, VReg};
    use kernelgen::{KernelSpec, MicroKernel};

    fn v(n: u16) -> VReg {
        VReg::new(n).unwrap()
    }
    fn r(n: u16) -> SReg {
        SReg::new(n).unwrap()
    }

    fn generated(m: usize, k: usize, n: usize) -> MicroKernel {
        MicroKernel::generate(KernelSpec::new(m, k, n).unwrap(), &HwConfig::default()).unwrap()
    }

    #[test]
    fn generated_kernels_are_clean() {
        for (m, k, n) in [
            (6, 512, 96),
            (6, 512, 32),
            (14, 64, 96),
            (3, 40, 48),
            (1, 5, 1),
        ] {
            let rep = verify_kernel(&generated(m, k, n));
            assert!(rep.is_clean(), "{rep}");
        }
    }

    #[test]
    fn corrupted_bundle_is_rejected() {
        // Take a real kernel and smuggle a duplicate-unit FMAC plus a
        // wrong-unit instruction into its first straight section.
        let mut kernel = generated(6, 64, 96);
        let extra = Instruction::vfmulas32(v(0), v(1), v(2));
        let wrong = Instruction::sldh(r(0), AddrExpr::flat(MemSpace::Sm, BufId::A, 0));
        // The generator wraps everything in loops; find the first straight
        // run of bundles wherever it nests.
        fn first_straight(sections: &mut [ftimm_isa::Section]) -> Option<&mut Bundle> {
            for s in sections {
                match s {
                    ftimm_isa::Section::Straight(bundles) if !bundles.is_empty() => {
                        return Some(&mut bundles[0]);
                    }
                    ftimm_isa::Section::Loop { body, .. } => {
                        if let Some(b) = first_straight(body) {
                            return Some(b);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        let bundle = first_straight(&mut kernel.program.sections).unwrap();
        bundle.push_unchecked(Unit::VectorFmac1, extra.clone());
        bundle.push_unchecked(Unit::VectorFmac1, extra);
        bundle.push_unchecked(Unit::VectorFmac2, wrong);
        let rep = verify_kernel(&kernel);
        assert!(!rep.is_clean());
        assert!(rep
            .violations
            .iter()
            .any(|x| matches!(x.kind, ViolationKind::DuplicateUnit)));
        assert!(rep
            .violations
            .iter()
            .any(|x| matches!(x.kind, ViolationKind::WrongUnit { .. })));
    }

    #[test]
    fn raw_hazard_is_detected_with_cycle_and_unit() {
        let lat = LatencyTable::default();
        let mut p = Program::new("raw");
        let mut b0 = Bundle::new();
        b0.push_auto(Instruction::vldw(
            v(0),
            AddrExpr::flat(MemSpace::Am, BufId::B, 0),
        ))
        .unwrap();
        let mut b1 = Bundle::new();
        b1.push_auto(Instruction::vmov(v(1), v(0))).unwrap();
        p.sections.push(Section::Straight(vec![b0, b1]));
        let rep = verify_program(&p, &lat);
        let raw = rep
            .violations
            .iter()
            .find(|x| matches!(x.kind, ViolationKind::ReadAfterWrite { .. }))
            .expect("RAW expected");
        assert_eq!(raw.cycle, Some(1));
        assert_eq!(raw.unit, Some(Unit::VectorMisc));
        match &raw.kind {
            ViolationKind::ReadAfterWrite { ready_cycle, .. } => {
                assert_eq!(*ready_cycle, lat.t_vldw as u64);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn loop_carried_raw_is_detected() {
        // A 1-cycle loop body that reads what it wrote the previous trip,
        // faster than the FMA latency allows.
        let mut body = Bundle::new();
        body.push_auto(Instruction::vfadds32(v(0), v(1), v(2)))
            .unwrap();
        let mut init = Bundle::new();
        init.push_auto(Instruction::vclr(v(1))).unwrap();
        let mut init2 = Bundle::new();
        init2.push_auto(Instruction::vclr(v(2))).unwrap();
        let mut p = Program::new("carried");
        p.sections.push(Section::Straight(vec![init, init2]));
        // Pad so the VCLRs have retired before the loop starts.
        p.sections.push(Section::Straight(vec![Bundle::new(); 4]));
        let mut swap = Bundle::new();
        swap.push_auto(Instruction::vfadds32(v(1), v(0), v(2)))
            .unwrap();
        p.sections.push(Section::Loop {
            level: LoopLevel(0),
            trips: 3,
            body: vec![Section::Straight(vec![body, swap])],
        });
        let rep = verify_program(&p, &LatencyTable::default());
        assert!(
            rep.violations
                .iter()
                .any(|x| matches!(x.kind, ViolationKind::ReadAfterWrite { .. })),
            "{rep}"
        );
    }

    #[test]
    fn undefined_read_and_structure_checks_fire() {
        let mut p = Program::new("undef");
        let mut b = Bundle::new();
        b.push_auto(Instruction::vmov(v(3), v(9))).unwrap();
        p.sections.push(Section::Loop {
            level: LoopLevel(7),
            trips: 0,
            body: vec![Section::Straight(vec![b])],
        });
        let rep = verify_program(&p, &LatencyTable::default());
        assert!(rep
            .violations
            .iter()
            .any(|x| matches!(x.kind, ViolationKind::LoopTooDeep { level: 7 })));
        assert!(rep
            .violations
            .iter()
            .any(|x| matches!(x.kind, ViolationKind::ZeroTripLoop)));
        // trips = 0 means the body never executes dynamically, so the
        // undefined read is only caught via the static walk… which is
        // hazard-free by design.  Re-check with one trip.
        let mut p2 = Program::new("undef2");
        let mut b2 = Bundle::new();
        b2.push_auto(Instruction::vmov(v(3), v(9))).unwrap();
        p2.sections.push(Section::Straight(vec![b2]));
        let rep2 = verify_program(&p2, &LatencyTable::default());
        assert!(rep2
            .violations
            .iter()
            .any(|x| matches!(x.kind, ViolationKind::UndefinedRead { .. })));
    }

    #[test]
    fn waw_out_of_order_retire_is_detected() {
        // VLDW V0 (latency 5) followed next cycle by VCLR V0 (latency 1):
        // the clear would retire before the load lands.
        let mut b0 = Bundle::new();
        b0.push_auto(Instruction::vldw(
            v(0),
            AddrExpr::flat(MemSpace::Am, BufId::B, 0),
        ))
        .unwrap();
        let mut b1 = Bundle::new();
        b1.push_auto(Instruction::vclr(v(0))).unwrap();
        let mut p = Program::new("waw");
        p.sections.push(Section::Straight(vec![b0, b1]));
        let rep = verify_program(&p, &LatencyTable::default());
        assert!(
            rep.violations
                .iter()
                .any(|x| matches!(x.kind, ViolationKind::WriteAfterWrite { .. })),
            "{rep}"
        );
    }

    #[test]
    fn display_formats_are_readable() {
        let clean = verify_kernel(&generated(6, 64, 64));
        assert!(clean.to_string().contains("clean"));
        let mut p = Program::new("bad");
        let mut b = Bundle::new();
        b.push_auto(Instruction::vmov(v(0), v(1))).unwrap();
        p.sections.push(Section::Straight(vec![b]));
        let rep = verify_program(&p, &LatencyTable::default());
        assert!(rep.to_string().contains("never-written"));
    }
}
