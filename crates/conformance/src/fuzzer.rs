//! The differential fuzzer: seeded case generation, oracle execution and
//! shrinking.
//!
//! One [`CaseSpec`] is a complete, self-contained repro: shape, data
//! seed, strategy, core count, oracle and (optionally) a fault-plan seed.
//! Executing a case never consults global state, so a case that fails
//! today fails identically when replayed from its JSON fixture years
//! later — that is what makes the persisted corpus a regression suite.
//!
//! Oracles (all compare the full `C` matrix):
//!
//! * [`OracleKind::Reference`] — `ExecMode::Fast` against the f64 host
//!   oracle within mixed tolerance;
//! * [`OracleKind::ModeEquivalence`] — `Fast` vs `Interpret` bit-exact
//!   (and simulated seconds equal);
//! * [`OracleKind::CompiledEquivalence`] — the three-way host-tier
//!   contract: `Compiled` vs `Fast` vs `Interpret` all bit-exact (and
//!   simulated seconds equal), pinning the SIMD lowering to the
//!   interpreter's exact accumulation order;
//! * [`OracleKind::EntryEquivalence`] — every `Executor` entry point
//!   (`run_plan`, `gemm`, `tgemm`, `run_plan_resilient`, `gemm_resilient`)
//!   bit-exact for the same resolved plan;
//! * [`OracleKind::ScalarScale`] — metamorphic: scaling `A` by 2 (exact
//!   in binary f32) scales `C` bit-exactly, starting from `C = 0`;
//! * [`OracleKind::TransposeDuality`] — metamorphic: `(Bᵀ×Aᵀ)ᵀ` agrees
//!   with `A×B` within tolerance (accumulation orders differ);
//! * [`OracleKind::TilingInvariance`] — metamorphic: MPar, KPar and
//!   TGEMM plans for the same problem each match the f64 oracle;
//! * [`OracleKind::FaultRecovery`] — a seeded fault plan is injected and
//!   the resilient path must still produce an oracle-clean result;
//! * [`OracleKind::PlanConsistency`] — planning is deterministic (the
//!   same request yields the identical [`ftimm::Plan`] twice, with and
//!   without the memo) and plan-then-execute (`run_plan`) is bitwise
//!   identical to the one-shot entry point (`gemm`);
//! * [`OracleKind::ShardFailover`] — a sharded two-cluster run with a
//!   seeded mid-shard cluster death
//!   ([`dspsim::FaultPlan::kill_cluster`]) fails over and stays bitwise
//!   identical to a fault-free single-cluster *checkpointed* run of the
//!   same pinned plan and ckpt grid (checkpoint spans re-anchor the
//!   kernel blocking, so that — not a plain run — is the bit-exact
//!   oracle), and every submitted job reaches a terminal outcome.
//! * [`OracleKind::CpuFailover`] — the heterogeneous ladder: a
//!   single-cluster sharded run with [`ftimm::SpillPolicy::LastResort`]
//!   and a seeded mid-shard cluster kill must salvage the checkpointed
//!   prefix, resume the remainder on the host CPU lane
//!   ([`ftimm::CpuBackend`] mirrors the exact DSP blocking walk) and
//!   stay bitwise identical to the same checkpointed oracle — across
//!   devices, not just clusters.
//! * [`OracleKind::TunedPlanEquivalence`] — the autotuner contract:
//!   tuning is deterministic under a fixed seed, a tuned plan survives
//!   the `ftimm-plan-catalog-v1` round-trip bit-for-bit, executing it is
//!   bitwise identical to executing the default `Auto` plan (the tuner
//!   only adopts [`ftimm::BitSignature`]-equal variants), and a fresh
//!   context warm-started from the catalog serves the plan with zero
//!   timing simulations.
//! * [`OracleKind::CoexecEquivalence`] — the co-execution contract: a
//!   sharded run under [`ftimm::SpillPolicy::CoExecute`] (CPU lane
//!   dispatched as a planned peer, split chosen by
//!   [`ftimm::choose_coexec_split`] from both backend cost models) is
//!   bitwise identical to the fault-free single-cluster checkpointed
//!   oracle, the co-execution planner is deterministic, the chosen split
//!   is never predicted slower than the best single backend, and a plan
//!   that placed a CPU shard actually dispatches the lane.
//!
//! Every case additionally runs the [`crate::verifier`] lint pass over
//! each micro-kernel its plan pulls from the cache.

use crate::regime::Regime;
use crate::rng::Rng64;
use crate::verifier::verify_kernel;
use dspsim::{DmaPath, ExecMode, FaultPlan, HwConfig, Machine, RunReport};
use ftimm::reference::{fill_matrix, sgemm_f64};
use ftimm::{
    ChosenStrategy, ClusterPool, EngineConfig, FtImm, FtimmError, GemmProblem, GemmShape,
    ResilienceConfig, ShardedConfig, ShardedEngine, ShardedJob, ShardedOutcome, SpillPolicy,
    Strategy, TenantSpec,
};
use kernelgen::KernelSpec;
use std::fmt;

/// Which oracle a case exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OracleKind {
    /// f64 host reference within tolerance.
    Reference,
    /// `Fast` ≡ `Interpret`, bitwise.
    ModeEquivalence,
    /// `Compiled` ≡ `Fast` ≡ `Interpret`, bitwise (three-way).
    CompiledEquivalence,
    /// All executor entry points bitwise identical.
    EntryEquivalence,
    /// `C(2A, B) = 2 · C(A, B)`, bitwise.
    ScalarScale,
    /// `(Bᵀ Aᵀ)ᵀ ≈ A B`.
    TransposeDuality,
    /// Every parallelisation strategy matches the oracle.
    TilingInvariance,
    /// Injected faults are recovered; result still oracle-clean.
    FaultRecovery,
    /// Planning is deterministic and plan-then-execute ≡ one-shot.
    PlanConsistency,
    /// Sharded run with seeded cluster death ≡ single-cluster, bitwise.
    ShardFailover,
    /// Cross-backend spill (DSP dies, CPU lane resumes) ≡ single-cluster,
    /// bitwise.
    CpuFailover,
    /// Tuning is deterministic, catalog round-trip preserves plan bits,
    /// tuned-plan execution ≡ default-plan execution (bitwise), and a
    /// catalog warm start plans with zero simulations.
    TunedPlanEquivalence,
    /// Co-executed run (planned CPU peer) ≡ single-cluster, bitwise;
    /// co-execution planning deterministic and never predicted slower
    /// than the best single backend.
    CoexecEquivalence,
}

impl OracleKind {
    /// All oracles, in round-robin scheduling order.
    pub const ALL: [OracleKind; 13] = [
        OracleKind::Reference,
        OracleKind::ModeEquivalence,
        OracleKind::CompiledEquivalence,
        OracleKind::EntryEquivalence,
        OracleKind::ScalarScale,
        OracleKind::TransposeDuality,
        OracleKind::TilingInvariance,
        OracleKind::FaultRecovery,
        OracleKind::PlanConsistency,
        OracleKind::ShardFailover,
        OracleKind::CpuFailover,
        OracleKind::TunedPlanEquivalence,
        OracleKind::CoexecEquivalence,
    ];

    /// Stable tag used in fixtures.
    pub fn tag(self) -> &'static str {
        match self {
            OracleKind::Reference => "reference",
            OracleKind::ModeEquivalence => "mode-equivalence",
            OracleKind::CompiledEquivalence => "compiled-equivalence",
            OracleKind::EntryEquivalence => "entry-equivalence",
            OracleKind::ScalarScale => "scalar-scale",
            OracleKind::TransposeDuality => "transpose-duality",
            OracleKind::TilingInvariance => "tiling-invariance",
            OracleKind::FaultRecovery => "fault-recovery",
            OracleKind::PlanConsistency => "plan-consistency",
            OracleKind::ShardFailover => "shard-failover",
            OracleKind::CpuFailover => "cpu-failover",
            OracleKind::TunedPlanEquivalence => "tuned-plan-equivalence",
            OracleKind::CoexecEquivalence => "coexec-equivalence",
        }
    }

    /// Parse a [`OracleKind::tag`].
    pub fn from_tag(s: &str) -> Option<OracleKind> {
        OracleKind::ALL.iter().copied().find(|o| o.tag() == s)
    }
}

/// Strategy tags for fixtures (mirrors [`ftimm::Strategy`]).
pub fn strategy_tag(s: Strategy) -> &'static str {
    match s {
        Strategy::Auto => "auto",
        Strategy::Rules => "rules",
        Strategy::MPar => "mpar",
        Strategy::KPar => "kpar",
        Strategy::TGemm => "tgemm",
    }
}

/// Parse a [`strategy_tag`].
pub fn strategy_from_tag(s: &str) -> Option<Strategy> {
    [
        Strategy::Auto,
        Strategy::Rules,
        Strategy::MPar,
        Strategy::KPar,
        Strategy::TGemm,
    ]
    .into_iter()
    .find(|x| strategy_tag(*x) == s)
}

/// A complete, deterministic conformance case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseSpec {
    /// Seed for the matrix data fills.
    pub seed: u64,
    /// Problem shape.
    pub shape: GemmShape,
    /// Cores requested.
    pub cores: usize,
    /// Planning strategy under test.
    pub strategy: Strategy,
    /// The oracle.
    pub oracle: OracleKind,
    /// When set, the seed of the injected [`FaultPlan`] (see
    /// [`fault_plan_for`]); [`OracleKind::FaultRecovery`] draws DMA
    /// corruptions from it, [`OracleKind::ShardFailover`] and
    /// [`OracleKind::CpuFailover`] the cluster kill time.
    pub fault_seed: Option<u64>,
}

impl fmt::Display for CaseSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} cores={} strategy={} oracle={}",
            self.shape,
            Regime::classify(&self.shape),
            self.cores,
            strategy_tag(self.strategy),
            self.oracle.tag()
        )?;
        if let Some(fs) = self.fault_seed {
            write!(f, " fault_seed={fs}")?;
        }
        Ok(())
    }
}

/// A confirmed disagreement: the (possibly shrunk) case plus what
/// diverged.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// The failing case.
    pub case: CaseSpec,
    /// Human-readable description of the first divergence.
    pub detail: String,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.case, self.detail)
    }
}

/// Mixed absolute/relative tolerance used by the non-bitwise oracles
/// (same form as `ftimm::reference::assert_close`, sized for f32
/// accumulation over the fuzzer's depth range).
const REL_TOL: f64 = 2e-3;

/// `Interpret` mode walks every lane of every bundle on the host; cap the
/// flop volume of mode-equivalence cases so debug-build fuzz runs stay
/// fast.
const INTERPRET_MAX_MNK: u64 = 48 * 96 * 48;

/// Sample a shape whose `m·n·k` stays under [`INTERPRET_MAX_MNK`]
/// *without* leaving its regime — halving a tall-skinny `m` would
/// reclassify it as square and skew the coverage table.
pub fn sample_for_interpret(regime: Regime, rng: &mut Rng64) -> GemmShape {
    match regime {
        Regime::TallSkinny => {
            // m ≥ 256 and m ≥ 4k with the smallest admissible k keeps
            // headroom for a real n range.
            let m = rng.range(256, 300);
            let k = 9;
            let n = rng.range(1, (INTERPRET_MAX_MNK / (m * k)).min(96));
            GemmShape::new(m as usize, n as usize, k as usize)
        }
        Regime::ShortWide => {
            let k = rng.range(256, 300);
            let m = rng.range(1, 12);
            let n = rng.range(1, (INTERPRET_MAX_MNK / (k * m)).min(96));
            GemmShape::new(m as usize, n as usize, k as usize)
        }
        // Tiny-K shapes are already under budget (≤ 192·96·8).
        Regime::TinyK => regime.sample(rng),
        Regime::Square => {
            let m = rng.range(9, 48);
            let k = rng.range(9, 48);
            let n = rng.range(1, 96);
            GemmShape::new(m as usize, n as usize, k as usize)
        }
    }
}

/// The deterministic fault plan a `fault_seed` denotes: one to three DMA
/// corruptions on the operand ingress paths, early in the run.
pub fn fault_plan_for(fault_seed: u64) -> FaultPlan {
    let mut rng = Rng64::new(fault_seed);
    let mut plan = FaultPlan::new(fault_seed);
    let n_faults = rng.range(1, 3);
    for _ in 0..n_faults {
        let path = *rng.pick(&[DmaPath::DdrToAm, DmaPath::DdrToSm, DmaPath::GsmToAm]);
        plan = plan.corrupt_dma(path, rng.range(1, 4));
    }
    plan
}

/// Generate the case for iteration `case_index` of a fuzz run.  Regimes
/// rotate round-robin so a run of `N ≥ 4·k` iterations covers every
/// regime at least `k` times; oracles and strategies are drawn from the
/// per-case stream.
pub fn generate_case(run_seed: u64, case_index: u64) -> CaseSpec {
    let mut rng = Rng64::for_case(run_seed, case_index);
    let regime = Regime::ALL[(case_index % 4) as usize];
    // The oracle index drifts by three every full regime rotation so no
    // oracle gets pinned to a small set of regimes.  The effective step
    // per rotation is 4 + 3 = 7, coprime to the oracle count (13), so
    // every (regime, oracle) pair is visited within 13 regime rotations
    // = 52 iterations — a drift of one would make the step 5 and
    // pin each regime to a strict subset of oracles forever.  Any oracle
    // added to [`OracleKind::ALL`] must keep its length coprime with 7
    // (guarded by `oracle_schedule_covers_every_oracle_regime_pairing`).
    let oracle = OracleKind::ALL
        [((case_index + 3 * (case_index / 4)) % OracleKind::ALL.len() as u64) as usize];
    // Oracles that run `Interpret` (directly or as one leg of an
    // equivalence) get budget-capped shapes.
    let shape = if matches!(
        oracle,
        OracleKind::ModeEquivalence | OracleKind::CompiledEquivalence
    ) {
        sample_for_interpret(regime, &mut rng)
    } else {
        regime.sample(&mut rng)
    };
    let strategy = *rng.pick(&[
        Strategy::Auto,
        Strategy::Rules,
        Strategy::MPar,
        Strategy::KPar,
        Strategy::TGemm,
    ]);
    let fault_seed = matches!(
        oracle,
        OracleKind::FaultRecovery | OracleKind::ShardFailover | OracleKind::CpuFailover
    )
    .then(|| rng.range(1, u32::MAX as u64));
    CaseSpec {
        seed: rng.next(),
        shape,
        cores: rng.range(1, 8) as usize,
        strategy,
        oracle,
        fault_seed,
    }
}

// ---------------------------------------------------------------------
// Case execution
// ---------------------------------------------------------------------

struct Staged {
    problem: GemmProblem,
    a: Vec<f32>,
    b: Vec<f32>,
    c0: Vec<f32>,
}

fn stage(
    machine: &mut Machine,
    shape: &GemmShape,
    seed: u64,
    zero_c: bool,
) -> Result<Staged, FtimmError> {
    let (m, n, k) = (shape.m, shape.n, shape.k);
    let problem = GemmProblem::alloc(machine, m, n, k).map_err(FtimmError::Sim)?;
    let s = seed as u32;
    let a = fill_matrix(m * k, s.wrapping_add(1));
    let b = fill_matrix(k * n, s.wrapping_add(2));
    let c0 = if zero_c {
        vec![0.0f32; m * n]
    } else {
        fill_matrix(m * n, s.wrapping_add(3))
    };
    if machine.mode.is_functional() {
        problem.a.upload(machine, &a).map_err(FtimmError::Sim)?;
        problem.b.upload(machine, &b).map_err(FtimmError::Sim)?;
        problem.c.upload(machine, &c0).map_err(FtimmError::Sim)?;
    }
    Ok(Staged { problem, a, b, c0 })
}

/// The executor entry points exercised by [`OracleKind::EntryEquivalence`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Entry {
    RunPlan,
    Gemm,
    Tgemm,
    RunPlanResilient,
    GemmResilient,
}

fn run_entry(
    ft: &FtImm,
    machine: &mut Machine,
    staged: &Staged,
    entry: Entry,
    strategy: Strategy,
    plan: &ChosenStrategy,
    cores: usize,
) -> Result<RunReport, FtimmError> {
    let rcfg = ResilienceConfig::default();
    match entry {
        Entry::RunPlan => ft.run_plan(machine, &staged.problem, plan, cores),
        Entry::Gemm => ft
            .gemm(machine, &staged.problem, strategy, cores)
            .map(|(r, _)| r),
        Entry::Tgemm => ft.tgemm(machine, &staged.problem, cores),
        Entry::RunPlanResilient => {
            ft.run_plan_resilient(machine, &staged.problem, plan, cores, &rcfg)
        }
        Entry::GemmResilient => ft
            .gemm_resilient(machine, &staged.problem, strategy, cores, &rcfg)
            .map(|(r, _)| r),
    }
}

fn mismatch(case: &CaseSpec, detail: impl Into<String>) -> Mismatch {
    Mismatch {
        case: *case,
        detail: detail.into(),
    }
}

fn compare_to_oracle(
    case: &CaseSpec,
    label: &str,
    got: &[f32],
    want: &[f64],
) -> Result<(), Mismatch> {
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        let tol = REL_TOL * w.abs().max(1.0);
        if (g as f64 - w).abs() > tol {
            return Err(mismatch(
                case,
                format!("{label}: element {i} = {g} vs oracle {w} (tol {tol})"),
            ));
        }
    }
    Ok(())
}

fn compare_bitwise(
    case: &CaseSpec,
    label: &str,
    got: &[f32],
    want: &[f32],
) -> Result<(), Mismatch> {
    if got.len() != want.len() {
        return Err(mismatch(
            case,
            format!("{label}: length {} vs {}", got.len(), want.len()),
        ));
    }
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        if g.to_bits() != w.to_bits() {
            return Err(mismatch(
                case,
                format!("{label}: element {i} bits {g} vs {w}"),
            ));
        }
    }
    Ok(())
}

/// The kernel specs a resolved plan pulls for a problem — the main block
/// spec plus the remainder variants the edge tiles generate.
pub fn kernel_specs_for_plan(plan: &ChosenStrategy, shape: &GemmShape) -> Vec<KernelSpec> {
    let (m_s, k_a, n_a) = match plan {
        ChosenStrategy::MPar(b) => (b.m_s, b.k_a, b.n_a),
        ChosenStrategy::KPar(b) => (b.m_s, b.k_a, b.n_a),
        ChosenStrategy::TGemm => {
            let t = ftimm::TgemmParams::default();
            (t.m_s, shape.k.min(t.k_g), t.n_a)
        }
    };
    let mut specs = Vec::new();
    let mut push = |m_s: usize, k_a: usize, n_a: usize| {
        if let Ok(spec) = KernelSpec::new(m_s, k_a, n_a) {
            if !specs.contains(&spec) {
                specs.push(spec);
            }
        }
    };
    let (m_s, k_a, n_a) = (m_s.min(shape.m), k_a.min(shape.k), n_a.min(shape.n));
    push(m_s, k_a, n_a);
    // Remainder tiles in each dimension.
    push(shape.m % m_s.max(1), k_a, n_a);
    push(m_s, shape.k % k_a.max(1), n_a);
    push(m_s, k_a, shape.n % n_a.max(1));
    specs
}

/// Statically verify every kernel a case's plan needs.
fn verify_plan_kernels(ft: &FtImm, case: &CaseSpec) -> Result<(), Mismatch> {
    let plan = ft.plan(&case.shape, case.strategy, case.cores);
    for spec in kernel_specs_for_plan(&plan, &case.shape) {
        let kernel = match ft.cache().get(spec) {
            Ok(k) => k,
            // Specs outside generator limits are legitimately refused;
            // admission is the runners' concern, not the verifier's.
            Err(_) => continue,
        };
        let rep = verify_kernel(&kernel);
        if !rep.is_clean() {
            return Err(mismatch(case, format!("static verifier: {rep}")));
        }
    }
    Ok(())
}

fn oracle_for(staged: &Staged, shape: &GemmShape) -> Vec<f64> {
    sgemm_f64(shape.m, shape.n, shape.k, &staged.a, &staged.b, &staged.c0)
}

fn run_simple(
    ft: &FtImm,
    case: &CaseSpec,
    mode: ExecMode,
    strategy: Strategy,
    zero_c: bool,
    scale_a: Option<f32>,
    fault_plan: Option<&FaultPlan>,
) -> Result<(Vec<f32>, f64, Staged), Mismatch> {
    let mut machine = Machine::with_mode(mode);
    let mut staged = stage(&mut machine, &case.shape, case.seed, zero_c)
        .map_err(|e| mismatch(case, format!("staging failed: {e}")))?;
    if let Some(s) = scale_a {
        for x in &mut staged.a {
            *x *= s;
        }
        if machine.mode.is_functional() {
            staged
                .problem
                .a
                .upload(&mut machine, &staged.a)
                .map_err(|e| mismatch(case, format!("upload failed: {e}")))?;
        }
    }
    if let Some(plan) = fault_plan {
        machine.install_faults(plan);
    }
    let rcfg = ResilienceConfig::default();
    let report = if fault_plan.is_some() {
        ft.gemm_resilient(&mut machine, &staged.problem, strategy, case.cores, &rcfg)
            .map(|(r, _)| r)
    } else {
        ft.gemm(&mut machine, &staged.problem, strategy, case.cores)
            .map(|(r, _)| r)
    }
    .map_err(|e| mismatch(case, format!("run failed: {e}")))?;
    let c = if mode.is_functional() {
        staged
            .problem
            .c
            .download(&mut machine)
            .map_err(|e| mismatch(case, format!("download failed: {e}")))?
    } else {
        Vec::new()
    };
    Ok((c, report.seconds, staged))
}

/// Execute one case against its oracle.  `Ok(())` means conformant.
pub fn check_case(ft: &FtImm, case: &CaseSpec) -> Result<(), Mismatch> {
    verify_plan_kernels(ft, case)?;
    match case.oracle {
        OracleKind::Reference => {
            let (c, _, staged) =
                run_simple(ft, case, ExecMode::Fast, case.strategy, false, None, None)?;
            compare_to_oracle(case, "fast vs f64", &c, &oracle_for(&staged, &case.shape))
        }
        OracleKind::ModeEquivalence => {
            let (cf, tf, _) =
                run_simple(ft, case, ExecMode::Fast, case.strategy, false, None, None)?;
            let (ci, ti, _) = run_simple(
                ft,
                case,
                ExecMode::Interpret,
                case.strategy,
                false,
                None,
                None,
            )?;
            compare_bitwise(case, "fast vs interpret", &cf, &ci)?;
            if (tf - ti).abs() > 1e-15 {
                return Err(mismatch(
                    case,
                    format!("simulated time diverges: fast {tf} vs interpret {ti}"),
                ));
            }
            Ok(())
        }
        OracleKind::CompiledEquivalence => {
            // Three-way host-tier contract: the SIMD lowering (`Compiled`),
            // the scalar mirror (`Fast`) and the hazard-checking
            // interpreter must agree bitwise and on the simulated clock.
            let (cc, tc, _) = run_simple(
                ft,
                case,
                ExecMode::Compiled,
                case.strategy,
                false,
                None,
                None,
            )?;
            let (cf, tf, _) =
                run_simple(ft, case, ExecMode::Fast, case.strategy, false, None, None)?;
            let (ci, ti, _) = run_simple(
                ft,
                case,
                ExecMode::Interpret,
                case.strategy,
                false,
                None,
                None,
            )?;
            compare_bitwise(case, "compiled vs fast", &cc, &cf)?;
            compare_bitwise(case, "compiled vs interpret", &cc, &ci)?;
            if (tc - tf).abs() > 1e-15 || (tc - ti).abs() > 1e-15 {
                return Err(mismatch(
                    case,
                    format!(
                        "simulated time diverges: compiled {tc} vs fast {tf} vs interpret {ti}"
                    ),
                ));
            }
            Ok(())
        }
        OracleKind::EntryEquivalence => {
            let plan = ft.plan(&case.shape, case.strategy, case.cores);
            let mut entries = vec![
                Entry::RunPlan,
                Entry::Gemm,
                Entry::RunPlanResilient,
                Entry::GemmResilient,
            ];
            if case.strategy == Strategy::TGemm {
                entries.push(Entry::Tgemm);
            }
            let mut baseline: Option<(Vec<f32>, f64)> = None;
            for entry in entries {
                let mut machine = Machine::with_mode(ExecMode::Fast);
                let staged = stage(&mut machine, &case.shape, case.seed, false)
                    .map_err(|e| mismatch(case, format!("staging failed: {e}")))?;
                let report = run_entry(
                    ft,
                    &mut machine,
                    &staged,
                    entry,
                    case.strategy,
                    &plan,
                    case.cores,
                )
                .map_err(|e| mismatch(case, format!("{entry:?} failed: {e}")))?;
                let c = staged
                    .problem
                    .c
                    .download(&mut machine)
                    .map_err(|e| mismatch(case, format!("download failed: {e}")))?;
                match &baseline {
                    None => baseline = Some((c, report.seconds)),
                    Some((c0, t0)) => {
                        compare_bitwise(case, &format!("{entry:?} vs RunPlan"), &c, c0)?;
                        if (report.seconds - t0).abs() > 1e-15 {
                            return Err(mismatch(
                                case,
                                format!(
                                    "{entry:?} simulated time diverges: {} vs {t0}",
                                    report.seconds
                                ),
                            ));
                        }
                    }
                }
            }
            Ok(())
        }
        OracleKind::ScalarScale => {
            let (c1, _, _) = run_simple(ft, case, ExecMode::Fast, case.strategy, true, None, None)?;
            let (c2, _, _) = run_simple(
                ft,
                case,
                ExecMode::Fast,
                case.strategy,
                true,
                Some(2.0),
                None,
            )?;
            let doubled: Vec<f32> = c1.iter().map(|x| 2.0 * x).collect();
            compare_bitwise(case, "C(2A,B) vs 2C(A,B)", &c2, &doubled)
        }
        OracleKind::TransposeDuality => {
            let (c1, _, staged) =
                run_simple(ft, case, ExecMode::Fast, case.strategy, true, None, None)?;
            let (m, n, k) = (case.shape.m, case.shape.n, case.shape.k);
            // Stage the dual problem (Bᵀ is n×k, Aᵀ is k×m) by hand.
            let mut machine = Machine::with_mode(ExecMode::Fast);
            let dual = GemmProblem::alloc(&mut machine, n, m, k)
                .map_err(|e| mismatch(case, format!("dual alloc failed: {e}")))?;
            let bt: Vec<f32> = (0..n * k).map(|i| staged.b[(i % k) * n + i / k]).collect();
            let at: Vec<f32> = (0..k * m).map(|i| staged.a[(i % m) * k + i / m]).collect();
            dual.a
                .upload(&mut machine, &bt)
                .and_then(|_| dual.b.upload(&mut machine, &at))
                .and_then(|_| dual.c.upload(&mut machine, &vec![0.0; n * m]))
                .map_err(|e| mismatch(case, format!("dual upload failed: {e}")))?;
            let _ = ft
                .gemm(&mut machine, &dual, case.strategy, case.cores)
                .map_err(|e| mismatch(case, format!("dual run failed: {e}")))?;
            let c2 = dual
                .c
                .download(&mut machine)
                .map_err(|e| mismatch(case, format!("dual download failed: {e}")))?;
            let c2t: Vec<f32> = (0..m * n).map(|i| c2[(i % n) * m + i / n]).collect();
            let want = oracle_for(&staged, &case.shape);
            compare_to_oracle(case, "A×B vs f64", &c1, &want)?;
            compare_to_oracle(case, "(BᵀAᵀ)ᵀ vs f64", &c2t, &want)
        }
        OracleKind::TilingInvariance => {
            let mut want: Option<Vec<f64>> = None;
            for strategy in [Strategy::MPar, Strategy::KPar, Strategy::TGemm] {
                let (c, _, staged) =
                    run_simple(ft, case, ExecMode::Fast, strategy, false, None, None)?;
                let w = want.get_or_insert_with(|| oracle_for(&staged, &case.shape));
                compare_to_oracle(case, &format!("{} vs f64", strategy_tag(strategy)), &c, w)?;
            }
            Ok(())
        }
        OracleKind::PlanConsistency => {
            // Determinism: the planning pipeline, run twice bypassing
            // the memo, must produce the identical plan — and the
            // memoised entry point must agree with it.
            let planner = ftimm::Planner::new(ft.cache(), ft.cfg());
            let d1 = planner.plan(&case.shape, case.strategy, case.cores, |c| {
                ft.predict_seconds(&case.shape, c, case.cores)
            });
            let d2 = planner.plan(&case.shape, case.strategy, case.cores, |c| {
                ft.predict_seconds(&case.shape, c, case.cores)
            });
            if d1 != d2 {
                return Err(mismatch(
                    case,
                    format!("planning not deterministic: {d1:?} vs {d2:?}"),
                ));
            }
            let memo = ft.plan_full(&case.shape, case.strategy, case.cores);
            if memo != d1 {
                return Err(mismatch(
                    case,
                    format!("memoised plan diverges from fresh plan: {memo:?} vs {d1:?}"),
                ));
            }

            // Plan-then-execute must be bitwise identical (result and
            // simulated time) to the one-shot entry point.
            let mut m1 = Machine::with_mode(ExecMode::Fast);
            let staged1 = stage(&mut m1, &case.shape, case.seed, false)
                .map_err(|e| mismatch(case, format!("staging failed: {e}")))?;
            let r1 = ft
                .run_plan(&mut m1, &staged1.problem, &memo.strategy, case.cores)
                .map_err(|e| mismatch(case, format!("run_plan failed: {e}")))?;
            let c1 = staged1
                .problem
                .c
                .download(&mut m1)
                .map_err(|e| mismatch(case, format!("download failed: {e}")))?;

            let mut m2 = Machine::with_mode(ExecMode::Fast);
            let staged2 = stage(&mut m2, &case.shape, case.seed, false)
                .map_err(|e| mismatch(case, format!("staging failed: {e}")))?;
            let (r2, used) = ft
                .gemm(&mut m2, &staged2.problem, case.strategy, case.cores)
                .map_err(|e| mismatch(case, format!("gemm failed: {e}")))?;
            if used.strategy != memo.strategy {
                return Err(mismatch(
                    case,
                    format!(
                        "one-shot resolved {:?}, plan-then-execute used {:?}",
                        used.strategy, memo.strategy
                    ),
                ));
            }
            let c2 = staged2
                .problem
                .c
                .download(&mut m2)
                .map_err(|e| mismatch(case, format!("download failed: {e}")))?;
            compare_bitwise(case, "plan-then-execute vs one-shot", &c1, &c2)?;
            if (r1.seconds - r2.seconds).abs() > 1e-15 {
                return Err(mismatch(
                    case,
                    format!(
                        "simulated time diverges: plan-then-execute {} vs one-shot {}",
                        r1.seconds, r2.seconds
                    ),
                ));
            }
            Ok(())
        }
        OracleKind::FaultRecovery => {
            let plan = fault_plan_for(case.fault_seed.unwrap_or(1));
            let (c, _, staged) = run_simple(
                ft,
                case,
                ExecMode::Fast,
                case.strategy,
                false,
                None,
                Some(&plan),
            )?;
            compare_to_oracle(
                case,
                "resilient-under-faults vs f64",
                &c,
                &oracle_for(&staged, &case.shape),
            )
        }
        OracleKind::ShardFailover => {
            let (m, n, k) = (case.shape.m, case.shape.n, case.shape.k);

            // Bitwise oracle: a fault-free single-cluster *checkpointed*
            // run of the exact pinned plan and ckpt grid the sharded
            // engine replicates.  Checkpointing re-anchors the kernel
            // blocking every span (see plan::sharded), so the sharded
            // engine is bitwise identical to this — not to a plain
            // un-checkpointed run.
            let rcfg = ResilienceConfig {
                ckpt_rows: 4,
                ..ResilienceConfig::default()
            };
            let mut machine = Machine::with_mode(ExecMode::Fast);
            let staged = stage(&mut machine, &case.shape, case.seed, false)
                .map_err(|e| mismatch(case, format!("staging failed: {e}")))?;
            let pinned = ft.plan_full(&case.shape, case.strategy, case.cores);
            ft.run_plan_resilient(
                &mut machine,
                &staged.problem,
                &pinned.strategy,
                case.cores,
                &rcfg,
            )
            .map_err(|e| mismatch(case, format!("oracle run failed: {e}")))?;
            let want = staged
                .problem
                .c
                .download(&mut machine)
                .map_err(|e| mismatch(case, format!("oracle download failed: {e}")))?;

            let cfg = ShardedConfig {
                engine: EngineConfig {
                    resilience: rcfg,
                    ..EngineConfig::default()
                },
                ..ShardedConfig::default()
            };
            let job = || {
                ShardedJob::gemm(
                    m,
                    n,
                    k,
                    staged.a.clone(),
                    staged.b.clone(),
                    staged.c0.clone(),
                    case.strategy,
                    case.cores,
                )
            };
            let run_sharded = |eng: &mut ShardedEngine| -> Result<ShardedOutcome, Mismatch> {
                let t = eng.register_tenant(TenantSpec::new("fuzz", 1));
                eng.submit(t, job());
                let mut records = eng.run_all(ft);
                if records.len() != 1 {
                    return Err(mismatch(
                        case,
                        format!("expected 1 terminal record, got {}", records.len()),
                    ));
                }
                Ok(records.remove(0).outcome)
            };

            // Fault-free sharded probe: bitwise identity, and the shard-0
            // window the seeded kill will land inside.
            let mut probe = ShardedEngine::new(
                ClusterPool::new(&HwConfig::default(), ExecMode::Fast, 2),
                cfg,
            );
            let shard0_s = match run_sharded(&mut probe)? {
                ShardedOutcome::Completed { c, report } => {
                    compare_bitwise(case, "sharded fault-free vs single-cluster", &c, &want)?;
                    report.shard_runs[0].seconds
                }
                other => {
                    return Err(mismatch(
                        case,
                        format!("fault-free sharded run not completed: {}", other.label()),
                    ))
                }
            };

            // Seeded cluster death somewhere inside shard 0's window; the
            // job must still complete bitwise-identically via failover.
            let mut rng = Rng64::new(case.fault_seed.unwrap_or(1));
            let frac = 0.1 + 0.8 * (rng.range(0, 1000) as f64 / 1000.0);
            let mut eng = ShardedEngine::new(
                ClusterPool::new(&HwConfig::default(), ExecMode::Fast, 2),
                cfg,
            );
            eng.install_faults(
                0,
                &FaultPlan::new(case.fault_seed.unwrap_or(1)).kill_cluster(shard0_s * frac),
            );
            match run_sharded(&mut eng)? {
                // Death is detected at work-issue points, so a kill time
                // past the shard's last issue can legitimately pass
                // unnoticed; the contract here is bitwise identity and a
                // terminal outcome, with or without an actual failover.
                ShardedOutcome::Completed { c, .. } => {
                    compare_bitwise(case, "sharded-with-failover vs single-cluster", &c, &want)
                }
                other => Err(mismatch(
                    case,
                    format!(
                        "sharded run under cluster death not completed: {}",
                        other.label()
                    ),
                )),
            }
        }
        OracleKind::CpuFailover => {
            let (m, n, k) = (case.shape.m, case.shape.n, case.shape.k);

            // Same checkpointed single-cluster bitwise oracle as
            // ShardFailover: the CPU lane replays the identical pinned
            // plan and ckpt grid, so device identity is exactly cluster
            // identity.
            let rcfg = ResilienceConfig {
                ckpt_rows: 4,
                ..ResilienceConfig::default()
            };
            let mut machine = Machine::with_mode(ExecMode::Fast);
            let staged = stage(&mut machine, &case.shape, case.seed, false)
                .map_err(|e| mismatch(case, format!("staging failed: {e}")))?;
            let pinned = ft.plan_full(&case.shape, case.strategy, case.cores);
            ft.run_plan_resilient(
                &mut machine,
                &staged.problem,
                &pinned.strategy,
                case.cores,
                &rcfg,
            )
            .map_err(|e| mismatch(case, format!("oracle run failed: {e}")))?;
            let want = staged
                .problem
                .c
                .download(&mut machine)
                .map_err(|e| mismatch(case, format!("oracle download failed: {e}")))?;

            let cfg = ShardedConfig {
                engine: EngineConfig {
                    resilience: rcfg,
                    ..EngineConfig::default()
                },
                spill: SpillPolicy::LastResort,
                ..ShardedConfig::default()
            };
            let job = || {
                ShardedJob::gemm(
                    m,
                    n,
                    k,
                    staged.a.clone(),
                    staged.b.clone(),
                    staged.c0.clone(),
                    case.strategy,
                    case.cores,
                )
            };
            let run_sharded = |eng: &mut ShardedEngine| -> Result<ShardedOutcome, Mismatch> {
                let t = eng.register_tenant(TenantSpec::new("fuzz", 1));
                eng.submit(t, job());
                let mut records = eng.run_all(ft);
                if records.len() != 1 {
                    return Err(mismatch(
                        case,
                        format!("expected 1 terminal record, got {}", records.len()),
                    ));
                }
                Ok(records.remove(0).outcome)
            };

            // Fault-free probe on the lone cluster: the shard window the
            // seeded kill lands inside.
            let mut probe = ShardedEngine::new(
                ClusterPool::new(&HwConfig::default(), ExecMode::Fast, 1),
                cfg,
            );
            let shard0_s = match run_sharded(&mut probe)? {
                ShardedOutcome::Completed { c, report } => {
                    compare_bitwise(case, "sharded fault-free vs single-cluster", &c, &want)?;
                    report.shard_runs[0].seconds
                }
                other => {
                    return Err(mismatch(
                        case,
                        format!("fault-free sharded run not completed: {}", other.label()),
                    ))
                }
            };

            // Seeded kill of the *only* cluster mid-shard: with no DSP
            // survivor the checkpointed remainder must resume on the CPU
            // lane, bitwise identical across the device boundary.
            let mut rng = Rng64::new(case.fault_seed.unwrap_or(1));
            let frac = 0.1 + 0.8 * (rng.range(0, 1000) as f64 / 1000.0);
            let mut eng = ShardedEngine::new(
                ClusterPool::new(&HwConfig::default(), ExecMode::Fast, 1),
                cfg,
            );
            eng.install_faults(
                0,
                &FaultPlan::new(case.fault_seed.unwrap_or(1)).kill_cluster(shard0_s * frac),
            );
            match run_sharded(&mut eng)? {
                // As with ShardFailover, a kill time past the shard's
                // last issue point can pass unnoticed; the contract is
                // bitwise identity plus a terminal outcome, and when the
                // death *was* seen, a real CPU dispatch.
                ShardedOutcome::Completed { c, report } => {
                    if !report.failovers.is_empty() && eng.cpu_dispatches() == 0 {
                        return Err(mismatch(
                            case,
                            "failover recorded but the CPU lane never dispatched",
                        ));
                    }
                    compare_bitwise(case, "cpu-failover vs single-cluster", &c, &want)
                }
                other => Err(mismatch(
                    case,
                    format!(
                        "sharded run under total cluster loss not completed: {}",
                        other.label()
                    ),
                )),
            }
        }
        OracleKind::TunedPlanEquivalence => {
            // Fresh contexts per leg so tuning state cannot leak between
            // them (the ambient `ft` stays untouched except to execute).
            let tcfg = ftimm::TuneConfig {
                seed: case.seed,
                ..ftimm::TuneConfig::default()
            };

            // Determinism: the same seed on two fresh contexts must tune
            // to the identical plan with identical records.
            let ft1 = FtImm::new(ft.cfg().clone());
            let o1 = ft1.tune(&case.shape, case.cores, &tcfg);
            let ft2 = FtImm::new(ft.cfg().clone());
            let o2 = ft2.tune(&case.shape, case.cores, &tcfg);
            if o1.plan != o2.plan {
                return Err(mismatch(
                    case,
                    format!("tuning not deterministic: {:?} vs {:?}", o1.plan, o2.plan),
                ));
            }
            if o1.plan.simulated_s > o1.default_plan.simulated_s {
                return Err(mismatch(
                    case,
                    format!(
                        "tuned plan predicted slower than the default: {} vs {}",
                        o1.plan.simulated_s, o1.default_plan.simulated_s
                    ),
                ));
            }

            // Catalog round-trip preserves plan bits, and a fresh
            // context warm-started from it plans with zero simulations.
            let path = std::env::temp_dir().join(format!(
                "ftimm-fuzz-catalog-{}-{}.json",
                std::process::id(),
                case.seed
            ));
            ft1.save_plan_catalog(&path)
                .map_err(|e| mismatch(case, format!("catalog save failed: {e}")))?;
            let warm = FtImm::with_plan_catalog(ft.cfg().clone(), &path)
                .map_err(|e| mismatch(case, format!("catalog load failed: {e}")));
            std::fs::remove_file(&path).ok();
            let warm = warm?;
            let replayed = warm.plan_full(&case.shape, Strategy::Auto, case.cores);
            if replayed != o1.plan {
                return Err(mismatch(
                    case,
                    format!(
                        "catalog round-trip changed the plan: {replayed:?} vs {:?}",
                        o1.plan
                    ),
                ));
            }
            if warm.timing_simulations() != 0 {
                return Err(mismatch(
                    case,
                    format!(
                        "catalog warm start ran {} timing simulations",
                        warm.timing_simulations()
                    ),
                ));
            }

            // Executing the tuned plan is bitwise identical to executing
            // the default plan — the signature gate's whole contract.
            let mut m1 = Machine::with_mode(ExecMode::Fast);
            let staged1 = stage(&mut m1, &case.shape, case.seed, false)
                .map_err(|e| mismatch(case, format!("staging failed: {e}")))?;
            ft.run_plan(&mut m1, &staged1.problem, &o1.plan.strategy, case.cores)
                .map_err(|e| mismatch(case, format!("tuned run failed: {e}")))?;
            let c1 = staged1
                .problem
                .c
                .download(&mut m1)
                .map_err(|e| mismatch(case, format!("download failed: {e}")))?;

            let mut m2 = Machine::with_mode(ExecMode::Fast);
            let staged2 = stage(&mut m2, &case.shape, case.seed, false)
                .map_err(|e| mismatch(case, format!("staging failed: {e}")))?;
            ft.run_plan(
                &mut m2,
                &staged2.problem,
                &o1.default_plan.strategy,
                case.cores,
            )
            .map_err(|e| mismatch(case, format!("default run failed: {e}")))?;
            let c2 = staged2
                .problem
                .c
                .download(&mut m2)
                .map_err(|e| mismatch(case, format!("download failed: {e}")))?;
            compare_bitwise(case, "tuned plan vs default plan", &c1, &c2)
        }
        OracleKind::CoexecEquivalence => {
            let (m, n, k) = (case.shape.m, case.shape.n, case.shape.k);

            // The same checkpointed single-cluster bitwise oracle the
            // failover oracles use: a co-executed CPU tail replays the
            // identical pinned plan and ckpt grid through the host
            // mirror, so backend identity is exactly cluster identity.
            let rcfg = ResilienceConfig {
                ckpt_rows: 4,
                ..ResilienceConfig::default()
            };
            let mut machine = Machine::with_mode(ExecMode::Fast);
            let staged = stage(&mut machine, &case.shape, case.seed, false)
                .map_err(|e| mismatch(case, format!("staging failed: {e}")))?;
            let pinned = ft.plan_full(&case.shape, case.strategy, case.cores);
            ft.run_plan_resilient(
                &mut machine,
                &staged.problem,
                &pinned.strategy,
                case.cores,
                &rcfg,
            )
            .map_err(|e| mismatch(case, format!("oracle run failed: {e}")))?;
            let want = staged
                .problem
                .c
                .download(&mut machine)
                .map_err(|e| mismatch(case, format!("oracle download failed: {e}")))?;

            // A deterministic per-case CPU model: host speeds spanning
            // the Fig. 7 crossover, so over a sweep the planner's pick
            // covers DSP-only, mixed and all-CPU splits.
            let mut rng = Rng64::new(case.seed);
            let cpu = match rng.range(0, 2) {
                0 => cpublas::CpuConfig::default(),
                1 => cpublas::CpuConfig {
                    clock_hz: 8.8e9,
                    ..cpublas::CpuConfig::default()
                },
                _ => cpublas::CpuConfig {
                    clock_hz: 2.2e12,
                    ddr_bw: 42.6e12,
                    barrier_s: 8e-9,
                    ..cpublas::CpuConfig::default()
                },
            };

            // The co-execution planner is deterministic, and its chosen
            // split is never predicted slower than the best single
            // backend (both degenerate candidates are always searched).
            let splan = ftimm::plan_coexec(
                ft,
                &case.shape,
                case.strategy,
                case.cores,
                &[0, 1],
                4,
                &cpu,
                1.0,
            );
            let replay = ftimm::plan_coexec(
                ft,
                &case.shape,
                case.strategy,
                case.cores,
                &[0, 1],
                4,
                &cpu,
                1.0,
            );
            if splan != replay {
                return Err(mismatch(
                    case,
                    format!("co-execution planning not deterministic: {splan:?} vs {replay:?}"),
                ));
            }
            let choice = ftimm::choose_coexec_split(
                ft,
                &case.shape,
                case.strategy,
                case.cores,
                2,
                4,
                &cpu,
                1.0,
            );
            if choice.predicted_s > choice.dsp_only_s || choice.predicted_s > choice.cpu_only_s {
                return Err(mismatch(
                    case,
                    format!("chosen split predicted slower than a single backend: {choice:?}"),
                ));
            }

            let cfg = ShardedConfig {
                engine: EngineConfig {
                    resilience: rcfg,
                    ..EngineConfig::default()
                },
                spill: SpillPolicy::CoExecute,
                cpu,
                ..ShardedConfig::default()
            };
            let mut eng = ShardedEngine::new(
                ClusterPool::new(&HwConfig::default(), ExecMode::Fast, 2),
                cfg,
            );
            let t = eng.register_tenant(TenantSpec::new("fuzz", 1));
            eng.submit(
                t,
                ShardedJob::gemm(
                    m,
                    n,
                    k,
                    staged.a.clone(),
                    staged.b.clone(),
                    staged.c0.clone(),
                    case.strategy,
                    case.cores,
                ),
            );
            let mut records = eng.run_all(ft);
            if records.len() != 1 {
                return Err(mismatch(
                    case,
                    format!("expected 1 terminal record, got {}", records.len()),
                ));
            }
            match records.remove(0).outcome {
                ShardedOutcome::Completed { c, report } => {
                    if !report.failovers.is_empty() {
                        return Err(mismatch(
                            case,
                            "fault-free co-executed run recorded a failover",
                        ));
                    }
                    let planned_cpu = splan
                        .shards
                        .iter()
                        .any(|s| s.backend == dspsim::BackendKind::Cpu);
                    if planned_cpu && eng.cpu_dispatches() == 0 {
                        return Err(mismatch(
                            case,
                            "plan placed a CPU shard but the lane never dispatched",
                        ));
                    }
                    compare_bitwise(case, "coexec vs single-cluster", &c, &want)
                }
                other => Err(mismatch(
                    case,
                    format!("co-executed run not completed: {}", other.label()),
                )),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Fuzz driver
// ---------------------------------------------------------------------

/// Aggregate outcome of a fuzz run.
#[derive(Debug, Default)]
pub struct FuzzSummary {
    /// Cases executed per regime, indexed parallel to [`Regime::ALL`].
    pub regime_counts: [usize; 4],
    /// Cases executed per oracle, indexed parallel to [`OracleKind::ALL`].
    pub oracle_counts: [usize; 13],
    /// Shrunk mismatches, in discovery order.
    pub mismatches: Vec<Mismatch>,
}

impl FuzzSummary {
    /// Render the per-regime coverage table the `conform` binary prints.
    pub fn coverage_table(&self) -> String {
        let mut s = String::from("regime       cases\n");
        for (i, r) in Regime::ALL.iter().enumerate() {
            s.push_str(&format!("{:<12} {}\n", r.tag(), self.regime_counts[i]));
        }
        s.push_str("\noracle             cases\n");
        for (i, o) in OracleKind::ALL.iter().enumerate() {
            s.push_str(&format!("{:<18} {}\n", o.tag(), self.oracle_counts[i]));
        }
        s
    }
}

/// Run `iters` seeded cases.  `progress` is invoked after each case with
/// `(index, &case, passed)`.  Mismatches are shrunk before being recorded.
pub fn run_fuzz(
    ft: &FtImm,
    run_seed: u64,
    iters: u64,
    mut progress: impl FnMut(u64, &CaseSpec, bool),
) -> FuzzSummary {
    let mut summary = FuzzSummary::default();
    for i in 0..iters {
        let case = generate_case(run_seed, i);
        let regime = Regime::classify(&case.shape);
        summary.regime_counts[Regime::ALL.iter().position(|&r| r == regime).unwrap()] += 1;
        summary.oracle_counts[OracleKind::ALL
            .iter()
            .position(|&o| o == case.oracle)
            .unwrap()] += 1;
        match check_case(ft, &case) {
            Ok(()) => progress(i, &case, true),
            Err(m) => {
                progress(i, &case, false);
                summary.mismatches.push(shrink(ft, &m));
            }
        }
    }
    summary
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

/// Budget of re-executions one shrink is allowed.
const SHRINK_BUDGET: usize = 48;

/// Greedily shrink a failing case: halve dimensions, drop cores to 1 and
/// simplify the strategy while the failure (any failure of the same
/// oracle) persists.  Returns the minimal case and its detail.
pub fn shrink(ft: &FtImm, failing: &Mismatch) -> Mismatch {
    let mut best = failing.clone();
    let mut budget = SHRINK_BUDGET;
    loop {
        let c = best.case;
        let mut candidates: Vec<CaseSpec> = Vec::new();
        let mut with_shape = |m: usize, n: usize, k: usize| {
            if (m, n, k) != (c.shape.m, c.shape.n, c.shape.k) && m > 0 && n > 0 && k > 0 {
                let mut x = c;
                x.shape = GemmShape::new(m, n, k);
                candidates.push(x);
            }
        };
        with_shape(c.shape.m / 2, c.shape.n, c.shape.k);
        with_shape(c.shape.m, c.shape.n / 2, c.shape.k);
        with_shape(c.shape.m, c.shape.n, c.shape.k / 2);
        with_shape(c.shape.m.saturating_sub(1), c.shape.n, c.shape.k);
        with_shape(c.shape.m, c.shape.n, c.shape.k.saturating_sub(1));
        if c.cores > 1 {
            let mut x = c;
            x.cores = 1;
            candidates.push(x);
        }
        if !matches!(
            c.strategy,
            Strategy::MPar | Strategy::KPar | Strategy::TGemm
        ) {
            for s in [Strategy::MPar, Strategy::KPar, Strategy::TGemm] {
                let mut x = c;
                x.strategy = s;
                candidates.push(x);
            }
        }
        let mut advanced = false;
        for cand in candidates {
            if budget == 0 {
                return best;
            }
            budget -= 1;
            if let Err(m) = check_case(ft, &cand) {
                best = m;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspsim::HwConfig;

    fn ft() -> FtImm {
        FtImm::new(HwConfig::default())
    }

    #[test]
    fn generated_cases_are_deterministic_and_cover_regimes() {
        let mut counts = [0usize; 4];
        for i in 0..16 {
            let a = generate_case(7, i);
            let b = generate_case(7, i);
            assert_eq!(a, b);
            let r = Regime::classify(&a.shape);
            counts[Regime::ALL.iter().position(|&x| x == r).unwrap()] += 1;
        }
        assert!(counts.iter().all(|&c| c == 4), "{counts:?}");
    }

    #[test]
    fn oracle_schedule_covers_every_oracle_regime_pairing() {
        let mut pairs = std::collections::HashSet::new();
        // Full coverage needs 13 regime rotations (52 iterations) for the
        // 13 oracles; run four cycles for slack against future growth of
        // either axis.
        for i in 0..208 {
            let c = generate_case(7, i);
            let o = OracleKind::ALL.iter().position(|&x| x == c.oracle).unwrap();
            pairs.insert((o, (i % 4) as usize));
        }
        assert_eq!(
            pairs.len(),
            OracleKind::ALL.len() * 4,
            "schedule must visit every (oracle, regime) pair"
        );
        assert_eq!(OracleKind::ALL.len() * 4, 52);
        // The drift formula only mixes when the effective step (7) stays
        // coprime to the oracle count — guard the invariant explicitly.
        let gcd = |mut a: usize, mut b: usize| {
            while b != 0 {
                (a, b) = (b, a % b);
            }
            a
        };
        assert_eq!(
            gcd(7, OracleKind::ALL.len()),
            1,
            "OracleKind::ALL length must stay coprime with the rotation step"
        );
    }

    #[test]
    fn interpret_sampler_preserves_regime_under_budget() {
        let mut rng = Rng64::new(11);
        for regime in Regime::ALL {
            for _ in 0..100 {
                let s = sample_for_interpret(regime, &mut rng);
                assert_eq!(Regime::classify(&s), regime, "{s}");
                assert!((s.m * s.n * s.k) as u64 <= INTERPRET_MAX_MNK, "{s}");
            }
        }
    }

    #[test]
    fn small_cases_pass_each_oracle() {
        let ft = ft();
        for oracle in OracleKind::ALL {
            let case = CaseSpec {
                seed: 3,
                shape: GemmShape::new(13, 17, 9),
                cores: 3,
                strategy: Strategy::MPar,
                oracle,
                fault_seed: matches!(
                    oracle,
                    OracleKind::FaultRecovery | OracleKind::ShardFailover | OracleKind::CpuFailover
                )
                .then_some(5),
            };
            check_case(&ft, &case).unwrap_or_else(|m| panic!("{m}"));
        }
    }

    #[test]
    fn scalar_scale_catches_a_seeded_corruption() {
        // Sanity that the harness *can* fail: corrupt the comparison by
        // scaling with a non-power-of-two and expect at least the bitwise
        // oracle to object for some element (3·x ≠ 2·(1.5·x) exactly is
        // false — so instead check a plain wrong-answer path: compare a
        // doubled C against an undoubled run).
        let ft = ft();
        let case = CaseSpec {
            seed: 3,
            shape: GemmShape::new(8, 8, 8),
            cores: 1,
            strategy: Strategy::MPar,
            oracle: OracleKind::ScalarScale,
            fault_seed: None,
        };
        let (c1, _, _) =
            run_simple(&ft, &case, ExecMode::Fast, case.strategy, true, None, None).unwrap();
        let (c2, _, _) = run_simple(
            &ft,
            &case,
            ExecMode::Fast,
            case.strategy,
            true,
            Some(2.0),
            None,
        )
        .unwrap();
        assert!(compare_bitwise(&case, "c2 vs c1-unscaled", &c2, &c1).is_err());
    }

    #[test]
    fn shrink_reduces_a_synthetic_failure() {
        // An always-failing predicate shrinks to the smallest shape the
        // predicate still covers; emulate with an impossible tolerance by
        // injecting a fault without the resilient path… simplest: a case
        // whose oracle is FaultRecovery but whose fault plan corrupts more
        // transfers than retries allow is hard to arrange determinis-
        // tically, so instead assert shrink() keeps a passing-case
        // mismatch unchanged (no candidate reproduces it).
        let ft = ft();
        let case = CaseSpec {
            seed: 3,
            shape: GemmShape::new(8, 8, 8),
            cores: 1,
            strategy: Strategy::MPar,
            oracle: OracleKind::Reference,
            fault_seed: None,
        };
        let fake = Mismatch {
            case,
            detail: "synthetic".into(),
        };
        let shrunk = shrink(&ft, &fake);
        assert_eq!(shrunk.case, case);
        assert_eq!(shrunk.detail, "synthetic");
    }

    #[test]
    fn kernel_specs_for_plan_cover_remainders() {
        let ft = ft();
        let shape = GemmShape::new(100, 33, 70);
        let plan = ft.plan(&shape, Strategy::MPar, 4);
        let specs = kernel_specs_for_plan(&plan, &shape);
        assert!(!specs.is_empty());
        for s in &specs {
            assert!(s.n_a <= kernelgen::MAX_NA);
        }
    }
}
