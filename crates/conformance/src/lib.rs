//! Differential conformance tooling for the FT-m7032 GEMM stack.
//!
//! Three pieces, one goal — catching any divergence between what the
//! kernel generator emits, what the simulator executes, and what the
//! mathematical reference says the answer is:
//!
//! * [`verifier`] — a static lint pass over [`ftimm_isa::Program`] that
//!   re-checks issue-width rules, unit-class membership, and RAW/WAW
//!   hazards against the latency table, independently of the simulator's
//!   runtime checks.
//! * [`fuzzer`] — a seeded differential fuzzer that executes randomized
//!   shapes through every execution mode, every executor entry point and
//!   a set of metamorphic oracles, and shrinks failures to minimal
//!   repros.
//! * [`corpus`] — JSON persistence for shrunk failures, replayed as a
//!   deterministic regression suite (`tests/fixtures/conformance/`).
//!
//! See DESIGN.md §7 for the architecture and the fixture schema.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod fuzzer;
pub mod regime;
pub mod rng;
pub mod verifier;

pub use corpus::{case_from_json, case_to_json, replay_dir, write_fixture, SCHEMA};
pub use fuzzer::{
    check_case, fault_plan_for, generate_case, run_fuzz, sample_for_interpret, shrink, CaseSpec,
    FuzzSummary, Mismatch, OracleKind,
};
pub use regime::Regime;
pub use rng::Rng64;
pub use verifier::{verify_kernel, verify_program, VerifyReport, Violation, ViolationKind};
