//! The fuzzer's shape-space partition.
//!
//! The paper's irregular-GEMM claims span four qualitatively different
//! shape regimes; the fuzzer samples each one explicitly so a coverage
//! table can prove none was starved.  [`Regime::classify`] is total over
//! positive shapes and is the inverse of [`Regime::sample`]: every
//! sampled shape classifies back to the regime that produced it (asserted
//! by the crate's tests and the workload round-trip suite).

use crate::rng::Rng64;
use ftimm::GemmShape;
use std::fmt;

/// One of the four sampled shape regimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Regime {
    /// `M ≫ N, K` — the paper's type-1 tall-skinny problems.
    TallSkinny,
    /// `K ≫ M, N` — the paper's type-2 (a short-wide output panel fed by
    /// a deep reduction).
    ShortWide,
    /// `K ≤ 8` — degenerate depth, where prologue/epilogue overheads and
    /// remainder handling dominate.
    TinyK,
    /// Everything comparable: `M ≈ K`, neither huge.
    Square,
}

/// `M` (or `K`) at or above this is "large" for classification.
const LARGE: usize = 256;
/// A dimension must exceed the other by this factor to dominate.
const DOMINANT: usize = 4;
/// `K` at or below this is "tiny" — shared with the core's shape
/// taxonomy so the sampler and the planner agree on the boundary.
const TINY_K: usize = ftimm::TINY_K_MAX;

impl Regime {
    /// All regimes, in the coverage-table row order.
    pub const ALL: [Regime; 4] = [
        Regime::TallSkinny,
        Regime::ShortWide,
        Regime::TinyK,
        Regime::Square,
    ];

    /// Classify a shape.  Total: every positive shape lands in exactly
    /// one regime (`TinyK` wins over the size-ratio rules, tall-skinny
    /// before short-wide).
    pub fn classify(shape: &GemmShape) -> Regime {
        if shape.k <= TINY_K {
            Regime::TinyK
        } else if shape.m >= LARGE && shape.m >= DOMINANT * shape.k {
            Regime::TallSkinny
        } else if shape.k >= LARGE && shape.k >= DOMINANT * shape.m {
            Regime::ShortWide
        } else {
            Regime::Square
        }
    }

    /// Sample a shape from this regime.  Shapes are deliberately modest
    /// (functional simulation runs per case) while still crossing every
    /// remainder boundary: `n` spans the full `1..=96` kernel range and
    /// `m`/`k` are drawn from ranges with awkward primes included.
    pub fn sample(self, rng: &mut Rng64) -> GemmShape {
        let n = rng.range(1, 96);
        match self {
            Regime::TallSkinny => {
                let m = rng.range(LARGE as u64, 768);
                let k = rng.range(9, (m / DOMINANT as u64).min(48));
                GemmShape::new(m as usize, n as usize, k as usize)
            }
            Regime::ShortWide => {
                let k = rng.range(LARGE as u64, 768);
                let m = rng.range(1, (k / DOMINANT as u64).min(48));
                GemmShape::new(m as usize, n as usize, k as usize)
            }
            Regime::TinyK => {
                let k = rng.range(1, TINY_K as u64);
                let m = rng.range(1, 192);
                GemmShape::new(m as usize, n as usize, k as usize)
            }
            Regime::Square => {
                let m = rng.range(9, 160);
                let k = rng.range(9, 160);
                GemmShape::new(m as usize, n as usize, k as usize)
            }
        }
    }

    /// Stable lower-case tag used in fixtures and the coverage table.
    pub fn tag(self) -> &'static str {
        match self {
            Regime::TallSkinny => "tall-skinny",
            Regime::ShortWide => "short-wide",
            Regime::TinyK => "tiny-k",
            Regime::Square => "square",
        }
    }

    /// Parse a [`Regime::tag`] back.
    pub fn from_tag(s: &str) -> Option<Regime> {
        Regime::ALL.iter().copied().find(|r| r.tag() == s)
    }
}

impl fmt::Display for Regime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_is_the_inverse_of_sampling() {
        let mut rng = Rng64::new(0xC0FFEE);
        for regime in Regime::ALL {
            for _ in 0..200 {
                let shape = regime.sample(&mut rng);
                assert_eq!(
                    Regime::classify(&shape),
                    regime,
                    "{shape} sampled from {regime}"
                );
            }
        }
    }

    #[test]
    fn paper_eval_shapes_land_where_expected() {
        assert_eq!(
            Regime::classify(&GemmShape::new(1 << 16, 32, 32)),
            Regime::TallSkinny
        );
        assert_eq!(
            Regime::classify(&GemmShape::new(32, 32, 1 << 16)),
            Regime::ShortWide
        );
        assert_eq!(Regime::classify(&GemmShape::new(512, 96, 4)), Regime::TinyK);
        assert_eq!(
            Regime::classify(&GemmShape::new(64, 32, 64)),
            Regime::Square
        );
    }

    #[test]
    fn tags_round_trip() {
        for r in Regime::ALL {
            assert_eq!(Regime::from_tag(r.tag()), Some(r));
        }
        assert_eq!(Regime::from_tag("noodle"), None);
    }
}
