//! The persisted mismatch corpus.
//!
//! Every mismatch the fuzzer finds is shrunk and serialised to a small
//! JSON fixture under `tests/fixtures/conformance/`; the repo's
//! integration suite replays every fixture on every CI run, so a bug
//! found once by fuzzing can never silently return.  Fixtures are
//! hand-rolled JSON via [`dspsim::minijson`] (the vendored `serde` is a
//! marker stub) and deliberately carry a *recipe*, not data: the case
//! seed regenerates the matrices and the fault plan exactly.
//!
//! Schema (`ftimm-conformance-case-v1`):
//!
//! ```json
//! {
//!   "schema": "ftimm-conformance-case-v1",
//!   "seed": 1234, "m": 40, "n": 17, "k": 5,
//!   "cores": 3, "strategy": "mpar", "oracle": "reference",
//!   "regime": "tiny-k",
//!   "fault_seed": 99,        // optional
//!   "note": "free-form text" // optional
//! }
//! ```
//!
//! Unknown keys are rejected so typos cannot silently disable a fixture.

use crate::fuzzer::{check_case, strategy_from_tag, strategy_tag, CaseSpec, Mismatch, OracleKind};
use crate::regime::Regime;
use dspsim::minijson::{quote, Parser, Value};
use ftimm::{FtImm, GemmShape};
use std::fs;
use std::path::{Path, PathBuf};

/// The fixture schema identifier.
pub const SCHEMA: &str = "ftimm-conformance-case-v1";

/// Serialise a case (plus an optional free-form note) to fixture JSON.
pub fn case_to_json(case: &CaseSpec, note: Option<&str>) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"schema\": {},\n", quote(SCHEMA)));
    s.push_str(&format!("  \"seed\": {},\n", case.seed));
    s.push_str(&format!(
        "  \"m\": {}, \"n\": {}, \"k\": {},\n",
        case.shape.m, case.shape.n, case.shape.k
    ));
    s.push_str(&format!("  \"cores\": {},\n", case.cores));
    s.push_str(&format!(
        "  \"strategy\": {},\n",
        quote(strategy_tag(case.strategy))
    ));
    s.push_str(&format!("  \"oracle\": {},\n", quote(case.oracle.tag())));
    if let Some(fs) = case.fault_seed {
        s.push_str(&format!("  \"fault_seed\": {fs},\n"));
    }
    if let Some(n) = note {
        s.push_str(&format!("  \"note\": {},\n", quote(n)));
    }
    s.push_str(&format!(
        "  \"regime\": {}\n",
        quote(Regime::classify(&case.shape).tag())
    ));
    s.push('}');
    s
}

fn field_u64(obj: &[(String, Value)], key: &str) -> Result<u64, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .ok_or_else(|| format!("missing key {key:?}"))?
        .1
        .as_u64(key)
}

fn field_str<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a str, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .ok_or_else(|| format!("missing key {key:?}"))?
        .1
        .as_str(key)
}

/// Parse a fixture back into a case.  Strict: bad schema, unknown keys,
/// unknown tags and regime/shape disagreement are all errors.
pub fn case_from_json(text: &str) -> Result<CaseSpec, String> {
    let v = Parser::new(text).parse()?;
    let obj = v.as_obj("fixture")?;
    const KNOWN: [&str; 10] = [
        "schema",
        "seed",
        "m",
        "n",
        "k",
        "cores",
        "strategy",
        "oracle",
        "regime",
        "fault_seed",
    ];
    for (k, _) in obj {
        if k != "note" && !KNOWN.contains(&k.as_str()) {
            return Err(format!("unknown key {k:?}"));
        }
    }
    let schema = field_str(obj, "schema")?;
    if schema != SCHEMA {
        return Err(format!("unsupported schema {schema:?} (want {SCHEMA:?})"));
    }
    let shape = GemmShape::new(
        field_u64(obj, "m")? as usize,
        field_u64(obj, "n")? as usize,
        field_u64(obj, "k")? as usize,
    );
    if shape.m == 0 || shape.n == 0 || shape.k == 0 {
        return Err(format!("degenerate shape {shape}"));
    }
    let regime_tag = field_str(obj, "regime")?;
    let regime =
        Regime::from_tag(regime_tag).ok_or_else(|| format!("unknown regime {regime_tag:?}"))?;
    if Regime::classify(&shape) != regime {
        return Err(format!(
            "fixture says regime {regime_tag:?} but {shape} classifies as {}",
            Regime::classify(&shape)
        ));
    }
    let strategy_s = field_str(obj, "strategy")?;
    let strategy =
        strategy_from_tag(strategy_s).ok_or_else(|| format!("unknown strategy {strategy_s:?}"))?;
    let oracle_s = field_str(obj, "oracle")?;
    let oracle =
        OracleKind::from_tag(oracle_s).ok_or_else(|| format!("unknown oracle {oracle_s:?}"))?;
    let fault_seed = match v.get("fault_seed") {
        Some(x) => Some(x.as_u64("fault_seed")?),
        None => None,
    };
    Ok(CaseSpec {
        seed: field_u64(obj, "seed")?,
        shape,
        cores: field_u64(obj, "cores")?.max(1) as usize,
        strategy,
        oracle,
        fault_seed,
    })
}

/// Write a shrunk mismatch as a fixture file; returns the path.  The
/// file name encodes the case so independent failures never collide.
pub fn write_fixture(dir: &Path, m: &Mismatch) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let c = &m.case;
    let name = format!(
        "{}-{}-{}x{}x{}-s{}.json",
        c.oracle.tag(),
        strategy_tag(c.strategy),
        c.shape.m,
        c.shape.n,
        c.shape.k,
        c.seed
    );
    let path = dir.join(name);
    fs::write(&path, case_to_json(c, Some(&m.detail)))?;
    Ok(path)
}

/// Outcome of replaying one fixture.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Fixture path.
    pub path: PathBuf,
    /// `Ok(())` if the case now conforms, `Err(why)` on parse failure or
    /// a still-reproducing mismatch.
    pub result: Result<(), String>,
}

/// Replay every `*.json` fixture in `dir` (sorted for determinism).
/// A missing directory is an empty corpus, not an error.
pub fn replay_dir(ft: &FtImm, dir: &Path) -> Vec<ReplayOutcome> {
    let mut paths: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect(),
        Err(_) => return Vec::new(),
    };
    paths.sort();
    paths
        .into_iter()
        .map(|path| {
            let result = fs::read_to_string(&path)
                .map_err(|e| format!("read: {e}"))
                .and_then(|text| case_from_json(&text))
                .and_then(|case| check_case(ft, &case).map_err(|m| m.to_string()));
            ReplayOutcome { path, result }
        })
        .collect()
}

/// The canonical corpus directory for this checkout
/// (`tests/fixtures/conformance/` at the workspace root).
pub fn default_corpus_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR of whichever crate compiled this is
    // <root>/crates/<name>; hop to the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("tests/fixtures/conformance")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftimm::Strategy;

    fn sample_case() -> CaseSpec {
        CaseSpec {
            seed: 1234,
            shape: GemmShape::new(40, 17, 5),
            cores: 3,
            strategy: Strategy::MPar,
            oracle: OracleKind::Reference,
            fault_seed: None,
        }
    }

    #[test]
    fn round_trips_through_json() {
        let case = sample_case();
        let text = case_to_json(&case, Some("note text with \"quotes\""));
        let back = case_from_json(&text).unwrap();
        assert_eq!(back, case);

        let mut with_fault = case;
        with_fault.oracle = OracleKind::FaultRecovery;
        with_fault.fault_seed = Some(99);
        let back = case_from_json(&case_to_json(&with_fault, None)).unwrap();
        assert_eq!(back, with_fault);
    }

    #[test]
    fn strict_parsing_rejects_bad_fixtures() {
        let case = sample_case();
        let good = case_to_json(&case, None);
        // Unknown key.
        let bad = good.replacen("\"seed\"", "\"sed\"", 1);
        assert!(case_from_json(&bad).is_err());
        // Wrong schema.
        let bad = good.replacen("case-v1", "case-v9", 1);
        assert!(case_from_json(&bad).is_err());
        // Regime disagreeing with the shape.
        let bad = good.replacen("\"tiny-k\"", "\"square\"", 1);
        assert!(case_from_json(&bad).is_err());
        // Degenerate shape.
        let bad = good.replacen("\"m\": 40", "\"m\": 0", 1);
        assert!(case_from_json(&bad).is_err());
        // Not JSON at all.
        assert!(case_from_json("]").is_err());
    }

    #[test]
    fn write_and_replay_round_trip() {
        let dir = std::env::temp_dir().join("ftimm-conformance-corpus-test");
        let _ = fs::remove_dir_all(&dir);
        let m = Mismatch {
            case: sample_case(),
            detail: "synthetic".into(),
        };
        let path = write_fixture(&dir, &m).unwrap();
        assert!(path.exists());
        let ft = FtImm::new(dspsim::HwConfig::default());
        let outcomes = replay_dir(&ft, &dir);
        assert_eq!(outcomes.len(), 1);
        // The sample case is a healthy one, so replay passes.
        outcomes[0].result.as_ref().unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_missing_dir_is_empty() {
        let ft = FtImm::new(dspsim::HwConfig::default());
        assert!(replay_dir(&ft, Path::new("/nonexistent/corpus")).is_empty());
    }
}
