//! The fuzzer's own tiny deterministic RNG.
//!
//! Case generation must be reproducible from `(seed, iteration)` alone —
//! across hosts, across releases, and independently of the vendored
//! `rand` stub's stream details — because persisted fixtures name the
//! case they shrank from by seed.  splitmix64 is the same finalizer
//! `dspsim::fault` uses for corruption offsets.

/// A splitmix64 stream.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// A stream for iteration `i` of a fuzz run: decorrelates per-case
    /// streams so shrinking one case never replays another's choices.
    pub fn for_case(seed: u64, case: u64) -> Self {
        let mut r = Rng64::new(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        r.next(); // discard the correlated first output
        r
    }

    /// Next raw 64-bit output.
    #[allow(clippy::should_implement_trait)] // deliberate: not an Iterator
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `lo..=hi` (inclusive; `hi < lo` collapses to `lo`).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next() % (hi - lo + 1)
    }

    /// Pick one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next() % items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng64::new(7);
            (0..8).map(|_| r.next()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng64::new(7);
            (0..8).map(|_| r.next()).collect()
        };
        assert_eq!(a, b);
        let mut r = Rng64::new(8);
        assert_ne!(a[0], r.next());
    }

    #[test]
    fn range_is_inclusive_and_clamped() {
        let mut r = Rng64::new(1);
        for _ in 0..1000 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
        }
        assert_eq!(r.range(9, 2), 9);
    }

    #[test]
    fn case_streams_decorrelate() {
        let mut a = Rng64::for_case(42, 0);
        let mut b = Rng64::for_case(42, 1);
        assert_ne!(
            (0..4).map(|_| a.next()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next()).collect::<Vec<_>>()
        );
    }
}
