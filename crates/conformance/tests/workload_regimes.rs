//! Every shape the workload generators emit must land somewhere in the
//! conformance fuzzer's regime partition — the partition is total, so a
//! workload shape the fuzzer could never reproduce would be a coverage
//! hole, not a crash.  Each classified regime must also round-trip: a
//! shape re-sampled from its own regime classifies back to it.

use conformance::{Regime, Rng64};
use ftimm::GemmShape;
use workloads::{
    gpt2_medium_head_projections, llama_like_head_projections, resnet_layers, vgg16_layers,
    FemBatch, KmeansInstance,
};

fn workload_shapes() -> Vec<(String, GemmShape)> {
    let mut shapes = Vec::new();
    for batch in [1, 4] {
        for (i, l) in vgg16_layers().iter().enumerate() {
            shapes.push((format!("vgg16[{i}]x{batch}"), l.gemm_shape(batch)));
        }
        for (i, l) in resnet_layers().iter().enumerate() {
            shapes.push((format!("resnet[{i}]x{batch}"), l.gemm_shape(batch)));
        }
    }
    for tokens in [16, 512] {
        for (i, p) in gpt2_medium_head_projections(tokens).iter().enumerate() {
            shapes.push((format!("gpt2[{i}]t{tokens}"), p.gemm_shape()));
        }
        for (i, p) in llama_like_head_projections(tokens).iter().enumerate() {
            shapes.push((format!("llama[{i}]t{tokens}"), p.gemm_shape()));
        }
    }
    shapes.push((
        "fem".into(),
        FemBatch::generate(64, 24, 24, 24, 3).gemm_shape(),
    ));
    shapes.push((
        "kmeans".into(),
        KmeansInstance::generate(4096, 16, 8, 3).gemm_shape(),
    ));
    shapes
}

#[test]
fn every_workload_shape_classifies() {
    let shapes = workload_shapes();
    assert!(
        shapes.len() > 40,
        "workload sweep shrank to {}",
        shapes.len()
    );
    let mut covered = [false; 4];
    for (name, shape) in &shapes {
        assert!(
            shape.m > 0 && shape.n > 0 && shape.k > 0,
            "{name}: degenerate {shape}"
        );
        let regime = Regime::classify(shape);
        covered[Regime::ALL.iter().position(|&r| r == regime).unwrap()] = true;
    }
    // The suite spans convolution, attention, FEM and k-means; together
    // they must hit more than one regime or the partition is mis-tuned.
    assert!(
        covered.iter().filter(|&&c| c).count() >= 2,
        "workloads collapsed into one regime: {covered:?}"
    );
}

#[test]
fn classified_regimes_round_trip_through_sampling() {
    let mut rng = Rng64::new(2024);
    for (name, shape) in workload_shapes() {
        let regime = Regime::classify(&shape);
        for _ in 0..20 {
            let resampled = regime.sample(&mut rng);
            assert_eq!(
                Regime::classify(&resampled),
                regime,
                "{name}: {shape} -> {regime} resampled {resampled}"
            );
        }
    }
}
