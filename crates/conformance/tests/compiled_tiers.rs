//! Property sweep of the three host execution tiers.
//!
//! The tier contract is *bitwise* identity: the SIMD lowering
//! (`ExecMode::Compiled`), the scalar mirror (`ExecMode::Fast`) and the
//! hazard-checking interpreter (`ExecMode::Interpret`) must produce
//! bit-identical `C` and the same simulated seconds for every shape,
//! strategy and core count.  The sweep draws shapes from each of the
//! fuzzer's four regimes (under the interpreter flop budget so the
//! debug-build run stays fast) and fills the operands adversarially —
//! mixed magnitudes across ~40 binades, signed zeros and subnormals —
//! so any tier that reorders an accumulation, flushes denormals or
//! contracts differently is caught by exact bit comparison, not hidden
//! inside a tolerance.

use conformance::{sample_for_interpret, Regime, Rng64};
use dspsim::{ExecMode, HwConfig, Machine};
use ftimm::{FtImm, GemmProblem, GemmShape, Strategy};
use proptest::prelude::*;

/// Mixed-magnitude adversarial fill: signed zeros, subnormals and values
/// spanning 2^-20 … 2^19, the regime where a wrong accumulation order or
/// a fused-vs-unfused multiply-add shows up in the low mantissa bits.
fn adversarial_fill(n: usize, rng: &mut Rng64) -> Vec<f32> {
    (0..n)
        .map(|_| match rng.range(0, 9) {
            0 => 0.0,
            1 => -0.0,
            2 => f32::MIN_POSITIVE / 4.0, // subnormal
            3 => -f32::MIN_POSITIVE / 4.0,
            _ => {
                let e = rng.range(0, 39) as i32 - 20;
                let mant = 1.0 + (rng.range(0, 999) as f32) / 1000.0;
                let sign = if rng.range(0, 1) == 0 { 1.0 } else { -1.0 };
                sign * mant * (2.0f32).powi(e)
            }
        })
        .collect()
}

/// Run one GEMM of `shape` under `mode` with seeded adversarial
/// operands; returns `(C, simulated seconds)`.
fn run_tier(
    ft: &FtImm,
    shape: &GemmShape,
    strategy: Strategy,
    cores: usize,
    fill_seed: u64,
    mode: ExecMode,
) -> (Vec<f32>, f64) {
    let mut m = Machine::with_mode(mode);
    let p = GemmProblem::alloc(&mut m, shape.m, shape.n, shape.k).unwrap();
    let mut rng = Rng64::new(fill_seed);
    let a = adversarial_fill(shape.m * shape.k, &mut rng);
    let b = adversarial_fill(shape.k * shape.n, &mut rng);
    let c0 = adversarial_fill(shape.m * shape.n, &mut rng);
    p.a.upload(&mut m, &a).unwrap();
    p.b.upload(&mut m, &b).unwrap();
    p.c.upload(&mut m, &c0).unwrap();
    let (report, _) = ft.gemm(&mut m, &p, strategy, cores).unwrap();
    (p.c.download(&mut m).unwrap(), report.seconds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn compiled_fast_and_interpret_agree_bitwise(
        regime_ix in 0usize..4,
        strat_ix in 0usize..3,
        cores in 1usize..5,
        seed in 1u64..100_000,
    ) {
        let regime = Regime::ALL[regime_ix];
        let mut rng = Rng64::new(seed);
        let shape = sample_for_interpret(regime, &mut rng);
        let strategy = [Strategy::MPar, Strategy::KPar, Strategy::TGemm][strat_ix];
        let ft = FtImm::new(HwConfig::default());

        let (cc, tc) = run_tier(&ft, &shape, strategy, cores, seed, ExecMode::Compiled);
        let (cf, tf) = run_tier(&ft, &shape, strategy, cores, seed, ExecMode::Fast);
        let (ci, ti) = run_tier(&ft, &shape, strategy, cores, seed, ExecMode::Interpret);

        for i in 0..cc.len() {
            prop_assert_eq!(
                cc[i].to_bits(), cf[i].to_bits(),
                "{} {:?} cores={}: compiled vs fast at {} ({} vs {})",
                shape, strategy, cores, i, cc[i], cf[i]
            );
            prop_assert_eq!(
                cc[i].to_bits(), ci[i].to_bits(),
                "{} {:?} cores={}: compiled vs interpret at {} ({} vs {})",
                shape, strategy, cores, i, cc[i], ci[i]
            );
        }
        prop_assert!((tc - tf).abs() < 1e-15, "seconds: compiled {} vs fast {}", tc, tf);
        prop_assert!((tc - ti).abs() < 1e-15, "seconds: compiled {} vs interpret {}", tc, ti);
    }
}

/// The compiled memo services repeated shapes from cache: re-running the
/// same problem must not lower the kernels again, and the hit counters
/// must move.
#[test]
fn executor_memo_reuses_lowerings_across_runs() {
    let ft = FtImm::new(HwConfig::default());
    let shape = GemmShape::new(24, 33, 17);
    let first = run_tier(&ft, &shape, Strategy::MPar, 2, 7, ExecMode::Compiled);
    let after_first = ft.executor_stats();
    assert!(after_first.compiles > 0, "first run must lower kernels");
    let second = run_tier(&ft, &shape, Strategy::MPar, 2, 7, ExecMode::Compiled);
    let after_second = ft.executor_stats();
    assert_eq!(
        after_second.compiles, after_first.compiles,
        "identical re-run must be served from the executor memo"
    );
    assert!(after_second.hits > after_first.hits);
    for (x, y) in first.0.iter().zip(&second.0) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

/// Capacity 0 disables memoisation but stays correct and bit-identical
/// to the memoised context.
#[test]
fn executor_capacity_zero_is_uncached_but_identical() {
    let cached = FtImm::new(HwConfig::default());
    let uncached = FtImm::with_cache_capacities(HwConfig::default(), 0, 0);
    let shape = GemmShape::new(19, 40, 23);
    let (cw, _) = run_tier(&cached, &shape, Strategy::KPar, 2, 11, ExecMode::Compiled);
    let (co, _) = run_tier(&uncached, &shape, Strategy::KPar, 2, 11, ExecMode::Compiled);
    let stats = uncached.executor_stats();
    assert_eq!(stats.len, 0, "capacity 0 must not retain entries");
    assert_eq!(stats.capacity, 0);
    for (x, y) in cw.iter().zip(&co) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}
