//! Configuration and report types are value types with serde support
//! (they are embedded in experiment records and bench metadata).

use dspsim::{
    BackendKind, CoreStats, Dma2d, DmaPath, ExecMode, FaultPlan, FaultStats, HwConfig,
    PhaseProfile, RunReport, WatchdogConfig,
};

/// Compile-time assertion that a type round-trips through serde.
fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}

#[test]
fn public_value_types_implement_serde() {
    assert_serde::<HwConfig>();
    assert_serde::<CoreStats>();
    assert_serde::<RunReport>();
    assert_serde::<Dma2d>();
    assert_serde::<DmaPath>();
    assert_serde::<ExecMode>();
    assert_serde::<BackendKind>();
    assert_serde::<FaultPlan>();
    assert_serde::<FaultStats>();
    assert_serde::<PhaseProfile>();
    assert_serde::<WatchdogConfig>();
}

#[test]
fn hw_config_equality_is_field_wise() {
    let a = HwConfig::default();
    let mut b = a.clone();
    assert_eq!(a, b);
    b.ddr_efficiency = 0.5;
    assert_ne!(a, b);
}

#[test]
fn core_stats_and_report_are_copyable_value_types() {
    let a = CoreStats {
        flops: 10,
        ..CoreStats::default()
    };
    let b = a;
    assert_eq!(a, b);
    let r = RunReport {
        seconds: 1.0,
        useful_flops: 2,
        totals: a,
        cores_used: 8,
        backend: BackendKind::Dsp,
        faults: FaultStats::default(),
        profile: None,
    };
    let r2 = r;
    assert_eq!(r, r2);
}
