//! Property tests on the stats aggregation layer: merging the counters
//! of N separate runs must equal the counters of one combined run.

use dspsim::{CoreStats, ExecMode, FaultStats, Machine};
use proptest::prelude::*;

fn arb_core_stats() -> impl Strategy<Value = CoreStats> {
    (
        (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
        (0u64..1 << 40, 0u64..1 << 40),
        (0u64..1 << 20, 0u64..1 << 20),
    )
        .prop_map(
            |(
                (compute_cycles, instructions, flops),
                (ddr_bytes, gsm_bytes),
                (dma_transfers, kernel_calls),
            )| CoreStats {
                compute_cycles,
                instructions,
                flops,
                ddr_bytes,
                gsm_bytes,
                dma_transfers,
                kernel_calls,
            },
        )
}

fn arb_fault_stats() -> impl Strategy<Value = FaultStats> {
    (
        (0u64..1 << 20, 0u64..1 << 20, 0u64..1 << 20, 0u64..8),
        (0u64..1 << 20, 0u64..1 << 20, 0u64..1 << 20, 0u64..1 << 20),
    )
        .prop_map(
            |(
                (dma_corruptions, dma_timeouts, bit_flips, cores_lost),
                (watchdog_trips, retries, recomputed_tiles, rows_reexecuted),
            )| FaultStats {
                dma_corruptions,
                dma_timeouts,
                bit_flips,
                cores_lost,
                watchdog_trips,
                retries,
                recomputed_tiles,
                rows_reexecuted,
            },
        )
}

fn fold_core(stats: &[CoreStats]) -> CoreStats {
    let mut acc = CoreStats::default();
    for s in stats {
        acc.merge(s);
    }
    acc
}

fn fold_fault(stats: &[FaultStats]) -> FaultStats {
    let mut acc = FaultStats::default();
    for s in stats {
        acc.merge(s);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn core_stats_merge_is_field_wise_sum(
        stats in prop::collection::vec(arb_core_stats(), 1..8),
    ) {
        let merged = fold_core(&stats);
        prop_assert_eq!(
            merged.flops,
            stats.iter().map(|s| s.flops).sum::<u64>()
        );
        prop_assert_eq!(
            merged.compute_cycles,
            stats.iter().map(|s| s.compute_cycles).sum::<u64>()
        );
        prop_assert_eq!(
            merged.ddr_bytes + merged.gsm_bytes,
            stats.iter().map(|s| s.ddr_bytes + s.gsm_bytes).sum::<u64>()
        );
        prop_assert_eq!(
            merged.dma_transfers + merged.kernel_calls + merged.instructions,
            stats
                .iter()
                .map(|s| s.dma_transfers + s.kernel_calls + s.instructions)
                .sum::<u64>()
        );
    }

    #[test]
    fn merge_is_order_independent(
        mut stats in prop::collection::vec(arb_core_stats(), 2..8),
        faults in prop::collection::vec(arb_fault_stats(), 2..8),
    ) {
        let forward = fold_core(&stats);
        stats.reverse();
        prop_assert_eq!(forward, fold_core(&stats));

        let forward = fold_fault(&faults);
        let mut rev = faults.clone();
        rev.reverse();
        prop_assert_eq!(forward, fold_fault(&rev));
    }

    #[test]
    fn fault_stats_merge_preserves_injected_total(
        faults in prop::collection::vec(arb_fault_stats(), 1..8),
    ) {
        let merged = fold_fault(&faults);
        prop_assert_eq!(
            merged.injected(),
            faults.iter().map(|f| f.injected()).sum::<u64>()
        );
        prop_assert_eq!(
            merged.retries + merged.recomputed_tiles + merged.rows_reexecuted,
            faults
                .iter()
                .map(|f| f.retries + f.recomputed_tiles + f.rows_reexecuted)
                .sum::<u64>()
        );
    }

    #[test]
    fn merged_per_run_reports_equal_one_combined_run(
        cycles in prop::collection::vec(1u64..2000, 1..6),
    ) {
        // N runs on fresh machines, one report each, totals merged —
        // must equal a single machine executing all the work and
        // reporting once (the counters are pure accumulators).
        let mut merged = CoreStats::default();
        for (i, &cy) in cycles.iter().enumerate() {
            let mut m = Machine::with_mode(ExecMode::Timing);
            let core = i % 4;
            m.compute(core, cy);
            m.stall(core, 1e-9);
            let rep = m.report(0, &[core]);
            merged.merge(&rep.totals);
        }

        let mut m = Machine::with_mode(ExecMode::Timing);
        for (i, &cy) in cycles.iter().enumerate() {
            m.compute(i % 4, cy);
            m.stall(i % 4, 1e-9);
        }
        let ids: Vec<usize> = (0..4.min(cycles.len())).collect();
        let combined = m.report(0, &ids);
        prop_assert_eq!(merged, combined.totals);
    }
}
