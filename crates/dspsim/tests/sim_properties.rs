//! Property tests on the simulator substrate: memory regions, DMA
//! descriptors and the clock calculus.

use dspsim::{transfer_time, Dma2d, DmaPath, ExecMode, HwConfig, Machine, MemRegion};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn region_write_read_round_trip(
        offset in 0u64..1000,
        values in prop::collection::vec(-1e6f32..1e6, 1..64),
    ) {
        let mut r = MemRegion::fixed("AM", 8192);
        r.write_f32_slice(offset, &values).unwrap();
        let mut out = vec![0.0f32; values.len()];
        r.read_f32_slice(offset, &mut out).unwrap();
        prop_assert_eq!(values, out);
    }

    #[test]
    fn oob_never_panics(
        offset in 0u64..u64::MAX,
        len in 1u64..(1u64 << 20),
    ) {
        let mut r = MemRegion::fixed("SM", 4096);
        // Succeeds exactly when the range fits; errors otherwise; never
        // panics, even near u64 overflow.
        let fits = offset.checked_add(len).is_some_and(|end| end <= 4096);
        match r.zero(offset, len) {
            Ok(()) => prop_assert!(fits, "accepted [{offset}, +{len})"),
            Err(_) => prop_assert!(!fits, "rejected in-bounds [{offset}, +{len})"),
        }
    }

    #[test]
    fn dma_2d_copies_exact_blocks(
        rows in 1u64..8,
        cols in 1u64..16,
        src_ld in 16u64..32,
        dst_ld in 16u64..32,
    ) {
        prop_assume!(cols <= src_ld && cols <= dst_ld);
        let mut m = Machine::with_mode(ExecMode::Fast);
        for r in 0..rows {
            for c in 0..cols {
                m.ddr.write_f32((r * src_ld + c) * 4, (r * 100 + c) as f32).unwrap();
            }
        }
        m.dma_sync(0, DmaPath::DdrToAm, &Dma2d::block_f32(rows, cols, 0, src_ld, 0, dst_ld))
            .unwrap();
        for r in 0..rows {
            for c in 0..cols {
                let got = m.core_mut(0).am.read_f32((r * dst_ld + c) * 4).unwrap();
                prop_assert_eq!(got, (r * 100 + c) as f32);
            }
        }
    }

    #[test]
    fn transfer_time_is_monotone(
        bytes_a in 1u64..(1 << 28),
        bytes_b in 1u64..(1 << 28),
        streams in 1usize..9,
    ) {
        let cfg = HwConfig::default();
        let (small, big) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        for path in [DmaPath::DdrToAm, DmaPath::GsmToAm] {
            let ts = transfer_time(&cfg, path, small, streams);
            let tb = transfer_time(&cfg, path, big, streams);
            prop_assert!(tb >= ts);
            // More streams never make an individual transfer faster.
            let t1 = transfer_time(&cfg, path, big, 1);
            prop_assert!(tb >= t1 - 1e-15);
        }
    }

    #[test]
    fn clock_calculus_never_goes_backwards(
        steps in prop::collection::vec((0u64..10_000, 1u64..(1 << 20)), 1..20),
    ) {
        let mut m = Machine::with_mode(ExecMode::Timing);
        let mut last = 0.0f64;
        for (cycles, bytes) in steps {
            let t = m.dma(0, DmaPath::DdrToAm, &Dma2d::flat(0, 0, bytes)).unwrap();
            m.compute(0, cycles);
            m.wait(0, t);
            let now = m.core_time(0);
            prop_assert!(now >= last);
            last = now;
        }
    }
}
