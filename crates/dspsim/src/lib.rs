//! # dspsim
//!
//! A deterministic simulator of one GPDSP cluster of the FT-m7032
//! heterogeneous processor (§II of the CLUSTER 2022 ftIMM paper):
//! eight VLIW DSP cores with software-managed SM/AM scratchpads, a shared
//! 6 MB GSM, per-core DMA engines and a 42.6 GB/s DDR partition.
//!
//! The simulator is *functional* — generated kernels are interpreted
//! bit-exactly against simulated register files and scratchpads — and
//! *cycle-approximate*: every core carries a compute clock and a DMA-engine
//! clock, transfers cost `setup + bytes/bandwidth` with deterministic
//! bandwidth sharing, and double-buffering overlap emerges from the clock
//! calculus (`done[i] = max(dma_done[i], done[i-1]) + compute[i]`).
//!
//! Nothing here depends on wall-clock time or iteration order of hash
//! containers; identical inputs give identical reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod core;
pub mod dma;
pub mod error;
pub mod exec;
pub mod fault;
pub mod machine;
pub mod mem;
pub mod minijson;
pub mod planfile;
pub mod profiler;
pub mod stats;
pub mod trace;

pub use crate::core::Core;
pub use config::HwConfig;
pub use dma::{transfer_time, Dma2d, DmaPath, DmaTicket, WatchdogConfig};
pub use error::{SimError, WatchdogUnit};
pub use exec::{run_program, ExecReport, KernelBindings};
pub use fault::{
    ClusterFailure, CoreFailure, CpuFailure, CpuSlowdown, DmaFault, DmaFaultKind, FaultPlan,
    MemFault, MemTarget,
};
pub use machine::{Cluster, ExecMode, Machine, DDR_CAPACITY};
pub use mem::MemRegion;
pub use profiler::{
    phase_of_path, EventKind, Phase, PhaseProfile, Profiler, SimEvent, Span,
    DEFAULT_PROFILE_CAPACITY, PHASE_COUNT, PROFILE_CORES,
};
pub use stats::{BackendKind, CoreStats, FaultStats, RunReport};
pub use trace::{run_traced, ExecTrace};
