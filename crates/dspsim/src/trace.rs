//! Execution traces: per-cycle unit occupancy recorded during
//! interpretation, rendered as a text timeline.  Useful for inspecting
//! how a generated schedule actually issues (fill, steady state, drain)
//! and for verifying occupancy claims in tests.

use crate::{Core, KernelBindings, SimError};
use ftimm_isa::{LatencyTable, Program, Unit};
use std::fmt;

/// A recorded trace: one entry per executed cycle, each a bitmask over
/// [`Unit::ALL`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecTrace {
    /// Occupancy masks, one per cycle (bit *i* = `Unit::ALL[i]` issued).
    pub cycles: Vec<u16>,
}

impl ExecTrace {
    fn unit_bit(unit: Unit) -> u16 {
        // Infallible mirror of the `Unit::ALL` row order.
        let bit = match unit {
            Unit::ScalarLs1 => 0,
            Unit::ScalarLs2 => 1,
            Unit::ScalarFmac1 => 2,
            Unit::ScalarFmac2 => 3,
            Unit::Sieu => 4,
            Unit::Control => 5,
            Unit::VectorLs1 => 6,
            Unit::VectorLs2 => 7,
            Unit::VectorFmac1 => 8,
            Unit::VectorFmac2 => 9,
            Unit::VectorFmac3 => 10,
            Unit::VectorMisc => 11,
        };
        1 << bit
    }

    /// Number of traced cycles.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Occupancy of a unit across the trace.
    pub fn occupancy(&self, unit: Unit) -> f64 {
        if self.cycles.is_empty() {
            return 0.0;
        }
        let bit = Self::unit_bit(unit);
        let busy = self.cycles.iter().filter(|&&m| m & bit != 0).count();
        busy as f64 / self.cycles.len() as f64
    }

    /// Cycles where no unit issued (pipeline bubbles).
    pub fn idle_cycles(&self) -> usize {
        self.cycles.iter().filter(|&&m| m == 0).count()
    }

    /// Render a window of the trace as rows of `#`/`.` per unit.
    pub fn render_window(&self, start: usize, len: usize) -> String {
        let end = (start + len).min(self.cycles.len());
        let mut out = String::new();
        for (i, unit) in Unit::ALL.iter().enumerate() {
            let bit = 1u16 << i;
            let row: String = self.cycles[start..end]
                .iter()
                .map(|m| if m & bit != 0 { '#' } else { '.' })
                .collect();
            if row.contains('#') {
                out.push_str(&format!("{:<20} {row}\n", unit.row_label()));
            }
        }
        out
    }
}

impl fmt::Display for ExecTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_window(0, self.cycles.len().min(120)))
    }
}

/// Interpret a program while recording the per-cycle unit occupancy.
///
/// Functionally identical to [`crate::run_program`]; the trace costs one
/// `u16` per cycle.
pub fn run_traced(
    core: &mut Core,
    program: &Program,
    bind: KernelBindings,
    lat: &LatencyTable,
) -> Result<(crate::ExecReport, ExecTrace), SimError> {
    // Pre-record the occupancy (purely structural), then execute.
    let mut trace = ExecTrace::default();
    program.visit::<SimError>(&mut |_idx, bundle| {
        let mut mask = 0u16;
        for (unit, _inst) in bundle.iter() {
            mask |= ExecTrace::unit_bit(unit);
        }
        trace.cycles.push(mask);
        Ok(())
    })?;
    let report = crate::run_program(core, program, bind, lat, true)?;
    debug_assert_eq!(report.cycles as usize, trace.len());
    Ok((report, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HwConfig;
    use ftimm_isa::{AddrExpr, BufId, Bundle, Instruction, MemSpace, Section, VReg};

    fn v(n: u16) -> VReg {
        VReg::new(n).unwrap()
    }

    fn program() -> Program {
        let mut p = Program::new("traced");
        let mut b1 = Bundle::new();
        b1.push_auto(Instruction::vldw(
            v(0),
            AddrExpr::flat(MemSpace::Am, BufId::B, 0),
        ))
        .unwrap();
        let gap = Bundle::new();
        let mut b2 = Bundle::new();
        b2.push_auto(Instruction::vfadds32(v(1), v(0), v(0)))
            .unwrap();
        b2.push_auto(Instruction::vclr(v(2))).unwrap();
        p.sections.push(Section::Straight(vec![
            b1,
            gap.clone(),
            gap.clone(),
            gap.clone(),
            gap,
            b2,
        ]));
        p
    }

    #[test]
    fn trace_matches_execution() {
        let cfg = HwConfig::default();
        let mut core = Core::new(0, &cfg);
        let bind = KernelBindings {
            a_off: 0,
            b_off: 0,
            c_off: 0,
        };
        let (report, trace) = run_traced(&mut core, &program(), bind, &cfg.latencies).unwrap();
        assert_eq!(report.cycles as usize, trace.len());
        assert_eq!(trace.len(), 6);
        assert_eq!(trace.idle_cycles(), 4);
        assert!((trace.occupancy(Unit::VectorLs1) - 1.0 / 6.0).abs() < 1e-12);
        assert!((trace.occupancy(Unit::VectorFmac1) - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(trace.occupancy(Unit::Control), 0.0);
    }

    #[test]
    fn render_shows_active_rows_only() {
        let cfg = HwConfig::default();
        let mut core = Core::new(0, &cfg);
        let bind = KernelBindings {
            a_off: 0,
            b_off: 0,
            c_off: 0,
        };
        let (_, trace) = run_traced(&mut core, &program(), bind, &cfg.latencies).unwrap();
        let s = trace.to_string();
        assert!(s.contains("Vector Load&Store1"));
        assert!(s.contains("Vector Misc"));
        assert!(!s.contains("Scalar FMAC1"), "idle units omitted:\n{s}");
        assert!(s.contains('#'));
        assert!(s.contains('.'));
    }

    #[test]
    fn unit_bits_mirror_canonical_row_order() {
        for (i, &u) in Unit::ALL.iter().enumerate() {
            assert_eq!(ExecTrace::unit_bit(u), 1 << i, "bit order drift at {u:?}");
        }
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = ExecTrace::default();
        assert_eq!(t.occupancy(Unit::Control), 0.0);
        assert!(t.is_empty());
        assert_eq!(t.render_window(0, 10), "");
    }
}
