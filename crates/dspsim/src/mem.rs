//! Byte-addressed memory regions with f32 views and bump allocation.
//!
//! All four memory levels (DDR, GSM, SM, AM) use the same region type;
//! scratchpads are fixed-capacity, DDR grows on demand up to its capacity.

use crate::SimError;

/// One memory region.
#[derive(Debug, Clone)]
pub struct MemRegion {
    name: &'static str,
    data: Vec<u8>,
    capacity: u64,
    /// Bump-allocation watermark.
    watermark: u64,
    growable: bool,
    /// Reads observed since a flip was scheduled (untouched — and never
    /// counted — while no flips are pending, so fault-free runs pay
    /// nothing).
    reads: u64,
    /// Scheduled bit flips: `(nth_read, rng_word)`, ascending by read
    /// count.  The flip damages the stored bytes *in place* (a fault at
    /// rest), so it persists until the location is overwritten.
    pending_flips: Vec<(u64, u64)>,
    /// Flips that have fired.
    flips_applied: u64,
}

impl MemRegion {
    /// A fixed-size scratchpad, eagerly zero-initialised.
    pub fn fixed(name: &'static str, capacity: usize) -> Self {
        MemRegion {
            name,
            data: vec![0; capacity],
            capacity: capacity as u64,
            watermark: 0,
            growable: false,
            reads: 0,
            pending_flips: Vec::new(),
            flips_applied: 0,
        }
    }

    /// A lazily grown region (DDR): backing storage grows as touched.
    pub fn growable(name: &'static str, capacity: u64) -> Self {
        MemRegion {
            name,
            data: Vec::new(),
            capacity,
            watermark: 0,
            growable: true,
            reads: 0,
            pending_flips: Vec::new(),
            flips_applied: 0,
        }
    }

    /// Region name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently bump-allocated.
    pub fn allocated(&self) -> u64 {
        self.watermark
    }

    fn ensure(&mut self, offset: u64, len: u64) -> Result<(), SimError> {
        let end = offset.checked_add(len).ok_or(SimError::OutOfBounds {
            region: self.name,
            offset,
            len,
            capacity: self.capacity,
        })?;
        if end > self.capacity {
            return Err(SimError::OutOfBounds {
                region: self.name,
                offset,
                len,
                capacity: self.capacity,
            });
        }
        if self.growable && self.data.len() < end as usize {
            self.data.resize(end as usize, 0);
        }
        Ok(())
    }

    /// Bump-allocate `bytes`, aligned to `align` (power of two), returning
    /// the byte offset.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> Result<u64, SimError> {
        debug_assert!(align.is_power_of_two());
        let start = (self.watermark + align - 1) & !(align - 1);
        if start + bytes > self.capacity {
            return Err(SimError::AllocFailure {
                region: self.name,
                requested: bytes,
                available: self.capacity.saturating_sub(start),
            });
        }
        self.ensure(start, bytes)?;
        self.watermark = start + bytes;
        Ok(start)
    }

    /// Release all bump allocations (contents are preserved).
    pub fn reset_alloc(&mut self) {
        self.watermark = 0;
    }

    /// Arm a bit flip on the `nth_read`-th read (1-based, counted from
    /// now); `rng` deterministically picks the flipped word within the
    /// accessed range.
    pub fn schedule_flip(&mut self, nth_read: u64, rng: u64) {
        let base = self.reads;
        self.pending_flips.push((base + nth_read, rng));
        self.pending_flips.sort_unstable();
    }

    /// Bit flips that have fired in this region.
    pub fn flips_applied(&self) -> u64 {
        self.flips_applied
    }

    /// Flip the exponent MSB (bit 30) of the f32 at `offset` in place —
    /// the DMA corruption primitive.
    pub(crate) fn flip_f32_msb(&mut self, offset: u64) -> Result<(), SimError> {
        self.ensure(offset, 4)?;
        self.data[offset as usize + 3] ^= 0x40;
        Ok(())
    }

    /// Fault hook, called on each read access *after* bounds are ensured.
    /// Free when nothing is armed: the read counter only ticks while a
    /// flip is pending, so fault-free runs take one branch and return.
    #[inline]
    fn fault_hook(&mut self, offset: u64, len: u64) {
        if self.pending_flips.is_empty() || len == 0 {
            return;
        }
        self.reads += 1;
        while let Some(&(nth, rng)) = self.pending_flips.first() {
            if nth > self.reads {
                break;
            }
            self.pending_flips.remove(0);
            // Flip bit 30 (exponent MSB) of one f32-aligned word in the
            // accessed range: non-zero values change by orders of
            // magnitude, zeros become 2.0 — both detectable by checksums.
            if len >= 4 {
                let word = rng % (len / 4);
                let msb = (offset + word * 4 + 3) as usize;
                self.data[msb] ^= 0x40;
            } else {
                self.data[offset as usize] ^= 0x40;
            }
            self.flips_applied += 1;
        }
    }

    /// Read one f32 (little-endian).
    pub fn read_f32(&mut self, offset: u64) -> Result<f32, SimError> {
        self.ensure(offset, 4)?;
        self.fault_hook(offset, 4);
        let o = offset as usize;
        let bytes = [
            self.data[o],
            self.data[o + 1],
            self.data[o + 2],
            self.data[o + 3],
        ];
        Ok(f32::from_le_bytes(bytes))
    }

    /// Write one f32 (little-endian).
    pub fn write_f32(&mut self, offset: u64, value: f32) -> Result<(), SimError> {
        self.ensure(offset, 4)?;
        self.data[offset as usize..offset as usize + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Read `count` consecutive f32 into `out`.
    pub fn read_f32_slice(&mut self, offset: u64, out: &mut [f32]) -> Result<(), SimError> {
        self.ensure(offset, 4 * out.len() as u64)?;
        self.fault_hook(offset, 4 * out.len() as u64);
        let base = offset as usize;
        for (i, v) in out.iter_mut().enumerate() {
            let o = base + 4 * i;
            *v = f32::from_le_bytes([
                self.data[o],
                self.data[o + 1],
                self.data[o + 2],
                self.data[o + 3],
            ]);
        }
        Ok(())
    }

    /// Write a slice of consecutive f32.
    pub fn write_f32_slice(&mut self, offset: u64, values: &[f32]) -> Result<(), SimError> {
        self.ensure(offset, 4 * values.len() as u64)?;
        let base = offset as usize;
        for (i, v) in values.iter().enumerate() {
            self.data[base + 4 * i..base + 4 * i + 4].copy_from_slice(&v.to_le_bytes());
        }
        Ok(())
    }

    /// Read one u64 (for the scalar register file's packed loads).
    pub fn read_u64(&mut self, offset: u64) -> Result<u64, SimError> {
        self.ensure(offset, 8)?;
        self.fault_hook(offset, 8);
        let o = offset as usize;
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.data[o..o + 8]);
        Ok(u64::from_le_bytes(b))
    }

    /// Read one u32 zero-extended to u64.
    pub fn read_u32(&mut self, offset: u64) -> Result<u64, SimError> {
        self.ensure(offset, 4)?;
        self.fault_hook(offset, 4);
        let o = offset as usize;
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.data[o..o + 4]);
        Ok(u32::from_le_bytes(b) as u64)
    }

    /// Raw byte copy *within* this region.
    pub fn copy_within(&mut self, src: u64, dst: u64, len: u64) -> Result<(), SimError> {
        self.ensure(src, len)?;
        self.ensure(dst, len)?;
        self.data
            .copy_within(src as usize..(src + len) as usize, dst as usize);
        Ok(())
    }

    /// Copy bytes from another region into this one (the DMA primitive).
    pub fn copy_from(
        &mut self,
        src: &mut MemRegion,
        src_off: u64,
        dst_off: u64,
        len: u64,
    ) -> Result<(), SimError> {
        src.ensure(src_off, len)?;
        src.fault_hook(src_off, len);
        self.ensure(dst_off, len)?;
        let (s, e) = (src_off as usize, (src_off + len) as usize);
        self.data[dst_off as usize..(dst_off + len) as usize].copy_from_slice(&src.data[s..e]);
        Ok(())
    }

    /// Zero a byte range.
    pub fn zero(&mut self, offset: u64, len: u64) -> Result<(), SimError> {
        self.ensure(offset, len)?;
        self.data[offset as usize..(offset + len) as usize].fill(0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_round_trips() {
        let mut m = MemRegion::fixed("SM", 64);
        m.write_f32(12, 3.5).unwrap();
        assert_eq!(m.read_f32(12).unwrap(), 3.5);
        m.write_f32_slice(16, &[1.0, -2.0, 0.25]).unwrap();
        let mut out = [0.0; 3];
        m.read_f32_slice(16, &mut out).unwrap();
        assert_eq!(out, [1.0, -2.0, 0.25]);
    }

    #[test]
    fn bounds_are_enforced() {
        let mut m = MemRegion::fixed("AM", 16);
        assert!(m.write_f32(14, 1.0).is_err());
        assert!(m.read_f32(u64::MAX - 1).is_err(), "offset overflow guarded");
        assert!(m.read_u64(9).is_err());
        assert!(m.read_u64(8).is_ok());
    }

    #[test]
    fn growable_region_grows_lazily_up_to_capacity() {
        let mut m = MemRegion::growable("DDR", 1 << 20);
        assert_eq!(m.data.len(), 0);
        m.write_f32(1000, 7.0).unwrap();
        assert!(m.data.len() >= 1004);
        assert!(m.write_f32(1 << 20, 7.0).is_err());
    }

    #[test]
    fn packed_u64_matches_two_f32() {
        let mut m = MemRegion::fixed("SM", 32);
        m.write_f32(8, 1.5).unwrap();
        m.write_f32(12, -3.0).unwrap();
        let packed = m.read_u64(8).unwrap();
        assert_eq!(f32::from_bits(packed as u32), 1.5);
        assert_eq!(f32::from_bits((packed >> 32) as u32), -3.0);
        assert_eq!(m.read_u32(12).unwrap(), (-3.0f32).to_bits() as u64);
    }

    #[test]
    fn bump_alloc_aligns_and_fails_cleanly() {
        let mut m = MemRegion::fixed("GSM", 256);
        let a = m.alloc(10, 1).unwrap();
        let b = m.alloc(16, 64).unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 64);
        assert_eq!(m.allocated(), 80);
        let err = m.alloc(1000, 1).unwrap_err();
        assert!(matches!(err, SimError::AllocFailure { .. }));
        m.reset_alloc();
        assert_eq!(m.alloc(10, 1).unwrap(), 0);
    }

    #[test]
    fn dma_copy_between_regions() {
        let mut ddr = MemRegion::growable("DDR", 1 << 16);
        let mut am = MemRegion::fixed("AM", 1 << 10);
        ddr.write_f32_slice(128, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        am.copy_from(&mut ddr, 128, 0, 16).unwrap();
        let mut out = [0.0; 4];
        am.read_f32_slice(0, &mut out).unwrap();
        assert_eq!(out, [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn zero_clears_range_only() {
        let mut m = MemRegion::fixed("AM", 64);
        m.write_f32_slice(0, &[1.0; 4]).unwrap();
        m.zero(4, 8).unwrap();
        let mut out = [0.0; 4];
        m.read_f32_slice(0, &mut out).unwrap();
        assert_eq!(out, [1.0, 0.0, 0.0, 1.0]);
    }
}
