//! DMA transfer descriptors, paths and timing.
//!
//! A DMA engine per core moves 2-D strided blocks between memory levels.
//! Functionally a transfer is an immediate strided copy; its *timing* is
//! `setup + bytes / effective_bandwidth`, where the effective bandwidth of
//! the shared DDR interface is split between concurrently active streams
//! (see [`crate::HwConfig::ddr_bw_per_stream`]).

use crate::HwConfig;
use serde::{Deserialize, Serialize};

/// Which pair of memory levels a transfer moves between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DmaPath {
    /// Main memory → cluster GSM.
    DdrToGsm,
    /// Cluster GSM → main memory.
    GsmToDdr,
    /// Main memory → per-core SM.
    DdrToSm,
    /// Main memory → per-core AM.
    DdrToAm,
    /// Per-core SM → main memory.
    SmToDdr,
    /// Per-core AM → main memory.
    AmToDdr,
    /// Cluster GSM → per-core SM.
    GsmToSm,
    /// Cluster GSM → per-core AM.
    GsmToAm,
    /// Per-core AM → cluster GSM.
    AmToGsm,
}

impl DmaPath {
    /// Whether the transfer crosses the off-chip DDR interface.
    pub fn uses_ddr(self) -> bool {
        matches!(
            self,
            DmaPath::DdrToGsm
                | DmaPath::GsmToDdr
                | DmaPath::DdrToSm
                | DmaPath::DdrToAm
                | DmaPath::SmToDdr
                | DmaPath::AmToDdr
        )
    }

    /// Whether data is written into a per-core scratchpad (SM/AM).
    pub fn writes_core_local(self) -> bool {
        matches!(
            self,
            DmaPath::DdrToSm | DmaPath::DdrToAm | DmaPath::GsmToSm | DmaPath::GsmToAm
        )
    }
}

/// A 2-D strided transfer: `rows` rows of `row_bytes`, with independent
/// source and destination row strides (both in bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dma2d {
    /// Number of rows.
    pub rows: u64,
    /// Contiguous bytes per row.
    pub row_bytes: u64,
    /// Source byte offset of row 0.
    pub src_off: u64,
    /// Source stride between row starts.
    pub src_stride: u64,
    /// Destination byte offset of row 0.
    pub dst_off: u64,
    /// Destination stride between row starts.
    pub dst_stride: u64,
}

impl Dma2d {
    /// A flat 1-D transfer.
    pub fn flat(src_off: u64, dst_off: u64, bytes: u64) -> Self {
        Dma2d {
            rows: 1,
            row_bytes: bytes,
            src_off,
            src_stride: 0,
            dst_off,
            dst_stride: 0,
        }
    }

    /// A matrix-block transfer: `rows × cols` f32 elements from a row-major
    /// source with `src_ld` elements per row into a destination with
    /// `dst_ld` elements per row (offsets in elements).
    pub fn block_f32(
        rows: u64,
        cols: u64,
        src_elem_off: u64,
        src_ld: u64,
        dst_elem_off: u64,
        dst_ld: u64,
    ) -> Self {
        Dma2d {
            rows,
            row_bytes: cols * 4,
            src_off: src_elem_off * 4,
            src_stride: src_ld * 4,
            dst_off: dst_elem_off * 4,
            dst_stride: dst_ld * 4,
        }
    }

    /// Total payload bytes.
    pub fn bytes(&self) -> u64 {
        self.rows * self.row_bytes
    }
}

/// Time in seconds for a transfer of `bytes` over `path` when `streams`
/// DMA streams compete for the shared interfaces.
pub fn transfer_time(cfg: &HwConfig, path: DmaPath, bytes: u64, streams: usize) -> f64 {
    let bw = if path.uses_ddr() {
        cfg.ddr_bw_per_stream(streams)
    } else {
        cfg.gsm_bw_per_stream(streams)
    };
    cfg.dma_setup_s + bytes as f64 / bw
}

/// Simulated-time budgets enforced by the machine's watchdog (see
/// [`crate::Machine::arm_watchdog`]).
///
/// Both budgets live on the *simulated* clock, so a `(seed, plan)` chaos
/// run trips its watchdog at a bit-reproducible instant.  The default
/// config never fires (`INFINITY` everywhere); an armed config is checked
/// at the machine's preemption points — every DMA issue — which bounds
/// the detection granularity to one transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// Absolute simulated deadline in seconds.  A core whose clock has
    /// reached this when it tries to issue work is preempted with
    /// [`crate::SimError::WatchdogTripped`] (unit
    /// [`crate::WatchdogUnit::Core`]).
    pub deadline_s: f64,
    /// Budget for a single hung DMA transfer in seconds.  When an armed
    /// transfer hangs, the watchdog detects it after this budget instead
    /// of the fault plan's full `timeout_s` charge (unit
    /// [`crate::WatchdogUnit::Dma`]).
    pub dma_budget_s: f64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            deadline_s: f64::INFINITY,
            dma_budget_s: f64::INFINITY,
        }
    }
}

impl WatchdogConfig {
    /// A watchdog that only enforces an absolute deadline (seconds).
    pub fn with_deadline(deadline_s: f64) -> Self {
        WatchdogConfig {
            deadline_s,
            ..WatchdogConfig::default()
        }
    }

    /// A watchdog with the deadline given as a simulated-cycle budget
    /// from time zero.
    pub fn with_deadline_cycles(cfg: &HwConfig, cycles: u64) -> Self {
        WatchdogConfig::with_deadline(cycles as f64 * cfg.cycle_s())
    }

    /// Set the hung-DMA budget in simulated cycles.
    pub fn dma_budget_cycles(mut self, cfg: &HwConfig, cycles: u64) -> Self {
        self.dma_budget_s = cycles as f64 * cfg.cycle_s();
        self
    }
}

/// A handle for an in-flight (timed) DMA: completion timestamp in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaTicket {
    /// Simulated time at which the transfer completes.
    pub done_at: f64,
    /// Payload bytes (for statistics).
    pub bytes: u64,
}

impl DmaTicket {
    /// A ticket that is already complete at time zero (used for "no
    /// transfer needed" paths so ping-pong code stays uniform).
    pub const DONE: DmaTicket = DmaTicket {
        done_at: 0.0,
        bytes: 0,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_classification() {
        assert!(DmaPath::DdrToSm.uses_ddr());
        assert!(!DmaPath::GsmToAm.uses_ddr());
        assert!(DmaPath::GsmToAm.writes_core_local());
        assert!(!DmaPath::AmToGsm.writes_core_local());
    }

    #[test]
    fn block_descriptor_matches_manual_layout() {
        // 6×96 f32 block from a 128-wide source into a dense destination.
        let d = Dma2d::block_f32(6, 96, 1000, 128, 0, 96);
        assert_eq!(d.rows, 6);
        assert_eq!(d.row_bytes, 384);
        assert_eq!(d.src_off, 4000);
        assert_eq!(d.src_stride, 512);
        assert_eq!(d.dst_stride, 384);
        assert_eq!(d.bytes(), 6 * 96 * 4);
    }

    #[test]
    fn timing_scales_with_bytes_and_streams() {
        let cfg = HwConfig::default();
        let t1 = transfer_time(&cfg, DmaPath::DdrToAm, 1 << 20, 1);
        let t2 = transfer_time(&cfg, DmaPath::DdrToAm, 2 << 20, 1);
        let t8 = transfer_time(&cfg, DmaPath::DdrToAm, 1 << 20, 8);
        assert!(t2 > t1);
        assert!(t8 > t1, "contention slows streams down");
        // Setup-dominated region: tiny transfers cost at least the setup.
        let tiny = transfer_time(&cfg, DmaPath::DdrToAm, 4, 1);
        assert!(tiny >= cfg.dma_setup_s);
    }

    #[test]
    fn on_chip_paths_use_gsm_bandwidth() {
        let cfg = HwConfig::default();
        let off = transfer_time(&cfg, DmaPath::DdrToAm, 1 << 24, 1);
        let on = transfer_time(&cfg, DmaPath::GsmToAm, 1 << 24, 1);
        assert!(on < off, "crossbar should beat DDR");
    }
}
