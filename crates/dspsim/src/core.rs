//! One DSP core: scratchpads, register files and its two clocks.

use crate::{CoreStats, HwConfig, MemRegion};
use ftimm_isa::{NUM_SREGS, NUM_VREGS, VECTOR_LANES};

/// Architectural state and timing of one DSP core.
#[derive(Debug, Clone)]
pub struct Core {
    /// Core index within the cluster.
    pub id: usize,
    /// 64 KB scalar memory.
    pub sm: MemRegion,
    /// 768 KB array memory.
    pub am: MemRegion,
    /// Scalar register file (64 × 64-bit).
    pub sregs: [u64; NUM_SREGS],
    /// Vector register file (64 × 32 f32).
    pub vregs: Vec<[f32; VECTOR_LANES]>,
    /// The core's compute clock, seconds of simulated time.
    pub t_compute: f64,
    /// Time at which this core's DMA engine becomes free.
    pub t_dma_free: f64,
    /// Accumulated counters.
    pub stats: CoreStats,
}

impl Core {
    /// A fresh core with zeroed state.
    pub fn new(id: usize, cfg: &HwConfig) -> Self {
        Core {
            id,
            sm: MemRegion::fixed("SM", cfg.sm_bytes),
            am: MemRegion::fixed("AM", cfg.am_bytes),
            sregs: [0; NUM_SREGS],
            vregs: vec![[0.0; VECTOR_LANES]; NUM_VREGS],
            t_compute: 0.0,
            t_dma_free: 0.0,
            stats: CoreStats::default(),
        }
    }

    /// Reset clocks and counters (scratchpad contents are kept).
    pub fn reset_timing(&mut self) {
        self.t_compute = 0.0;
        self.t_dma_free = 0.0;
        self.stats = CoreStats::default();
    }

    /// Clear register files (between kernel invocations in tests).
    pub fn clear_registers(&mut self) {
        self.sregs = [0; NUM_SREGS];
        for v in &mut self.vregs {
            *v = [0.0; VECTOR_LANES];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_core_matches_config() {
        let cfg = HwConfig::default();
        let c = Core::new(3, &cfg);
        assert_eq!(c.id, 3);
        assert_eq!(c.sm.capacity(), 64 * 1024);
        assert_eq!(c.am.capacity(), 768 * 1024);
        assert_eq!(c.vregs.len(), 64);
        assert_eq!(c.t_compute, 0.0);
    }

    #[test]
    fn reset_timing_preserves_memory() {
        let cfg = HwConfig::default();
        let mut c = Core::new(0, &cfg);
        c.am.write_f32(0, 5.0).unwrap();
        c.t_compute = 1.0;
        c.stats.flops = 10;
        c.reset_timing();
        assert_eq!(c.t_compute, 0.0);
        assert_eq!(c.stats.flops, 0);
        assert_eq!(c.am.read_f32(0).unwrap(), 5.0);
    }
}
