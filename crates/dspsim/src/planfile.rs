//! JSON round-tripping for [`FaultPlan`] so chaos scenarios can live in
//! fixture files instead of being constructed in code.
//!
//! The workspace builds offline with a marker-only serde stub (see
//! `vendor/serde`), so this module carries its own tiny JSON writer and
//! reads back through the shared [`crate::minijson`] reader (numbers keep
//! their source text there, so `u64` seeds survive beyond the 2^53 range
//! where an `f64` detour would silently round).
//!
//! ```
//! use dspsim::{DmaPath, FaultPlan};
//! let plan = FaultPlan::new(7).corrupt_dma(DmaPath::DdrToAm, 2);
//! let text = plan.to_json();
//! assert_eq!(FaultPlan::from_json(&text).unwrap(), plan);
//! ```

use crate::fault::{ClusterFailure, CoreFailure, CpuFailure, CpuSlowdown, DmaFault, MemFault};
use crate::minijson::{Parser, Value};
use crate::{DmaFaultKind, DmaPath, FaultPlan, MemTarget};
use std::fmt::Write as _;

// ---------------------------------------------------------------- writing

fn dma_path_name(p: DmaPath) -> &'static str {
    match p {
        DmaPath::DdrToGsm => "DdrToGsm",
        DmaPath::GsmToDdr => "GsmToDdr",
        DmaPath::DdrToSm => "DdrToSm",
        DmaPath::DdrToAm => "DdrToAm",
        DmaPath::SmToDdr => "SmToDdr",
        DmaPath::AmToDdr => "AmToDdr",
        DmaPath::GsmToSm => "GsmToSm",
        DmaPath::GsmToAm => "GsmToAm",
        DmaPath::AmToGsm => "AmToGsm",
    }
}

fn dma_path_from_name(s: &str) -> Result<DmaPath, String> {
    Ok(match s {
        "DdrToGsm" => DmaPath::DdrToGsm,
        "GsmToDdr" => DmaPath::GsmToDdr,
        "DdrToSm" => DmaPath::DdrToSm,
        "DdrToAm" => DmaPath::DdrToAm,
        "SmToDdr" => DmaPath::SmToDdr,
        "AmToDdr" => DmaPath::AmToDdr,
        "GsmToSm" => DmaPath::GsmToSm,
        "GsmToAm" => DmaPath::GsmToAm,
        "AmToGsm" => DmaPath::AmToGsm,
        other => return Err(format!("unknown DMA path {other:?}")),
    })
}

impl FaultPlan {
    /// Serialise the plan as pretty-printed JSON (stable field order, so
    /// fixtures diff cleanly).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"timeout_s\": {:?},", self.timeout_s);
        s.push_str("  \"dma\": [");
        for (i, f) in self.dma.iter().enumerate() {
            let kind = match f.kind {
                DmaFaultKind::Corrupt => "Corrupt",
                DmaFaultKind::Timeout => "Timeout",
            };
            let _ = write!(
                s,
                "{}\n    {{ \"path\": \"{}\", \"nth\": {}, \"kind\": \"{}\" }}",
                if i == 0 { "" } else { "," },
                dma_path_name(f.path),
                f.nth,
                kind
            );
        }
        s.push_str(if self.dma.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        s.push_str("  \"mem\": [");
        for (i, f) in self.mem.iter().enumerate() {
            let target = match f.target {
                MemTarget::Gsm => "{ \"kind\": \"Gsm\" }".to_string(),
                MemTarget::Sm(c) => format!("{{ \"kind\": \"Sm\", \"core\": {c} }}"),
                MemTarget::Am(c) => format!("{{ \"kind\": \"Am\", \"core\": {c} }}"),
            };
            let _ = write!(
                s,
                "{}\n    {{ \"target\": {target}, \"nth_read\": {} }}",
                if i == 0 { "" } else { "," },
                f.nth_read
            );
        }
        s.push_str(if self.mem.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        s.push_str("  \"cores\": [");
        for (i, f) in self.cores.iter().enumerate() {
            let _ = write!(
                s,
                "{}\n    {{ \"core\": {}, \"at_seconds\": {:?} }}",
                if i == 0 { "" } else { "," },
                f.core,
                f.at_seconds
            );
        }
        s.push_str(if self.cores.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        s.push_str("  \"clusters\": [");
        for (i, f) in self.clusters.iter().enumerate() {
            let _ = write!(
                s,
                "{}\n    {{ \"at_seconds\": {:?} }}",
                if i == 0 { "" } else { "," },
                f.at_seconds
            );
        }
        s.push_str(if self.clusters.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        s.push_str("  \"cpu_slowdowns\": [");
        for (i, f) in self.cpu_slowdowns.iter().enumerate() {
            let _ = write!(
                s,
                "{}\n    {{ \"factor\": {:?} }}",
                if i == 0 { "" } else { "," },
                f.factor
            );
        }
        s.push_str(if self.cpu_slowdowns.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        s.push_str("  \"cpu_failures\": [");
        for (i, f) in self.cpu_failures.iter().enumerate() {
            let _ = write!(
                s,
                "{}\n    {{ \"nth\": {} }}",
                if i == 0 { "" } else { "," },
                f.nth
            );
        }
        s.push_str(if self.cpu_failures.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        s.push('}');
        s
    }

    /// Parse a plan from JSON as produced by [`FaultPlan::to_json`] (or
    /// written by hand).  Unknown keys are rejected so a typoed fixture
    /// fails loudly instead of silently injecting nothing.
    pub fn from_json(text: &str) -> Result<FaultPlan, String> {
        let value = Parser::new(text).parse()?;
        let obj = value.as_obj("plan")?;
        let mut plan = FaultPlan::new(0);
        for (key, v) in obj {
            match key.as_str() {
                "seed" => plan.seed = v.as_u64("seed")?,
                "timeout_s" => plan.timeout_s = v.as_f64("timeout_s")?,
                "dma" => {
                    for item in v.as_arr("dma")? {
                        plan.dma.push(parse_dma_fault(item)?);
                    }
                }
                "mem" => {
                    for item in v.as_arr("mem")? {
                        plan.mem.push(parse_mem_fault(item)?);
                    }
                }
                "cores" => {
                    for item in v.as_arr("cores")? {
                        plan.cores.push(parse_core_failure(item)?);
                    }
                }
                "clusters" => {
                    for item in v.as_arr("clusters")? {
                        plan.clusters.push(parse_cluster_failure(item)?);
                    }
                }
                "cpu_slowdowns" => {
                    for item in v.as_arr("cpu_slowdowns")? {
                        plan.cpu_slowdowns.push(parse_cpu_slowdown(item)?);
                    }
                }
                "cpu_failures" => {
                    for item in v.as_arr("cpu_failures")? {
                        plan.cpu_failures.push(parse_cpu_failure(item)?);
                    }
                }
                other => return Err(format!("unknown plan key {other:?}")),
            }
        }
        Ok(plan)
    }
}

fn parse_dma_fault(v: &Value) -> Result<DmaFault, String> {
    let obj = v.as_obj("dma fault")?;
    let (mut path, mut nth, mut kind) = (None, None, None);
    for (key, v) in obj {
        match key.as_str() {
            "path" => path = Some(dma_path_from_name(v.as_str("path")?)?),
            "nth" => nth = Some(v.as_u64("nth")?),
            "kind" => {
                kind = Some(match v.as_str("kind")? {
                    "Corrupt" => DmaFaultKind::Corrupt,
                    "Timeout" => DmaFaultKind::Timeout,
                    other => return Err(format!("unknown DMA fault kind {other:?}")),
                })
            }
            other => return Err(format!("unknown dma fault key {other:?}")),
        }
    }
    Ok(DmaFault {
        path: path.ok_or("dma fault missing \"path\"")?,
        nth: nth.ok_or("dma fault missing \"nth\"")?,
        kind: kind.ok_or("dma fault missing \"kind\"")?,
    })
}

fn parse_mem_fault(v: &Value) -> Result<MemFault, String> {
    let obj = v.as_obj("mem fault")?;
    let (mut target, mut nth_read) = (None, None);
    for (key, v) in obj {
        match key.as_str() {
            "target" => {
                let t = v.as_obj("target")?;
                let (mut kind, mut core) = (None, None);
                for (k, v) in t {
                    match k.as_str() {
                        "kind" => kind = Some(v.as_str("target.kind")?.to_string()),
                        "core" => core = Some(v.as_u64("target.core")? as usize),
                        other => return Err(format!("unknown target key {other:?}")),
                    }
                }
                target = Some(match kind.as_deref() {
                    Some("Gsm") => MemTarget::Gsm,
                    Some("Sm") => MemTarget::Sm(core.ok_or("Sm target missing \"core\"")?),
                    Some("Am") => MemTarget::Am(core.ok_or("Am target missing \"core\"")?),
                    Some(other) => return Err(format!("unknown mem target {other:?}")),
                    None => return Err("target missing \"kind\"".into()),
                });
            }
            "nth_read" => nth_read = Some(v.as_u64("nth_read")?),
            other => return Err(format!("unknown mem fault key {other:?}")),
        }
    }
    Ok(MemFault {
        target: target.ok_or("mem fault missing \"target\"")?,
        nth_read: nth_read.ok_or("mem fault missing \"nth_read\"")?,
    })
}

fn parse_core_failure(v: &Value) -> Result<CoreFailure, String> {
    let obj = v.as_obj("core failure")?;
    let (mut core, mut at) = (None, None);
    for (key, v) in obj {
        match key.as_str() {
            "core" => core = Some(v.as_u64("core")? as usize),
            "at_seconds" => at = Some(v.as_f64("at_seconds")?),
            other => return Err(format!("unknown core failure key {other:?}")),
        }
    }
    Ok(CoreFailure {
        core: core.ok_or("core failure missing \"core\"")?,
        at_seconds: at.ok_or("core failure missing \"at_seconds\"")?,
    })
}

fn parse_cluster_failure(v: &Value) -> Result<ClusterFailure, String> {
    let obj = v.as_obj("cluster failure")?;
    let mut at = None;
    for (key, v) in obj {
        match key.as_str() {
            "at_seconds" => at = Some(v.as_f64("at_seconds")?),
            other => return Err(format!("unknown cluster failure key {other:?}")),
        }
    }
    Ok(ClusterFailure {
        at_seconds: at.ok_or("cluster failure missing \"at_seconds\"")?,
    })
}

fn parse_cpu_slowdown(v: &Value) -> Result<CpuSlowdown, String> {
    let obj = v.as_obj("cpu slowdown")?;
    let mut factor = None;
    for (key, v) in obj {
        match key.as_str() {
            "factor" => factor = Some(v.as_f64("factor")?),
            other => return Err(format!("unknown cpu slowdown key {other:?}")),
        }
    }
    Ok(CpuSlowdown {
        factor: factor.ok_or("cpu slowdown missing \"factor\"")?,
    })
}

fn parse_cpu_failure(v: &Value) -> Result<CpuFailure, String> {
    let obj = v.as_obj("cpu failure")?;
    let mut nth = None;
    for (key, v) in obj {
        match key.as_str() {
            "nth" => nth = Some(v.as_u64("nth")?),
            other => return Err(format!("unknown cpu failure key {other:?}")),
        }
    }
    Ok(CpuFailure {
        nth: nth.ok_or("cpu failure missing \"nth\"")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rich_plan() -> FaultPlan {
        let mut p = FaultPlan::new(u64::MAX - 3)
            .corrupt_dma(DmaPath::DdrToAm, 2)
            .timeout_dma(DmaPath::GsmToSm, 7)
            .flip_bit(MemTarget::Gsm, 3)
            .flip_bit(MemTarget::Sm(1), 4)
            .flip_bit(MemTarget::Am(6), 9)
            .kill_core(5, 1.25e-3)
            .kill_cluster(3.5e-3)
            .cpu_slowdown(2.5)
            .fail_cpu(3);
        p.timeout_s = 2.5e-4;
        p
    }

    #[test]
    fn json_round_trip_is_exact() {
        let plan = rich_plan();
        let text = plan.to_json();
        let back = FaultPlan::from_json(&text).unwrap();
        assert_eq!(back, plan);
        // Seeds beyond 2^53 survive (no f64 detour).
        assert_eq!(back.seed, u64::MAX - 3);
        // And the encoding itself is stable.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn empty_plan_round_trips() {
        let plan = FaultPlan::new(0);
        assert_eq!(FaultPlan::from_json(&plan.to_json()).unwrap(), plan);
    }

    #[test]
    fn handwritten_fixture_parses() {
        let text = r#"{
            "seed": 11,
            "dma": [ { "path": "DdrToAm", "nth": 2, "kind": "Corrupt" } ],
            "mem": [ { "target": { "kind": "Sm", "core": 0 }, "nth_read": 1 } ]
        }"#;
        let plan = FaultPlan::from_json(text).unwrap();
        assert_eq!(plan.seed, 11);
        assert_eq!(plan.timeout_s, FaultPlan::new(0).timeout_s);
        assert_eq!(plan.dma.len(), 1);
        assert_eq!(plan.mem[0].target, MemTarget::Sm(0));
        assert!(plan.clusters.is_empty());
    }

    #[test]
    fn cluster_kill_round_trips() {
        let plan = FaultPlan::new(9).kill_cluster(1.5e-3).kill_cluster(7e-4);
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.clusters.len(), 2);
        assert_eq!(back.clusters[1].at_seconds, 7e-4);

        let hand = r#"{ "seed": 4, "clusters": [ { "at_seconds": 2e-3 } ] }"#;
        let plan = FaultPlan::from_json(hand).unwrap();
        assert_eq!(plan.clusters[0].at_seconds, 2e-3);
    }

    #[test]
    fn cpu_faults_round_trip() {
        let plan = FaultPlan::new(13).cpu_slowdown(4.0).fail_cpu(1).fail_cpu(5);
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.cpu_slowdowns[0].factor, 4.0);
        assert_eq!(back.cpu_failures[1].nth, 5);

        let hand = r#"{
            "seed": 2,
            "cpu_slowdowns": [ { "factor": 1.5 } ],
            "cpu_failures": [ { "nth": 2 } ]
        }"#;
        let plan = FaultPlan::from_json(hand).unwrap();
        assert_eq!(plan.cpu_slowdowns[0].factor, 1.5);
        assert_eq!(plan.cpu_failures[0].nth, 2);
    }

    #[test]
    fn bad_fixtures_fail_loudly() {
        for (text, needle) in [
            ("{ \"sed\": 1 }", "unknown plan key"),
            ("{ \"seed\": 1 } trailing", "trailing data"),
            (
                "{ \"dma\": [ { \"path\": \"DdrToXm\", \"nth\": 1, \"kind\": \"Corrupt\" } ] }",
                "unknown DMA path",
            ),
            (
                "{ \"dma\": [ { \"path\": \"DdrToAm\", \"kind\": \"Corrupt\" } ] }",
                "missing \"nth\"",
            ),
            ("{ \"seed\": -1 }", "bad integer"),
            (
                "{ \"mem\": [ { \"target\": { \"kind\": \"Sm\" }, \"nth_read\": 1 } ] }",
                "missing \"core\"",
            ),
            (
                "{ \"clusters\": [ { \"at\": 1e-3 } ] }",
                "unknown cluster failure key",
            ),
            ("{ \"clusters\": [ { } ] }", "missing \"at_seconds\""),
            (
                "{ \"cpu_slowdowns\": [ { \"nth\": 1 } ] }",
                "unknown cpu slowdown key",
            ),
            ("{ \"cpu_failures\": [ { } ] }", "missing \"nth\""),
        ] {
            let err = FaultPlan::from_json(text).unwrap_err();
            assert!(err.contains(needle), "{text}: got {err:?}");
        }
    }
}
