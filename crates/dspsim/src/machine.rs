//! The machine: DDR, one GPDSP cluster, DMA execution and timing.

use crate::fault::{splitmix64, DmaFaultKind, FaultState, MemTarget};
use crate::profiler::{phase_of_path, EventKind, Phase, Profiler, Span};
use crate::{
    transfer_time, Core, CoreStats, Dma2d, DmaPath, DmaTicket, FaultPlan, FaultStats, HwConfig,
    MemRegion, RunReport, SimError, WatchdogConfig, WatchdogUnit,
};
use serde::{Deserialize, Serialize};

/// How much of the simulation actually runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecMode {
    /// Execute generated VLIW programs instruction-by-instruction
    /// (bit-exact, hazard-checked, slow — for validation).
    Interpret,
    /// Move data and compute with host-native f32 math in the kernel's
    /// accumulation order (bit-equal to `Interpret`, fast).
    Fast,
    /// Like `Fast`, but kernel invocations run through the compiled host
    /// tier: the block plan lowered once to specialised SIMD loops
    /// (bit-equal to `Interpret`, fastest).
    Compiled,
    /// Only account cycles and bytes; no data is touched (for paper-scale
    /// sweeps).
    Timing,
}

impl ExecMode {
    /// Whether data is functionally moved/computed in this mode.
    pub fn is_functional(self) -> bool {
        !matches!(self, ExecMode::Timing)
    }

    /// Stable lowercase tag (CLI flags, reports).
    pub fn tag(self) -> &'static str {
        match self {
            ExecMode::Interpret => "interpret",
            ExecMode::Fast => "fast",
            ExecMode::Compiled => "compiled",
            ExecMode::Timing => "timing",
        }
    }

    /// Parse a [`tag`](ExecMode::tag) back into a mode.
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "interpret" => Some(ExecMode::Interpret),
            "fast" => Some(ExecMode::Fast),
            "compiled" => Some(ExecMode::Compiled),
            "timing" => Some(ExecMode::Timing),
            _ => None,
        }
    }
}

/// One GPDSP cluster: 8 cores plus the shared GSM.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// 6 MB global shared memory.
    pub gsm: MemRegion,
    /// The DSP cores.
    pub cores: Vec<Core>,
}

/// The simulated machine (one cluster's view: its DDR partition + cores).
#[derive(Debug, Clone)]
pub struct Machine {
    /// Hardware description.
    pub cfg: HwConfig,
    /// Execution mode.
    pub mode: ExecMode,
    /// Main-memory partition of this cluster.
    pub ddr: MemRegion,
    /// The GPDSP cluster.
    pub cluster: Cluster,
    /// DMA streams assumed concurrently active (bandwidth contention).
    active_streams: usize,
    /// Logical→physical core map.  Identity at construction; retiring a
    /// failed core removes it here, so callers keep using dense logical
    /// ids `0..alive_cores()` while the dead core's state is left behind.
    core_map: Vec<usize>,
    /// Armed fault-injection state (empty unless a plan is installed).
    fault: FaultState,
    /// Armed watchdog budgets (`None` keeps every hot path untouched).
    watchdog: Option<WatchdogConfig>,
    /// Span/event recorder (disabled by default; never advances clocks).
    profiler: Profiler,
}

/// Default modelled DDR partition capacity (64 GiB — large enough for the
/// paper's biggest sweep; memory is only materialised when written).
pub const DDR_CAPACITY: u64 = 64 << 30;

impl Machine {
    /// Build a machine in the given mode.
    pub fn new(cfg: HwConfig, mode: ExecMode) -> Self {
        let cores = (0..cfg.cores_per_cluster)
            .map(|id| Core::new(id, &cfg))
            .collect();
        let core_map = (0..cfg.cores_per_cluster).collect();
        Machine {
            cluster: Cluster {
                gsm: MemRegion::fixed("GSM", cfg.gsm_bytes),
                cores,
            },
            cfg,
            mode,
            ddr: MemRegion::growable("DDR", DDR_CAPACITY),
            active_streams: 1,
            core_map,
            fault: FaultState::default(),
            watchdog: None,
            profiler: Profiler::disabled(),
        }
    }

    /// Start recording phase spans and fault events into a fresh bounded
    /// profiler (at most `capacity` spans; the oldest are dropped and
    /// counted beyond that).  Recording reads the simulated clocks but
    /// never advances them, so a profiled run stays bit-exact with an
    /// unprofiled one.
    pub fn profile_begin(&mut self, capacity: usize) {
        self.profiler = Profiler::enabled(capacity);
    }

    /// Stop recording and take the recorded profiler; the machine reverts
    /// to the zero-overhead disabled recorder.
    pub fn profile_end(&mut self) -> Profiler {
        std::mem::take(&mut self.profiler)
    }

    /// The current profiler (disabled and empty unless
    /// [`Machine::profile_begin`] is active).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Record a caller-timed span for a *logical* core — for work whose
    /// timing a strategy charges itself (e.g. the K-parallel GSM
    /// reduction) rather than through a machine primitive.
    pub fn record_span(&mut self, id: usize, phase: Phase, t0: f64, t1: f64) {
        let core = self.core_map[id];
        self.profiler.record(Span {
            phase,
            core,
            t0,
            t1,
        });
    }

    /// Record a supervisor event (e.g. a resilience-layer retry) against
    /// an optional *physical* core.
    pub fn record_event(&mut self, kind: EventKind, core: Option<usize>, t: f64) {
        self.profiler.event(kind, core, t);
    }

    /// Convenience: default hardware in the given mode.
    pub fn with_mode(mode: ExecMode) -> Self {
        Machine::new(HwConfig::default(), mode)
    }

    /// Declare how many DMA streams compete for bandwidth (usually the
    /// number of cores in the current parallel region).
    pub fn set_active_streams(&mut self, n: usize) {
        self.active_streams = n.max(1);
    }

    /// Currently declared stream count.
    pub fn active_streams(&self) -> usize {
        self.active_streams
    }

    /// Zero all clocks and counters (memory contents kept).
    pub fn reset_timing(&mut self) {
        for c in &mut self.cluster.cores {
            c.reset_timing();
        }
    }

    /// Access a core by logical id.
    pub fn core(&self, id: usize) -> &Core {
        &self.cluster.cores[self.core_map[id]]
    }

    /// Mutable access to a core by logical id.
    pub fn core_mut(&mut self, id: usize) -> &mut Core {
        &mut self.cluster.cores[self.core_map[id]]
    }

    /// Physical index behind a logical core id.
    pub fn physical_core(&self, id: usize) -> usize {
        self.core_map[id]
    }

    /// Number of cores still alive (not retired after failure).
    pub fn alive_cores(&self) -> usize {
        self.core_map.len()
    }

    /// Simulated time of a core's compute clock.
    pub fn core_time(&self, id: usize) -> f64 {
        self.cluster.cores[self.core_map[id]].t_compute
    }

    /// Simulated time (max of compute and DMA clocks) of a *physical*
    /// core, whether or not it is currently mapped.  Lets supervisors
    /// (e.g. circuit breakers) reason about cores they have routed
    /// around, whose clocks [`Machine::elapsed`] no longer covers.
    pub fn physical_time(&self, physical: usize) -> f64 {
        let c = &self.cluster.cores[physical];
        c.t_compute.max(c.t_dma_free)
    }

    /// Latest compute time over all *alive* cores (simulated makespan).
    pub fn elapsed(&self) -> f64 {
        self.core_map
            .iter()
            .map(|&p| {
                let c = &self.cluster.cores[p];
                c.t_compute.max(c.t_dma_free)
            })
            .fold(0.0, f64::max)
    }

    /// Install a fault-injection plan: arms the DMA/core faults in the
    /// machine and schedules the scratchpad bit flips in their target
    /// regions.  Plans compose — installing a second plan adds its faults.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        self.fault.timeout_s = plan.timeout_s;
        for (i, f) in plan.dma.iter().enumerate() {
            self.fault.dma.push(crate::fault::ArmedDmaFault {
                path: f.path,
                nth: f.nth,
                kind: f.kind,
                rng: splitmix64(plan.seed ^ (0xD0A0 + i as u64)),
            });
        }
        for (i, f) in plan.mem.iter().enumerate() {
            let rng = splitmix64(plan.seed ^ (0xF1B0 + i as u64));
            let region = match f.target {
                MemTarget::Gsm => &mut self.cluster.gsm,
                MemTarget::Sm(c) => &mut self.cluster.cores[c].sm,
                MemTarget::Am(c) => &mut self.cluster.cores[c].am,
            };
            region.schedule_flip(f.nth_read, rng);
        }
        if !plan.cores.is_empty() && self.fault.core_death.is_empty() {
            self.fault.core_death = vec![None; self.cfg.cores_per_cluster];
            self.fault.failed = vec![false; self.cfg.cores_per_cluster];
        }
        for f in &plan.cores {
            self.fault.core_death[f.core] = Some(f.at_seconds);
        }
        for f in &plan.clusters {
            self.fault.cluster_death = Some(match self.fault.cluster_death {
                Some(t) => t.min(f.at_seconds),
                None => f.at_seconds,
            });
        }
    }

    /// Retire a failed physical core: remaining logical ids stay dense
    /// (`0..alive_cores()`), so a caller can simply re-run with fewer
    /// cores.  The dead core's clocks and counters are frozen as-is.
    pub fn retire_core(&mut self, physical: usize) {
        if self.core_map.contains(&physical) {
            let t = self.physical_time(physical);
            self.profiler
                .event(EventKind::CoreRetired, Some(physical), t);
        }
        self.core_map.retain(|&p| p != physical);
    }

    /// The current logical→physical core map.
    pub fn core_map(&self) -> &[usize] {
        &self.core_map
    }

    /// Replace the logical→physical core map (e.g. to temporarily route
    /// work around a circuit-broken core).  Unlike [`Machine::retire_core`]
    /// this is reversible: cores left out keep their state and can be
    /// mapped back in later.  Panics on an empty, out-of-range, duplicated
    /// or known-failed entry (a caller bug, not a simulated fault).
    pub fn set_core_map(&mut self, map: &[usize]) {
        assert!(!map.is_empty(), "core map must keep at least one core");
        let mut seen = vec![false; self.cfg.cores_per_cluster];
        for &p in map {
            assert!(p < self.cfg.cores_per_cluster, "core {p} out of range");
            assert!(!seen[p], "core {p} duplicated in map");
            assert!(!self.is_core_failed(p), "core {p} has failed permanently");
            seen[p] = true;
        }
        self.core_map = map.to_vec();
    }

    /// Whether a physical core has failed permanently (scheduled death
    /// reached during a run).
    pub fn is_core_failed(&self, physical: usize) -> bool {
        self.fault.failed.get(physical).copied().unwrap_or(false)
    }

    /// Arm the watchdog: subsequent preemption points (every DMA issue,
    /// plus explicit [`Machine::preempt_point`] calls) enforce the given
    /// simulated-time budgets.  Replaces any previously armed config.
    pub fn arm_watchdog(&mut self, cfg: WatchdogConfig) {
        self.watchdog = Some(cfg);
    }

    /// Disarm the watchdog (the default state: no budget checks at all).
    pub fn disarm_watchdog(&mut self) {
        self.watchdog = None;
    }

    /// The armed watchdog config, if any.
    pub fn watchdog(&self) -> Option<&WatchdogConfig> {
        self.watchdog.as_ref()
    }

    /// A deadline preemption point: if a watchdog is armed and this
    /// logical core's clock has reached the deadline, refuse further work
    /// with [`SimError::WatchdogTripped`].  Work already in flight is
    /// never torn mid-transfer — the check runs before new work is issued,
    /// so detection granularity is one transfer/kernel call.  Called
    /// automatically on every DMA issue; long compute-only loops can call
    /// it explicitly.
    pub fn preempt_point(&mut self, id: usize) -> Result<(), SimError> {
        let Some(wd) = self.watchdog else {
            return Ok(());
        };
        let phys = self.core_map[id];
        let core = &self.cluster.cores[phys];
        let now = core.t_compute.max(core.t_dma_free);
        if now >= wd.deadline_s {
            self.fault.watchdog_trips += 1;
            self.profiler
                .event(EventKind::WatchdogDeadline, Some(phys), now);
            return Err(SimError::WatchdogTripped {
                unit: WatchdogUnit::Core { core: phys },
                at: now,
            });
        }
        Ok(())
    }

    /// Whether the whole cluster has failed permanently (scheduled death
    /// reached during a run).
    pub fn is_cluster_failed(&self) -> bool {
        self.fault.cluster_failed
    }

    /// Check whether the cluster as a whole is (still) allowed to issue
    /// work: once any mapped core's clock reaches the scheduled cluster
    /// death time, the entire fault domain is dead and every subsequent
    /// operation errors with [`SimError::ClusterFailed`].  Host-side DDR
    /// reads are unaffected (the partition outlives the cluster).
    pub fn check_cluster_alive(&mut self, id: usize) -> Result<(), SimError> {
        let Some(t) = self.fault.cluster_death else {
            return Ok(());
        };
        if self.fault.cluster_failed {
            return Err(SimError::ClusterFailed { at: t });
        }
        let phys = self.core_map[id];
        let core = &self.cluster.cores[phys];
        let now = core.t_compute.max(core.t_dma_free);
        if now >= t {
            self.fault.cluster_failed = true;
            self.profiler.event(EventKind::ClusterFailed, None, t);
            return Err(SimError::ClusterFailed { at: t });
        }
        Ok(())
    }

    /// Check whether a logical core is (still) allowed to issue work: a
    /// core whose clock has reached its scheduled death time fails
    /// permanently.
    pub fn check_core_alive(&mut self, id: usize) -> Result<(), SimError> {
        self.check_cluster_alive(id)?;
        if self.fault.core_death.is_empty() {
            return Ok(());
        }
        let phys = self.core_map[id];
        let core = &self.cluster.cores[phys];
        let now = core.t_compute.max(core.t_dma_free);
        if self.fault.failed[phys] {
            let at = self.fault.core_death[phys].unwrap_or(now);
            return Err(SimError::CoreFailed { core: phys, at });
        }
        if let Some(t) = self.fault.core_death[phys] {
            if now >= t {
                self.fault.failed[phys] = true;
                self.profiler.event(EventKind::CoreFailed, Some(phys), t);
                return Err(SimError::CoreFailed { core: phys, at: t });
            }
        }
        Ok(())
    }

    /// Advance a core's compute clock by raw seconds without touching any
    /// cycle counter (recovery backoff; not architectural work).
    pub fn stall(&mut self, id: usize, seconds: f64) {
        let phys = self.core_map[id];
        let t0 = self.cluster.cores[phys].t_compute;
        self.cluster.cores[phys].t_compute = t0 + seconds;
        self.profiler.record(Span {
            phase: Phase::Recovery,
            core: phys,
            t0,
            t1: t0 + seconds,
        });
    }

    /// Advance a core's compute clock by whole cycles and account them.
    pub fn compute(&mut self, id: usize, cycles: u64) {
        let phys = self.core_map[id];
        let core = &mut self.cluster.cores[phys];
        let t0 = core.t_compute;
        core.t_compute += cycles as f64 * self.cfg.cycle_s();
        core.stats.compute_cycles += cycles;
        let t1 = core.t_compute;
        self.profiler.record(Span {
            phase: Phase::Compute,
            core: phys,
            t0,
            t1,
        });
    }

    /// Block a core until a DMA ticket completes.
    pub fn wait(&mut self, id: usize, ticket: DmaTicket) {
        let core = &mut self.cluster.cores[self.core_map[id]];
        if ticket.done_at > core.t_compute {
            core.t_compute = ticket.done_at;
        }
    }

    /// Synchronise a set of cores (barrier): all compute clocks advance to
    /// the maximum. Returns the barrier time.
    pub fn barrier(&mut self, ids: &[usize]) -> f64 {
        let t = ids
            .iter()
            .map(|&i| self.cluster.cores[self.core_map[i]].t_compute)
            .fold(0.0, f64::max);
        for &i in ids {
            let phys = self.core_map[i];
            let t0 = self.cluster.cores[phys].t_compute;
            if t > t0 {
                self.profiler.record(Span {
                    phase: Phase::Barrier,
                    core: phys,
                    t0,
                    t1: t,
                });
            }
            self.cluster.cores[phys].t_compute = t;
        }
        t
    }

    /// Issue a DMA on a core's engine: functional strided copy (unless in
    /// timing mode) plus completion-time accounting.  Armed faults strike
    /// here: a `Timeout` charges the watchdog and errors out, a `Corrupt`
    /// completes the transfer but flips one f32 of the destination.
    pub fn dma(&mut self, id: usize, path: DmaPath, desc: &Dma2d) -> Result<DmaTicket, SimError> {
        self.check_core_alive(id)?;
        self.preempt_point(id)?;
        let armed = if self.fault.dma_armed() {
            self.fault.take_dma_fault(path)
        } else {
            None
        };
        if let Some(f) = armed {
            if f.kind == DmaFaultKind::Timeout {
                self.fault.injected_timeouts += 1;
                let phys = self.core_map[id];
                let timeout = self.fault.timeout_s;
                let budget = self.watchdog.map_or(f64::INFINITY, |w| w.dma_budget_s);
                let core = &mut self.cluster.cores[phys];
                let start = core.t_dma_free.max(core.t_compute);
                if budget < timeout {
                    // An armed watchdog detects the hang after its DMA
                    // budget instead of eating the full hang charge.
                    let at = start + budget;
                    core.t_dma_free = at;
                    core.t_compute = at;
                    self.fault.watchdog_trips += 1;
                    self.record_hang(path, phys, start, at, EventKind::WatchdogDma);
                    return Err(SimError::WatchdogTripped {
                        unit: WatchdogUnit::Dma { core: phys, path },
                        at,
                    });
                }
                let at = start + timeout;
                // The engine hangs until the fault plan's timeout fires
                // and the core blocks on it; no data moves.
                core.t_dma_free = at;
                core.t_compute = at;
                self.record_hang(path, phys, start, at, EventKind::DmaTimeout);
                return Err(SimError::DmaTimeout {
                    core: phys,
                    path,
                    at,
                });
            }
        }
        let corrupted = armed.is_some() && self.mode.is_functional();
        if self.mode.is_functional() {
            self.dma_copy(id, path, desc)?;
            if let Some(f) = armed {
                self.corrupt_dma_dst(id, path, desc, f.rng)?;
                self.fault.injected_corruptions += 1;
            }
        }
        let dur = transfer_time(&self.cfg, path, desc.bytes(), self.active_streams);
        let phys = self.core_map[id];
        let core = &mut self.cluster.cores[phys];
        let start = core.t_dma_free.max(core.t_compute);
        let done = start + dur;
        core.t_dma_free = done;
        core.stats.dma_transfers += 1;
        if path.uses_ddr() {
            core.stats.ddr_bytes += desc.bytes();
        } else {
            core.stats.gsm_bytes += desc.bytes();
        }
        self.profiler.record(Span {
            phase: phase_of_path(path),
            core: phys,
            t0: start,
            t1: done,
        });
        if corrupted {
            self.profiler.event(EventKind::DmaCorrupt, Some(phys), done);
        }
        Ok(DmaTicket {
            done_at: done,
            bytes: desc.bytes(),
        })
    }

    /// Record the span and event of a DMA hang charge (fault injection).
    fn record_hang(&mut self, path: DmaPath, phys: usize, t0: f64, t1: f64, kind: EventKind) {
        self.profiler.record(Span {
            phase: phase_of_path(path),
            core: phys,
            t0,
            t1,
        });
        self.profiler.event(kind, Some(phys), t1);
    }

    /// Issue a DMA and immediately wait for it (synchronous transfer).
    pub fn dma_sync(&mut self, id: usize, path: DmaPath, desc: &Dma2d) -> Result<(), SimError> {
        let t = self.dma(id, path, desc)?;
        self.wait(id, t);
        Ok(())
    }

    fn dma_copy(&mut self, id: usize, path: DmaPath, desc: &Dma2d) -> Result<(), SimError> {
        let phys = self.core_map[id];
        let Machine { ddr, cluster, .. } = self;
        let Cluster { gsm, cores } = cluster;
        let core = &mut cores[phys];
        let (src, dst): (&mut MemRegion, &mut MemRegion) = match path {
            DmaPath::DdrToGsm => (ddr, gsm),
            DmaPath::GsmToDdr => (gsm, ddr),
            DmaPath::DdrToSm => (ddr, &mut core.sm),
            DmaPath::DdrToAm => (ddr, &mut core.am),
            DmaPath::SmToDdr => (&mut core.sm, ddr),
            DmaPath::AmToDdr => (&mut core.am, ddr),
            DmaPath::GsmToSm => (gsm, &mut core.sm),
            DmaPath::GsmToAm => (gsm, &mut core.am),
            DmaPath::AmToGsm => (&mut core.am, gsm),
        };
        for row in 0..desc.rows {
            dst.copy_from(
                src,
                desc.src_off + row * desc.src_stride,
                desc.dst_off + row * desc.dst_stride,
                desc.row_bytes,
            )?;
        }
        Ok(())
    }

    /// Flip the exponent MSB of one f32 inside the destination footprint
    /// of a just-completed transfer (the `Corrupt` DMA fault).
    fn corrupt_dma_dst(
        &mut self,
        id: usize,
        path: DmaPath,
        desc: &Dma2d,
        rng: u64,
    ) -> Result<(), SimError> {
        let phys = self.core_map[id];
        let Machine { ddr, cluster, .. } = self;
        let Cluster { gsm, cores } = cluster;
        let core = &mut cores[phys];
        let dst: &mut MemRegion = match path {
            DmaPath::DdrToGsm => gsm,
            DmaPath::GsmToDdr => ddr,
            DmaPath::DdrToSm => &mut core.sm,
            DmaPath::DdrToAm => &mut core.am,
            DmaPath::SmToDdr => ddr,
            DmaPath::AmToDdr => ddr,
            DmaPath::GsmToSm => &mut core.sm,
            DmaPath::GsmToAm => &mut core.am,
            DmaPath::AmToGsm => gsm,
        };
        let row = rng % desc.rows.max(1);
        let word = (rng >> 24) % (desc.row_bytes / 4).max(1);
        dst.flip_f32_msb(desc.dst_off + row * desc.dst_stride + word * 4)
    }

    /// Functional `GSM[gsm_off + i] += AM_core[am_off + i]` over `count`
    /// f32 elements — the K-dimension parallelisation's reduction step.
    /// (No timing: the caller accounts reduction time explicitly.)
    pub fn gsm_accumulate_from_am(
        &mut self,
        id: usize,
        am_off: u64,
        gsm_off: u64,
        count: u64,
    ) -> Result<(), SimError> {
        if !self.mode.is_functional() {
            return Ok(());
        }
        let phys = self.core_map[id];
        let Cluster { gsm, cores } = &mut self.cluster;
        let core = &mut cores[phys];
        let mut buf = vec![0.0f32; count as usize];
        core.am.read_f32_slice(am_off, &mut buf)?;
        let mut acc = vec![0.0f32; count as usize];
        gsm.read_f32_slice(gsm_off, &mut acc)?;
        for (a, b) in acc.iter_mut().zip(&buf) {
            *a += *b;
        }
        gsm.write_f32_slice(gsm_off, &acc)
    }

    /// Transfers observed per DMA path since a fault plan was installed
    /// (all zero without one — the counters only tick while faults are
    /// armed).  Indexed like [`crate::DmaPath`]'s declaration order; for
    /// test/diagnostic use.
    pub fn dma_transfer_counts(&self) -> [u64; 9] {
        self.fault.dma_counts
    }

    /// Fault counters accumulated so far (injection side only; recovery
    /// counters are filled by the layer driving the retries).
    pub fn fault_stats(&self) -> FaultStats {
        let mut bit_flips = self.cluster.gsm.flips_applied();
        for c in &self.cluster.cores {
            bit_flips += c.sm.flips_applied() + c.am.flips_applied();
        }
        FaultStats {
            dma_corruptions: self.fault.injected_corruptions,
            dma_timeouts: self.fault.injected_timeouts,
            bit_flips,
            cores_lost: self.fault.failed.iter().filter(|&&f| f).count() as u64,
            watchdog_trips: self.fault.watchdog_trips,
            retries: 0,
            recomputed_tiles: 0,
            rows_reexecuted: 0,
        }
    }

    /// Summarise a finished run over the given (logical) cores.
    pub fn report(&self, useful_flops: u64, cores: &[usize]) -> RunReport {
        let mut totals = CoreStats::default();
        let mut t = 0.0f64;
        for &i in cores {
            let c = &self.cluster.cores[self.core_map[i]];
            totals.merge(&c.stats);
            t = t.max(c.t_compute).max(c.t_dma_free);
        }
        RunReport {
            seconds: t,
            useful_flops,
            totals,
            cores_used: cores.len(),
            backend: crate::BackendKind::Dsp,
            faults: self.fault_stats(),
            profile: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_moves_data_and_time() {
        let mut m = Machine::with_mode(ExecMode::Fast);
        m.ddr.write_f32_slice(0, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let t = m.dma(0, DmaPath::DdrToAm, &Dma2d::flat(0, 64, 16)).unwrap();
        assert!(t.done_at > 0.0);
        m.wait(0, t);
        assert_eq!(m.core_time(0), t.done_at);
        let mut out = [0.0; 4];
        m.core_mut(0).am.read_f32_slice(64, &mut out).unwrap();
        assert_eq!(out, [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn timing_mode_moves_no_data_but_advances_clocks() {
        let mut m = Machine::with_mode(ExecMode::Timing);
        // Address far beyond anything materialised: fine in timing mode.
        let t = m
            .dma(0, DmaPath::DdrToAm, &Dma2d::flat(40 << 30, 0, 4096))
            .unwrap();
        assert!(t.done_at > 0.0);
        assert_eq!(m.core(0).stats.dma_transfers, 1);
        assert_eq!(m.core(0).stats.ddr_bytes, 4096);
    }

    #[test]
    fn dma_engine_serialises_transfers() {
        let mut m = Machine::with_mode(ExecMode::Timing);
        let t1 = m
            .dma(0, DmaPath::DdrToAm, &Dma2d::flat(0, 0, 1 << 20))
            .unwrap();
        let t2 = m
            .dma(0, DmaPath::DdrToAm, &Dma2d::flat(0, 0, 1 << 20))
            .unwrap();
        assert!(t2.done_at > t1.done_at);
        // Second transfer waits for the engine, not for the core.
        assert!((t2.done_at - 2.0 * t1.done_at).abs() < 1e-12);
    }

    #[test]
    fn pingpong_overlap_emerges_from_clocks() {
        // Issue DMA for the next block, compute on the current one: total
        // time should be max(dma, compute) per step, not the sum.
        let mut m = Machine::with_mode(ExecMode::Timing);
        let d = Dma2d::flat(0, 0, 1 << 20);
        let dma_dur = transfer_time(&m.cfg, DmaPath::DdrToAm, d.bytes(), 1);
        let comp_cycles = (dma_dur / m.cfg.cycle_s() * 2.0) as u64; // compute-bound
        let mut pending = m.dma(0, DmaPath::DdrToAm, &d).unwrap();
        for _ in 0..4 {
            m.wait(0, pending);
            pending = m.dma(0, DmaPath::DdrToAm, &d).unwrap();
            m.compute(0, comp_cycles);
        }
        let total = m.core_time(0);
        let compute_total = 4.0 * comp_cycles as f64 * m.cfg.cycle_s();
        // First DMA is exposed; the rest hide under compute.
        assert!(total < compute_total + 2.0 * dma_dur);
        assert!(total >= compute_total);
    }

    #[test]
    fn barrier_aligns_clocks() {
        let mut m = Machine::with_mode(ExecMode::Timing);
        m.compute(0, 1000);
        m.compute(1, 5000);
        let t = m.barrier(&[0, 1, 2]);
        assert_eq!(t, m.core_time(1));
        assert_eq!(m.core_time(0), t);
        assert_eq!(m.core_time(2), t);
    }

    #[test]
    fn gsm_reduction_accumulates() {
        let mut m = Machine::with_mode(ExecMode::Fast);
        m.cluster.gsm.write_f32_slice(0, &[1.0, 1.0]).unwrap();
        m.core_mut(0).am.write_f32_slice(0, &[2.0, 3.0]).unwrap();
        m.gsm_accumulate_from_am(0, 0, 0, 2).unwrap();
        let mut out = [0.0; 2];
        m.cluster.gsm.read_f32_slice(0, &mut out).unwrap();
        assert_eq!(out, [3.0, 4.0]);
    }

    #[test]
    fn strided_block_copy_transposes_leading_dimension() {
        let mut m = Machine::with_mode(ExecMode::Fast);
        // 2×3 block at ld=5 in DDR → dense 2×3 in AM.
        for r in 0..2u64 {
            for c in 0..3u64 {
                m.ddr
                    .write_f32((r * 5 + c) * 4, (r * 10 + c) as f32)
                    .unwrap();
            }
        }
        m.dma_sync(0, DmaPath::DdrToAm, &Dma2d::block_f32(2, 3, 0, 5, 0, 3))
            .unwrap();
        let mut out = [0.0; 6];
        m.core_mut(0).am.read_f32_slice(0, &mut out).unwrap();
        assert_eq!(out, [0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn deadline_preempts_new_work_at_a_reproducible_instant() {
        let run = || {
            let mut m = Machine::with_mode(ExecMode::Timing);
            m.arm_watchdog(WatchdogConfig::with_deadline(1e-6));
            let mut err = None;
            for _ in 0..64 {
                match m.dma(0, DmaPath::DdrToAm, &Dma2d::flat(0, 0, 1 << 16)) {
                    Ok(t) => m.wait(0, t),
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                }
            }
            (err.unwrap(), m.fault_stats().watchdog_trips, m.elapsed())
        };
        let (e1, trips1, t1) = run();
        let (e2, _, t2) = run();
        assert_eq!(e1, e2, "deadline trip must be deterministic");
        assert_eq!(t1.to_bits(), t2.to_bits());
        assert_eq!(trips1, 1);
        match e1 {
            SimError::WatchdogTripped {
                unit: crate::WatchdogUnit::Core { core: 0 },
                at,
            } => assert!(at >= 1e-6),
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn disarmed_watchdog_never_fires() {
        let mut m = Machine::with_mode(ExecMode::Timing);
        for _ in 0..16 {
            let t = m
                .dma(0, DmaPath::DdrToAm, &Dma2d::flat(0, 0, 1 << 20))
                .unwrap();
            m.wait(0, t);
        }
        m.preempt_point(0).unwrap();
        assert_eq!(m.fault_stats().watchdog_trips, 0);
    }

    #[test]
    fn dma_budget_detects_a_hang_before_the_full_timeout_charge() {
        let plan = FaultPlan::new(1).timeout_dma(DmaPath::DdrToAm, 1);
        // Without a watchdog: the full 1 ms hang is charged.
        let mut slow = Machine::with_mode(ExecMode::Timing);
        slow.install_faults(&plan);
        let e = slow
            .dma(0, DmaPath::DdrToAm, &Dma2d::flat(0, 0, 64))
            .unwrap_err();
        assert!(matches!(e, SimError::DmaTimeout { .. }));
        // With a 10 µs budget: detected 100× earlier, blaming the unit.
        let mut fast = Machine::with_mode(ExecMode::Timing);
        fast.install_faults(&plan);
        fast.arm_watchdog(WatchdogConfig {
            dma_budget_s: 1e-5,
            ..WatchdogConfig::default()
        });
        let e = fast
            .dma(0, DmaPath::DdrToAm, &Dma2d::flat(0, 0, 64))
            .unwrap_err();
        match e {
            SimError::WatchdogTripped {
                unit:
                    crate::WatchdogUnit::Dma {
                        core: 0,
                        path: DmaPath::DdrToAm,
                    },
                at,
            } => assert!((at - 1e-5).abs() < 1e-12),
            other => panic!("got {other:?}"),
        }
        assert!(fast.elapsed() < slow.elapsed() / 10.0);
        assert_eq!(fast.fault_stats().watchdog_trips, 1);
        assert_eq!(fast.fault_stats().dma_timeouts, 1);
    }

    #[test]
    fn core_map_can_route_around_a_core_and_back() {
        let mut m = Machine::with_mode(ExecMode::Timing);
        m.set_core_map(&[2, 5]);
        m.compute(0, 100); // logical 0 → physical 2
        assert_eq!(m.physical_core(0), 2);
        assert_eq!(m.alive_cores(), 2);
        m.set_core_map(&[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(m.core_time(2), 100.0 * m.cfg.cycle_s());
        assert_eq!(m.core_time(0), 0.0);
    }

    #[test]
    fn report_aggregates_cores() {
        let mut m = Machine::with_mode(ExecMode::Timing);
        m.compute(0, 100);
        m.compute(1, 300);
        let r = m.report(1000, &[0, 1]);
        assert_eq!(r.totals.compute_cycles, 400);
        assert_eq!(r.cores_used, 2);
        assert!((r.seconds - 300.0 * m.cfg.cycle_s()).abs() < 1e-15);
    }
}
