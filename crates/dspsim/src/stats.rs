//! Execution statistics and efficiency accounting.

use crate::profiler::PhaseProfile;
use serde::{Deserialize, Serialize};

/// Per-core counters accumulated during a simulated run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Compute cycles spent executing kernel bundles.
    pub compute_cycles: u64,
    /// Dynamic instruction count (interpret mode only).
    pub instructions: u64,
    /// Flops performed (FMA = 2).
    pub flops: u64,
    /// Bytes moved over the DDR interface by this core's DMA engine.
    pub ddr_bytes: u64,
    /// Bytes moved over on-chip (GSM) paths by this core's DMA engine.
    pub gsm_bytes: u64,
    /// Number of DMA descriptors issued.
    pub dma_transfers: u64,
    /// Number of micro-kernel invocations.
    pub kernel_calls: u64,
}

impl CoreStats {
    /// Merge another core's counters into this one.
    pub fn merge(&mut self, other: &CoreStats) {
        self.compute_cycles += other.compute_cycles;
        self.instructions += other.instructions;
        self.flops += other.flops;
        self.ddr_bytes += other.ddr_bytes;
        self.gsm_bytes += other.gsm_bytes;
        self.dma_transfers += other.dma_transfers;
        self.kernel_calls += other.kernel_calls;
    }
}

/// Fault-injection and recovery counters for one run.
///
/// The injection counters (`dma_corruptions`, `dma_timeouts`, `bit_flips`,
/// `cores_lost`) are filled by the machine from its fault state; the
/// recovery counters (`retries`, `recomputed_tiles`) are filled by the
/// resilient execution layer wrapping the run.  All zero when no
/// [`crate::FaultPlan`] is installed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// DMA payload corruptions injected.
    pub dma_corruptions: u64,
    /// DMA watchdog timeouts injected.
    pub dma_timeouts: u64,
    /// Scratchpad bit flips injected.
    pub bit_flips: u64,
    /// Cores permanently lost during the run.
    pub cores_lost: u64,
    /// Times the armed watchdog fired (hung-DMA detection or deadline
    /// preemption; zero when no watchdog is armed).
    pub watchdog_trips: u64,
    /// Recovery attempts performed (retries and degraded re-runs).
    pub retries: u64,
    /// Tiles recomputed during recovery.
    pub recomputed_tiles: u64,
    /// `C` rows re-executed during recovery (checkpointed recovery
    /// re-runs only unverified row spans, so this stays below the full
    /// M dimension per retry).
    pub rows_reexecuted: u64,
}

impl FaultStats {
    /// Total faults injected (not counting recovery work).
    pub fn injected(&self) -> u64 {
        self.dma_corruptions + self.dma_timeouts + self.bit_flips + self.cores_lost
    }

    /// Merge another run's counters into this one (field-wise sum, like
    /// [`CoreStats::merge`]).
    pub fn merge(&mut self, other: &FaultStats) {
        self.dma_corruptions += other.dma_corruptions;
        self.dma_timeouts += other.dma_timeouts;
        self.bit_flips += other.bit_flips;
        self.cores_lost += other.cores_lost;
        self.watchdog_trips += other.watchdog_trips;
        self.retries += other.retries;
        self.recomputed_tiles += other.recomputed_tiles;
        self.rows_reexecuted += other.rows_reexecuted;
    }
}

/// Which execution backend produced a result: the simulated GPDSP
/// cluster, or the host CPU fallback lane.  Carried as provenance in
/// [`RunReport`] and every report derived from it, so heterogeneous
/// failover is visible end to end.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendKind {
    /// A simulated GPDSP cluster (the default — everything this crate
    /// models runs here).
    #[default]
    Dsp,
    /// The host CPU fallback backend (`ftimm`'s `CpuBackend`).
    Cpu,
}

impl BackendKind {
    /// Stable lower-case name (used by JSON exporters and log lines).
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Dsp => "dsp",
            BackendKind::Cpu => "cpu",
        }
    }
}

/// Result of one simulated GEMM (or kernel) run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Simulated wall time in seconds (max over participating cores).
    pub seconds: f64,
    /// Useful flops of the *problem* (2·M·N·K), not of padded work.
    pub useful_flops: u64,
    /// Aggregated counters over all cores.
    pub totals: CoreStats,
    /// Number of cores that participated.
    pub cores_used: usize,
    /// Backend that executed the run (`Dsp` for everything the machine
    /// itself reports; the CPU fallback lane overrides it).
    pub backend: BackendKind,
    /// Fault-injection and recovery counters (all zero in fault-free runs).
    pub faults: FaultStats,
    /// Per-phase profile of the run; `None` unless the run was profiled
    /// (see [`crate::Machine::profile_begin`]).
    pub profile: Option<PhaseProfile>,
}

impl RunReport {
    /// Achieved flop/s on the problem's useful work.
    pub fn gflops(&self) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        self.useful_flops as f64 / self.seconds / 1e9
    }

    /// Efficiency against a peak given in flop/s.
    pub fn efficiency(&self, peak_flops: f64) -> f64 {
        self.gflops() * 1e9 / peak_flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = CoreStats {
            compute_cycles: 10,
            flops: 100,
            ddr_bytes: 5,
            ..CoreStats::default()
        };
        let b = CoreStats {
            compute_cycles: 3,
            flops: 7,
            kernel_calls: 2,
            ..CoreStats::default()
        };
        a.merge(&b);
        assert_eq!(a.compute_cycles, 13);
        assert_eq!(a.flops, 107);
        assert_eq!(a.kernel_calls, 2);
        assert_eq!(a.ddr_bytes, 5);
    }

    #[test]
    fn gflops_and_efficiency() {
        let r = RunReport {
            seconds: 1e-3,
            useful_flops: 345_600_000,
            totals: CoreStats::default(),
            cores_used: 1,
            backend: BackendKind::default(),
            faults: FaultStats::default(),
            profile: None,
        };
        assert!((r.gflops() - 345.6).abs() < 1e-9);
        assert!((r.efficiency(345.6e9) - 1.0).abs() < 1e-12);
        assert_eq!(r.backend, BackendKind::Dsp);
    }

    #[test]
    fn backend_labels_are_stable() {
        assert_eq!(BackendKind::Dsp.label(), "dsp");
        assert_eq!(BackendKind::Cpu.label(), "cpu");
        assert_eq!(BackendKind::default(), BackendKind::Dsp);
    }

    #[test]
    fn zero_time_is_guarded() {
        let r = RunReport {
            seconds: 0.0,
            useful_flops: 1,
            totals: CoreStats::default(),
            cores_used: 1,
            backend: BackendKind::default(),
            faults: FaultStats::default(),
            profile: None,
        };
        assert_eq!(r.gflops(), 0.0);
    }
}
