//! The VLIW interpreter: executes generated kernel programs bit-exactly
//! against a core's register files and scratchpads, with an integrated
//! hazard checker that verifies the static schedule respected every
//! instruction latency.

use crate::{Core, Machine, SimError};
use ftimm_isa::{
    BufId, Instruction, LatencyTable, MemSpace, Opcode, Program, NUM_SREGS, NUM_VREGS, VECTOR_LANES,
};

/// Runtime placement of the three kernel buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelBindings {
    /// Byte offset of `A_s` within SM.
    pub a_off: u64,
    /// Byte offset of `B_a` within AM.
    pub b_off: u64,
    /// Byte offset of `C_a` within AM.
    pub c_off: u64,
}

impl KernelBindings {
    fn base(&self, buf: BufId) -> u64 {
        match buf {
            BufId::A => self.a_off,
            BufId::B => self.b_off,
            BufId::C => self.c_off,
        }
    }
}

/// Outcome of interpreting one program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecReport {
    /// Cycles executed (= dynamic bundle count).
    pub cycles: u64,
    /// Dynamic instruction count.
    pub instructions: u64,
    /// f32 FMA lane operations performed.
    pub fma_lanes: u64,
}

struct ExecState<'a> {
    core: &'a mut Core,
    bind: KernelBindings,
    lat: &'a LatencyTable,
    check: bool,
    cycle: u64,
    instructions: u64,
    fma_lanes: u64,
    ready_s: [u64; NUM_SREGS],
    ready_v: [u64; NUM_VREGS],
}

impl ExecState<'_> {
    fn check_uses(&self, inst: &Instruction) -> Result<(), SimError> {
        if !self.check {
            return Ok(());
        }
        for r in &inst.suses {
            let ready = self.ready_s[r.index()];
            if self.cycle < ready {
                return Err(SimError::Hazard {
                    register: r.to_string(),
                    read_cycle: self.cycle,
                    ready_cycle: ready,
                    mnemonic: inst.opcode.mnemonic(),
                });
            }
        }
        for r in &inst.vuses {
            let ready = self.ready_v[r.index()];
            if self.cycle < ready {
                return Err(SimError::Hazard {
                    register: r.to_string(),
                    read_cycle: self.cycle,
                    ready_cycle: ready,
                    mnemonic: inst.opcode.mnemonic(),
                });
            }
        }
        Ok(())
    }

    fn mark_defs(&mut self, inst: &Instruction) {
        let lat = self.lat.of(inst.opcode) as u64;
        for r in &inst.sdefs {
            self.ready_s[r.index()] = self.cycle + lat;
        }
        for r in &inst.vdefs {
            self.ready_v[r.index()] = self.cycle + lat;
        }
    }

    fn addr(&self, inst: &Instruction, indices: &[u64]) -> Result<(MemSpace, u64), SimError> {
        let mem = inst.mem.ok_or_else(|| SimError::BadBinding {
            detail: format!("{} has no memory operand", inst.opcode),
        })?;
        Ok((mem.space, self.bind.base(mem.buf) + mem.resolve(indices)))
    }

    fn execute(&mut self, inst: &Instruction, indices: &[u64]) -> Result<(), SimError> {
        self.check_uses(inst)?;
        self.instructions += 1;
        match inst.opcode {
            Opcode::Sldh => {
                let (space, addr) = self.addr(inst, indices)?;
                let v = self.region(space).read_u32(addr)?;
                self.core.sregs[inst.sdefs[0].index()] = v;
            }
            Opcode::Sldw => {
                let (space, addr) = self.addr(inst, indices)?;
                let v = self.region(space).read_u64(addr)?;
                self.core.sregs[inst.sdefs[0].index()] = v;
            }
            Opcode::Sfexts32l => {
                let v = self.core.sregs[inst.suses[0].index()] & 0xFFFF_FFFF;
                self.core.sregs[inst.sdefs[0].index()] = v;
            }
            Opcode::Sbale2h => {
                let v = self.core.sregs[inst.suses[0].index()] >> 32;
                self.core.sregs[inst.sdefs[0].index()] = v;
            }
            Opcode::Svbcast => {
                let s = f32::from_bits(self.core.sregs[inst.suses[0].index()] as u32);
                self.core.vregs[inst.vdefs[0].index()] = [s; VECTOR_LANES];
            }
            Opcode::Svbcast2 => {
                let s1 = f32::from_bits(self.core.sregs[inst.suses[0].index()] as u32);
                let s2 = f32::from_bits(self.core.sregs[inst.suses[1].index()] as u32);
                self.core.vregs[inst.vdefs[0].index()] = [s1; VECTOR_LANES];
                self.core.vregs[inst.vdefs[1].index()] = [s2; VECTOR_LANES];
            }
            Opcode::Sbr => {}
            Opcode::Vldw => {
                let (space, addr) = self.addr(inst, indices)?;
                let mut lanes = [0.0f32; VECTOR_LANES];
                self.region(space).read_f32_slice(addr, &mut lanes)?;
                self.core.vregs[inst.vdefs[0].index()] = lanes;
            }
            Opcode::Vlddw => {
                let (space, addr) = self.addr(inst, indices)?;
                let mut lanes = [0.0f32; 2 * VECTOR_LANES];
                self.region(space).read_f32_slice(addr, &mut lanes)?;
                let (lo, hi) = lanes.split_at(VECTOR_LANES);
                self.core.vregs[inst.vdefs[0].index()].copy_from_slice(lo);
                self.core.vregs[inst.vdefs[1].index()].copy_from_slice(hi);
            }
            Opcode::Vstw => {
                let (space, addr) = self.addr(inst, indices)?;
                let lanes = self.core.vregs[inst.vuses[0].index()];
                self.region(space).write_f32_slice(addr, &lanes)?;
            }
            Opcode::Vstdw => {
                let (space, addr) = self.addr(inst, indices)?;
                let lo = self.core.vregs[inst.vuses[0].index()];
                let hi = self.core.vregs[inst.vuses[1].index()];
                self.region(space).write_f32_slice(addr, &lo)?;
                self.region(space)
                    .write_f32_slice(addr + (VECTOR_LANES * 4) as u64, &hi)?;
            }
            Opcode::Vfmulas32 => {
                let acc = inst.vdefs[0].index();
                let a = self.core.vregs[inst.vuses[1].index()];
                let b = self.core.vregs[inst.vuses[2].index()];
                let c = &mut self.core.vregs[acc];
                for lane in 0..VECTOR_LANES {
                    c[lane] = a[lane].mul_add(b[lane], c[lane]);
                }
                self.fma_lanes += VECTOR_LANES as u64;
            }
            Opcode::Vfadds32 => {
                let a = self.core.vregs[inst.vuses[0].index()];
                let b = self.core.vregs[inst.vuses[1].index()];
                let d = &mut self.core.vregs[inst.vdefs[0].index()];
                for lane in 0..VECTOR_LANES {
                    d[lane] = a[lane] + b[lane];
                }
            }
            Opcode::Vclr => {
                self.core.vregs[inst.vdefs[0].index()] = [0.0; VECTOR_LANES];
            }
            Opcode::Vmov => {
                self.core.vregs[inst.vdefs[0].index()] = self.core.vregs[inst.vuses[0].index()];
            }
        }
        self.mark_defs(inst);
        Ok(())
    }

    fn region(&mut self, space: MemSpace) -> &mut crate::MemRegion {
        match space {
            MemSpace::Sm => &mut self.core.sm,
            MemSpace::Am => &mut self.core.am,
        }
    }
}

/// Interpret `program` on `core` with the given buffer bindings.
///
/// With `check_hazards`, every register read is verified against the
/// producing instruction's latency; a violation means the kernel
/// generator emitted an invalid schedule.
pub fn run_program(
    core: &mut Core,
    program: &Program,
    bind: KernelBindings,
    lat: &LatencyTable,
    check_hazards: bool,
) -> Result<ExecReport, SimError> {
    let mut st = ExecState {
        core,
        bind,
        lat,
        check: check_hazards,
        cycle: 0,
        instructions: 0,
        fma_lanes: 0,
        ready_s: [0; NUM_SREGS],
        ready_v: [0; NUM_VREGS],
    };
    program.visit::<SimError>(&mut |indices, bundle| {
        for (_unit, inst) in bundle.iter() {
            st.execute(inst, indices)?;
        }
        st.cycle += 1;
        Ok(())
    })?;
    Ok(ExecReport {
        cycles: st.cycle,
        instructions: st.instructions,
        fma_lanes: st.fma_lanes,
    })
}

impl Machine {
    /// Interpret a kernel on a core: executes the program functionally,
    /// advances the core's compute clock by the executed cycle count and
    /// accounts statistics.
    pub fn run_kernel(
        &mut self,
        id: usize,
        program: &Program,
        bind: KernelBindings,
        check_hazards: bool,
    ) -> Result<ExecReport, SimError> {
        self.check_core_alive(id)?;
        let lat = self.cfg.latencies;
        let cycle_s = self.cfg.cycle_s();
        let phys = self.physical_core(id);
        let core = &mut self.cluster.cores[phys];
        let report = run_program(core, program, bind, &lat, check_hazards)?;
        core.stats.instructions += report.instructions;
        core.stats.flops += 2 * report.fma_lanes;
        core.stats.kernel_calls += 1;
        core.stats.compute_cycles += report.cycles;
        core.t_compute += report.cycles as f64 * cycle_s;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExecMode, HwConfig};
    use ftimm_isa::{AddrExpr, Bundle, LoopLevel, SReg, Section, VReg};

    fn v(n: u16) -> VReg {
        VReg::new(n).unwrap()
    }
    fn r(n: u16) -> SReg {
        SReg::new(n).unwrap()
    }
    const BIND: KernelBindings = KernelBindings {
        a_off: 0,
        b_off: 0,
        c_off: 4096,
    };

    /// A tiny hand-written kernel: C[0..32] += A[0] * B[0..32], done as
    /// load → extend → broadcast → vload → fmac → store, one instruction
    /// per bundle (latency-safe but slow).
    fn scalar_times_vector_program() -> Program {
        let a = AddrExpr::flat(MemSpace::Sm, BufId::A, 0);
        let b = AddrExpr::flat(MemSpace::Am, BufId::B, 0);
        let c = AddrExpr::flat(MemSpace::Am, BufId::C, 0);
        let lat = LatencyTable::default();
        let mut bundles = Vec::new();
        let mut push1 = |inst: Instruction, gap: u32| {
            let mut bu = Bundle::new();
            bu.push_auto(inst).unwrap();
            bundles.push(bu);
            for _ in 1..gap {
                bundles.push(Bundle::new());
            }
        };
        push1(Instruction::sldh(r(0), a), lat.t_sld);
        push1(Instruction::sfexts32l(r(1), r(0)), lat.t_sext);
        push1(Instruction::svbcast(v(0), r(1)), lat.t_bcast);
        push1(Instruction::vldw(v(1), b), lat.t_vldw);
        push1(Instruction::vldw(v(2), c), lat.t_vldw);
        push1(Instruction::vfmulas32(v(2), v(0), v(1)), lat.t_fma);
        push1(Instruction::vstw(v(2), c), 1);
        let mut p = Program::new("axpy32");
        p.sections.push(Section::Straight(bundles));
        p
    }

    fn machine_with_data() -> Machine {
        let mut m = Machine::new(HwConfig::default(), ExecMode::Interpret);
        m.core_mut(0).sm.write_f32(0, 2.0).unwrap();
        for i in 0..32 {
            m.core_mut(0).am.write_f32(i * 4, i as f32).unwrap();
            m.core_mut(0).am.write_f32(4096 + i * 4, 100.0).unwrap();
        }
        m
    }

    #[test]
    fn interpreter_computes_axpy() {
        let mut m = machine_with_data();
        let p = scalar_times_vector_program();
        let rep = m.run_kernel(0, &p, BIND, true).unwrap();
        assert_eq!(rep.fma_lanes, 32);
        assert!(rep.cycles >= 7);
        for i in 0..32u64 {
            let got = m.core_mut(0).am.read_f32(4096 + i * 4).unwrap();
            assert_eq!(got, 100.0 + 2.0 * i as f32, "lane {i}");
        }
        // Clock advanced by exactly the executed cycles.
        let expect = rep.cycles as f64 * m.cfg.cycle_s();
        assert!((m.core_time(0) - expect).abs() < 1e-18);
    }

    #[test]
    fn hazard_checker_catches_latency_violation() {
        // Broadcast immediately consumed by an FMAC in the next cycle:
        // t_bcast = 2 means the read is one cycle early.
        let mut bundles = Vec::new();
        let mut b0 = Bundle::new();
        b0.push_auto(Instruction::svbcast(v(0), r(0))).unwrap();
        bundles.push(b0);
        let mut b1 = Bundle::new();
        b1.push_auto(Instruction::vfmulas32(v(1), v(0), v(2)))
            .unwrap();
        bundles.push(b1);
        let mut p = Program::new("hazard");
        p.sections.push(Section::Straight(bundles));
        let mut m = machine_with_data();
        let err = m.run_kernel(0, &p, BIND, true).unwrap_err();
        assert!(matches!(err, SimError::Hazard { .. }), "got {err}");
        // Without checking, it executes (reading the too-new value).
        let mut m2 = machine_with_data();
        m2.run_kernel(0, &p, BIND, false).unwrap();
    }

    #[test]
    fn loops_advance_addresses_via_indices() {
        // for i in 0..4 { C[i*128..] += broadcast(A[i*4]) * B[i*128..] }
        let a = AddrExpr::flat(MemSpace::Sm, BufId::A, 0).with_stride(0, 4);
        let b = AddrExpr::flat(MemSpace::Am, BufId::B, 0).with_stride(0, 128);
        let c = AddrExpr::flat(MemSpace::Am, BufId::C, 0).with_stride(0, 128);
        let lat = LatencyTable::default();
        let mut bundles = Vec::new();
        let mut push1 = |inst: Instruction, gap: u32| {
            let mut bu = Bundle::new();
            bu.push_auto(inst).unwrap();
            bundles.push(bu);
            for _ in 1..gap {
                bundles.push(Bundle::new());
            }
        };
        push1(Instruction::sldh(r(0), a), lat.t_sld);
        push1(Instruction::sfexts32l(r(1), r(0)), lat.t_sext);
        push1(Instruction::svbcast(v(0), r(1)), lat.t_bcast);
        push1(Instruction::vldw(v(1), b), lat.t_vldw);
        push1(Instruction::vldw(v(2), c), lat.t_vldw);
        push1(Instruction::vfmulas32(v(2), v(0), v(1)), lat.t_fma);
        push1(Instruction::vstw(v(2), c), 1);
        let mut p = Program::new("looped");
        p.sections.push(Section::Loop {
            level: LoopLevel(0),
            trips: 4,
            body: vec![Section::Straight(bundles)],
        });

        let mut m = Machine::new(HwConfig::default(), ExecMode::Interpret);
        for i in 0..4u64 {
            m.core_mut(0).sm.write_f32(i * 4, (i + 1) as f32).unwrap();
            for lane in 0..32u64 {
                m.core_mut(0).am.write_f32(i * 128 + lane * 4, 1.0).unwrap();
            }
        }
        let rep = m.run_kernel(0, &p, BIND, true).unwrap();
        assert_eq!(rep.fma_lanes, 4 * 32);
        for i in 0..4u64 {
            let got = m.core_mut(0).am.read_f32(4096 + i * 128).unwrap();
            assert_eq!(got, (i + 1) as f32, "block {i}");
        }
    }

    #[test]
    fn oob_kernel_access_is_reported() {
        let mut p = Program::new("oob");
        let mut bu = Bundle::new();
        bu.push_auto(Instruction::vldw(
            v(0),
            AddrExpr::flat(MemSpace::Am, BufId::B, 800 * 1024),
        ))
        .unwrap();
        p.sections.push(Section::Straight(vec![bu]));
        let mut m = machine_with_data();
        let err = m.run_kernel(0, &p, BIND, true).unwrap_err();
        assert!(matches!(err, SimError::OutOfBounds { .. }));
    }

    #[test]
    fn packed_load_and_high_extract() {
        let mut m = machine_with_data();
        m.core_mut(0).sm.write_f32(0, 1.25).unwrap();
        m.core_mut(0).sm.write_f32(4, -8.0).unwrap();
        let a = AddrExpr::flat(MemSpace::Sm, BufId::A, 0);
        let lat = LatencyTable::default();
        let mut bundles = Vec::new();
        let mut push1 = |inst: Instruction, gap: u32| {
            let mut bu = Bundle::new();
            bu.push_auto(inst).unwrap();
            bundles.push(bu);
            for _ in 1..gap {
                bundles.push(Bundle::new());
            }
        };
        push1(Instruction::sldw(r(0), a), lat.t_sld);
        push1(Instruction::sfexts32l(r(1), r(0)), lat.t_sext);
        push1(Instruction::sbale2h(r(2), r(0)), lat.t_sext);
        push1(Instruction::svbcast2(v(0), r(1), v(1), r(2)), lat.t_bcast);
        let mut p = Program::new("packed");
        p.sections.push(Section::Straight(bundles));
        m.run_kernel(0, &p, BIND, true).unwrap();
        assert_eq!(m.core(0).vregs[0][0], 1.25);
        assert_eq!(m.core(0).vregs[0][31], 1.25);
        assert_eq!(m.core(0).vregs[1][0], -8.0);
    }

    #[test]
    fn vstdw_writes_both_vectors() {
        let mut m = machine_with_data();
        m.core_mut(0).vregs[4] = [1.0; 32];
        m.core_mut(0).vregs[5] = [2.0; 32];
        let c = AddrExpr::flat(MemSpace::Am, BufId::C, 0);
        let mut p = Program::new("st2");
        let mut bu = Bundle::new();
        bu.push_auto(Instruction::vstdw(v(4), c).unwrap()).unwrap();
        p.sections.push(Section::Straight(vec![bu]));
        m.run_kernel(0, &p, BIND, false).unwrap();
        assert_eq!(m.core_mut(0).am.read_f32(4096).unwrap(), 1.0);
        assert_eq!(m.core_mut(0).am.read_f32(4096 + 128).unwrap(), 2.0);
    }
}
