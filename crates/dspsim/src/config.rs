//! Hardware configuration of the modelled FT-m7032 GPDSP cluster.
//!
//! Values stated in §II of the paper are used verbatim; values the paper
//! does not state are invented-but-documented (see DESIGN.md §8) and kept
//! here so every experiment reads them from one place.

use ftimm_isa::LatencyTable;
use serde::{Deserialize, Serialize};

/// Full hardware description of one GPDSP cluster plus the host CPU side.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HwConfig {
    /// DSP core clock in Hz (paper: 1.8 GHz).
    pub clock_hz: f64,
    /// Number of DSP cores per GPDSP cluster (paper: 8).
    pub cores_per_cluster: usize,
    /// Vector processing elements per core (paper: 16).
    pub vpes_per_core: usize,
    /// FMAC units per VPE (paper: 3).
    pub fmacs_per_vpe: usize,
    /// FP32 multiply-add results per FMAC per cycle (paper: 2).
    pub madds_per_fmac: usize,
    /// Scalar memory (SM) bytes per core (paper: 64 KB).
    pub sm_bytes: usize,
    /// Array memory (AM) bytes per core (paper: 768 KB).
    pub am_bytes: usize,
    /// Global shared memory (GSM) bytes per cluster (paper: 6 MB).
    pub gsm_bytes: usize,
    /// DDR bandwidth per cluster, bytes/s (paper: 42.6 GB/s).
    pub ddr_bw: f64,
    /// Fraction of theoretical DDR bandwidth achievable by DMA
    /// (invented: the paper observes real bandwidth below theoretical).
    pub ddr_efficiency: f64,
    /// Aggregate GSM crossbar bandwidth, bytes/s (invented: 128 GB/s).
    pub gsm_bw: f64,
    /// Fixed DMA descriptor setup/latency cost in seconds (invented: 400 ns).
    pub dma_setup_s: f64,
    /// Instruction latencies (shared with the kernel generator).
    pub latencies: LatencyTable,
    /// Maximum f32 broadcasts from SPU to VPU per cycle (paper: 2).
    pub broadcasts_per_cycle: usize,
}

impl Default for HwConfig {
    fn default() -> Self {
        HwConfig {
            clock_hz: 1.8e9,
            cores_per_cluster: 8,
            vpes_per_core: 16,
            fmacs_per_vpe: 3,
            madds_per_fmac: 2,
            sm_bytes: 64 * 1024,
            am_bytes: 768 * 1024,
            gsm_bytes: 6 * 1024 * 1024,
            ddr_bw: 42.6e9,
            ddr_efficiency: 0.80,
            gsm_bw: 128.0e9,
            dma_setup_s: 400e-9,
            latencies: LatencyTable::default(),
            broadcasts_per_cycle: 2,
        }
    }
}

impl HwConfig {
    /// Flops per cycle per core (one FMA = 2 flops).
    pub fn flops_per_cycle_per_core(&self) -> usize {
        self.vpes_per_core * self.fmacs_per_vpe * self.madds_per_fmac * 2
    }

    /// Peak single-precision performance of one core, flop/s.
    pub fn core_peak_flops(&self) -> f64 {
        self.flops_per_cycle_per_core() as f64 * self.clock_hz
    }

    /// Peak single-precision performance of the whole cluster, flop/s.
    pub fn cluster_peak_flops(&self) -> f64 {
        self.core_peak_flops() * self.cores_per_cluster as f64
    }

    /// SIMD width in f32 lanes (paper: 32).
    pub fn simd_width(&self) -> usize {
        // Each VPE holds two f32 per 64-bit register slice.
        self.vpes_per_core * 2
    }

    /// Seconds per core cycle.
    pub fn cycle_s(&self) -> f64 {
        1.0 / self.clock_hz
    }

    /// Achievable DDR bandwidth (bytes/s) for one of `streams` concurrent
    /// DMA streams (deterministic contention model).
    pub fn ddr_bw_per_stream(&self, streams: usize) -> f64 {
        self.ddr_bw * self.ddr_efficiency / streams.max(1) as f64
    }

    /// Achievable GSM bandwidth (bytes/s) for one of `streams` streams.
    pub fn gsm_bw_per_stream(&self, streams: usize) -> f64 {
        self.gsm_bw / streams.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_peak_numbers_reproduce() {
        let c = HwConfig::default();
        // §II: each DSP core provides 345.6 GFlops at 1.8 GHz.
        assert!((c.core_peak_flops() - 345.6e9).abs() < 1e6);
        // 8 cores per cluster.
        assert!((c.cluster_peak_flops() - 2764.8e9).abs() < 1e7);
        // SIMD width for FP32 is 32.
        assert_eq!(c.simd_width(), 32);
        assert_eq!(c.flops_per_cycle_per_core(), 192);
    }

    #[test]
    fn bandwidth_splits_between_streams() {
        let c = HwConfig::default();
        let one = c.ddr_bw_per_stream(1);
        let eight = c.ddr_bw_per_stream(8);
        assert!((one / eight - 8.0).abs() < 1e-12);
        assert!(one <= c.ddr_bw);
        // Zero streams is clamped, not a division by zero.
        assert_eq!(c.ddr_bw_per_stream(0), one);
    }

    #[test]
    fn scratchpad_sizes_match_paper() {
        let c = HwConfig::default();
        assert_eq!(c.sm_bytes, 65536);
        assert_eq!(c.am_bytes, 786432);
        assert_eq!(c.gsm_bytes, 6291456);
    }
}
