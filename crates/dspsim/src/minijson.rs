//! Minimal hand-rolled JSON reader/writer shared by [`crate::planfile`]
//! and the profile exporters.
//!
//! The workspace builds offline with a marker-only serde stub (see
//! `vendor/serde`), so every JSON codec in the tree is hand-written
//! against this module.  The grammar is the subset those codecs need —
//! objects, arrays, strings without exotic escapes, and numbers — and the
//! reader rejects anything else loudly.  Numbers are kept as their source
//! text until a field claims them, so `u64` seeds survive beyond the
//! 2^53 range where an `f64` detour would silently round.

/// Parsed JSON value; numbers keep their source text so integer fields
/// never take a lossy `f64` detour.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A number, kept as its source text.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source field order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object, or an error naming `what` was expected.
    pub fn as_obj(&self, what: &str) -> Result<&[(String, Value)], String> {
        match self {
            Value::Obj(fields) => Ok(fields),
            _ => Err(format!("{what}: expected an object")),
        }
    }

    /// The items of an array, or an error naming `what` was expected.
    pub fn as_arr(&self, what: &str) -> Result<&[Value], String> {
        match self {
            Value::Arr(items) => Ok(items),
            _ => Err(format!("{what}: expected an array")),
        }
    }

    /// The contents of a string, or an error naming `what` was expected.
    pub fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(format!("{what}: expected a string")),
        }
    }

    /// A number as `u64` (exact; no float detour), or an error.
    pub fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Value::Num(s) => s
                .parse::<u64>()
                .map_err(|e| format!("{what}: bad integer {s:?} ({e})")),
            _ => Err(format!("{what}: expected a number")),
        }
    }

    /// A number as `f64`, or an error.
    pub fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Value::Num(s) => s
                .parse::<f64>()
                .map_err(|e| format!("{what}: bad number {s:?} ({e})")),
            _ => Err(format!("{what}: expected a number")),
        }
    }

    /// Look up a field of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Quote and escape a string for embedding in JSON output.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Recursive-descent reader over the supported JSON subset.
pub struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    /// A parser over `text`.
    pub fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    /// Parse one complete value; trailing non-whitespace is an error.
    pub fn parse(mut self) -> Result<Value, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing data at byte {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(c) => Err(format!(
                "unexpected {:?} at byte {}",
                char::from(*c),
                self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => match self.bytes.get(self.pos + 1) {
                    Some(c @ (b'"' | b'\\' | b'/')) => {
                        out.push(char::from(*c));
                        self.pos += 2;
                    }
                    _ => return Err(format!("unsupported escape at byte {}", self.pos)),
                },
                Some(&c) => {
                    out.push(char::from(c));
                    self.pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(c) if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a number at byte {start}"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII")
            .to_string();
        // Validate the token now so errors point at the source.
        text.parse::<f64>()
            .map_err(|e| format!("bad number {text:?} at byte {start} ({e})"))?;
        Ok(Value::Num(text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_parse_and_project() {
        let v = Parser::new(r#"{ "a": [1, 2.5, "x"], "b": { "c": 18446744073709551615 } }"#)
            .parse()
            .unwrap();
        let arr = v.get("a").unwrap().as_arr("a").unwrap();
        assert_eq!(arr[0].as_u64("a0").unwrap(), 1);
        assert_eq!(arr[1].as_f64("a1").unwrap(), 2.5);
        assert_eq!(arr[2].as_str("a2").unwrap(), "x");
        // u64 beyond 2^53 survives exactly.
        let c = v.get("b").unwrap().get("c").unwrap();
        assert_eq!(c.as_u64("c").unwrap(), u64::MAX);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn quote_escapes() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(
            Parser::new(&quote("say \"hi\""))
                .parse()
                .unwrap()
                .as_str("s")
                .unwrap(),
            "say \"hi\""
        );
    }

    #[test]
    fn malformed_inputs_error() {
        for (text, needle) in [
            ("{ \"a\": }", "unexpected"),
            ("[1 2]", "expected ','"),
            ("1 2", "trailing data"),
            ("\"abc", "unterminated"),
            ("{ \"a\": true }", "unexpected 't'"),
        ] {
            let err = Parser::new(text).parse().unwrap_err();
            assert!(err.contains(needle), "{text}: got {err:?}");
        }
    }
}
