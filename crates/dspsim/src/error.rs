//! Simulator error type.

use std::fmt;

/// The unit a tripped watchdog blames (see
/// [`crate::machine::Machine::arm_watchdog`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogUnit {
    /// A DMA engine whose transfer hung past the watchdog's DMA budget.
    Dma {
        /// Physical core whose engine issued the hung transfer.
        core: usize,
        /// The path the transfer used.
        path: crate::DmaPath,
    },
    /// A core that reached the armed deadline without retiring its work:
    /// the next operation it tried to issue was preempted.
    Core {
        /// The physical core that passed the deadline.
        core: usize,
    },
}

/// Errors raised by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// An access fell outside a memory region.
    OutOfBounds {
        /// Region name ("SM", "AM", "GSM", "DDR").
        region: &'static str,
        /// Byte offset of the access.
        offset: u64,
        /// Access length in bytes.
        len: u64,
        /// Region capacity in bytes.
        capacity: u64,
    },
    /// A register was read before its producing instruction's latency
    /// elapsed (the generated schedule has a hazard).
    Hazard {
        /// Register name (`R7` / `V12`).
        register: String,
        /// Cycle of the offending read.
        read_cycle: u64,
        /// First cycle the value is architecturally ready.
        ready_cycle: u64,
        /// Mnemonic of the reading instruction.
        mnemonic: &'static str,
    },
    /// An instruction the interpreter cannot execute in this context
    /// (e.g. a kernel touching a space with no bound buffer).
    BadBinding {
        /// Description of what was missing.
        detail: String,
    },
    /// A bump allocation exceeded the region capacity.
    AllocFailure {
        /// Region name.
        region: &'static str,
        /// Requested bytes.
        requested: u64,
        /// Remaining bytes.
        available: u64,
    },
    /// ISA-level validation error surfaced during execution.
    Isa(ftimm_isa::IsaError),
    /// An injected fault made a DMA transfer hang past the watchdog.
    DmaTimeout {
        /// Physical core whose engine issued the transfer.
        core: usize,
        /// The path the transfer used.
        path: crate::DmaPath,
        /// Simulated time at which the watchdog fired.
        at: f64,
    },
    /// A core failed permanently (injected at a scheduled simulated time).
    CoreFailed {
        /// The physical core that died.
        core: usize,
        /// Simulated time of the failure.
        at: f64,
    },
    /// The whole cluster failed permanently (injected via
    /// [`crate::FaultPlan::kill_cluster`]): every core is gone, only
    /// host-side DDR reads survive.
    ClusterFailed {
        /// Simulated time of the failure.
        at: f64,
    },
    /// The armed watchdog fired: a DMA transfer hung past its budget or a
    /// core reached the deadline without retiring its work.
    WatchdogTripped {
        /// The unit the watchdog blames.
        unit: WatchdogUnit,
        /// Simulated time at which the watchdog fired.
        at: f64,
    },
    /// Data failed an integrity check (raised by recovery layers when
    /// corruption survives their retry budget).
    DataCorrupt {
        /// Region name the corruption was detected in.
        region: &'static str,
        /// Byte offset of (or near) the corrupted data.
        offset: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfBounds {
                region,
                offset,
                len,
                capacity,
            } => write!(
                f,
                "access [{offset}, {}) out of bounds for {region} (capacity {capacity})",
                offset + len
            ),
            SimError::Hazard {
                register,
                read_cycle,
                ready_cycle,
                mnemonic,
            } => write!(
                f,
                "hazard: {mnemonic} reads {register} in cycle {read_cycle} but it is ready in \
                 cycle {ready_cycle}"
            ),
            SimError::BadBinding { detail } => write!(f, "bad binding: {detail}"),
            SimError::AllocFailure {
                region,
                requested,
                available,
            } => write!(
                f,
                "allocation of {requested} B failed in {region} ({available} B free)"
            ),
            SimError::Isa(e) => write!(f, "isa error: {e}"),
            SimError::DmaTimeout { core, path, at } => write!(
                f,
                "dma timeout: core {core} transfer over {path:?} hung (watchdog at {at:.6e}s)"
            ),
            SimError::CoreFailed { core, at } => {
                write!(f, "core {core} failed permanently at {at:.6e}s")
            }
            SimError::ClusterFailed { at } => {
                write!(f, "cluster failed permanently at {at:.6e}s")
            }
            SimError::WatchdogTripped { unit, at } => match unit {
                WatchdogUnit::Dma { core, path } => write!(
                    f,
                    "watchdog tripped at {at:.6e}s: core {core} DMA over {path:?} hung past its \
                     budget"
                ),
                WatchdogUnit::Core { core } => write!(
                    f,
                    "watchdog tripped at {at:.6e}s: core {core} passed the deadline without \
                     retiring"
                ),
            },
            SimError::DataCorrupt { region, offset } => {
                write!(f, "data corruption detected in {region} near byte {offset}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Isa(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ftimm_isa::IsaError> for SimError {
    fn from(e: ftimm_isa::IsaError) -> Self {
        SimError::Isa(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::Hazard {
            register: "V3".into(),
            read_cycle: 10,
            ready_cycle: 12,
            mnemonic: "VFMULAS32",
        };
        let s = e.to_string();
        assert!(s.contains("V3"));
        assert!(s.contains("cycle 10"));
        assert!(s.contains("cycle 12"));
    }

    #[test]
    fn isa_errors_convert() {
        let e: SimError = ftimm_isa::IsaError::BadLoopLevel(9).into();
        assert!(matches!(e, SimError::Isa(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
