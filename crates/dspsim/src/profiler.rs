//! Phase-tagged span/event recording on the simulated clock.
//!
//! When enabled (see [`crate::Machine::profile_begin`]), the machine
//! records a [`Span`] for every timed activity it models — DMA transfers
//! per engine, kernel execution per core, GSM reductions, barrier waits,
//! recovery stalls — plus instantaneous [`SimEvent`]s for faults and
//! watchdog trips.  Spans carry *simulated* timestamps read off the
//! clocks the machine already maintains; recording never advances a
//! clock, so an instrumented run stays bit-exact with an uninstrumented
//! one.
//!
//! The recorder is a bounded ring: once `capacity` spans are held, the
//! oldest are dropped (and counted), so paper-scale sweeps cannot
//! accumulate unbounded memory.  [`Profiler::aggregate`] folds whatever
//! was kept into a fixed-size [`PhaseProfile`] suitable for embedding in
//! a [`crate::RunReport`].

use crate::DmaPath;
use serde::{Deserialize, Serialize};

/// The execution phases the simulator can attribute time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// DDR → on-chip transfers (A/B/C panel loads).
    DmaLoad,
    /// GSM → SM/AM broadcasts of shared panels.
    Broadcast,
    /// Micro-kernel execution on a core.
    Compute,
    /// Partial-result reduction through the GSM crossbar.
    Reduction,
    /// On-chip → DDR write-back.
    DmaStore,
    /// Waiting at a barrier for slower cores.
    Barrier,
    /// Recovery stalls (retry backoff) charged by a resilience layer.
    Recovery,
    /// Host-side planning (candidate ranking, cache lookups, timing-model
    /// simulation) charged by the executor.  Plan spans carry *host* wall
    /// durations on the simulated timeline: [`Profiler::aggregate`]
    /// accumulates them directly, without extending the profiled window
    /// or counting them as device busy time.
    Plan,
    /// Host-side autotuning (candidate search, calibration fitting,
    /// catalog I/O) charged by the tuner.  Handled exactly like
    /// [`Phase::Plan`]: host wall durations accumulated directly, outside
    /// the device window and busy accounting.
    Tune,
}

/// Number of [`Phase`] variants (array dimension of per-phase tallies).
pub const PHASE_COUNT: usize = 9;

/// Physical cores a [`PhaseProfile`] tracks individually (one cluster).
pub const PROFILE_CORES: usize = 8;

impl Phase {
    /// Every phase, in declaration order (= tally array order).
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::DmaLoad,
        Phase::Broadcast,
        Phase::Compute,
        Phase::Reduction,
        Phase::DmaStore,
        Phase::Barrier,
        Phase::Recovery,
        Phase::Plan,
        Phase::Tune,
    ];

    /// Stable lower-case name (used by the JSON exporters).
    pub fn name(self) -> &'static str {
        match self {
            Phase::DmaLoad => "dma_load",
            Phase::Broadcast => "broadcast",
            Phase::Compute => "compute",
            Phase::Reduction => "reduction",
            Phase::DmaStore => "dma_store",
            Phase::Barrier => "barrier",
            Phase::Recovery => "recovery",
            Phase::Plan => "plan",
            Phase::Tune => "tune",
        }
    }

    /// Inverse of [`Phase::name`].
    pub fn from_name(s: &str) -> Result<Phase, String> {
        Phase::ALL
            .into_iter()
            .find(|p| p.name() == s)
            .ok_or_else(|| format!("unknown phase {s:?}"))
    }

    /// Index into per-phase tally arrays.
    pub fn index(self) -> usize {
        Phase::ALL.iter().position(|&p| p == self).expect("in ALL")
    }

    /// Attribution priority when phases overlap in time: at any instant
    /// the *exclusive* timeline charges the highest-priority phase active
    /// anywhere on the cluster, so Σ exclusive phase seconds equals the
    /// busy (non-idle) portion of the wall clock.
    fn priority(self) -> usize {
        match self {
            // Host-side spans never enter the exclusive sweep (they are
            // accumulated directly), so these values are moot.
            Phase::Tune => 8,
            Phase::Plan => 7,
            Phase::Compute => 6,
            Phase::Reduction => 5,
            Phase::Broadcast => 4,
            Phase::DmaLoad => 3,
            Phase::DmaStore => 2,
            Phase::Recovery => 1,
            Phase::Barrier => 0,
        }
    }

    /// Whether this phase is host-side bookkeeping ([`Phase::Plan`] /
    /// [`Phase::Tune`]): accumulated directly by the aggregator, excluded
    /// from the device window, busy time and per-core occupancy.
    pub fn is_host_side(self) -> bool {
        matches!(self, Phase::Plan | Phase::Tune)
    }

    /// Whether this phase moves data (the "DMA" side of the DMA/compute
    /// overlap fraction and of the trace exporter's per-core tracks).
    pub fn is_data_movement(self) -> bool {
        matches!(
            self,
            Phase::DmaLoad | Phase::Broadcast | Phase::DmaStore | Phase::Reduction
        )
    }
}

/// The phase a DMA transfer on `path` belongs to.
pub fn phase_of_path(path: DmaPath) -> Phase {
    match path {
        DmaPath::DdrToGsm | DmaPath::DdrToSm | DmaPath::DdrToAm => Phase::DmaLoad,
        DmaPath::GsmToSm | DmaPath::GsmToAm => Phase::Broadcast,
        DmaPath::AmToGsm => Phase::Reduction,
        DmaPath::GsmToDdr | DmaPath::SmToDdr | DmaPath::AmToDdr => Phase::DmaStore,
    }
}

/// One phase-tagged interval of simulated time on a physical core (or
/// its DMA engine, for data-movement phases).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// The phase.
    pub phase: Phase,
    /// Physical core id.
    pub core: usize,
    /// Start, simulated seconds.
    pub t0: f64,
    /// End, simulated seconds (`>= t0`).
    pub t1: f64,
}

/// Kinds of instantaneous events the machine records alongside spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An armed DMA corruption fired.
    DmaCorrupt,
    /// An armed DMA timeout fired (full hang charge taken).
    DmaTimeout,
    /// The watchdog called a transfer hung after its DMA budget.
    WatchdogDma,
    /// The watchdog preempted a core past its deadline.
    WatchdogDeadline,
    /// A core reached its scheduled death and failed permanently.
    CoreFailed,
    /// A supervisor retired a core from the logical map.
    CoreRetired,
    /// A resilience layer charged a recovery retry.
    Retry,
    /// The whole cluster failed permanently.
    ClusterFailed,
}

impl EventKind {
    /// Stable lower-case name (used by the trace exporter).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::DmaCorrupt => "dma_corrupt",
            EventKind::DmaTimeout => "dma_timeout",
            EventKind::WatchdogDma => "watchdog_dma",
            EventKind::WatchdogDeadline => "watchdog_deadline",
            EventKind::CoreFailed => "core_failed",
            EventKind::CoreRetired => "core_retired",
            EventKind::Retry => "retry",
            EventKind::ClusterFailed => "cluster_failed",
        }
    }
}

/// An instantaneous event on the simulated clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimEvent {
    /// What happened.
    pub kind: EventKind,
    /// Physical core implicated, if any.
    pub core: Option<usize>,
    /// Simulated time of the event.
    pub t: f64,
}

/// Bounded recorder of spans and events on the simulated clock.
///
/// Disabled by default: every record call is a single branch, and no
/// machine clock is ever touched either way.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    enabled: bool,
    capacity: usize,
    spans: std::collections::VecDeque<Span>,
    events: Vec<SimEvent>,
    dropped: u64,
}

/// Default span capacity (≈ 8 MiB of spans; plenty for one profiled run,
/// bounded for sweeps).
pub const DEFAULT_PROFILE_CAPACITY: usize = 1 << 18;

impl Profiler {
    /// A disabled profiler (records nothing).
    pub fn disabled() -> Self {
        Profiler::default()
    }

    /// An enabled profiler holding at most `capacity` spans (the oldest
    /// are dropped — and counted — beyond that).
    pub fn enabled(capacity: usize) -> Self {
        Profiler {
            enabled: true,
            capacity: capacity.max(1),
            spans: std::collections::VecDeque::new(),
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a span (no-op while disabled; zero-length spans are kept —
    /// they mark issue points even when no time passed).
    pub fn record(&mut self, span: Span) {
        if !self.enabled {
            return;
        }
        debug_assert!(span.t1 >= span.t0, "span ends before it starts");
        if self.spans.len() == self.capacity {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(span);
    }

    /// Record an instantaneous event (no-op while disabled; events share
    /// the span capacity bound).
    pub fn event(&mut self, kind: EventKind, core: Option<usize>, t: f64) {
        if !self.enabled {
            return;
        }
        if self.events.len() < self.capacity {
            self.events.push(SimEvent { kind, core, t });
        } else {
            self.dropped += 1;
        }
    }

    /// Recorded spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter()
    }

    /// Recorded events, oldest first.
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// Spans/events dropped to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Aggregate the recorded spans into a [`PhaseProfile`].
    ///
    /// Per-phase seconds are *exclusive*: the cluster-wide timeline is
    /// swept once, and each instant where anything is active is charged
    /// to the highest-priority active phase (compute > reduction >
    /// broadcast > loads > stores > recovery > barrier).  Their sum is
    /// therefore the busy portion of the profiled window and can never
    /// exceed `total_s`.  The overlap fraction is the share of the window
    /// where a data-movement span and a compute span run concurrently.
    /// Roofline fields are left at zero for the caller to fill.
    pub fn aggregate(&self) -> PhaseProfile {
        let mut prof = PhaseProfile {
            spans: self.spans.len() as u64,
            events: self.events.len() as u64,
            dropped: self.dropped,
            ..PhaseProfile::default()
        };
        if self.spans.is_empty() {
            return prof;
        }

        // Boundary sweep: (time, phase index, +1/-1), plus per-core
        // busy-interval union computed from the same sorted boundaries.
        // Plan/Tune spans are host-side time: they accumulate into their
        // tally directly and never enter the sweep, so they neither
        // extend the simulated window nor count as device busy time.
        let mut bounds: Vec<(f64, usize, i32)> = Vec::with_capacity(self.spans.len() * 2);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for s in &self.spans {
            if s.phase.is_host_side() {
                prof.phase_s[s.phase.index()] += s.t1 - s.t0;
                continue;
            }
            lo = lo.min(s.t0);
            hi = hi.max(s.t1);
            bounds.push((s.t0, s.phase.index(), 1));
            bounds.push((s.t1, s.phase.index(), -1));
        }
        if bounds.is_empty() {
            return prof;
        }
        prof.total_s = hi - lo;
        bounds.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("simulated times are finite"));

        let mut active = [0i32; PHASE_COUNT];
        let mut prev_t = bounds[0].0;
        for &(t, phase, delta) in &bounds {
            let seg = t - prev_t;
            if seg > 0.0 {
                let top = Phase::ALL
                    .into_iter()
                    .filter(|p| active[p.index()] > 0)
                    .max_by_key(|p| p.priority());
                if let Some(p) = top {
                    prof.phase_s[p.index()] += seg;
                }
                let moving = Phase::ALL
                    .into_iter()
                    .any(|p| p.is_data_movement() && active[p.index()] > 0);
                if moving && active[Phase::Compute.index()] > 0 {
                    prof.overlap_s += seg;
                }
            }
            active[phase] += delta;
            prev_t = t;
        }

        // Per-core busy time: union of that core's span intervals.
        for core in 0..PROFILE_CORES {
            let mut iv: Vec<(f64, f64)> = self
                .spans
                .iter()
                .filter(|s| s.core == core && s.t1 > s.t0 && !s.phase.is_host_side())
                .map(|s| (s.t0, s.t1))
                .collect();
            iv.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let mut busy = 0.0;
            let mut cur: Option<(f64, f64)> = None;
            for (a, b) in iv {
                match &mut cur {
                    Some((_, e)) if a <= *e => *e = e.max(b),
                    _ => {
                        if let Some((s, e)) = cur {
                            busy += e - s;
                        }
                        cur = Some((a, b));
                    }
                }
            }
            if let Some((s, e)) = cur {
                busy += e - s;
            }
            prof.core_busy_s[core] = busy;
        }
        prof
    }
}

/// Fixed-size per-phase summary of one profiled run, embeddable in a
/// [`crate::RunReport`] (which stays `Copy`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Profiled window length: last device span end minus first device
    /// span start, simulated seconds (host-side [`Phase::Plan`] spans do
    /// not extend it).
    pub total_s: f64,
    /// Exclusive simulated seconds per phase, indexed by [`Phase::index`].
    /// Summed over the device phases this is the cluster's busy time and
    /// is `<= total_s`; the [`Phase::Plan`] slot holds *host* planning
    /// seconds accumulated outside the sweep.
    pub phase_s: [f64; PHASE_COUNT],
    /// Busy simulated seconds per physical core (union of its spans;
    /// cores beyond [`PROFILE_CORES`] are not tracked).
    pub core_busy_s: [f64; PROFILE_CORES],
    /// Simulated seconds where data movement and compute ran concurrently
    /// anywhere on the cluster.
    pub overlap_s: f64,
    /// Roofline-predicted GFLOPS for the profiled problem (filled by the
    /// executor; zero when unknown).
    pub roofline_gflops: f64,
    /// Achieved GFLOPS of the profiled run (filled by the executor).
    pub achieved_gflops: f64,
    /// Plan-cache hits over the owning context's lifetime (filled by the
    /// executor; zero when unknown).
    pub plan_hits: u64,
    /// Plan-cache misses over the owning context's lifetime.
    pub plan_misses: u64,
    /// Plan-cache evictions over the owning context's lifetime.
    pub plan_evictions: u64,
    /// Plan-cache hits served from a loaded plan catalog (filled by the
    /// executor; zero when no catalog is attached).
    pub catalog_hits: u64,
    /// Plan lookups that missed the loaded plan catalog.
    pub catalog_misses: u64,
    /// Spans aggregated.
    pub spans: u64,
    /// Events recorded.
    pub events: u64,
    /// Spans/events dropped to the ring bound (phase seconds undercount
    /// the run when nonzero).
    pub dropped: u64,
}

impl PhaseProfile {
    /// Exclusive seconds attributed to `phase`.
    pub fn phase_seconds(&self, phase: Phase) -> f64 {
        self.phase_s[phase.index()]
    }

    /// Sum of exclusive per-phase *device* seconds (= cluster busy time;
    /// host-side [`Phase::Plan`]/[`Phase::Tune`] time is excluded).
    pub fn busy_s(&self) -> f64 {
        Phase::ALL
            .into_iter()
            .filter(|p| !p.is_host_side())
            .map(|p| self.phase_seconds(p))
            .sum()
    }

    /// Host seconds spent planning (the [`Phase::Plan`] tally).
    pub fn planning_s(&self) -> f64 {
        self.phase_seconds(Phase::Plan)
    }

    /// Host seconds spent autotuning (the [`Phase::Tune`] tally).
    pub fn tuning_s(&self) -> f64 {
        self.phase_seconds(Phase::Tune)
    }

    /// DMA/compute overlap as a fraction of the profiled window, in
    /// `[0, 1]` (zero for an empty window).
    pub fn overlap_frac(&self) -> f64 {
        if self.total_s <= 0.0 {
            return 0.0;
        }
        (self.overlap_s / self.total_s).clamp(0.0, 1.0)
    }

    /// A core's busy fraction of the profiled window, in `[0, 1]`.
    pub fn occupancy(&self, core: usize) -> f64 {
        if self.total_s <= 0.0 {
            return 0.0;
        }
        (self.core_busy_s[core] / self.total_s).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(phase: Phase, core: usize, t0: f64, t1: f64) -> Span {
        Span {
            phase,
            core,
            t0,
            t1,
        }
    }

    #[test]
    fn exclusive_attribution_prefers_compute() {
        let mut p = Profiler::enabled(16);
        // DMA [0,2) on core 0, compute [1,3) on core 1: the overlapped
        // second goes to compute, the exposed DMA second to dma_load.
        p.record(span(Phase::DmaLoad, 0, 0.0, 2.0));
        p.record(span(Phase::Compute, 1, 1.0, 3.0));
        let prof = p.aggregate();
        assert!((prof.total_s - 3.0).abs() < 1e-12);
        assert!((prof.phase_seconds(Phase::Compute) - 2.0).abs() < 1e-12);
        assert!((prof.phase_seconds(Phase::DmaLoad) - 1.0).abs() < 1e-12);
        assert!((prof.overlap_s - 1.0).abs() < 1e-12);
        assert!((prof.busy_s() - prof.total_s).abs() < 1e-12);
        assert!((prof.occupancy(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((prof.occupancy(1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn idle_gaps_keep_busy_below_total() {
        let mut p = Profiler::enabled(16);
        p.record(span(Phase::Compute, 0, 0.0, 1.0));
        p.record(span(Phase::Compute, 0, 3.0, 4.0));
        let prof = p.aggregate();
        assert!((prof.total_s - 4.0).abs() < 1e-12);
        assert!((prof.busy_s() - 2.0).abs() < 1e-12);
        assert_eq!(prof.overlap_frac(), 0.0);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut p = Profiler::enabled(2);
        for i in 0..5 {
            p.record(span(Phase::Compute, 0, i as f64, i as f64 + 0.5));
        }
        assert_eq!(p.dropped(), 3);
        let kept: Vec<f64> = p.spans().map(|s| s.t0).collect();
        assert_eq!(kept, vec![3.0, 4.0]);
        assert_eq!(p.aggregate().dropped, 3);
    }

    #[test]
    fn plan_spans_accumulate_without_extending_the_window() {
        let mut p = Profiler::enabled(16);
        p.record(span(Phase::Compute, 0, 0.0, 2.0));
        // Host planning time, recorded far outside the device window: it
        // must tally under `plan` without stretching total_s, counting as
        // device busy time, or touching core occupancy.
        p.record(span(Phase::Plan, 0, 100.0, 100.5));
        let prof = p.aggregate();
        assert!((prof.total_s - 2.0).abs() < 1e-12);
        assert!((prof.planning_s() - 0.5).abs() < 1e-12);
        assert!((prof.busy_s() - 2.0).abs() < 1e-12);
        assert!((prof.core_busy_s[0] - 2.0).abs() < 1e-12);

        // Plan-only recordings aggregate to a zero-window profile that
        // still reports the planning tally.
        let mut only = Profiler::enabled(16);
        only.record(span(Phase::Plan, 0, 1.0, 1.25));
        let prof = only.aggregate();
        assert_eq!(prof.total_s, 0.0);
        assert!((prof.planning_s() - 0.25).abs() < 1e-12);
        assert_eq!(prof.busy_s(), 0.0);
    }

    #[test]
    fn tune_spans_are_host_side_like_plan_spans() {
        let mut p = Profiler::enabled(16);
        p.record(span(Phase::Compute, 0, 0.0, 2.0));
        // Host autotuning time far outside the device window: tallied
        // under `tune` without stretching total_s, counting as device
        // busy time, or touching core occupancy.
        p.record(span(Phase::Tune, 0, 50.0, 53.0));
        let prof = p.aggregate();
        assert!((prof.total_s - 2.0).abs() < 1e-12);
        assert!((prof.tuning_s() - 3.0).abs() < 1e-12);
        assert!((prof.busy_s() - 2.0).abs() < 1e-12);
        assert!((prof.core_busy_s[0] - 2.0).abs() < 1e-12);
        assert!(Phase::Tune.is_host_side() && Phase::Plan.is_host_side());
        assert!(!Phase::Compute.is_host_side());
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = Profiler::disabled();
        p.record(span(Phase::Compute, 0, 0.0, 1.0));
        p.event(EventKind::Retry, Some(0), 0.5);
        assert_eq!(p.spans().count(), 0);
        assert!(p.events().is_empty());
        assert_eq!(p.aggregate(), PhaseProfile::default());
    }

    #[test]
    fn phase_names_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()).unwrap(), p);
            assert_eq!(Phase::ALL[p.index()], p);
        }
        assert!(Phase::from_name("nope").is_err());
    }
}
