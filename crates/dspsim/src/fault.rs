//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes *when* and *where* the simulated hardware
//! misbehaves: DMA transfers that silently corrupt their payload or time
//! out, scratchpad words whose bits flip when read, and cores that fail
//! permanently at a given simulated time.  Faults are scheduled by count
//! (the Nth transfer over a path, the Nth read of a region) or by
//! simulated time, never by wall clock or host state, so a run with a
//! given `(seed, plan)` is bit-for-bit reproducible.
//!
//! The plan is installed into a [`crate::Machine`] with
//! [`crate::Machine::install_faults`]; an empty plan leaves every hot path
//! untouched (the fault hooks early-return before touching any counter
//! that could perturb timing).
//!
//! Injected *corruption* flips bit 30 (the exponent MSB) of one f32 in
//! the affected range: a non-zero value changes by many orders of
//! magnitude and a zero becomes 2.0, so algorithm-based fault tolerance
//! (ABFT) checksums detect every flip with a huge margin.

use crate::DmaPath;
use serde::{Deserialize, Serialize};

/// What a scheduled DMA fault does to its transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DmaFaultKind {
    /// The transfer completes on time but one f32 of the destination is
    /// corrupted (silent data corruption).
    Corrupt,
    /// The transfer never completes; the issuing core's DMA engine is
    /// charged the watchdog timeout and the transfer errors out.
    Timeout,
}

/// A fault armed on the Nth transfer (1-based) over a DMA path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DmaFault {
    /// The path the fault watches.
    pub path: DmaPath,
    /// Which transfer over `path` triggers it (1 = the first).
    pub nth: u64,
    /// What happens to that transfer.
    pub kind: DmaFaultKind,
}

/// Which memory a scheduled bit flip targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemTarget {
    /// The cluster-shared GSM.
    Gsm,
    /// A core's scalar memory.
    Sm(usize),
    /// A core's array memory.
    Am(usize),
}

/// A bit flip applied to the data returned by the Nth read (1-based) of a
/// region after the plan is installed.  The flip is persistent (the word
/// is damaged *at rest*) until the location is overwritten.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemFault {
    /// The region the fault targets.
    pub target: MemTarget,
    /// Which read (1 = the first after installation) triggers it.
    pub nth_read: u64,
}

/// A permanent core failure at a simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreFailure {
    /// The physical core that dies.
    pub core: usize,
    /// Simulated time (seconds) at which it stops responding.  The first
    /// operation issued on the core at or after this time errors with
    /// [`crate::SimError::CoreFailed`].
    pub at_seconds: f64,
}

/// A whole-cluster failure at a simulated time: the machine's fault
/// domain dies as one unit (power rail, interconnect, firmware wedge),
/// taking every core with it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterFailure {
    /// Simulated time (seconds) at which the cluster stops responding.
    /// The first operation issued at or after this time errors with
    /// [`crate::SimError::ClusterFailed`]; memory contents written before
    /// the failure stay readable from the host (the DDR partition
    /// survives the cluster, as on the real part).
    pub at_seconds: f64,
}

/// A uniform slowdown of the host CPU fallback backend: every CPU
/// dispatch is charged `factor ×` its model-predicted time (thermal
/// throttling, co-tenant interference).  Interpreted by the CPU backend
/// (`ftimm`'s `CpuBackend`), not by the DSP machine; it lives here so one
/// seeded [`FaultPlan`] drives the whole heterogeneous degradation
/// ladder and round-trips through the planfile codec.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuSlowdown {
    /// Multiplier on the CPU cost model's predicted seconds (`>= 1.0` for
    /// a slowdown; several slowdowns compound multiplicatively).
    pub factor: f64,
}

/// A transient failure of the Nth span executed on the host CPU fallback
/// backend (1-based).  The span's work is lost and the dispatch errors
/// transiently; like [`CpuSlowdown`] it is interpreted by the CPU
/// backend, not by the DSP machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuFailure {
    /// Which CPU span execution (1 = the first after installation) fails.
    pub nth: u64,
}

/// A complete, serialisable fault-injection schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the deterministic choice of corrupted offsets/bits.
    pub seed: u64,
    /// DMA transfer faults.
    pub dma: Vec<DmaFault>,
    /// Scratchpad bit flips.
    pub mem: Vec<MemFault>,
    /// Permanent core failures.
    pub cores: Vec<CoreFailure>,
    /// Whole-cluster failures.
    pub clusters: Vec<ClusterFailure>,
    /// CPU fallback-backend slowdowns.
    pub cpu_slowdowns: Vec<CpuSlowdown>,
    /// CPU fallback-backend transient span failures.
    pub cpu_failures: Vec<CpuFailure>,
    /// Simulated watchdog timeout charged to a core whose transfer hangs.
    pub timeout_s: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new(0)
    }
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            dma: Vec::new(),
            mem: Vec::new(),
            cores: Vec::new(),
            clusters: Vec::new(),
            cpu_slowdowns: Vec::new(),
            cpu_failures: Vec::new(),
            timeout_s: 1e-3,
        }
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.dma.is_empty()
            && self.mem.is_empty()
            && self.cores.is_empty()
            && self.clusters.is_empty()
            && self.cpu_slowdowns.is_empty()
            && self.cpu_failures.is_empty()
    }

    /// Total number of scheduled faults.
    pub fn len(&self) -> usize {
        self.dma.len()
            + self.mem.len()
            + self.cores.len()
            + self.clusters.len()
            + self.cpu_slowdowns.len()
            + self.cpu_failures.len()
    }

    /// Schedule silent corruption of the Nth transfer over `path`.
    pub fn corrupt_dma(mut self, path: DmaPath, nth: u64) -> Self {
        self.dma.push(DmaFault {
            path,
            nth,
            kind: DmaFaultKind::Corrupt,
        });
        self
    }

    /// Schedule a timeout of the Nth transfer over `path`.
    pub fn timeout_dma(mut self, path: DmaPath, nth: u64) -> Self {
        self.dma.push(DmaFault {
            path,
            nth,
            kind: DmaFaultKind::Timeout,
        });
        self
    }

    /// Schedule a bit flip on the Nth read of a scratchpad.
    pub fn flip_bit(mut self, target: MemTarget, nth_read: u64) -> Self {
        self.mem.push(MemFault { target, nth_read });
        self
    }

    /// Schedule a permanent failure of `core` at simulated time `at_s`.
    pub fn kill_core(mut self, core: usize, at_s: f64) -> Self {
        self.cores.push(CoreFailure {
            core,
            at_seconds: at_s,
        });
        self
    }

    /// Schedule a permanent failure of the whole cluster at simulated
    /// time `at_s` (the machine becomes a dead fault domain: every
    /// subsequent operation errors, but host-side DDR reads survive).
    pub fn kill_cluster(mut self, at_s: f64) -> Self {
        self.clusters.push(ClusterFailure { at_seconds: at_s });
        self
    }

    /// Schedule a uniform slowdown of the CPU fallback backend: every CPU
    /// dispatch is charged `factor ×` its predicted time (slowdowns
    /// compound multiplicatively).
    pub fn cpu_slowdown(mut self, factor: f64) -> Self {
        self.cpu_slowdowns.push(CpuSlowdown { factor });
        self
    }

    /// Schedule a transient failure of the Nth span executed on the CPU
    /// fallback backend (1 = the first after installation).
    pub fn fail_cpu(mut self, nth: u64) -> Self {
        self.cpu_failures.push(CpuFailure { nth });
        self
    }

    /// Compound slowdown factor over all scheduled [`CpuSlowdown`]s
    /// (`1.0` when none are scheduled).
    pub fn cpu_slowdown_factor(&self) -> f64 {
        self.cpu_slowdowns.iter().map(|s| s.factor).product()
    }
}

/// SplitMix64: the deterministic stream behind every "random" fault
/// placement choice.
pub(crate) fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A DMA fault armed inside the machine, with its pre-drawn random word.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ArmedDmaFault {
    pub path: DmaPath,
    pub nth: u64,
    pub kind: DmaFaultKind,
    /// Deterministic random word deciding where the corruption lands.
    pub rng: u64,
}

/// Per-machine fault-injection state: armed faults plus injection
/// counters.  Lives in [`crate::Machine`]; empty by default.
#[derive(Debug, Clone, Default)]
pub(crate) struct FaultState {
    /// Armed DMA faults (removed once fired).
    pub dma: Vec<ArmedDmaFault>,
    /// Transfers observed per path (indexed by [`path_index`]).
    pub dma_counts: [u64; 9],
    /// Scheduled death time per physical core.
    pub core_death: Vec<Option<f64>>,
    /// Whether a physical core has failed.
    pub failed: Vec<bool>,
    /// Scheduled whole-cluster death time (earliest wins if several).
    pub cluster_death: Option<f64>,
    /// Whether the whole cluster has failed.
    pub cluster_failed: bool,
    /// Watchdog timeout charged on a hung transfer.
    pub timeout_s: f64,
    /// Corruptions injected so far.
    pub injected_corruptions: u64,
    /// Timeouts injected so far.
    pub injected_timeouts: u64,
    /// Times the armed watchdog fired (hung DMA or deadline preemption).
    pub watchdog_trips: u64,
}

impl FaultState {
    /// Whether any DMA fault is still armed (cheap hot-path guard).
    pub fn dma_armed(&self) -> bool {
        !self.dma.is_empty()
    }

    /// Count a transfer over `path`; if a fault is armed for exactly this
    /// transfer, disarm and return it.
    pub fn take_dma_fault(&mut self, path: DmaPath) -> Option<ArmedDmaFault> {
        let idx = path_index(path);
        self.dma_counts[idx] += 1;
        let n = self.dma_counts[idx];
        let pos = self.dma.iter().position(|f| f.path == path && f.nth == n)?;
        Some(self.dma.remove(pos))
    }
}

/// Stable index of a path (for the per-path transfer counters).
pub(crate) fn path_index(path: DmaPath) -> usize {
    match path {
        DmaPath::DdrToGsm => 0,
        DmaPath::GsmToDdr => 1,
        DmaPath::DdrToSm => 2,
        DmaPath::DdrToAm => 3,
        DmaPath::SmToDdr => 4,
        DmaPath::AmToDdr => 5,
        DmaPath::GsmToSm => 6,
        DmaPath::GsmToAm => 7,
        DmaPath::AmToGsm => 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_faults() {
        let plan = FaultPlan::new(7)
            .corrupt_dma(DmaPath::DdrToAm, 3)
            .timeout_dma(DmaPath::GsmToAm, 1)
            .flip_bit(MemTarget::Am(2), 10)
            .kill_core(5, 1e-3)
            .kill_cluster(2e-3)
            .cpu_slowdown(4.0)
            .fail_cpu(2);
        assert_eq!(plan.len(), 7);
        assert!(!plan.is_empty());
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.dma[0].kind, DmaFaultKind::Corrupt);
        assert_eq!(plan.dma[1].kind, DmaFaultKind::Timeout);
        assert_eq!(plan.clusters[0].at_seconds, 2e-3);
        assert_eq!(plan.cpu_slowdowns[0].factor, 4.0);
        assert_eq!(plan.cpu_failures[0].nth, 2);
    }

    #[test]
    fn cpu_faults_alone_make_plan_non_empty_and_compound() {
        let plan = FaultPlan::new(9).cpu_slowdown(2.0).cpu_slowdown(3.0);
        assert!(!plan.is_empty());
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.cpu_slowdown_factor(), 6.0);
        let plan = FaultPlan::new(9).fail_cpu(1);
        assert!(!plan.is_empty());
        assert_eq!(FaultPlan::new(9).cpu_slowdown_factor(), 1.0);
    }

    #[test]
    fn cluster_kill_alone_makes_plan_non_empty() {
        let plan = FaultPlan::new(3).kill_cluster(5e-4);
        assert!(!plan.is_empty());
        assert_eq!(plan.len(), 1);
        assert!(plan.dma.is_empty() && plan.mem.is_empty() && plan.cores.is_empty());
        assert!(plan.cpu_slowdowns.is_empty() && plan.cpu_failures.is_empty());
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::new(1).is_empty());
        assert_eq!(FaultPlan::default().len(), 0);
    }

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Known-answer: SplitMix64 of 0 advances to a fixed word.
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn path_indices_are_distinct() {
        use DmaPath::*;
        let all = [
            DdrToGsm, GsmToDdr, DdrToSm, DdrToAm, SmToDdr, AmToDdr, GsmToSm, GsmToAm, AmToGsm,
        ];
        let mut seen = [false; 9];
        for p in all {
            let i = path_index(p);
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
    }

    #[test]
    fn take_dma_fault_fires_exactly_once_on_the_nth() {
        let mut st = FaultState {
            dma: vec![ArmedDmaFault {
                path: DmaPath::DdrToAm,
                nth: 2,
                kind: DmaFaultKind::Corrupt,
                rng: 42,
            }],
            ..FaultState::default()
        };
        assert!(st.take_dma_fault(DmaPath::DdrToAm).is_none()); // 1st
        assert!(st.take_dma_fault(DmaPath::GsmToAm).is_none()); // other path
        let f = st.take_dma_fault(DmaPath::DdrToAm).unwrap(); // 2nd fires
        assert_eq!(f.rng, 42);
        assert!(st.take_dma_fault(DmaPath::DdrToAm).is_none()); // disarmed
    }
}
