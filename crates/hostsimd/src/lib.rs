//! Host SIMD inner loops for the `Compiled` kernel execution tier.
//!
//! This crate holds the only `unsafe` code of the execution stack: AVX2+FMA
//! vectorised block loops, monomorphised over the depth unroll `k_u`, that
//! reproduce the scalar mirror's f32 accumulation order *bit-for-bit*.
//!
//! # The bitwise contract
//!
//! The reference order (dspsim's interpreter, mirrored by
//! `kernelgen::fast`) computes each C element independently:
//!
//! 1. `k_u` accumulators; `acc[0]` seeded from C, the rest from 0;
//! 2. `k_iters` steady-state iterations of one fused multiply-add per
//!    accumulator, in `ku` order;
//! 3. `k_tail` remainder fmas folded into `acc[0]` in ascending `k`;
//! 4. an ordered regroup `acc[0] += acc[1] … += acc[k_u-1]`.
//!
//! Columns never interact, so packing 8 adjacent columns into one AVX
//! register and running the identical per-lane operation sequence —
//! `vfmadd` for every `mul_add`, `vaddps` for every regroup `+` — yields
//! the same bits as the scalar loop: both `f32::mul_add` and
//! `_mm256_fmadd_ps` are exactly-rounded fused multiply-adds, and IEEE 754
//! addition has one correctly-rounded answer per lane. Remainder columns
//! (`ld mod 8`) run the scalar sequence verbatim.
//!
//! On non-x86_64 hosts, or when the CPU lacks AVX2/FMA, [`execute_block`]
//! falls back to the scalar sequence, which is *also* bit-identical — the
//! tier is then correct but not faster; [`simd_level`] reports which path
//! is live so benchmark gates can tell the difference.

#![warn(missing_docs)]

#[cfg(target_arch = "x86_64")]
use std::sync::OnceLock;

/// Geometry of one `mm` block group, as lowered from a verified
/// `kernelgen` block plan. All fields are in elements, not bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockGeom {
    /// First A/C row of the group.
    pub mm_base: usize,
    /// Rows per block.
    pub m_u: usize,
    /// Number of blocks in the group.
    pub trips: usize,
    /// Depth unroll (number of live accumulators); must be 1, 2 or 4.
    pub k_u: usize,
    /// Full steady-state iterations.
    pub k_iters: usize,
    /// Depth remainder folded into `acc[0]`.
    pub k_tail: usize,
}

/// The depth unrolls the generator's tiling space ever produces
/// (`kernelgen::tiling` candidates and `generate_forced` both restrict
/// `k_u` to this set). [`execute_block`] rejects anything else.
pub const SUPPORTED_KU: [usize; 3] = [1, 2, 4];

/// Execute one block group: `c[rows] += a[rows] × b`, panels laid out as
/// the kernel scratchpads (`a`: row-major with leading dimension `k_a`;
/// `b`/`c`: leading dimension `ld`).
///
/// # Panics
///
/// Panics (release mode included — these bounds make the internal
/// `unsafe` sound) if the geometry is inconsistent: `k_u` outside
/// [`SUPPORTED_KU`], `k_iters·k_u + k_tail ≠ k_a`, or any referenced
/// row/column lying outside `a`, `b` or `c`.
pub fn execute_block(g: &BlockGeom, k_a: usize, ld: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let end_row = g.mm_base + g.trips * g.m_u;
    assert!(
        SUPPORTED_KU.contains(&g.k_u),
        "unsupported k_u = {} (expected one of {SUPPORTED_KU:?})",
        g.k_u
    );
    assert_eq!(
        g.k_iters * g.k_u + g.k_tail,
        k_a,
        "block depth split does not cover k_a"
    );
    assert!(end_row * k_a <= a.len(), "A panel too small for block rows");
    assert!(end_row * ld <= c.len(), "C panel too small for block rows");
    assert!(k_a * ld <= b.len(), "B panel too small for depth x ld");
    match g.k_u {
        1 => dispatch::<1>(g, k_a, ld, a, b, c),
        2 => dispatch::<2>(g, k_a, ld, a, b, c),
        _ => dispatch::<4>(g, k_a, ld, a, b, c),
    }
}

/// Whether the vectorised path is live on this host.
pub fn simd_active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static DETECTED: OnceLock<bool> = OnceLock::new();
        *DETECTED
            .get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Human-readable name of the live code path (`"avx2+fma"` or
/// `"scalar"`), for benchmark reports and CI gates.
pub fn simd_level() -> &'static str {
    if simd_active() {
        "avx2+fma"
    } else {
        "scalar"
    }
}

fn dispatch<const KU: usize>(
    g: &BlockGeom,
    k_a: usize,
    ld: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: `execute_block` asserted every row/column access is in
        // bounds and the CPU supports AVX2+FMA (checked just above).
        unsafe { block_avx::<KU>(g, k_a, ld, a, b, c) };
        return;
    }
    block_scalar::<KU>(g, k_a, ld, a, b, c);
}

/// One C element in the reference accumulation order (shared by the
/// scalar fallback and the vector path's column remainder).
#[inline(always)]
fn scalar_col<const KU: usize>(
    g: &BlockGeom,
    ld: usize,
    a_row: &[f32],
    b: &[f32],
    col: usize,
    c0: f32,
) -> f32 {
    let mut acc = [0.0f32; KU];
    acc[0] = c0;
    for j in 0..g.k_iters {
        for (ku, av) in acc.iter_mut().enumerate() {
            let k = j * KU + ku;
            *av = a_row[k].mul_add(b[k * ld + col], *av);
        }
    }
    for rr in 0..g.k_tail {
        let k = g.k_iters * KU + rr;
        acc[0] = a_row[k].mul_add(b[k * ld + col], acc[0]);
    }
    for ku in 1..KU {
        acc[0] += acc[ku];
    }
    acc[0]
}

fn block_scalar<const KU: usize>(
    g: &BlockGeom,
    k_a: usize,
    ld: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    for trip in 0..g.trips {
        for mu in 0..g.m_u {
            let row = g.mm_base + trip * g.m_u + mu;
            let a_row = &a[row * k_a..row * k_a + k_a];
            let c_row = &mut c[row * ld..row * ld + ld];
            for (col, cv) in c_row.iter_mut().enumerate() {
                *cv = scalar_col::<KU>(g, ld, a_row, b, col, *cv);
            }
        }
    }
}

/// Vectorised block loop: 8 columns per AVX register, per-lane operation
/// sequence identical to [`scalar_col`].
///
/// # Safety
///
/// Caller must guarantee AVX2+FMA are available and that all rows
/// `mm_base .. mm_base + trips·m_u` of `a`/`c` and all `k_a × ld`
/// elements of `b` are in bounds ([`execute_block`] asserts both).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn block_avx<const KU: usize>(
    g: &BlockGeom,
    k_a: usize,
    ld: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    use std::arch::x86_64::*;
    let bp = b.as_ptr();
    for trip in 0..g.trips {
        for mu in 0..g.m_u {
            let row = g.mm_base + trip * g.m_u + mu;
            let a_row = &a[row * k_a..row * k_a + k_a];
            let ap = a_row.as_ptr();
            let cp = c.as_mut_ptr().add(row * ld);
            let mut col = 0;
            while col + 8 <= ld {
                let mut acc = [_mm256_setzero_ps(); KU];
                acc[0] = _mm256_loadu_ps(cp.add(col));
                for j in 0..g.k_iters {
                    for (ku, av) in acc.iter_mut().enumerate() {
                        let k = j * KU + ku;
                        let avec = _mm256_set1_ps(*ap.add(k));
                        let bvec = _mm256_loadu_ps(bp.add(k * ld + col));
                        *av = _mm256_fmadd_ps(avec, bvec, *av);
                    }
                }
                for rr in 0..g.k_tail {
                    let k = g.k_iters * KU + rr;
                    let avec = _mm256_set1_ps(*ap.add(k));
                    let bvec = _mm256_loadu_ps(bp.add(k * ld + col));
                    acc[0] = _mm256_fmadd_ps(avec, bvec, acc[0]);
                }
                for ku in 1..KU {
                    acc[0] = _mm256_add_ps(acc[0], acc[ku]);
                }
                _mm256_storeu_ps(cp.add(col), acc[0]);
                col += 8;
            }
            // ld is a whole number of 32-lane vectors in practice, but the
            // remainder keeps the contract shape-independent.
            while col < ld {
                let cv = *cp.add(col);
                *cp.add(col) = scalar_col::<KU>(g, ld, a_row, b, col, cv);
                col += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(n: usize, seed: u32) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
                let m = (x % 1000) as f32 - 500.0;
                let e = [1e-3f32, 1.0, 1e3][(x >> 10) as usize % 3];
                m * e
            })
            .collect()
    }

    fn geom(m_s: usize, m_u: usize, k_a: usize, k_u: usize) -> Vec<BlockGeom> {
        let trips = m_s / m_u;
        let rem = m_s % m_u;
        let mut v = vec![BlockGeom {
            mm_base: 0,
            m_u,
            trips,
            k_u,
            k_iters: k_a / k_u,
            k_tail: k_a % k_u,
        }];
        if rem > 0 {
            v.push(BlockGeom {
                mm_base: trips * m_u,
                m_u: rem,
                trips: 1,
                k_u,
                k_iters: k_a / k_u,
                k_tail: k_a % k_u,
            });
        }
        v
    }

    /// The vector path and the scalar path must agree bit-for-bit on
    /// every element, for every supported k_u, including ragged shapes.
    #[test]
    fn avx_and_scalar_paths_are_bitwise_identical() {
        for &(m_s, k_a, ld) in &[(6, 37, 96), (1, 129, 32), (7, 4, 64), (3, 1, 32)] {
            for &k_u in &SUPPORTED_KU {
                let a = fill(m_s * k_a, 1);
                let b = fill(k_a * ld, 2);
                let c0 = fill(m_s * ld, 3);
                let mut c_auto = c0.clone();
                let mut c_scalar = c0.clone();
                for g in geom(m_s, m_s.min(6), k_a, k_u) {
                    execute_block(&g, k_a, ld, &a, &b, &mut c_auto);
                    match g.k_u {
                        1 => block_scalar::<1>(&g, k_a, ld, &a, &b, &mut c_scalar),
                        2 => block_scalar::<2>(&g, k_a, ld, &a, &b, &mut c_scalar),
                        _ => block_scalar::<4>(&g, k_a, ld, &a, &b, &mut c_scalar),
                    }
                }
                for (i, (x, y)) in c_auto.iter().zip(&c_scalar).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "m_s={m_s} k_a={k_a} ld={ld} k_u={k_u} elem {i}: {x} vs {y}"
                    );
                }
            }
        }
    }

    /// Non-multiple-of-8 leading dimensions exercise the scalar column
    /// remainder inside the vector path.
    #[test]
    fn ragged_ld_remainder_matches_scalar() {
        let (m_s, k_a, ld) = (4, 19, 13);
        let a = fill(m_s * k_a, 9);
        let b = fill(k_a * ld, 10);
        let c0 = fill(m_s * ld, 11);
        for &k_u in &SUPPORTED_KU {
            let mut c_auto = c0.clone();
            let mut c_scalar = c0.clone();
            for g in geom(m_s, 2, k_a, k_u) {
                execute_block(&g, k_a, ld, &a, &b, &mut c_auto);
                match g.k_u {
                    1 => block_scalar::<1>(&g, k_a, ld, &a, &b, &mut c_scalar),
                    2 => block_scalar::<2>(&g, k_a, ld, &a, &b, &mut c_scalar),
                    _ => block_scalar::<4>(&g, k_a, ld, &a, &b, &mut c_scalar),
                }
            }
            for (x, y) in c_auto.iter().zip(&c_scalar) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "unsupported k_u")]
    fn rejects_unsupported_ku() {
        let g = BlockGeom {
            mm_base: 0,
            m_u: 1,
            trips: 1,
            k_u: 3,
            k_iters: 1,
            k_tail: 0,
        };
        execute_block(&g, 3, 8, &[0.0; 3], &[0.0; 24], &mut [0.0; 8]);
    }

    #[test]
    #[should_panic(expected = "A panel too small")]
    fn rejects_short_a_panel() {
        let g = BlockGeom {
            mm_base: 0,
            m_u: 2,
            trips: 1,
            k_u: 1,
            k_iters: 4,
            k_tail: 0,
        };
        execute_block(&g, 4, 8, &[0.0; 4], &[0.0; 32], &mut [0.0; 16]);
    }

    #[test]
    fn simd_level_names_the_live_path() {
        let level = simd_level();
        assert!(level == "avx2+fma" || level == "scalar");
        assert_eq!(level == "avx2+fma", simd_active());
    }
}
