//! TGEMM — the traditional regular-shaped GEMM implementation for
//! multi-core DSPs (Algorithm 1 of the paper, after [Ma et al., Liu &
//! Tian]): fixed block sizes, a single fixed micro-kernel padded to
//! `n_a = 96`, and N-dimension multi-core parallelisation.
//!
//! This is the baseline ftIMM is compared against in Figs 4–5.

use crate::{invoke_kernel, FtimmError, GemmProblem};
use dspsim::{Dma2d, DmaPath, DmaTicket, KernelBindings, Machine, RunReport};
use kernelgen::{KernelExecutor, KernelSpec};

/// TGEMM's fixed blocking (Algorithm 1, line 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TgemmParams {
    /// Rows of the `A_g` panel cached in GSM.
    pub m_g: usize,
    /// Depth of the `A_g` panel.
    pub k_g: usize,
    /// Fixed micro-kernel width (always padded to this).
    pub n_a: usize,
    /// Micro-kernel height.
    pub m_s: usize,
}

impl Default for TgemmParams {
    fn default() -> Self {
        TgemmParams {
            m_g: 512,
            k_g: 512,
            n_a: 96,
            m_s: 6,
        }
    }
}

/// Run `C += A × B` with TGEMM on `cores` DSP cores.
pub fn run_tgemm(
    m: &mut Machine,
    ex: &KernelExecutor,
    p: &GemmProblem,
    params: &TgemmParams,
    cores: usize,
) -> Result<RunReport, FtimmError> {
    crate::exec::validate_problem(p)?;
    let (mm, nn, kk) = (p.m(), p.n(), p.k());
    let tp = *params;
    let cores = cores.clamp(1, m.alive_cores().min(m.cfg.cores_per_cluster));

    // Column chunks of n_a, assigned round-robin over cores (Algorithm 1
    // line 5: the parallel loop over t).
    let chunks: Vec<usize> = (0..nn).step_by(tp.n_a).collect();
    let active = cores.min(chunks.len()).max(1);
    m.set_active_streams(active);

    // GSM: double-buffered A_g panel.
    let a_g_bytes = (tp.m_g * tp.k_g * 4) as u64;
    // AM per core: C_a (m_g × 96) + double-buffered B_a (k_g × 96).
    let c_a_off = 0u64;
    let c_a_bytes = (tp.m_g * tp.n_a * 4) as u64;
    let b_a_off = [c_a_bytes, c_a_bytes + (tp.k_g * tp.n_a * 4) as u64];
    // SM per core: double-buffered A_s (m_s × k_g).
    let a_s_off = [0u64, (tp.m_s * tp.k_g * 4) as u64];

    // Panel sequence for A_g prefetching: all (i, j) pairs in loop order.
    let panels: Vec<(usize, usize)> = (0..mm)
        .step_by(tp.m_g)
        .flat_map(|i| (0..kk).step_by(tp.k_g).map(move |j| (i, j)))
        .collect();

    let core_ids: Vec<usize> = (0..cores).collect();
    let dma_ag = |m: &mut Machine, (i, j): (usize, usize), ping: usize| {
        let m_cur = tp.m_g.min(mm - i);
        let k_cur = tp.k_g.min(kk - j);
        m.dma(
            0,
            DmaPath::DdrToGsm,
            &Dma2d::block_f32(
                m_cur as u64,
                k_cur as u64,
                p.a.elem_index(i, j),
                p.a.ld as u64,
                ping as u64 * a_g_bytes / 4,
                k_cur as u64,
            ),
        )
    };

    let mut ag_ticket = dma_ag(m, panels[0], 0)?;
    for (pi, &(i, j)) in panels.iter().enumerate() {
        let ping = pi % 2;
        let m_cur = tp.m_g.min(mm - i);
        let k_cur = tp.k_g.min(kk - j);
        // All cores wait for this A_g panel, then core 0's engine prefetches
        // the next one while everyone computes.
        m.barrier(&core_ids);
        for &c in &core_ids {
            m.wait(c, ag_ticket);
        }
        if pi + 1 < panels.len() {
            ag_ticket = dma_ag(m, panels[pi + 1], (pi + 1) % 2)?;
        }

        for (ci, &t) in chunks.iter().enumerate() {
            let core = ci % cores;
            let n_cur = tp.n_a.min(nn - t);
            // B_a: only the real n_cur columns are transferred, but the
            // panel is stored (and computed) at the fixed width 96 —
            // TGEMM's implicit padding.
            let tb = m.dma(
                core,
                DmaPath::DdrToAm,
                &Dma2d::block_f32(
                    k_cur as u64,
                    n_cur as u64,
                    p.b.elem_index(j, t),
                    p.b.ld as u64,
                    b_a_off[ping] / 4,
                    tp.n_a as u64,
                ),
            )?;
            let tc = m.dma(
                core,
                DmaPath::DdrToAm,
                &Dma2d::block_f32(
                    m_cur as u64,
                    n_cur as u64,
                    p.c.elem_index(i, t),
                    p.c.ld as u64,
                    c_a_off / 4,
                    tp.n_a as u64,
                ),
            )?;
            m.wait(core, tb);
            m.wait(core, tc);

            // Inner loop over m_s rows of A_g, ping-ponged through SM.
            let row_blocks: Vec<usize> = (0..m_cur).step_by(tp.m_s).collect();
            let dma_as =
                |m: &mut Machine, ii: usize, sping: usize| -> Result<DmaTicket, FtimmError> {
                    let ms_cur = tp.m_s.min(m_cur - ii);
                    Ok(m.dma(
                        core,
                        DmaPath::GsmToSm,
                        &Dma2d::block_f32(
                            ms_cur as u64,
                            k_cur as u64,
                            (ping as u64 * a_g_bytes + (ii * k_cur * 4) as u64) / 4,
                            k_cur as u64,
                            a_s_off[sping] / 4,
                            k_cur as u64,
                        ),
                    )?)
                };
            let mut as_ticket = dma_as(m, row_blocks[0], 0)?;
            for (ri, &ii) in row_blocks.iter().enumerate() {
                let sping = ri % 2;
                let ms_cur = tp.m_s.min(m_cur - ii);
                m.wait(core, as_ticket);
                if ri + 1 < row_blocks.len() {
                    as_ticket = dma_as(m, row_blocks[ri + 1], (ri + 1) % 2)?;
                }
                // TGEMM's single micro-kernel: always n_a = 96 wide.
                let spec = KernelSpec::new(ms_cur, k_cur, tp.n_a)?;
                let kernel = ex.kernels().get_forced(spec, ms_cur.min(tp.m_s), 1)?;
                invoke_kernel(
                    m,
                    core,
                    ex,
                    &kernel,
                    KernelBindings {
                        a_off: a_s_off[sping],
                        b_off: b_a_off[ping],
                        c_off: c_a_off + (ii * tp.n_a * 4) as u64,
                    },
                )?;
            }
            // Write C back (only the real columns).
            let ts = m.dma(
                core,
                DmaPath::AmToDdr,
                &Dma2d::block_f32(
                    m_cur as u64,
                    n_cur as u64,
                    c_a_off / 4,
                    tp.n_a as u64,
                    p.c.elem_index(i, t),
                    p.c.ld as u64,
                ),
            )?;
            m.wait(core, ts);
        }
    }
    m.barrier(&core_ids);
    Ok(m.report(p.flops(), &core_ids))
}
