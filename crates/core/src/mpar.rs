//! ftIMM's M-dimension parallelisation (Algorithm 4): cores split the M
//! dimension, the `B` panel is cached in GSM and shared by all cores, and
//! micro-kernels are generated for the *exact* `n_a` (no implicit
//! padding).  A three-level ping-pong overlaps DDR, GSM and SM/AM traffic
//! with compute.

use crate::{invoke_kernel, FtimmError, GemmProblem};
use dspsim::{Dma2d, DmaPath, DmaTicket, KernelBindings, Machine, RunReport};
use kernelgen::{KernelExecutor, KernelSpec};
use serde::{Deserialize, Serialize};

/// Block sizes for the M-parallel strategy (§IV-C, Eq. 1–2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MparBlocks {
    /// Columns of the GSM-cached `B_g` panel.
    pub n_g: usize,
    /// Depth of the `B_g` panel.
    pub k_g: usize,
    /// Rows per core work chunk (C panel rows in AM).
    pub m_a: usize,
    /// Micro-kernel width.
    pub n_a: usize,
    /// Micro-kernel depth (`B_a` panel rows in AM).
    pub k_a: usize,
    /// Micro-kernel height (`A_s` panel rows in SM).
    pub m_s: usize,
}

/// Run `C += A × B` with the M-dimension strategy on `cores` cores.
pub fn run_mpar(
    m: &mut Machine,
    ex: &KernelExecutor,
    p: &GemmProblem,
    bl: &MparBlocks,
    cores: usize,
) -> Result<RunReport, FtimmError> {
    crate::exec::validate_problem(p)?;
    let (mm, nn, kk) = (p.m(), p.n(), p.k());
    let cores = cores.clamp(1, m.alive_cores().min(m.cfg.cores_per_cluster));

    // Row chunks of m_a, round-robin over cores (Algorithm 4 line 4).
    let chunks: Vec<usize> = (0..mm).step_by(bl.m_a).collect();
    let active = cores.min(chunks.len()).max(1);
    m.set_active_streams(active);
    let core_ids: Vec<usize> = (0..cores).collect();

    let pad = |n: usize| n.div_ceil(32) * 32;
    // AM per core: C_a (m_a × pad(n_a)) + double-buffered B_a.
    let c_a_off = 0u64;
    let c_a_bytes = (bl.m_a * pad(bl.n_a) * 4) as u64;
    let b_a_bytes = (bl.k_a * pad(bl.n_a) * 4) as u64;
    let b_a_off = [c_a_bytes, c_a_bytes + b_a_bytes];
    // SM per core: double-buffered A_s.
    let a_s_off = [0u64, (bl.m_s * bl.k_a * 4) as u64];
    // GSM: double-buffered B_g (k_g × n_g, dense).
    let b_g_bytes = (bl.k_g * bl.n_g * 4) as u64;

    // B_g panel sequence for prefetching.
    let panels: Vec<(usize, usize)> = (0..nn)
        .step_by(bl.n_g)
        .flat_map(|i| (0..kk).step_by(bl.k_g).map(move |j| (i, j)))
        .collect();
    let dma_bg = |m: &mut Machine, (i, j): (usize, usize), ping: usize| {
        let n_gcur = bl.n_g.min(nn - i);
        let k_gcur = bl.k_g.min(kk - j);
        m.dma(
            0,
            DmaPath::DdrToGsm,
            &Dma2d::block_f32(
                k_gcur as u64,
                n_gcur as u64,
                p.b.elem_index(j, i),
                p.b.ld as u64,
                ping as u64 * b_g_bytes / 4,
                n_gcur as u64,
            ),
        )
    };

    let mut bg_ticket = dma_bg(m, panels[0], 0)?;
    for (pi, &(i, j)) in panels.iter().enumerate() {
        let ping = pi % 2;
        let n_gcur = bl.n_g.min(nn - i);
        let k_gcur = bl.k_g.min(kk - j);
        m.barrier(&core_ids);
        for &c in &core_ids {
            m.wait(c, bg_ticket);
        }
        if pi + 1 < panels.len() {
            bg_ticket = dma_bg(m, panels[pi + 1], (pi + 1) % 2)?;
        }

        for (ci, &t) in chunks.iter().enumerate() {
            let core = ci % cores;
            let m_acur = bl.m_a.min(mm - t);
            for ii in (0..n_gcur).step_by(bl.n_a) {
                let n_acur = bl.n_a.min(n_gcur - ii);
                let ld_cur = pad(n_acur) as u64;
                // Load the C panel for accumulation (Algorithm 4 line 6).
                let tc = m.dma(
                    core,
                    DmaPath::DdrToAm,
                    &Dma2d::block_f32(
                        m_acur as u64,
                        n_acur as u64,
                        p.c.elem_index(t, i + ii),
                        p.c.ld as u64,
                        c_a_off / 4,
                        ld_cur,
                    ),
                )?;
                m.wait(core, tc);

                let k_blocks: Vec<usize> = (0..k_gcur).step_by(bl.k_a).collect();
                let dma_ba =
                    |m: &mut Machine, jj: usize, bping: usize| -> Result<DmaTicket, FtimmError> {
                        let k_acur = bl.k_a.min(k_gcur - jj);
                        Ok(m.dma(
                            core,
                            DmaPath::GsmToAm,
                            &Dma2d::block_f32(
                                k_acur as u64,
                                n_acur as u64,
                                (ping as u64 * b_g_bytes) / 4 + (jj * n_gcur + ii) as u64,
                                n_gcur as u64,
                                b_a_off[bping] / 4,
                                ld_cur,
                            ),
                        )?)
                    };
                let mut ba_ticket = dma_ba(m, k_blocks[0], 0)?;
                for (ki, &jj) in k_blocks.iter().enumerate() {
                    let bping = ki % 2;
                    let k_acur = bl.k_a.min(k_gcur - jj);
                    m.wait(core, ba_ticket);
                    if ki + 1 < k_blocks.len() {
                        ba_ticket = dma_ba(m, k_blocks[ki + 1], (ki + 1) % 2)?;
                    }

                    let row_blocks: Vec<usize> = (0..m_acur).step_by(bl.m_s).collect();
                    let dma_as = |m: &mut Machine,
                                  tt: usize,
                                  sping: usize|
                     -> Result<DmaTicket, FtimmError> {
                        let ms_cur = bl.m_s.min(m_acur - tt);
                        Ok(m.dma(
                            core,
                            DmaPath::DdrToSm,
                            &Dma2d::block_f32(
                                ms_cur as u64,
                                k_acur as u64,
                                p.a.elem_index(t + tt, j + jj),
                                p.a.ld as u64,
                                a_s_off[sping] / 4,
                                k_acur as u64,
                            ),
                        )?)
                    };
                    let mut as_ticket = dma_as(m, row_blocks[0], 0)?;
                    for (ri, &tt) in row_blocks.iter().enumerate() {
                        let sping = ri % 2;
                        let ms_cur = bl.m_s.min(m_acur - tt);
                        m.wait(core, as_ticket);
                        if ri + 1 < row_blocks.len() {
                            as_ticket = dma_as(m, row_blocks[ri + 1], (ri + 1) % 2)?;
                        }
                        // ftIMM: exact-shape auto-generated kernel.
                        let spec = KernelSpec::new(ms_cur, k_acur, n_acur)?;
                        let kernel = ex.kernels().get(spec)?;
                        invoke_kernel(
                            m,
                            core,
                            ex,
                            &kernel,
                            KernelBindings {
                                a_off: a_s_off[sping],
                                b_off: b_a_off[bping],
                                c_off: c_a_off + (tt as u64 * ld_cur * 4),
                            },
                        )?;
                    }
                }
                // Store the C panel (Algorithm 4 line 12).
                let ts = m.dma(
                    core,
                    DmaPath::AmToDdr,
                    &Dma2d::block_f32(
                        m_acur as u64,
                        n_acur as u64,
                        c_a_off / 4,
                        ld_cur,
                        p.c.elem_index(t, i + ii),
                        p.c.ld as u64,
                    ),
                )?;
                m.wait(core, ts);
            }
        }
    }
    m.barrier(&core_ids);
    Ok(m.report(p.flops(), &core_ids))
}
