//! Resilient GEMM execution: ABFT checksums, bounded retries, and
//! graceful degradation onto surviving cores.
//!
//! [`run_resilient`] wraps any resolved plan ([`ChosenStrategy`]) with a
//! recovery loop:
//!
//! * **Silent data corruption** (injected DMA payload corruption or
//!   scratchpad bit flips) is caught after the run by algorithm-based
//!   fault tolerance: row and column checksums of the final `C` are
//!   compared against checksums predicted in `f64` from host snapshots of
//!   `A`, `B` and the initial `C`.  Suspect rows are restored from the
//!   snapshot and only that row range is re-executed, which is bit-exact
//!   with a fault-free run (per-element accumulation order depends only
//!   on block sizes, not on row partitioning).
//! * **DMA timeouts** abort the run mid-flight; `C` is restored in full
//!   and the run retried after an exponential backoff charged on the
//!   simulated clock.
//! * **Core failures** retire the dead core from the machine's
//!   logical→physical map and re-run on the survivors.  M-parallel and
//!   TGEMM re-runs stay bit-exact; K-parallel re-runs regroup the GSM
//!   reduction and are only numerically (not bitwise) equivalent.
//!
//! The checksum *verification* itself is host-side bookkeeping and is
//! modelled as free; only recovery work (backoff stalls, restored
//! transfers, re-executed tiles) is charged on the timing model.  With an
//! empty fault plan the wrapper adds no simulated time and no stat
//! perturbation: the run report is bit-identical to an unwrapped run.

use crate::{ChosenStrategy, DdrMatrix, FtImm, FtimmError, GemmProblem};
use dspsim::{Machine, RunReport, SimError};

/// Tuning knobs for the recovery loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceConfig {
    /// Recovery attempts allowed before giving up with
    /// [`dspsim::SimError::DataCorrupt`] (or the underlying error).
    pub max_retries: u32,
    /// First backoff stall in simulated seconds; doubles per attempt.
    pub backoff_base_s: f64,
    /// Relative ABFT tolerance: a checksum mismatch larger than
    /// `abft_tol * (1 + |expected| + Σ|c_row|)` flags the row/column.
    /// The default sits ~30× above the f32 rounding noise of the checked
    /// row/column sums while staying below the smallest error a single
    /// exponent-bit flip can cause; very deep problems (K ≫ 10⁴) may need
    /// it loosened.
    pub abft_tol: f64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            max_retries: 4,
            backoff_base_s: 1e-6,
            abft_tol: 1e-6,
        }
    }
}

/// Host-side ABFT reference state: snapshots taken before the first run
/// and the `f64` checksums the finished `C` must reproduce.
struct AbftRef {
    /// Initial `C` (dense `m × n`), for restoring corrupted rows.
    c0: Vec<f32>,
    /// Expected final row sums: `Σ_j c0[i][j] + Σ_k a[i][k]·rowsum(B)[k]`.
    expected_row: Vec<f64>,
    /// Expected final column sums.
    expected_col: Vec<f64>,
}

impl AbftRef {
    fn capture(m: &mut Machine, p: &GemmProblem) -> Result<Self, FtimmError> {
        let (mm, nn, kk) = (p.m(), p.n(), p.k());
        let a = p.a.download(m).map_err(FtimmError::Sim)?;
        let b = p.b.download(m).map_err(FtimmError::Sim)?;
        let c0 = p.c.download(m).map_err(FtimmError::Sim)?;
        // rowsum(B)[k] = Σ_j b[k][j];  colsum(A)[k] = Σ_i a[i][k].
        let mut b_rowsum = vec![0.0f64; kk];
        for k in 0..kk {
            for j in 0..nn {
                b_rowsum[k] += b[k * nn + j] as f64;
            }
        }
        let mut a_colsum = vec![0.0f64; kk];
        for i in 0..mm {
            for k in 0..kk {
                a_colsum[k] += a[i * kk + k] as f64;
            }
        }
        let mut expected_row = vec![0.0f64; mm];
        for i in 0..mm {
            let mut s = 0.0f64;
            for j in 0..nn {
                s += c0[i * nn + j] as f64;
            }
            for k in 0..kk {
                s += a[i * kk + k] as f64 * b_rowsum[k];
            }
            expected_row[i] = s;
        }
        let mut expected_col = vec![0.0f64; nn];
        for j in 0..nn {
            let mut s = 0.0f64;
            for i in 0..mm {
                s += c0[i * nn + j] as f64;
            }
            for k in 0..kk {
                s += a_colsum[k] * b[k * nn + j] as f64;
            }
            expected_col[j] = s;
        }
        Ok(AbftRef {
            c0,
            expected_row,
            expected_col,
        })
    }

    /// Check the finished `C`; `None` when clean, otherwise the smallest
    /// contiguous row range `[r0, r1)` covering every suspect row (a
    /// column-only mismatch — a compensated row — flags everything).
    fn verify(
        &self,
        m: &mut Machine,
        p: &GemmProblem,
        tol: f64,
    ) -> Result<Option<(usize, usize)>, FtimmError> {
        let (mm, nn) = (p.m(), p.n());
        let c = p.c.download(m).map_err(FtimmError::Sim)?;
        let mut bad_rows: Option<(usize, usize)> = None;
        for i in 0..mm {
            let (mut sum, mut mag) = (0.0f64, 0.0f64);
            for j in 0..nn {
                let v = c[i * nn + j] as f64;
                sum += v;
                mag += v.abs();
            }
            let e = self.expected_row[i];
            // A corrupted exponent can overflow f32 to inf/NaN, making the
            // sum non-finite; `>` alone would let that pass silently.
            if !sum.is_finite() || (sum - e).abs() > tol * (1.0 + e.abs() + mag) {
                bad_rows = Some(match bad_rows {
                    None => (i, i + 1),
                    Some((r0, _)) => (r0, i + 1),
                });
            }
        }
        if bad_rows.is_some() {
            return Ok(bad_rows);
        }
        for j in 0..nn {
            let (mut sum, mut mag) = (0.0f64, 0.0f64);
            for i in 0..mm {
                let v = c[i * nn + j] as f64;
                sum += v;
                mag += v.abs();
            }
            let e = self.expected_col[j];
            if !sum.is_finite() || (sum - e).abs() > tol * (1.0 + e.abs() + mag) {
                return Ok(Some((0, mm)));
            }
        }
        Ok(None)
    }

    /// Restore rows `[r0, r1)` of `C` to their pre-run contents.
    fn restore_rows(
        &self,
        m: &mut Machine,
        p: &GemmProblem,
        r0: usize,
        r1: usize,
    ) -> Result<(), FtimmError> {
        let nn = p.n();
        p.c.view(r0, 0, r1 - r0, nn)
            .upload(m, &self.c0[r0 * nn..r1 * nn])
            .map_err(FtimmError::Sim)
    }
}

/// The row-restricted sub-problem `C[r0..r1, :] += A[r0..r1, :] × B`.
fn row_span(p: &GemmProblem, r0: usize, r1: usize) -> GemmProblem {
    GemmProblem {
        a: p.a.view(r0, 0, r1 - r0, p.k()),
        b: p.b,
        c: p.c.view(r0, 0, r1 - r0, p.n()),
    }
}

/// Charge an exponential backoff stall on every core that will take part
/// in the next attempt.
fn backoff(m: &mut Machine, cores: usize, rcfg: &ResilienceConfig, attempt: u32) {
    if rcfg.backoff_base_s <= 0.0 {
        return;
    }
    let stall = rcfg.backoff_base_s * f64::from(1u32 << attempt.min(20).saturating_sub(1));
    for id in 0..cores.clamp(1, m.alive_cores()) {
        m.stall(id, stall);
    }
}

/// Execute a resolved plan with ABFT verification, bounded retries and
/// graceful core degradation.  See the module docs for the fault model.
pub fn run_resilient(
    ft: &FtImm,
    m: &mut Machine,
    p: &GemmProblem,
    plan: &ChosenStrategy,
    cores: usize,
    rcfg: &ResilienceConfig,
) -> Result<RunReport, FtimmError> {
    p.validate().map_err(FtimmError::Invalid)?;
    let functional = m.mode.is_functional();
    let abft = if functional {
        Some(AbftRef::capture(m, p)?)
    } else {
        None
    };

    let mut retries = 0u64;
    let mut recomputed = 0u64;
    let mut attempt = 0u32;
    // Rows still to (re-)execute; verification may re-open a span.
    let mut pending = Some((0usize, p.m()));

    loop {
        if let Some((r0, r1)) = pending {
            let sub = row_span(p, r0, r1);
            match ft.run_plan(m, &sub, plan, cores) {
                Ok(_) => pending = None,
                Err(e @ FtimmError::Sim(SimError::DmaTimeout { .. })) => {
                    if attempt >= rcfg.max_retries {
                        return Err(e);
                    }
                    attempt += 1;
                    retries += 1;
                    recomputed += 1;
                    backoff(m, cores, rcfg, attempt);
                    // The aborted run may have stored partial C panels:
                    // restore the whole matrix and start over.
                    if let Some(r) = &abft {
                        r.restore_rows(m, p, 0, p.m())?;
                    }
                    pending = Some((0, p.m()));
                }
                Err(FtimmError::Sim(SimError::CoreFailed { core, at })) => {
                    m.retire_core(core);
                    if m.alive_cores() == 0 || attempt >= rcfg.max_retries {
                        return Err(FtimmError::Sim(SimError::CoreFailed { core, at }));
                    }
                    attempt += 1;
                    retries += 1;
                    recomputed += 1;
                    backoff(m, cores, rcfg, attempt);
                    if let Some(r) = &abft {
                        r.restore_rows(m, p, 0, p.m())?;
                    }
                    pending = Some((0, p.m()));
                }
                Err(e) => return Err(e),
            }
            continue;
        }
        match &abft {
            None => break,
            Some(r) => match r.verify(m, p, rcfg.abft_tol)? {
                None => break,
                Some((r0, r1)) => {
                    if attempt >= rcfg.max_retries {
                        return Err(FtimmError::Sim(SimError::DataCorrupt {
                            region: "DDR",
                            offset: p.c.elem_off(r0, 0),
                        }));
                    }
                    attempt += 1;
                    retries += 1;
                    recomputed += 1;
                    backoff(m, cores, rcfg, attempt);
                    r.restore_rows(m, p, r0, r1)?;
                    pending = Some((r0, r1));
                }
            },
        }
    }

    let ids: Vec<usize> = (0..cores.clamp(1, m.alive_cores())).collect();
    let mut rep = m.report(p.flops(), &ids);
    rep.faults.retries = retries;
    rep.faults.recomputed_tiles = recomputed;
    Ok(rep)
}

/// A [`DdrMatrix`]-level convenience: verify a finished `C` against a
/// host oracle (`f64` accumulate), returning the worst absolute error.
/// Used by the chaos tests to validate degraded K-parallel runs whose
/// reduction regrouping changes bit patterns but not mathematics.
pub fn max_abs_error_vs_oracle(
    m: &mut Machine,
    c: &DdrMatrix,
    oracle: &[f64],
) -> Result<f64, FtimmError> {
    let got = c.download(m).map_err(FtimmError::Sim)?;
    Ok(got
        .iter()
        .zip(oracle)
        .map(|(&g, &o)| (g as f64 - o).abs())
        .fold(0.0, f64::max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reference, Strategy};
    use dspsim::{ExecMode, FaultPlan, HwConfig};

    fn problem(m: &mut Machine, mm: usize, nn: usize, kk: usize) -> GemmProblem {
        let p = GemmProblem::alloc(m, mm, nn, kk).unwrap();
        p.a.upload(m, &reference::fill_matrix(mm * kk, 1)).unwrap();
        p.b.upload(m, &reference::fill_matrix(kk * nn, 2)).unwrap();
        p.c.upload(m, &reference::fill_matrix(mm * nn, 3)).unwrap();
        p
    }

    #[test]
    fn fault_free_resilient_run_matches_plain_run_bitwise() {
        let ft = FtImm::new(HwConfig::default());
        let mut m1 = Machine::with_mode(ExecMode::Fast);
        let p1 = problem(&mut m1, 64, 24, 48);
        let plan = ft.plan(&crate::GemmShape::new(64, 24, 48), Strategy::MPar, 4);
        let plain = ft.run_plan(&mut m1, &p1, &plan, 4).unwrap();
        let c_plain = p1.c.download(&mut m1).unwrap();

        let mut m2 = Machine::with_mode(ExecMode::Fast);
        let p2 = problem(&mut m2, 64, 24, 48);
        let resil =
            run_resilient(&ft, &mut m2, &p2, &plan, 4, &ResilienceConfig::default()).unwrap();
        let c_resil = p2.c.download(&mut m2).unwrap();

        assert_eq!(plain.seconds.to_bits(), resil.seconds.to_bits());
        assert_eq!(plain.totals, resil.totals);
        assert_eq!(resil.faults.retries, 0);
        assert_eq!(resil.faults.injected(), 0);
        for (a, b) in c_plain.iter().zip(&c_resil) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn abft_catches_a_seeded_flip_and_recovers() {
        let ft = FtImm::new(HwConfig::default());
        let mut m = Machine::with_mode(ExecMode::Fast);
        let p = problem(&mut m, 64, 24, 48);
        m.install_faults(&FaultPlan::new(9).corrupt_dma(dspsim::DmaPath::DdrToAm, 2));
        let plan = ft.plan(&crate::GemmShape::new(64, 24, 48), Strategy::MPar, 4);
        let rep = run_resilient(&ft, &mut m, &p, &plan, 4, &ResilienceConfig::default()).unwrap();
        assert_eq!(rep.faults.dma_corruptions, 1);
        assert!(rep.faults.retries >= 1);
        assert!(rep.faults.recomputed_tiles >= 1);

        // Recovered C is bit-identical to a fault-free run.
        let mut m2 = Machine::with_mode(ExecMode::Fast);
        let p2 = problem(&mut m2, 64, 24, 48);
        ft.run_plan(&mut m2, &p2, &plan, 4).unwrap();
        let want = p2.c.download(&mut m2).unwrap();
        let got = p.c.download(&mut m).unwrap();
        for (a, b) in want.iter().zip(&got) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn zero_retry_budget_surfaces_corruption() {
        let ft = FtImm::new(HwConfig::default());
        let mut m = Machine::with_mode(ExecMode::Fast);
        let p = problem(&mut m, 64, 24, 48);
        m.install_faults(&FaultPlan::new(3).corrupt_dma(dspsim::DmaPath::DdrToAm, 1));
        let plan = ft.plan(&crate::GemmShape::new(64, 24, 48), Strategy::MPar, 4);
        let rcfg = ResilienceConfig {
            max_retries: 0,
            ..ResilienceConfig::default()
        };
        let err = run_resilient(&ft, &mut m, &p, &plan, 4, &rcfg).unwrap_err();
        assert!(
            matches!(err, FtimmError::Sim(SimError::DataCorrupt { .. })),
            "got {err}"
        );
    }
}
