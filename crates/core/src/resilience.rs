//! Resilient GEMM execution: ABFT checksums, bounded retries,
//! checkpointed recovery and graceful degradation onto surviving cores.
//!
//! [`run_resilient`] wraps any resolved plan ([`ChosenStrategy`]) with a
//! recovery loop:
//!
//! * **Silent data corruption** (injected DMA payload corruption or
//!   scratchpad bit flips) is caught after the run by algorithm-based
//!   fault tolerance: row and column checksums of the final `C` are
//!   compared against checksums predicted in `f64` from host snapshots of
//!   `A`, `B` and the initial `C`.  Suspect rows are restored from the
//!   snapshot and only that row range is re-executed, which is bit-exact
//!   with a fault-free run (per-element accumulation order depends only
//!   on block sizes, not on row partitioning).
//! * **DMA timeouts** abort the run mid-flight — either after the fault
//!   plan's full hang charge or earlier when a watchdog DMA budget is
//!   armed ([`dspsim::WatchdogConfig`]).  The affected row span is
//!   restored and retried after an exponential backoff charged on the
//!   simulated clock.
//! * **Core failures** retire the dead core from the machine's
//!   logical→physical map and re-run on the survivors.  M-parallel and
//!   TGEMM re-runs stay bit-exact; K-parallel re-runs regroup the GSM
//!   reduction and are only numerically (not bitwise) equivalent.
//! * **Checkpointing** ([`ResilienceConfig::ckpt_rows`] > 0) splits the M
//!   dimension into row spans that execute and row-checksum-verify one at
//!   a time.  A fault then costs only the unverified span: verified spans
//!   are never restored or re-executed, so
//!   [`dspsim::FaultStats::rows_reexecuted`] stays strictly below a full
//!   restart's.  Span-by-span execution is bit-exact with the monolithic
//!   run (row partitioning does not change per-element accumulation
//!   order) but *not* time-identical — each span reloads its `B` panels —
//!   which is the classic checkpoint overhead trade-off.
//! * **Deadline preemption** ([`dspsim::SimError::WatchdogTripped`] with
//!   a `Core` unit) is *not* retried: it is a budget decision by the
//!   caller, surfaced immediately together with the rows verified so far
//!   (see [`ResilientRun`]).
//!
//! The checksum *verification* itself is host-side bookkeeping and is
//! modelled as free; only recovery work (backoff stalls, restored
//! transfers, re-executed tiles) is charged on the timing model.  With an
//! empty fault plan and checkpointing off the wrapper adds no simulated
//! time and no stat perturbation: the run report is bit-identical to an
//! unwrapped run.

use crate::exec::validate_problem;
use crate::{ChosenStrategy, DdrMatrix, FtImm, FtimmError, GemmProblem};
use dspsim::{EventKind, Machine, RunReport, SimError};

/// Tuning knobs for the recovery loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceConfig {
    /// Recovery attempts allowed before giving up with
    /// [`dspsim::SimError::DataCorrupt`] (or the underlying error).
    pub max_retries: u32,
    /// First backoff stall in simulated seconds; doubles per attempt.
    pub backoff_base_s: f64,
    /// Relative ABFT tolerance: a checksum mismatch larger than
    /// `abft_tol * (1 + |expected| + mass)` flags the row/column, where
    /// `mass` is the absolute product mass of the checked sum
    /// (`Σ|c0| + Σ|a|·|b|` over the row or column) captured from the
    /// pre-run snapshots.  Normalising by mass — not by the final `|C|`
    /// values — keeps heavily cancelled rows from tripping the check on
    /// their own fault-free rounding noise, and a corrupted value cannot
    /// inflate its own allowance.  The default sits well above the f32
    /// rounding noise of the checked sums (measured ≲ 1e-7 of mass at
    /// K ≈ 350) while staying below the error a single exponent-bit flip
    /// in a mass-significant element causes; very deep problems
    /// (K ≫ 10⁴) may need it loosened.
    pub abft_tol: f64,
    /// Checkpoint granularity in `C` rows.  `0` (the default) disables
    /// checkpointing: the whole problem is one span and a mid-run fault
    /// restarts it all.  A positive value executes and verifies the
    /// problem span by span, so recovery re-executes only the unverified
    /// span.  Bit-exact either way; timing differs (per-span `B` panel
    /// reloads).
    pub ckpt_rows: usize,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            max_retries: 4,
            backoff_base_s: 1e-6,
            abft_tol: 1e-6,
            ckpt_rows: 0,
        }
    }
}

/// Host-side ABFT reference state: snapshots taken before the first run
/// and the `f64` checksums the finished `C` must reproduce.
struct AbftRef {
    /// Initial `C` (dense `m × n`), for restoring corrupted rows.
    c0: Vec<f32>,
    /// Expected final row sums: `Σ_j c0[i][j] + Σ_k a[i][k]·rowsum(B)[k]`.
    expected_row: Vec<f64>,
    /// Expected final column sums.
    expected_col: Vec<f64>,
    /// Absolute mass of each row sum: `Σ_j |c0[i][j]| + Σ_k
    /// |a[i][k]|·rowsum(|B|)[k]` — the total magnitude that flows
    /// through the row's accumulators.  Rounding error scales with this
    /// mass, *not* with the final values: a heavily cancelled row can
    /// finish near zero while its f32 accumulation carries the noise of
    /// thousands of large products, so normalising the tolerance by the
    /// final `|C|` sums (as an earlier revision did) false-positives on
    /// fault-free runs.
    row_mass: Vec<f64>,
    /// Absolute mass of each column sum (same bound, transposed).
    col_mass: Vec<f64>,
}

impl AbftRef {
    fn capture(m: &mut Machine, p: &GemmProblem) -> Result<Self, FtimmError> {
        let (mm, nn, kk) = (p.m(), p.n(), p.k());
        let a = p.a.download(m).map_err(FtimmError::Sim)?;
        let b = p.b.download(m).map_err(FtimmError::Sim)?;
        let c0 = p.c.download(m).map_err(FtimmError::Sim)?;
        // rowsum(B)[k] = Σ_j b[k][j];  colsum(A)[k] = Σ_i a[i][k] — and
        // the same sums over |B| and |A| for the mass bounds.
        let mut b_rowsum = vec![0.0f64; kk];
        let mut b_rowsum_abs = vec![0.0f64; kk];
        for k in 0..kk {
            for j in 0..nn {
                b_rowsum[k] += b[k * nn + j] as f64;
                b_rowsum_abs[k] += (b[k * nn + j] as f64).abs();
            }
        }
        let mut a_colsum = vec![0.0f64; kk];
        let mut a_colsum_abs = vec![0.0f64; kk];
        for i in 0..mm {
            for k in 0..kk {
                a_colsum[k] += a[i * kk + k] as f64;
                a_colsum_abs[k] += (a[i * kk + k] as f64).abs();
            }
        }
        let mut expected_row = vec![0.0f64; mm];
        let mut row_mass = vec![0.0f64; mm];
        for i in 0..mm {
            let (mut s, mut mass) = (0.0f64, 0.0f64);
            for j in 0..nn {
                s += c0[i * nn + j] as f64;
                mass += (c0[i * nn + j] as f64).abs();
            }
            for k in 0..kk {
                s += a[i * kk + k] as f64 * b_rowsum[k];
                mass += (a[i * kk + k] as f64).abs() * b_rowsum_abs[k];
            }
            expected_row[i] = s;
            row_mass[i] = mass;
        }
        let mut expected_col = vec![0.0f64; nn];
        let mut col_mass = vec![0.0f64; nn];
        for j in 0..nn {
            let (mut s, mut mass) = (0.0f64, 0.0f64);
            for i in 0..mm {
                s += c0[i * nn + j] as f64;
                mass += (c0[i * nn + j] as f64).abs();
            }
            for k in 0..kk {
                s += a_colsum[k] * b[k * nn + j] as f64;
                mass += a_colsum_abs[k] * (b[k * nn + j] as f64).abs();
            }
            expected_col[j] = s;
            col_mass[j] = mass;
        }
        Ok(AbftRef {
            c0,
            expected_row,
            expected_col,
            row_mass,
            col_mass,
        })
    }

    /// Check rows `[r0, r1)` of the finished `C` against their expected
    /// row sums; `None` when clean, otherwise the smallest contiguous row
    /// range covering every suspect row in the window.
    fn verify_rows(
        &self,
        m: &mut Machine,
        p: &GemmProblem,
        tol: f64,
        r0: usize,
        r1: usize,
    ) -> Result<Option<(usize, usize)>, FtimmError> {
        let nn = p.n();
        let c =
            p.c.view(r0, 0, r1 - r0, nn)
                .download(m)
                .map_err(FtimmError::Sim)?;
        let mut bad_rows: Option<(usize, usize)> = None;
        for i in r0..r1 {
            let mut sum = 0.0f64;
            for j in 0..nn {
                sum += c[(i - r0) * nn + j] as f64;
            }
            let e = self.expected_row[i];
            // A corrupted exponent can overflow f32 to inf/NaN, making the
            // sum non-finite; `>` alone would let that pass silently.
            if !sum.is_finite() || (sum - e).abs() > tol * (1.0 + e.abs() + self.row_mass[i]) {
                bad_rows = Some(match bad_rows {
                    None => (i, i + 1),
                    Some((b0, _)) => (b0, i + 1),
                });
            }
        }
        Ok(bad_rows)
    }

    /// Check the finished `C` in full; `None` when clean, otherwise the
    /// smallest contiguous row range `[r0, r1)` covering every suspect
    /// row (a column-only mismatch — a compensated row — flags
    /// everything).
    fn verify(
        &self,
        m: &mut Machine,
        p: &GemmProblem,
        tol: f64,
    ) -> Result<Option<(usize, usize)>, FtimmError> {
        let (mm, nn) = (p.m(), p.n());
        if let Some(bad) = self.verify_rows(m, p, tol, 0, mm)? {
            return Ok(Some(bad));
        }
        let c = p.c.download(m).map_err(FtimmError::Sim)?;
        for j in 0..nn {
            let mut sum = 0.0f64;
            for i in 0..mm {
                sum += c[i * nn + j] as f64;
            }
            let e = self.expected_col[j];
            if !sum.is_finite() || (sum - e).abs() > tol * (1.0 + e.abs() + self.col_mass[j]) {
                return Ok(Some((0, mm)));
            }
        }
        Ok(None)
    }

    /// Restore rows `[r0, r1)` of `C` to their pre-run contents.
    fn restore_rows(
        &self,
        m: &mut Machine,
        p: &GemmProblem,
        r0: usize,
        r1: usize,
    ) -> Result<(), FtimmError> {
        let nn = p.n();
        p.c.view(r0, 0, r1 - r0, nn)
            .upload(m, &self.c0[r0 * nn..r1 * nn])
            .map_err(FtimmError::Sim)
    }
}

/// The checkpoint span partition of `mm` rows at granularity `ckpt`:
/// contiguous `[r0, r1)` spans on the `ckpt` grid, the last possibly
/// short.  `ckpt == 0` (checkpointing off) or `ckpt >= mm` yields the
/// single monolithic span.  This partition is the unit of bitwise
/// identity across execution backends: the DSP resilience layer and the
/// CPU fallback backend ([`crate::backend::CpuBackend`]) both anchor
/// their M-blocking at each span start, so any executor that walks the
/// same partition with the same pinned plan produces the same bits.
pub(crate) fn ckpt_spans(mm: usize, ckpt: usize) -> Vec<(usize, usize)> {
    if ckpt == 0 || ckpt >= mm {
        vec![(0, mm)]
    } else {
        (0..mm)
            .step_by(ckpt)
            .map(|r| (r, (r + ckpt).min(mm)))
            .collect()
    }
}

/// The row-restricted sub-problem `C[r0..r1, :] += A[r0..r1, :] × B`.
fn row_span(p: &GemmProblem, r0: usize, r1: usize) -> GemmProblem {
    GemmProblem {
        a: p.a.view(r0, 0, r1 - r0, p.k()),
        b: p.b,
        c: p.c.view(r0, 0, r1 - r0, p.n()),
    }
}

/// Charge an exponential backoff stall on every core that will take part
/// in the next attempt.
fn backoff(m: &mut Machine, cores: usize, rcfg: &ResilienceConfig, attempt: u32) {
    if rcfg.backoff_base_s <= 0.0 {
        return;
    }
    let stall = rcfg.backoff_base_s * f64::from(1u32 << attempt.min(20).saturating_sub(1));
    for id in 0..cores.clamp(1, m.alive_cores()) {
        m.stall(id, stall);
    }
}

/// Outcome of [`run_resilient_full`]: the run result plus the recovery
/// progress the caller (e.g. the job engine) needs even when the run
/// fails — how far checkpoints got and which cores were implicated.
#[derive(Debug)]
pub struct ResilientRun {
    /// The run report, or the terminal error.
    pub result: Result<RunReport, FtimmError>,
    /// `C` rows whose checkpoint completed (and, in functional modes,
    /// verified) before the run ended.  Equals `rows_total` on success.
    pub rows_verified: usize,
    /// The problem's M dimension.
    pub rows_total: usize,
    /// Physical cores implicated in transient faults, in occurrence
    /// order — including faults that were absorbed by a successful
    /// recovery.  Circuit breakers feed on this.
    pub fault_cores: Vec<usize>,
}

/// Shared immutable context for one resilient run.
struct Ctx<'a> {
    ft: &'a FtImm,
    plan: &'a ChosenStrategy,
    cores: usize,
    rcfg: &'a ResilienceConfig,
}

/// Mutable recovery bookkeeping for one resilient run.
struct Recovery {
    attempt: u32,
    retries: u64,
    recomputed: u64,
    rows_reexecuted: u64,
    rows_verified: usize,
    fault_cores: Vec<usize>,
}

impl Recovery {
    fn new() -> Self {
        Recovery {
            attempt: 0,
            retries: 0,
            recomputed: 0,
            rows_reexecuted: 0,
            rows_verified: 0,
            fault_cores: Vec::new(),
        }
    }

    /// Charge one recovery attempt against the budget (returning `e` as
    /// the terminal error when it is exhausted) and stall the cores for
    /// the exponential backoff.
    fn charge(&mut self, cx: &Ctx, m: &mut Machine, e: FtimmError) -> Result<(), FtimmError> {
        if self.attempt >= cx.rcfg.max_retries {
            return Err(e);
        }
        self.attempt += 1;
        self.retries += 1;
        self.recomputed += 1;
        m.record_event(EventKind::Retry, e.implicated_core(), m.elapsed());
        backoff(m, cx.cores, cx.rcfg, self.attempt);
        Ok(())
    }
}

/// Execute rows `[r0, r1)` until one pass completes without a transient
/// fault, restoring and re-running the span on each absorbed fault.
fn execute_span(
    cx: &Ctx,
    m: &mut Machine,
    p: &GemmProblem,
    abft: Option<&AbftRef>,
    rec: &mut Recovery,
    r0: usize,
    r1: usize,
) -> Result<(), FtimmError> {
    loop {
        let sub = row_span(p, r0, r1);
        match cx.ft.run_plan(m, &sub, cx.plan, cx.cores) {
            Ok(_) => return Ok(()),
            Err(e) if e.is_transient_fault() => {
                if let Some(c) = e.implicated_core() {
                    rec.fault_cores.push(c);
                }
                if let FtimmError::Sim(SimError::CoreFailed { core, .. }) = &e {
                    m.retire_core(*core);
                    if m.alive_cores() == 0 {
                        return Err(e);
                    }
                }
                rec.charge(cx, m, e)?;
                // The aborted pass may have stored partial C panels inside
                // this span: restore the span and start it over.  Rows
                // outside the span were never touched by this pass.
                if let Some(r) = abft {
                    r.restore_rows(m, p, r0, r1)?;
                }
                rec.rows_reexecuted += (r1 - r0) as u64;
            }
            // Deadline preemption and caller errors are terminal here.
            Err(e) => return Err(e),
        }
    }
}

/// The corruption error reported when the retry budget runs out with a
/// row still failing verification.
fn corrupt_err(p: &GemmProblem, row: usize) -> FtimmError {
    FtimmError::Sim(SimError::DataCorrupt {
        region: "DDR",
        offset: p.c.elem_off(row, 0),
    })
}

fn run_spans(
    cx: &Ctx,
    m: &mut Machine,
    p: &GemmProblem,
    rec: &mut Recovery,
) -> Result<RunReport, FtimmError> {
    validate_problem(p)?;
    let abft = if m.mode.is_functional() {
        Some(AbftRef::capture(m, p)?)
    } else {
        None
    };

    let mm = p.m();
    let spans = ckpt_spans(mm, cx.rcfg.ckpt_rows);
    let checkpointing = spans.len() > 1;

    for &(s0, s1) in &spans {
        execute_span(cx, m, p, abft.as_ref(), rec, s0, s1)?;
        if checkpointing {
            // Row-checksum gate for this checkpoint span.  Column sums
            // need the whole C and run once at the end.
            if let Some(r) = &abft {
                loop {
                    match r.verify_rows(m, p, cx.rcfg.abft_tol, s0, s1)? {
                        None => break,
                        Some((b0, b1)) => {
                            rec.charge(cx, m, corrupt_err(p, b0))?;
                            r.restore_rows(m, p, b0, b1)?;
                            rec.rows_reexecuted += (b1 - b0) as u64;
                            execute_span(cx, m, p, abft.as_ref(), rec, b0, b1)?;
                        }
                    }
                }
            }
        }
        rec.rows_verified = s1;
    }

    // Full-matrix verification: re-checks every row sum and adds the
    // column pass that catches row-compensated corruption.
    if let Some(r) = &abft {
        loop {
            match r.verify(m, p, cx.rcfg.abft_tol)? {
                None => break,
                Some((b0, b1)) => {
                    rec.charge(cx, m, corrupt_err(p, b0))?;
                    r.restore_rows(m, p, b0, b1)?;
                    rec.rows_reexecuted += (b1 - b0) as u64;
                    execute_span(cx, m, p, abft.as_ref(), rec, b0, b1)?;
                }
            }
        }
    }

    let ids: Vec<usize> = (0..cx.cores.clamp(1, m.alive_cores())).collect();
    let mut rep = m.report(p.flops(), &ids);
    rep.faults.retries = rec.retries;
    rep.faults.recomputed_tiles = rec.recomputed;
    rep.faults.rows_reexecuted = rec.rows_reexecuted;
    Ok(rep)
}

/// Execute a resolved plan with ABFT verification, bounded retries,
/// optional row-span checkpointing and graceful core degradation,
/// reporting recovery progress even on failure.  See the module docs for
/// the fault model.
pub fn run_resilient_full(
    ft: &FtImm,
    m: &mut Machine,
    p: &GemmProblem,
    plan: &ChosenStrategy,
    cores: usize,
    rcfg: &ResilienceConfig,
) -> ResilientRun {
    let cx = Ctx {
        ft,
        plan,
        cores,
        rcfg,
    };
    let mut rec = Recovery::new();
    let result = run_spans(&cx, m, p, &mut rec);
    ResilientRun {
        result,
        rows_verified: rec.rows_verified,
        rows_total: p.m(),
        fault_cores: rec.fault_cores,
    }
}

/// Execute a resolved plan with ABFT verification, bounded retries and
/// graceful core degradation.  See the module docs for the fault model.
pub fn run_resilient(
    ft: &FtImm,
    m: &mut Machine,
    p: &GemmProblem,
    plan: &ChosenStrategy,
    cores: usize,
    rcfg: &ResilienceConfig,
) -> Result<RunReport, FtimmError> {
    run_resilient_full(ft, m, p, plan, cores, rcfg).result
}

/// A [`DdrMatrix`]-level convenience: verify a finished `C` against a
/// host oracle (`f64` accumulate), returning the worst absolute error.
/// Used by the chaos tests to validate degraded K-parallel runs whose
/// reduction regrouping changes bit patterns but not mathematics.
pub fn max_abs_error_vs_oracle(
    m: &mut Machine,
    c: &DdrMatrix,
    oracle: &[f64],
) -> Result<f64, FtimmError> {
    let got = c.download(m).map_err(FtimmError::Sim)?;
    Ok(got
        .iter()
        .zip(oracle)
        .map(|(&g, &o)| (g as f64 - o).abs())
        .fold(0.0, f64::max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reference, Strategy};
    use dspsim::{DmaPath, ExecMode, FaultPlan, HwConfig};

    fn problem(m: &mut Machine, mm: usize, nn: usize, kk: usize) -> GemmProblem {
        let p = GemmProblem::alloc(m, mm, nn, kk).unwrap();
        p.a.upload(m, &reference::fill_matrix(mm * kk, 1)).unwrap();
        p.b.upload(m, &reference::fill_matrix(kk * nn, 2)).unwrap();
        p.c.upload(m, &reference::fill_matrix(mm * nn, 3)).unwrap();
        p
    }

    #[test]
    fn fault_free_resilient_run_matches_plain_run_bitwise() {
        let ft = FtImm::new(HwConfig::default());
        let mut m1 = Machine::with_mode(ExecMode::Fast);
        let p1 = problem(&mut m1, 64, 24, 48);
        let plan = ft.plan(&crate::GemmShape::new(64, 24, 48), Strategy::MPar, 4);
        let plain = ft.run_plan(&mut m1, &p1, &plan, 4).unwrap();
        let c_plain = p1.c.download(&mut m1).unwrap();

        let mut m2 = Machine::with_mode(ExecMode::Fast);
        let p2 = problem(&mut m2, 64, 24, 48);
        let resil =
            run_resilient(&ft, &mut m2, &p2, &plan, 4, &ResilienceConfig::default()).unwrap();
        let c_resil = p2.c.download(&mut m2).unwrap();

        assert_eq!(plain.seconds.to_bits(), resil.seconds.to_bits());
        assert_eq!(plain.totals, resil.totals);
        assert_eq!(resil.faults.retries, 0);
        assert_eq!(resil.faults.injected(), 0);
        for (a, b) in c_plain.iter().zip(&c_resil) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn cancellation_heavy_fault_free_run_verifies_clean() {
        // Regression for an ABFT false positive: at 1×18×351 with this
        // fill seed one C column accumulates ~4.7e3 of absolute product
        // mass down to a final value of ~7, so its fault-free f32
        // rounding noise exceeded a tolerance normalised by the final
        // |C| values.  The mass-normalised allowance must verify it
        // clean on the first pass (also pinned as conformance fixture
        // `shard-failover-tgemm-1x18x351-*`).
        let ft = FtImm::new(HwConfig::default());
        let mut m = Machine::with_mode(ExecMode::Fast);
        let s = 8802051278782657661u64 as u32;
        let p = GemmProblem::alloc(&mut m, 1, 18, 351).unwrap();
        p.a.upload(&mut m, &reference::fill_matrix(351, s.wrapping_add(1)))
            .unwrap();
        p.b.upload(&mut m, &reference::fill_matrix(351 * 18, s.wrapping_add(2)))
            .unwrap();
        p.c.upload(&mut m, &reference::fill_matrix(18, s.wrapping_add(3)))
            .unwrap();
        let plan = ft.plan(&crate::GemmShape::new(1, 18, 351), Strategy::TGemm, 1);
        let rcfg = ResilienceConfig {
            ckpt_rows: 4,
            ..ResilienceConfig::default()
        };
        let rep = run_resilient(&ft, &mut m, &p, &plan, 1, &rcfg).unwrap();
        assert_eq!(rep.faults.retries, 0);
        assert_eq!(rep.faults.rows_reexecuted, 0);
    }

    #[test]
    fn abft_catches_a_seeded_flip_and_recovers() {
        let ft = FtImm::new(HwConfig::default());
        let mut m = Machine::with_mode(ExecMode::Fast);
        let p = problem(&mut m, 64, 24, 48);
        m.install_faults(&FaultPlan::new(9).corrupt_dma(dspsim::DmaPath::DdrToAm, 2));
        let plan = ft.plan(&crate::GemmShape::new(64, 24, 48), Strategy::MPar, 4);
        let rep = run_resilient(&ft, &mut m, &p, &plan, 4, &ResilienceConfig::default()).unwrap();
        assert_eq!(rep.faults.dma_corruptions, 1);
        assert!(rep.faults.retries >= 1);
        assert!(rep.faults.recomputed_tiles >= 1);
        assert!(rep.faults.rows_reexecuted >= 1);

        // Recovered C is bit-identical to a fault-free run.
        let mut m2 = Machine::with_mode(ExecMode::Fast);
        let p2 = problem(&mut m2, 64, 24, 48);
        ft.run_plan(&mut m2, &p2, &plan, 4).unwrap();
        let want = p2.c.download(&mut m2).unwrap();
        let got = p.c.download(&mut m).unwrap();
        for (a, b) in want.iter().zip(&got) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn zero_retry_budget_surfaces_corruption() {
        let ft = FtImm::new(HwConfig::default());
        let mut m = Machine::with_mode(ExecMode::Fast);
        let p = problem(&mut m, 64, 24, 48);
        m.install_faults(&FaultPlan::new(3).corrupt_dma(dspsim::DmaPath::DdrToAm, 1));
        let plan = ft.plan(&crate::GemmShape::new(64, 24, 48), Strategy::MPar, 4);
        let rcfg = ResilienceConfig {
            max_retries: 0,
            ..ResilienceConfig::default()
        };
        let err = run_resilient(&ft, &mut m, &p, &plan, 4, &rcfg).unwrap_err();
        assert!(
            matches!(err, FtimmError::Sim(SimError::DataCorrupt { .. })),
            "got {err}"
        );
    }

    #[test]
    fn checkpointed_fault_free_run_is_bit_exact_with_the_monolithic_run() {
        let ft = FtImm::new(HwConfig::default());
        let plan = ft.plan(&crate::GemmShape::new(64, 24, 48), Strategy::MPar, 4);

        let mut m1 = Machine::with_mode(ExecMode::Fast);
        let p1 = problem(&mut m1, 64, 24, 48);
        ft.run_plan(&mut m1, &p1, &plan, 4).unwrap();
        let want = p1.c.download(&mut m1).unwrap();

        let mut m2 = Machine::with_mode(ExecMode::Fast);
        let p2 = problem(&mut m2, 64, 24, 48);
        let rcfg = ResilienceConfig {
            ckpt_rows: 16,
            ..ResilienceConfig::default()
        };
        let run = run_resilient_full(&ft, &mut m2, &p2, &plan, 4, &rcfg);
        let rep = run.result.unwrap();
        assert_eq!(run.rows_verified, 64);
        assert_eq!(rep.faults.rows_reexecuted, 0);
        let got = p2.c.download(&mut m2).unwrap();
        for (a, b) in want.iter().zip(&got) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn failed_run_reports_checkpoint_progress() {
        let ft = FtImm::new(HwConfig::default());
        let mut m = Machine::with_mode(ExecMode::Fast);
        let p = problem(&mut m, 64, 24, 48);
        // A corruption in the third of four checkpoint spans (DdrToSm
        // sees two transfers per span) with a zero retry budget: spans 1
        // and 2 verify, span 3 fails terminally.
        m.install_faults(&FaultPlan::new(5).corrupt_dma(DmaPath::DdrToSm, 5));
        let plan = ft.plan(&crate::GemmShape::new(64, 24, 48), Strategy::MPar, 4);
        let rcfg = ResilienceConfig {
            max_retries: 0,
            ckpt_rows: 16,
            ..ResilienceConfig::default()
        };
        let run = run_resilient_full(&ft, &mut m, &p, &plan, 4, &rcfg);
        assert!(run.result.is_err());
        assert_eq!(run.rows_total, 64);
        assert!(
            run.rows_verified > 0 && run.rows_verified < 64,
            "corruption in a later span should leave earlier checkpoints verified \
             (got {} rows)",
            run.rows_verified
        );
    }
}
