//! Extension beyond the paper's evaluation: scaling one GEMM across the
//! four GPDSP clusters of FT-m7032 (§II).  Each cluster owns a private
//! DDR partition with its own 42.6 GB/s interface, so clusters are
//! data-parallel with no shared state: the M dimension is partitioned,
//! each cluster runs ftIMM on its slice, and the host CPU pays a fixed
//! dispatch/coherency cost per cluster launch (cache write-back before
//! launch and invalidate after, §II).

use crate::{FtImm, FtimmError, GemmProblem, GemmShape, Strategy};
use dspsim::{ExecMode, HwConfig, Machine, RunReport};

/// Host-side dispatch + cache-coherency cost per cluster launch
/// (invented, documented in DESIGN.md §8).
pub const LAUNCH_OVERHEAD_S: f64 = 50e-6;

/// A grid of independent GPDSP clusters.
pub struct ClusterGrid {
    /// One machine per cluster (each models a private DDR partition).
    pub machines: Vec<Machine>,
}

/// Result of a grid run.
#[derive(Debug, Clone)]
pub struct GridReport {
    /// Per-cluster reports.
    pub per_cluster: Vec<RunReport>,
    /// End-to-end seconds (max cluster + launch overhead).
    pub seconds: f64,
    /// Useful flops of the whole problem.
    pub useful_flops: u64,
}

impl GridReport {
    /// Aggregate GFLOPS.
    pub fn gflops(&self) -> f64 {
        self.useful_flops as f64 / self.seconds / 1e9
    }
}

impl ClusterGrid {
    /// Build a grid of `clusters` machines in the given mode.
    pub fn new(cfg: &HwConfig, mode: ExecMode, clusters: usize) -> Self {
        ClusterGrid {
            machines: (0..clusters)
                .map(|_| Machine::new(cfg.clone(), mode))
                .collect(),
        }
    }

    /// `C += A × B` across all clusters: M is split into contiguous
    /// stripes, one per cluster.  Host data is row-major dense.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm(
        &mut self,
        ft: &FtImm,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        strategy: Strategy,
        cores: usize,
    ) -> Result<GridReport, FtimmError> {
        let clusters = self.machines.len().max(1);
        let stripe = m.div_ceil(clusters);
        let mut per_cluster = Vec::new();
        let mut worst = 0.0f64;
        for (ci, machine) in self.machines.iter_mut().enumerate() {
            let r0 = ci * stripe;
            if r0 >= m {
                break;
            }
            let rows = stripe.min(m - r0);
            machine.reset_timing();
            machine.ddr.reset_alloc();
            let p = GemmProblem::alloc(machine, rows, n, k)?;
            if machine.mode.is_functional() {
                p.a.upload(machine, &a[r0 * k..(r0 + rows) * k])?;
                p.b.upload(machine, b)?;
                p.c.upload(machine, &c[r0 * n..(r0 + rows) * n])?;
            }
            let (report, _plan) = ft.gemm(machine, &p, strategy, cores)?;
            if machine.mode.is_functional() {
                let out = p.c.download(machine)?;
                c[r0 * n..(r0 + rows) * n].copy_from_slice(&out);
            }
            worst = worst.max(report.seconds);
            per_cluster.push(report);
        }
        let shape = GemmShape::new(m, n, k);
        Ok(GridReport {
            seconds: worst + LAUNCH_OVERHEAD_S,
            per_cluster,
            useful_flops: shape.flops(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{assert_close, fill_matrix, sgemm_f64};

    #[test]
    fn grid_matches_reference_functionally() {
        let (m, n, k) = (1000, 32, 128);
        let ft = FtImm::new(HwConfig::default());
        let mut grid = ClusterGrid::new(ft.cfg(), ExecMode::Fast, 4);
        let a = fill_matrix(m * k, 1);
        let b = fill_matrix(k * n, 2);
        let c0 = fill_matrix(m * n, 3);
        let mut c = c0.clone();
        let report = grid
            .gemm(&ft, m, n, k, &a, &b, &mut c, Strategy::Auto, 8)
            .unwrap();
        let want = sgemm_f64(m, n, k, &a, &b, &c0);
        assert_close(m, n, &c, &want, 1e-3);
        assert_eq!(report.per_cluster.len(), 4);
        assert!(report.gflops() > 0.0);
    }

    #[test]
    fn four_clusters_scale_type1_but_sublinearly() {
        // Type 1 is bandwidth-bound per cluster; four private DDR
        // partitions quadruple aggregate bandwidth.
        let ft = FtImm::new(HwConfig::default());
        let (m, n, k) = (1 << 20, 32, 32);
        let run = |clusters: usize| {
            let mut grid = ClusterGrid::new(ft.cfg(), ExecMode::Timing, clusters);
            let mut c = Vec::new();
            grid.gemm(&ft, m, n, k, &[], &[], &mut c, Strategy::Auto, 8)
                .unwrap()
                .seconds
        };
        let t1 = run(1);
        let t4 = run(4);
        let speedup = t1 / t4;
        assert!(speedup > 2.5, "{speedup}");
        assert!(speedup <= 4.05, "{speedup}");
    }

    #[test]
    fn more_clusters_than_rows_is_safe() {
        let ft = FtImm::new(HwConfig::default());
        let mut grid = ClusterGrid::new(ft.cfg(), ExecMode::Fast, 4);
        let (m, n, k) = (2, 8, 8);
        let a = fill_matrix(m * k, 1);
        let b = fill_matrix(k * n, 2);
        let mut c = vec![0.0; m * n];
        let report = grid
            .gemm(&ft, m, n, k, &a, &b, &mut c, Strategy::Auto, 8)
            .unwrap();
        assert!(report.per_cluster.len() <= 4);
    }
}
