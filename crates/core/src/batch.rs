//! Batched small GEMMs sharing one right-hand operand — the FEM pattern
//! from the paper's introduction (`C_e += A_e × B` for many small
//! element matrices `A_e`).
//!
//! Because the element matrices are stacked contiguously, the batch is
//! algebraically one tall-and-skinny GEMM; this module provides the
//! batch-shaped API, plans it once, and reports per-element statistics.

use crate::exec::validate_batch_dims;
use crate::plan::Plan;
use crate::{
    resilience::ResilienceConfig, Executor, FtImm, FtimmError, GemmProblem, GemmShape, Strategy,
};
use dspsim::{FaultStats, Machine, RunReport};

/// A planned batch of `count` GEMMs of `rows × cols × inner` against a
/// shared `inner × cols` operand.
#[derive(Debug, Clone, Copy)]
pub struct GemmBatch {
    /// Number of element matrices.
    pub count: usize,
    /// Rows per element.
    pub rows: usize,
    /// Shared contraction dimension.
    pub inner: usize,
    /// Output columns.
    pub cols: usize,
}

/// Outcome of a batched run.
#[derive(Debug, Clone, Copy)]
pub struct BatchReport {
    /// The underlying flat-run report.
    pub run: RunReport,
    /// The plan the executor resolved for the flat GEMM.
    pub plan: Plan,
    /// Fault and recovery counters for the run (a copy of `run.faults`,
    /// surfaced at batch level so callers checking batch health need not
    /// reach into the flat report).
    pub faults: FaultStats,
    /// Simulated seconds per element matrix.
    pub seconds_per_element: f64,
}

impl GemmBatch {
    /// Construct and validate a batch descriptor.
    pub fn new(count: usize, rows: usize, inner: usize, cols: usize) -> Result<Self, FtimmError> {
        validate_batch_dims(count, rows, inner, cols)?;
        Ok(GemmBatch {
            count,
            rows,
            inner,
            cols,
        })
    }

    /// The equivalent flat GEMM shape.
    pub fn flat_shape(&self) -> GemmShape {
        GemmShape::new(self.count * self.rows, self.cols, self.inner)
    }

    /// Allocate the batch's flat problem and stage the host buffers.
    fn stage(
        &self,
        machine: &mut Machine,
        elements: &[f32],
        operator: &[f32],
        out: &[f32],
    ) -> Result<GemmProblem, FtimmError> {
        let shape = self.flat_shape();
        let p = GemmProblem::alloc(machine, shape.m, shape.n, shape.k)?;
        if machine.mode.is_functional() {
            p.a.upload(machine, elements)?;
            p.b.upload(machine, operator)?;
            p.c.upload(machine, out)?;
        }
        Ok(p)
    }

    /// Wrap a finished flat run in batch statistics, downloading the
    /// accumulator back into `out`.
    fn finish(
        &self,
        machine: &mut Machine,
        p: &GemmProblem,
        run: RunReport,
        plan: Plan,
        out: &mut [f32],
    ) -> Result<BatchReport, FtimmError> {
        if machine.mode.is_functional() {
            let result = p.c.download(machine)?;
            out.copy_from_slice(&result);
        }
        Ok(BatchReport {
            run,
            plan,
            faults: run.faults,
            seconds_per_element: run.seconds / self.count as f64,
        })
    }

    /// Execute the batch: `elements` is the stacked `(count·rows) × inner`
    /// matrix, `operator` the shared `inner × cols` operand, `out` the
    /// stacked `(count·rows) × cols` accumulator (read-modify-write).
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        ft: &FtImm,
        machine: &mut Machine,
        elements: &[f32],
        operator: &[f32],
        out: &mut [f32],
        strategy: Strategy,
        cores: usize,
    ) -> Result<BatchReport, FtimmError> {
        let p = self.stage(machine, elements, operator, out)?;
        let run = Executor::new(ft)
            .strategy(strategy)
            .cores(cores)
            .dispatch(machine, &p)?;
        let plan = run.plan;
        self.finish(machine, &p, run.result?, plan, out)
    }

    /// Execute the batch under the resilience layer (ABFT-checked,
    /// retried, degraded onto surviving cores) — the fault-tolerant
    /// analogue of [`GemmBatch::run`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_resilient(
        &self,
        ft: &FtImm,
        machine: &mut Machine,
        elements: &[f32],
        operator: &[f32],
        out: &mut [f32],
        strategy: Strategy,
        cores: usize,
        rcfg: &ResilienceConfig,
    ) -> Result<BatchReport, FtimmError> {
        let p = self.stage(machine, elements, operator, out)?;
        let run = Executor::new(ft)
            .strategy(strategy)
            .cores(cores)
            .resilient(*rcfg)
            .dispatch(machine, &p)?;
        let plan = run.plan;
        self.finish(machine, &p, run.result?, plan, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{assert_close, fill_matrix, sgemm_f64};
    use dspsim::{ExecMode, HwConfig};

    #[test]
    fn batch_equals_per_element_gemms() {
        let batch = GemmBatch::new(50, 10, 12, 4).unwrap();
        let shape = batch.flat_shape();
        let ft = FtImm::new(HwConfig::default());
        let mut machine = Machine::with_mode(ExecMode::Fast);
        let elements = fill_matrix(shape.m * shape.k, 1);
        let operator = fill_matrix(shape.k * shape.n, 2);
        let mut out = vec![0.0f32; shape.m * shape.n];
        let report = batch
            .run(
                &ft,
                &mut machine,
                &elements,
                &operator,
                &mut out,
                Strategy::Auto,
                8,
            )
            .unwrap();
        let want = sgemm_f64(
            shape.m,
            shape.n,
            shape.k,
            &elements,
            &operator,
            &vec![0.0; shape.m * shape.n],
        );
        assert_close(shape.m, shape.n, &out, &want, 1e-3);
        assert!(report.seconds_per_element > 0.0);
        assert!((report.seconds_per_element * 50.0 - report.run.seconds).abs() < 1e-12);
    }

    #[test]
    fn invalid_batches_are_rejected() {
        assert!(GemmBatch::new(0, 4, 4, 4).is_err());
        assert!(GemmBatch::new(4, 4, 4, 97).is_err());
        assert!(GemmBatch::new(4, 4, 4, 96).is_ok());
    }

    #[test]
    fn every_zero_dimension_is_rejected_with_a_diagnostic() {
        for (count, rows, inner, cols) in [(0, 4, 4, 4), (4, 0, 4, 4), (4, 4, 0, 4), (4, 4, 4, 0)] {
            let e = GemmBatch::new(count, rows, inner, cols).unwrap_err();
            assert!(
                matches!(&e, FtimmError::Invalid(s) if s.contains("empty batch")),
                "({count},{rows},{inner},{cols}) gave {e}"
            );
        }
    }

    #[test]
    fn oversized_cols_error_names_the_limit() {
        let e = GemmBatch::new(4, 4, 4, kernelgen::MAX_NA + 1).unwrap_err();
        let msg = e.to_string();
        assert!(
            msg.contains(&kernelgen::MAX_NA.to_string()),
            "error should cite the limit: {msg}"
        );
    }

    #[test]
    fn resilient_batch_recovers_and_matches_the_clean_run() {
        let batch = GemmBatch::new(20, 8, 12, 4).unwrap();
        let shape = batch.flat_shape();
        let ft = FtImm::new(HwConfig::default());
        let elements = fill_matrix(shape.m * shape.k, 1);
        let operator = fill_matrix(shape.k * shape.n, 2);

        let mut m_clean = Machine::with_mode(ExecMode::Fast);
        let mut want = vec![0.0f32; shape.m * shape.n];
        batch
            .run(
                &ft,
                &mut m_clean,
                &elements,
                &operator,
                &mut want,
                Strategy::Auto,
                4,
            )
            .unwrap();

        let mut m = Machine::with_mode(ExecMode::Fast);
        m.install_faults(&dspsim::FaultPlan::new(17).corrupt_dma(dspsim::DmaPath::DdrToAm, 1));
        let mut out = vec![0.0f32; shape.m * shape.n];
        let rep = batch
            .run_resilient(
                &ft,
                &mut m,
                &elements,
                &operator,
                &mut out,
                Strategy::Auto,
                4,
                &crate::ResilienceConfig::default(),
            )
            .unwrap();
        assert_eq!(rep.faults.dma_corruptions, 1);
        assert!(rep.faults.retries >= 1);
        assert_eq!(rep.faults, rep.run.faults);
        for (a, b) in want.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn batch_classifies_as_type1_when_many_elements() {
        let b = GemmBatch::new(10_000, 10, 10, 4).unwrap();
        assert_eq!(
            b.flat_shape().classify(),
            crate::IrregularType::TallSkinnyTimesSmall
        );
    }
}
