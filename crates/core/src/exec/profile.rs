//! Profile finishing: fold the raw span recording into a
//! [`PhaseProfile`] and fill the model-level fields (roofline prediction,
//! achieved rate) only the executor knows.

use crate::{roofline, GemmShape};
use dspsim::{HwConfig, PhaseProfile, Profiler, RunReport};

/// Aggregate `profiler`'s spans and complete the profile with the
/// roofline-predicted and achieved GFLOPS of the finished run.
pub(crate) fn finish(
    cfg: &HwConfig,
    shape: &GemmShape,
    profiler: &Profiler,
    rep: &RunReport,
) -> PhaseProfile {
    let mut prof = profiler.aggregate();
    prof.roofline_gflops = roofline::roofline_gflops(cfg, shape, rep.cores_used);
    prof.achieved_gflops = rep.gflops();
    prof
}
