//! Profile finishing: fold the raw span recording into a
//! [`PhaseProfile`] and fill the model-level fields (roofline prediction,
//! achieved rate, plan-cache counters) only the executor knows.

use crate::{roofline, FtImm, GemmShape};
use dspsim::{PhaseProfile, Profiler, RunReport};

/// Aggregate `profiler`'s spans and complete the profile with the
/// roofline-predicted and achieved GFLOPS of the finished run, plus the
/// context's lifetime plan-cache counters.
pub(crate) fn finish(
    ft: &FtImm,
    shape: &GemmShape,
    profiler: &Profiler,
    rep: &RunReport,
) -> PhaseProfile {
    let mut prof = profiler.aggregate();
    prof.roofline_gflops = roofline::roofline_gflops(ft.cfg(), shape, rep.cores_used);
    prof.achieved_gflops = rep.gflops();
    let stats = ft.plan_cache_stats();
    prof.plan_hits = stats.hits;
    prof.plan_misses = stats.misses;
    prof.plan_evictions = stats.evictions;
    let tuning = ft.tuning_stats();
    prof.catalog_hits = tuning.catalog_hits;
    prof.catalog_misses = tuning.catalog_misses;
    prof
}
