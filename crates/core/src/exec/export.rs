//! Profile exporters: a self-contained JSON profile document and a
//! Chrome `trace_event` file loadable in `chrome://tracing` / Perfetto.
//!
//! Both are hand-written against [`dspsim::minijson`] (the workspace
//! builds offline with a marker-only serde stub), and the profile
//! document round-trips exactly: `{:?}`-formatted `f64` fields use
//! Rust's shortest round-trip representation.

use dspsim::minijson::{quote, Parser};
use dspsim::{EventKind, Phase, PhaseProfile, Profiler, PHASE_COUNT, PROFILE_CORES};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Document identifier embedded in (and required from) profile JSON.
const PROFILE_SCHEMA: &str = "ftimm-profile-v1";

/// Serialise a [`PhaseProfile`] as a self-contained pretty-printed JSON
/// document (stable field order; exact `f64` round-trip).
pub fn profile_json(prof: &PhaseProfile) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": {},", quote(PROFILE_SCHEMA));
    let _ = writeln!(s, "  \"total_s\": {:?},", prof.total_s);
    s.push_str("  \"phase_s\": {\n");
    for (i, p) in Phase::ALL.into_iter().enumerate() {
        let _ = writeln!(
            s,
            "    {}: {:?}{}",
            quote(p.name()),
            prof.phase_seconds(p),
            if i + 1 == PHASE_COUNT { "" } else { "," }
        );
    }
    s.push_str("  },\n");
    s.push_str("  \"core_busy_s\": [");
    for (i, b) in prof.core_busy_s.iter().enumerate() {
        let _ = write!(s, "{}{:?}", if i == 0 { "" } else { ", " }, b);
    }
    s.push_str("],\n");
    let _ = writeln!(s, "  \"overlap_s\": {:?},", prof.overlap_s);
    let _ = writeln!(s, "  \"overlap_frac\": {:?},", prof.overlap_frac());
    let _ = writeln!(s, "  \"roofline_gflops\": {:?},", prof.roofline_gflops);
    let _ = writeln!(s, "  \"achieved_gflops\": {:?},", prof.achieved_gflops);
    let _ = writeln!(s, "  \"plan_hits\": {},", prof.plan_hits);
    let _ = writeln!(s, "  \"plan_misses\": {},", prof.plan_misses);
    let _ = writeln!(s, "  \"plan_evictions\": {},", prof.plan_evictions);
    let _ = writeln!(s, "  \"catalog_hits\": {},", prof.catalog_hits);
    let _ = writeln!(s, "  \"catalog_misses\": {},", prof.catalog_misses);
    let _ = writeln!(s, "  \"spans\": {},", prof.spans);
    let _ = writeln!(s, "  \"events\": {},", prof.events);
    let _ = writeln!(s, "  \"dropped\": {}", prof.dropped);
    s.push('}');
    s
}

/// Parse a profile document produced by [`profile_json`].  Unknown keys
/// are rejected so a typoed document fails loudly.
pub fn profile_from_json(text: &str) -> Result<PhaseProfile, String> {
    let value = Parser::new(text).parse()?;
    let obj = value.as_obj("profile")?;
    let mut prof = PhaseProfile::default();
    let mut schema_seen = false;
    for (key, v) in obj {
        match key.as_str() {
            "schema" => {
                let s = v.as_str("schema")?;
                if s != PROFILE_SCHEMA {
                    return Err(format!("unsupported profile schema {s:?}"));
                }
                schema_seen = true;
            }
            "total_s" => prof.total_s = v.as_f64("total_s")?,
            "phase_s" => {
                for (name, sec) in v.as_obj("phase_s")? {
                    let phase = Phase::from_name(name)?;
                    prof.phase_s[phase.index()] = sec.as_f64(name)?;
                }
            }
            "core_busy_s" => {
                let items = v.as_arr("core_busy_s")?;
                if items.len() != PROFILE_CORES {
                    return Err(format!(
                        "core_busy_s has {} entries, expected {PROFILE_CORES}",
                        items.len()
                    ));
                }
                for (i, item) in items.iter().enumerate() {
                    prof.core_busy_s[i] = item.as_f64("core_busy_s")?;
                }
            }
            "overlap_s" => prof.overlap_s = v.as_f64("overlap_s")?,
            // Derived from overlap_s / total_s; accepted and recomputed.
            "overlap_frac" => {
                v.as_f64("overlap_frac")?;
            }
            "roofline_gflops" => prof.roofline_gflops = v.as_f64("roofline_gflops")?,
            "achieved_gflops" => prof.achieved_gflops = v.as_f64("achieved_gflops")?,
            "plan_hits" => prof.plan_hits = v.as_u64("plan_hits")?,
            "plan_misses" => prof.plan_misses = v.as_u64("plan_misses")?,
            "plan_evictions" => prof.plan_evictions = v.as_u64("plan_evictions")?,
            "catalog_hits" => prof.catalog_hits = v.as_u64("catalog_hits")?,
            "catalog_misses" => prof.catalog_misses = v.as_u64("catalog_misses")?,
            "spans" => prof.spans = v.as_u64("spans")?,
            "events" => prof.events = v.as_u64("events")?,
            "dropped" => prof.dropped = v.as_u64("dropped")?,
            other => return Err(format!("unknown profile key {other:?}")),
        }
    }
    if !schema_seen {
        return Err("profile missing \"schema\"".into());
    }
    Ok(prof)
}

/// The trace thread a span or event renders on: each physical core gets
/// a compute track (`2·core`) and a DMA-engine track (`2·core + 1`);
/// host-side planning and autotuning each get one dedicated track above
/// all core tracks.
const PLANNER_TID: usize = 2 * PROFILE_CORES;
const TUNER_TID: usize = 2 * PROFILE_CORES + 1;

fn span_tid(phase: Phase, core: usize) -> usize {
    if phase == Phase::Plan {
        PLANNER_TID
    } else if phase == Phase::Tune {
        TUNER_TID
    } else if phase.is_data_movement() {
        2 * core + 1
    } else {
        2 * core
    }
}

fn event_tid(kind: EventKind, core: Option<usize>) -> usize {
    let Some(c) = core else { return 0 };
    match kind {
        EventKind::DmaCorrupt | EventKind::DmaTimeout | EventKind::WatchdogDma => 2 * c + 1,
        _ => 2 * c,
    }
}

/// Serialise a raw span/event recording as a Chrome `trace_event` JSON
/// document (timestamps in microseconds of *simulated* time), loadable
/// in `chrome://tracing` or Perfetto.
pub fn chrome_trace_json(profiler: &Profiler) -> String {
    chrome_trace_json_clusters(&[("ftimm dspsim cluster".to_string(), vec![profiler])])
}

/// Multi-cluster Chrome trace: each `(label, recordings)` pair becomes
/// one trace *process* (`pid` = cluster index) with the usual per-core
/// compute/DMA tracks inside, so a sharded run renders as side-by-side
/// cluster swimlanes.  A cluster may contribute several recordings (one
/// per shard dispatch); they share the cluster's simulated clock, so
/// their spans interleave correctly on the shared time axis.
pub fn chrome_trace_json_clusters(clusters: &[(String, Vec<&Profiler>)]) -> String {
    let mut s = String::new();
    s.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    for (pid, (label, profilers)) in clusters.iter().enumerate() {
        let mut tids: BTreeSet<usize> = BTreeSet::new();
        for p in profilers {
            for sp in p.spans() {
                tids.insert(span_tid(sp.phase, sp.core));
            }
            for e in p.events() {
                tids.insert(event_tid(e.kind, e.core));
            }
        }
        let _ = write!(
            s,
            "{}{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":{}}}}}",
            if first { "" } else { ",\n" },
            quote(label)
        );
        first = false;
        for &tid in &tids {
            let name = if tid == PLANNER_TID {
                "planner".to_string()
            } else if tid == TUNER_TID {
                "tuner".to_string()
            } else {
                let side = if tid % 2 == 0 { "compute" } else { "dma" };
                format!("core{} {side}", tid / 2)
            };
            let _ = write!(
                s,
                ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":{}}}}}",
                quote(&name)
            );
        }
        for p in profilers {
            for sp in p.spans() {
                let _ = write!(
                    s,
                    ",\n{{\"name\":{},\"cat\":\"phase\",\"ph\":\"X\",\"ts\":{:?},\"dur\":{:?},\
                     \"pid\":{pid},\"tid\":{}}}",
                    quote(sp.phase.name()),
                    sp.t0 * 1e6,
                    (sp.t1 - sp.t0) * 1e6,
                    span_tid(sp.phase, sp.core)
                );
            }
        }
        for p in profilers {
            for e in p.events() {
                let _ = write!(
                    s,
                    ",\n{{\"name\":{},\"cat\":\"fault\",\"ph\":\"i\",\"ts\":{:?},\"s\":\"p\",\
                     \"pid\":{pid},\"tid\":{}}}",
                    quote(e.kind.name()),
                    e.t * 1e6,
                    event_tid(e.kind, e.core)
                );
            }
        }
    }
    s.push_str("\n],\"displayTimeUnit\":\"ms\"}");
    s
}

/// Heterogeneous Chrome trace: one process per cluster (labelled
/// `cluster N`, recordings from the sharded engine's per-cluster
/// profilers) plus one `cpu lane` process for the host backend's track.
/// Under co-execution the CPU process carries compute spans from
/// `t = 0` of its own clock — side by side with the cluster swimlanes,
/// the split is visible as two devices working at once rather than a
/// serial tail.
pub fn chrome_trace_json_hetero(clusters: &[Vec<Profiler>], cpu: &Profiler) -> String {
    let mut groups: Vec<(String, Vec<&Profiler>)> = clusters
        .iter()
        .enumerate()
        .map(|(i, ps)| (format!("ftimm cluster {i}"), ps.iter().collect()))
        .collect();
    groups.push(("ftimm cpu lane".to_string(), vec![cpu]));
    chrome_trace_json_clusters(&groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspsim::Span;

    fn sample_profile() -> PhaseProfile {
        let mut p = Profiler::enabled(64);
        p.record(Span {
            phase: Phase::DmaLoad,
            core: 0,
            t0: 0.0,
            t1: 2e-6,
        });
        p.record(Span {
            phase: Phase::Compute,
            core: 1,
            t0: 1e-6,
            t1: 3e-6,
        });
        p.event(EventKind::Retry, Some(1), 2.5e-6);
        let mut prof = p.aggregate();
        prof.roofline_gflops = 345.6;
        prof.achieved_gflops = 123.456789;
        prof.phase_s[Phase::Plan.index()] = 4.2e-5;
        prof.plan_hits = 7;
        prof.plan_misses = 2;
        prof.plan_evictions = 1;
        prof.catalog_hits = 3;
        prof.catalog_misses = 1;
        prof
    }

    #[test]
    fn profile_json_round_trips_exactly() {
        let prof = sample_profile();
        let text = profile_json(&prof);
        let back = profile_from_json(&text).unwrap();
        assert_eq!(back, prof);
    }

    #[test]
    fn bad_profile_documents_fail_loudly() {
        let prof = sample_profile();
        let good = profile_json(&prof);
        for (text, needle) in [
            (good.replace("total_s", "tolal_s"), "unknown profile key"),
            (good.replace("dma_load", "dma_lode"), "unknown phase"),
            (
                good.replace(PROFILE_SCHEMA, "ftimm-profile-v9"),
                "unsupported profile schema",
            ),
            ("{}".to_string(), "missing \"schema\""),
        ] {
            let err = profile_from_json(&text).unwrap_err();
            assert!(err.contains(needle), "wanted {needle:?}, got {err:?}");
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_named_tracks() {
        let mut p = Profiler::enabled(64);
        p.record(Span {
            phase: Phase::Compute,
            core: 2,
            t0: 0.0,
            t1: 1e-6,
        });
        p.record(Span {
            phase: Phase::DmaStore,
            core: 2,
            t0: 1e-6,
            t1: 2e-6,
        });
        p.event(EventKind::DmaTimeout, Some(2), 1.5e-6);
        let text = chrome_trace_json(&p);
        let v = Parser::new(&text).parse().unwrap();
        let events = v.get("traceEvents").unwrap().as_arr("traceEvents").unwrap();
        // process_name + two thread_names + two spans + one instant.
        assert_eq!(events.len(), 6);
        let phases: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").is_some())
            .map(|e| e.get("ph").unwrap().as_str("ph").unwrap())
            .collect();
        assert_eq!(phases, ["M", "M", "M", "X", "X", "i"]);
        // Compute rides the even track, the store its odd DMA sibling.
        assert_eq!(events[3].get("tid").unwrap().as_u64("tid").unwrap(), 4);
        assert_eq!(events[4].get("tid").unwrap().as_u64("tid").unwrap(), 5);
        let dur = events[3].get("dur").unwrap().as_f64("dur").unwrap();
        assert!((dur - 1.0).abs() < 1e-9, "1 µs span, got {dur}");
    }

    #[test]
    fn hetero_trace_names_cluster_and_cpu_lane_processes() {
        let mut cl = Profiler::enabled(8);
        cl.record(Span {
            phase: Phase::Compute,
            core: 0,
            t0: 0.0,
            t1: 2e-6,
        });
        let mut cpu = Profiler::enabled(8);
        // The co-executed CPU lane is busy from t = 0 on its own clock.
        cpu.record(Span {
            phase: Phase::Compute,
            core: 0,
            t0: 0.0,
            t1: 3e-6,
        });
        let text = chrome_trace_json_hetero(&[vec![cl]], &cpu);
        assert!(text.contains("ftimm cluster 0"), "{text}");
        assert!(text.contains("ftimm cpu lane"), "{text}");
        let v = Parser::new(&text).parse().unwrap();
        let events = v.get("traceEvents").unwrap().as_arr("traceEvents").unwrap();
        // The CPU lane's span starts at ts 0 under its own pid (1).
        let cpu_span = events
            .iter()
            .find(|e| {
                e.get("pid").and_then(|p| p.as_u64("pid").ok()) == Some(1)
                    && e.get("ph").and_then(|p| p.as_str("ph").ok()) == Some("X")
            })
            .expect("cpu lane span present");
        let ts = cpu_span.get("ts").unwrap().as_f64("ts").unwrap();
        assert_eq!(ts, 0.0);
    }

    #[test]
    fn plan_spans_render_on_a_dedicated_planner_track() {
        let mut p = Profiler::enabled(64);
        p.record(Span {
            phase: Phase::Plan,
            core: 0,
            t0: 0.0,
            t1: 5e-7,
        });
        let text = chrome_trace_json(&p);
        let v = Parser::new(&text).parse().unwrap();
        let events = v.get("traceEvents").unwrap().as_arr("traceEvents").unwrap();
        // process_name + planner thread_name + the span itself.
        assert_eq!(events.len(), 3);
        let name = events[1]
            .get("args")
            .unwrap()
            .get("name")
            .unwrap()
            .as_str("name")
            .unwrap();
        assert_eq!(name, "planner");
        let tid = events[2].get("tid").unwrap().as_u64("tid").unwrap();
        assert_eq!(tid as usize, PLANNER_TID);
    }

    #[test]
    fn tune_spans_render_on_a_dedicated_tuner_track() {
        let mut p = Profiler::enabled(64);
        p.record(Span {
            phase: Phase::Tune,
            core: 0,
            t0: 0.0,
            t1: 2e-6,
        });
        let text = chrome_trace_json(&p);
        let v = Parser::new(&text).parse().unwrap();
        let events = v.get("traceEvents").unwrap().as_arr("traceEvents").unwrap();
        // process_name + tuner thread_name + the span itself.
        assert_eq!(events.len(), 3);
        let name = events[1]
            .get("args")
            .unwrap()
            .get("name")
            .unwrap()
            .as_str("name")
            .unwrap();
        assert_eq!(name, "tuner");
        let tid = events[2].get("tid").unwrap().as_u64("tid").unwrap();
        assert_eq!(tid as usize, TUNER_TID);
    }

    #[test]
    fn multi_cluster_trace_gets_one_pid_per_cluster() {
        let mut p0 = Profiler::enabled(16);
        p0.record(Span {
            phase: Phase::Compute,
            core: 0,
            t0: 0.0,
            t1: 1e-6,
        });
        let mut p1a = Profiler::enabled(16);
        p1a.record(Span {
            phase: Phase::Compute,
            core: 1,
            t0: 0.0,
            t1: 2e-6,
        });
        let mut p1b = Profiler::enabled(16);
        p1b.event(EventKind::ClusterFailed, None, 3e-6);
        let text = chrome_trace_json_clusters(&[
            ("cluster 0".to_string(), vec![&p0]),
            ("cluster 1".to_string(), vec![&p1a, &p1b]),
        ]);
        let v = Parser::new(&text).parse().unwrap();
        let events = v.get("traceEvents").unwrap().as_arr("traceEvents").unwrap();
        let pids: Vec<u64> = events
            .iter()
            .map(|e| e.get("pid").unwrap().as_u64("pid").unwrap())
            .collect();
        // Cluster 0: process_name + thread_name + span.  Cluster 1:
        // process_name + two thread_names + span + instant.
        assert_eq!(pids, [0, 0, 0, 1, 1, 1, 1, 1]);
        let labels: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").unwrap().as_str("name") == Ok("process_name"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str("name")
                    .unwrap()
            })
            .collect();
        assert_eq!(labels, ["cluster 0", "cluster 1"]);
        assert!(text.contains("cluster_failed"));
    }
}
