//! The unified execution layer every GEMM entry point routes through.
//!
//! Before this layer existed, [`crate::FtImm`]'s plain and resilient
//! entry points, the job engine and the batch API each carried their own
//! copy of the validate → plan → watchdog → run sequence.  The
//! [`Executor`] owns that sequence once, layered as:
//!
//! 1. **validate** — shared problem validation ([`validate_problem`]);
//! 2. **plan** — resolve a [`Plan`] from the requested [`Strategy`]
//!    through the context's memoising plan cache and cost-model planner
//!    (or pin a pre-resolved strategy), which pulls generated
//!    micro-kernels through the shared [`kernelgen::KernelCache`];
//!    planning time is recorded as a [`dspsim::Phase::Plan`] span when
//!    profiling.  Tuned plans flow through the same path: an
//!    [`crate::FtImm::tune`] call (or a loaded plan catalog) installs
//!    its plan under the `Strategy::Auto` cache key, so the executor
//!    picks it up on the next dispatch with zero extra simulations
//!    (tuning time itself is a [`dspsim::Phase::Tune`] span, see
//!    [`crate::FtImm::tune_on`]);
//! 3. **guard** — arm the simulator watchdog for the caller's deadline
//!    and hung-DMA budget, on the simulated clock;
//! 4. **run** — drive the strategy runner directly, or through the
//!    resilience layer (ABFT verify, bounded retries, checkpointing,
//!    degradation) when a [`ResilienceConfig`] is attached;
//! 5. **report** — aggregate the recorded phase spans into a
//!    [`PhaseProfile`] (when profiling is on) and attach it to the
//!    [`RunReport`], together with the roofline prediction for the shape.
//!
//! Profiling reads the machine's clocks but never advances them, so a
//! profiled run is bit-exact with an unprofiled one (asserted by the
//! workspace `profiler` integration tests).

mod export;
mod profile;
mod validate;

pub use export::{
    chrome_trace_json, chrome_trace_json_clusters, chrome_trace_json_hetero, profile_from_json,
    profile_json,
};
pub use validate::{validate_batch_dims, validate_problem};

use crate::plan::Plan;
use crate::resilience::{run_resilient_full, ResilienceConfig};
use crate::{
    run_kpar, run_mpar, run_tgemm, ChosenStrategy, FtImm, FtimmError, GemmProblem, GemmShape,
    Strategy, TgemmParams,
};
use dspsim::{Machine, Phase, Profiler, RunReport, WatchdogConfig, DEFAULT_PROFILE_CAPACITY};

/// Knobs for one executor dispatch.  Built through the [`Executor`]'s
/// setter methods; the defaults reproduce a plain `Strategy::Auto` run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecOptions {
    /// Planning strategy (ignored when [`ExecOptions::plan`] is set).
    pub strategy: Strategy,
    /// Pre-resolved plan, skipping the planning layer.
    pub plan: Option<ChosenStrategy>,
    /// Cores requested (each runner clamps to the machine's map).
    pub cores: usize,
    /// Run through the resilience layer with this configuration.
    pub resilience: Option<ResilienceConfig>,
    /// Watchdog deadline in simulated seconds from dispatch.
    pub deadline_s: Option<f64>,
    /// Watchdog hung-DMA budget in simulated seconds (armed only when
    /// finite or a deadline is set).
    pub dma_budget_s: f64,
    /// Record phase spans and attach a [`PhaseProfile`] to the report.
    pub profile: bool,
    /// Span-ring capacity used when profiling.
    pub profile_capacity: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            strategy: Strategy::Auto,
            plan: None,
            cores: 8,
            resilience: None,
            deadline_s: None,
            dma_budget_s: f64::INFINITY,
            profile: false,
            profile_capacity: DEFAULT_PROFILE_CAPACITY,
        }
    }
}

/// Outcome of one [`Executor::dispatch`]: the run result plus the
/// recovery progress and raw profiler the higher layers need even when
/// the run fails mid-flight.
#[derive(Debug)]
pub struct ExecRun {
    /// The run report, or the terminal error of a run that started.
    pub result: Result<RunReport, FtimmError>,
    /// The plan the executor resolved (or, for a pre-resolved strategy,
    /// pinned).
    pub plan: Plan,
    /// `C` rows verified before the run ended (resilient runs; a plain
    /// successful run counts every row).
    pub rows_verified: usize,
    /// The problem's M dimension.
    pub rows_total: usize,
    /// Physical cores implicated in transient faults, in occurrence
    /// order (resilient runs; circuit breakers feed on this).
    pub fault_cores: Vec<usize>,
    /// The raw span/event recording when profiling was on — kept even
    /// for failed runs so traces of faulty runs can be exported.
    pub profiler: Option<Profiler>,
}

impl ExecRun {
    /// The run report, discarding the progress bookkeeping.
    pub fn into_result(self) -> Result<RunReport, FtimmError> {
        self.result
    }
}

/// One configured dispatch pipeline over an [`FtImm`] context.  Cheap to
/// build per call; see the module docs for the layering.
#[derive(Clone, Copy)]
pub struct Executor<'a> {
    ft: &'a FtImm,
    opts: ExecOptions,
}

impl<'a> Executor<'a> {
    /// An executor with default options (plain `Strategy::Auto` run).
    pub fn new(ft: &'a FtImm) -> Self {
        Executor {
            ft,
            opts: ExecOptions::default(),
        }
    }

    /// The options this executor will dispatch with.
    pub fn opts(&self) -> &ExecOptions {
        &self.opts
    }

    /// Set the planning strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.opts.strategy = strategy;
        self
    }

    /// Use a pre-resolved plan, skipping the planning layer.
    pub fn with_plan(mut self, plan: ChosenStrategy) -> Self {
        self.opts.plan = Some(plan);
        self
    }

    /// Set the requested core count.
    pub fn cores(mut self, cores: usize) -> Self {
        self.opts.cores = cores;
        self
    }

    /// Run through the resilience layer.
    pub fn resilient(mut self, rcfg: ResilienceConfig) -> Self {
        self.opts.resilience = Some(rcfg);
        self
    }

    /// Arm a watchdog deadline (simulated seconds from dispatch); `None`
    /// leaves the deadline off.
    pub fn with_deadline(mut self, deadline_s: Option<f64>) -> Self {
        self.opts.deadline_s = deadline_s;
        self
    }

    /// Set the watchdog hung-DMA budget.
    pub fn dma_budget(mut self, budget_s: f64) -> Self {
        self.opts.dma_budget_s = budget_s;
        self
    }

    /// Record phase spans and attach a [`dspsim::PhaseProfile`] to the
    /// report.
    pub fn profiled(mut self) -> Self {
        self.opts.profile = true;
        self
    }

    /// Span-ring capacity for profiled runs.
    pub fn profile_capacity(mut self, capacity: usize) -> Self {
        self.opts.profile_capacity = capacity;
        self
    }

    /// Validate and dispatch.  `Err` means the problem was rejected
    /// before anything ran; an error of a run that *started* is carried
    /// inside [`ExecRun::result`] together with its progress.
    pub fn dispatch(&self, m: &mut Machine, p: &GemmProblem) -> Result<ExecRun, FtimmError> {
        validate_problem(p)?;
        Ok(self.dispatch_unchecked(m, p))
    }

    /// Dispatch then flatten to the run report (the shape of the classic
    /// [`FtImm::run_plan`]-style entry points).
    pub fn run(&self, m: &mut Machine, p: &GemmProblem) -> Result<RunReport, FtimmError> {
        self.dispatch(m, p).and_then(ExecRun::into_result)
    }

    /// The pipeline after validation: guard → plan → run → report.
    fn dispatch_unchecked(&self, m: &mut Machine, p: &GemmProblem) -> ExecRun {
        if self.opts.profile {
            m.profile_begin(self.opts.profile_capacity);
        }
        // Arm the watchdog for the caller's budget on the simulated
        // clock.  Planning below evaluates candidates on separate
        // machines, so the guard covers exactly the run.
        let armed = self.opts.deadline_s.is_some() || self.opts.dma_budget_s.is_finite();
        if armed {
            let deadline = self
                .opts
                .deadline_s
                .map_or(f64::INFINITY, |d| m.elapsed() + d);
            m.arm_watchdog(WatchdogConfig {
                deadline_s: deadline,
                dma_budget_s: self.opts.dma_budget_s,
            });
        }

        let shape = GemmShape::new(p.m(), p.n(), p.k());
        let plan_t0 = std::time::Instant::now();
        let plan = match self.opts.plan {
            Some(strategy) => Plan::pinned(shape, self.opts.cores, strategy),
            None => self
                .ft
                .plan_full(&shape, self.opts.strategy, self.opts.cores),
        };
        if self.opts.profile {
            // Host wall-clock planning time, anchored at the current
            // simulated instant.  `Phase::Plan` spans are excluded from
            // the profile's busy/window accounting, so recording one
            // keeps a profiled run bit-exact with an unprofiled one.
            let dt = plan_t0.elapsed().as_secs_f64();
            let now = m.elapsed();
            m.record_span(0, Phase::Plan, now, now + dt);
        }

        let (result, rows_verified, rows_total, fault_cores) = match &self.opts.resilience {
            None => {
                let r = run_resolved(self.ft, m, p, &plan.strategy, self.opts.cores);
                let verified = if r.is_ok() { p.m() } else { 0 };
                (r, verified, p.m(), Vec::new())
            }
            Some(rcfg) => {
                let run = run_resilient_full(self.ft, m, p, &plan.strategy, self.opts.cores, rcfg);
                (
                    run.result,
                    run.rows_verified,
                    run.rows_total,
                    run.fault_cores,
                )
            }
        };

        if armed {
            m.disarm_watchdog();
        }
        let profiler = self.opts.profile.then(|| m.profile_end());
        let result = result.map(|mut rep| {
            if let Some(pr) = &profiler {
                rep.profile = Some(profile::finish(self.ft, &shape, pr, &rep));
            }
            rep
        });
        ExecRun {
            result,
            plan,
            rows_verified,
            rows_total,
            fault_cores,
            profiler,
        }
    }
}

/// Drive the strategy runner a resolved plan names.  The single place
/// the plan → runner fan-out lives.
pub(crate) fn run_resolved(
    ft: &FtImm,
    m: &mut Machine,
    p: &GemmProblem,
    plan: &ChosenStrategy,
    cores: usize,
) -> Result<RunReport, FtimmError> {
    match plan {
        ChosenStrategy::MPar(bl) => run_mpar(m, ft.executor(), p, bl, cores),
        ChosenStrategy::KPar(bl) => run_kpar(m, ft.executor(), p, bl, cores),
        ChosenStrategy::TGemm => run_tgemm(m, ft.executor(), p, &TgemmParams::default(), cores),
    }
}
