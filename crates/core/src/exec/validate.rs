//! Shared problem-level validation: the one place every entry point's
//! admission checks live.

use crate::{FtimmError, GemmProblem};

/// Validate a staged GEMM problem (dimension agreement between `A`, `B`
/// and `C`), lifting the matrix-level diagnostic into [`FtimmError`].
pub fn validate_problem(p: &GemmProblem) -> Result<(), FtimmError> {
    p.validate().map_err(FtimmError::Invalid)
}

/// Validate the dimensions of a batched small-GEMM descriptor: every
/// dimension positive and the output width within the irregular-GEMM
/// micro-kernel limit.
pub fn validate_batch_dims(
    count: usize,
    rows: usize,
    inner: usize,
    cols: usize,
) -> Result<(), FtimmError> {
    if count == 0 || rows == 0 || inner == 0 || cols == 0 {
        return Err(FtimmError::Invalid("empty batch dimension".into()));
    }
    if cols > kernelgen::MAX_NA {
        return Err(FtimmError::Invalid(format!(
            "batch cols {cols} exceed the irregular-GEMM limit {}",
            kernelgen::MAX_NA
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspsim::{ExecMode, Machine};

    #[test]
    fn problem_validation_reports_shape_mismatches() {
        let mut m = Machine::with_mode(ExecMode::Fast);
        let p = GemmProblem::alloc(&mut m, 8, 8, 8).unwrap();
        assert!(validate_problem(&p).is_ok());
        let bad = GemmProblem {
            a: p.a,
            b: p.b,
            c: p.c.view(0, 0, 4, 4),
        };
        assert!(matches!(
            validate_problem(&bad),
            Err(FtimmError::Invalid(_))
        ));
    }

    #[test]
    fn batch_dims_are_gated() {
        assert!(validate_batch_dims(1, 1, 1, 1).is_ok());
        assert!(validate_batch_dims(0, 1, 1, 1).is_err());
        assert!(validate_batch_dims(1, 1, 1, kernelgen::MAX_NA).is_ok());
        assert!(validate_batch_dims(1, 1, 1, kernelgen::MAX_NA + 1).is_err());
    }
}
