//! Multi-device plans: one GEMM split into M-stripe shards across a set
//! of independent clusters.
//!
//! FT-m7032 carries four GPDSP clusters, each with a private DDR
//! partition (§II of the paper), so the natural cross-device split is
//! data-parallel over M: every cluster runs the *same* resolved
//! [`ChosenStrategy`](crate::ChosenStrategy) on a contiguous stripe of C
//! rows.
//!
//! **Bitwise identity and the checkpoint grid.**  A row's f32
//! accumulation order is *not* independent of the rows around it: the
//! micro-kernel's `k_u`-way accumulator split is chosen per
//! `KernelSpec`, and a row's spec height depends on where the row falls
//! in the strategy's local M-blocking.  Re-anchoring that blocking —
//! which both sharding and checkpointed execution do (the resilience
//! layer runs every `ckpt_rows` span as an independent sub-run of the
//! pinned plan, see [`crate::resilience`]) — can therefore flip low
//! bits.  The sharded engine always executes shards through that
//! checkpointed path, so the invariant this module maintains is:
//! *shard boundaries land on multiples of `grain_rows` (the engine's
//! `ckpt_rows`)*.  The global span partition is then identical to a
//! single-cluster checkpointed run of the same plan, every span is a
//! deterministic sub-run, and the merged result — with or without
//! failover, whose salvage points sit on the same grid — is bitwise
//! identical to that single-cluster run.  `grain_rows == 0` disables
//! checkpointing and hence the grid, so the plan degenerates to a
//! single shard.
//!
//! Planning is two-staged and fully cached:
//!
//! 1. The full shape is planned once through [`crate::FtImm::plan_full`],
//!    which memoises in the shared LRU [`super::PlanCache`]; the
//!    resolved strategy is then *pinned* for every shard (replanning a
//!    shard's smaller sub-shape could choose different blocks and break
//!    bitwise identity between sharded and single-cluster runs).
//! 2. The shard count is chosen by the same analytic cost model the
//!    planner uses ([`super::analytic_seconds`]): a divisor search over
//!    `1..=clusters` minimising per-shard time plus the serialised host
//!    dispatch cost ([`crate::grid::LAUNCH_OVERHEAD_S`] per launch), the
//!    work-group tradeoff from the DPU partitioner exemplar.  The search
//!    is a pure O(clusters) function of the cached plan, so it needs no
//!    memo of its own.
//!
//! Because stage 1 goes through `plan_full`, sharded planning inherits
//! tuned plans transparently: a catalog-preloaded or
//! [`crate::FtImm::tune`]-installed plan under the `Strategy::Auto` key
//! is what gets pinned across every shard — and since the tuner only
//! adopts [`super::tune::BitSignature`]-equal variants, the sharded
//! bitwise-identity argument above is unaffected by tuning.

use crate::backend::predict_cpu_stripe;
use crate::grid::LAUNCH_OVERHEAD_S;
use crate::plan::Plan;
use crate::{FtImm, GemmShape, Strategy};
use cpublas::CpuConfig;
use dspsim::BackendKind;

/// How a shard came to exist: placed by the cost-model planner up
/// front, or built by the sharded engine while recovering from a fault.
/// Accounting differs — planned CPU shards overlap the cluster
/// timeline (co-execution), failover CPU shards serialise after it (the
/// host only learned of the work when a cluster died).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardOrigin {
    /// Emitted by [`plan_sharded`]/[`plan_coexec`] before the job ran.
    Planned,
    /// Built by the engine's failover paths (reroute, salvage, spill).
    Failover,
}

/// One contiguous M-stripe of a sharded GEMM, assigned to a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Index of the cluster (in the caller's pool) that runs the stripe.
    /// Meaningless when `backend` is [`BackendKind::Cpu`] (the sharded
    /// engine uses [`crate::cluster::CPU_LANE`]).
    pub cluster: usize,
    /// First C row of the stripe (inclusive).
    pub r0: usize,
    /// One past the last C row of the stripe.
    pub r1: usize,
    /// Device the stripe is placed on.  [`plan_sharded`] only emits
    /// [`BackendKind::Dsp`] shards; [`plan_coexec`] may add a planned
    /// CPU tail, and the sharded engine builds further CPU shards when
    /// spill policy routes work to the host lane.
    pub backend: BackendKind,
    /// Whether the shard was planned up front or built during failover.
    pub origin: ShardOrigin,
}

impl Shard {
    /// Rows in the stripe.
    pub fn rows(&self) -> usize {
        self.r1 - self.r0
    }
}

/// A multi-device plan: the pinned full-shape [`Plan`] plus the M-stripe
/// shard assignment the cost model chose.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedPlan {
    /// The full-shape plan every shard pins (LRU-cached via
    /// [`crate::FtImm::plan_full`]).
    pub plan: Plan,
    /// Contiguous M-stripes, one per participating cluster, covering
    /// `[0, m)` exactly.
    pub shards: Vec<Shard>,
    /// Cost-model estimate of the sharded run: slowest shard plus the
    /// serialised launch overhead.
    pub predicted_s: f64,
}

impl ShardedPlan {
    /// Number of clusters the plan actually uses.
    pub fn clusters_used(&self) -> usize {
        self.shards.len()
    }
}

/// Plan one GEMM across `placement` (an ordered list of usable cluster
/// indices, best first).  The full shape is planned through the LRU plan
/// cache; the shard count is the divisor minimising the analytic
/// per-shard time plus `LAUNCH_OVERHEAD_S` per launch.  Every shard
/// boundary is a multiple of `grain_rows` — the caller's checkpoint
/// span (`ckpt_rows`) — so the sharded span partition matches a
/// single-cluster checkpointed run bit-for-bit (see the module docs);
/// `grain_rows == 0` means no checkpoint grid and forces a single
/// shard.  Panics if `placement` is empty (the caller decides what an
/// empty pool means).
pub fn plan_sharded(
    ft: &FtImm,
    shape: &GemmShape,
    strategy: Strategy,
    cores: usize,
    placement: &[usize],
    grain_rows: usize,
) -> ShardedPlan {
    assert!(!placement.is_empty(), "plan_sharded needs ≥ 1 cluster");
    let plan = ft.plan_full(shape, strategy, cores);
    let g = grain(shape, grain_rows);
    // Whole grains of rows; the last grain may be short.
    let units = shape.m.div_ceil(g).max(1);
    let (best_d, best_t) =
        best_dsp_divisor(ft, shape, &plan, cores, placement.len(), units, g, shape.m);
    let shards = build_dsp_shards(placement, best_d, units, g, shape.m);
    ShardedPlan {
        plan,
        shards,
        predicted_s: best_t,
    }
}

/// The outcome of the co-execution split search: how many M-tail rows
/// the CPU lane should take, and the three predicted makespans the
/// decision was made from.  `cpu_rows == 0` is the degenerate all-DSP
/// pick, `cpu_rows == m` the all-CPU one — the Fig. 7 crossover as a
/// planner decision rather than a chart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoexecChoice {
    /// Rows of the M tail placed on the CPU lane (a multiple of the
    /// checkpoint grain away from `m`, or `0`/`m` exactly).
    pub cpu_rows: usize,
    /// Predicted makespan of the chosen split, seconds.
    pub predicted_s: f64,
    /// Predicted makespan of the best all-DSP plan (identical to
    /// [`plan_sharded`]'s `predicted_s` for the same inputs).
    pub dsp_only_s: f64,
    /// Predicted makespan of running the whole GEMM on the CPU lane.
    pub cpu_only_s: f64,
}

/// Choose how many M-tail rows to co-execute on the CPU lane.
///
/// Both backend models are consulted — the planner's analytic DSP model
/// through the pinned full-shape plan, and the CPU model through
/// [`predict_cpu_stripe`] (scaled by the lane's health `cpu_slowdown`).
/// The split is searched on a bounded fraction grid (≤ 33 candidates)
/// over the checkpoint-grain units, each candidate costed as
/// `max(DSP side with its own divisor search, CPU side)` — launches are
/// charged per device since the lanes run concurrently.  The degenerate
/// all-DSP and all-CPU candidates are always in the grid and ties keep
/// the DSP-heavier split, so the choice is deterministic and never
/// predicted slower than the best single-backend plan.
///
/// `grain_rows == 0` disables the checkpoint grid, so only the
/// degenerate picks are available (a mid-M split would break bitwise
/// identity without span re-anchoring).
#[allow(clippy::too_many_arguments)]
pub fn choose_coexec_split(
    ft: &FtImm,
    shape: &GemmShape,
    strategy: Strategy,
    cores: usize,
    clusters: usize,
    grain_rows: usize,
    cpu: &CpuConfig,
    cpu_slowdown: f64,
) -> CoexecChoice {
    assert!(clusters >= 1, "choose_coexec_split needs ≥ 1 cluster");
    let plan = ft.plan_full(shape, strategy, cores);
    let g = grain(shape, grain_rows);
    let units = shape.m.div_ceil(g).max(1);
    // Bounded fraction grid: O(1) in M, endpoints always included.
    let steps = units.min(COEXEC_SPLIT_STEPS);
    let mut dsp_only_s = f64::INFINITY;
    let mut cpu_only_s = f64::INFINITY;
    let (mut best_rows, mut best_t) = (0usize, f64::INFINITY);
    let mut last = None;
    for i in 0..=steps {
        let cpu_units = units * i / steps;
        if last == Some(cpu_units) {
            continue;
        }
        last = Some(cpu_units);
        let (_, t) = eval_split(
            ft,
            shape,
            &plan,
            cores,
            clusters,
            units,
            g,
            cpu_units,
            cpu,
            cpu_slowdown,
        );
        if cpu_units == 0 {
            dsp_only_s = t;
        }
        if cpu_units == units {
            cpu_only_s = t;
        }
        if t < best_t {
            (best_rows, best_t) = (cpu_rows_for(shape, units, g, cpu_units), t);
        }
    }
    CoexecChoice {
        cpu_rows: best_rows,
        predicted_s: best_t,
        dsp_only_s,
        cpu_only_s,
    }
}

/// Plan one GEMM across `placement` *and* the CPU lane: like
/// [`plan_sharded`], but the M tail chosen by [`choose_coexec_split`]
/// (or pinned by a tuned plan's [`Plan::coexec_cpu_rows`] hint, when it
/// sits on the checkpoint grid) is emitted as one
/// [`BackendKind::Cpu`] shard with [`ShardOrigin::Planned`].  The CPU
/// stripe executes through the host mirror on the same grid, so the
/// merged C keeps the module's bitwise-identity contract.  Degenerate
/// choices collapse to an ordinary DSP-only plan or a single CPU shard.
#[allow(clippy::too_many_arguments)]
pub fn plan_coexec(
    ft: &FtImm,
    shape: &GemmShape,
    strategy: Strategy,
    cores: usize,
    placement: &[usize],
    grain_rows: usize,
    cpu: &CpuConfig,
    cpu_slowdown: f64,
) -> ShardedPlan {
    assert!(!placement.is_empty(), "plan_coexec needs ≥ 1 cluster");
    let plan = ft.plan_full(shape, strategy, cores);
    let g = grain(shape, grain_rows);
    let units = shape.m.div_ceil(g).max(1);
    // A tuned plan pins its split; anything off the grid (e.g. a hint
    // tuned under a different ckpt_rows) falls back to the live search.
    let hint = plan.coexec_cpu_rows;
    let hint_valid =
        hint == 0 || hint == shape.m || (hint < shape.m && (shape.m - hint).is_multiple_of(g));
    let cpu_rows = if hint_valid && hint != 0 {
        hint
    } else if hint_valid && hint == 0 && plan.origin == super::PlanOrigin::Tuned {
        // A tuned plan that says "no CPU tail" is also a pinned answer.
        0
    } else {
        choose_coexec_split(
            ft,
            shape,
            strategy,
            cores,
            placement.len(),
            grain_rows,
            cpu,
            cpu_slowdown,
        )
        .cpu_rows
    };
    if cpu_rows == 0 {
        return plan_sharded(ft, shape, strategy, cores, placement, grain_rows);
    }
    let dsp_units = (shape.m - cpu_rows) / g;
    debug_assert_eq!(dsp_units * g, shape.m - cpu_rows);
    let cpu_units = units - dsp_units;
    let (best_d, predicted_s) = eval_split(
        ft,
        shape,
        &plan,
        cores,
        placement.len(),
        units,
        g,
        cpu_units,
        cpu,
        cpu_slowdown,
    );
    let b = shape.m - cpu_rows;
    let mut shards = if dsp_units == 0 {
        Vec::new()
    } else {
        build_dsp_shards(placement, best_d, dsp_units, g, b)
    };
    shards.push(Shard {
        cluster: crate::cluster::CPU_LANE,
        r0: b,
        r1: shape.m,
        backend: BackendKind::Cpu,
        origin: ShardOrigin::Planned,
    });
    ShardedPlan {
        plan,
        shards,
        predicted_s,
    }
}

/// Fraction-grid resolution of the split search (keeps the chooser
/// O(clusters × steps) even for M in the millions of rows).
const COEXEC_SPLIT_STEPS: usize = 32;

/// The checkpoint grain: no grid (`grain_rows == 0`) means one grain
/// spanning all of M.
fn grain(shape: &GemmShape, grain_rows: usize) -> usize {
    if grain_rows == 0 {
        shape.m.max(1)
    } else {
        grain_rows
    }
}

/// Rows of the M tail covered by the last `cpu_units` grains.
fn cpu_rows_for(shape: &GemmShape, units: usize, g: usize, cpu_units: usize) -> usize {
    if cpu_units == 0 {
        0
    } else {
        shape.m - (units - cpu_units) * g
    }
}

/// Cost one split candidate: the DSP side runs `units - cpu_units`
/// grains through its own divisor search, the CPU side runs the tail
/// through the shared CPU model; the lanes overlap, so the makespan is
/// the max.  Returns `(best DSP shard count, predicted seconds)`.
#[allow(clippy::too_many_arguments)]
fn eval_split(
    ft: &FtImm,
    shape: &GemmShape,
    plan: &Plan,
    cores: usize,
    clusters: usize,
    units: usize,
    g: usize,
    cpu_units: usize,
    cpu: &CpuConfig,
    cpu_slowdown: f64,
) -> (usize, f64) {
    let dsp_units = units - cpu_units;
    let cpu_rows = cpu_rows_for(shape, units, g, cpu_units);
    let cpu_t = if cpu_rows == 0 {
        0.0
    } else {
        predict_cpu_stripe(cpu, cpu_rows, shape.n, shape.k, cpu_slowdown).seconds
            + LAUNCH_OVERHEAD_S
    };
    if dsp_units == 0 {
        return (0, cpu_t);
    }
    let rows_total = shape.m - cpu_rows;
    let (best_d, dsp_t) =
        best_dsp_divisor(ft, shape, plan, cores, clusters, dsp_units, g, rows_total);
    (best_d, dsp_t.max(cpu_t))
}

/// The shard-count search shared by [`plan_sharded`] and the
/// co-execution planner: pick `d ≤ clusters` DSP shards for `units`
/// grains of `g` rows (covering `rows_total` rows in all), minimising
/// the analytic biggest-stripe time plus the serialised
/// `LAUNCH_OVERHEAD_S` per launch.
#[allow(clippy::too_many_arguments)]
fn best_dsp_divisor(
    ft: &FtImm,
    shape: &GemmShape,
    plan: &Plan,
    cores: usize,
    clusters: usize,
    units: usize,
    g: usize,
    rows_total: usize,
) -> (usize, f64) {
    let max_d = clusters.min(units);
    let (mut best_d, mut best_t) = (1usize, f64::INFINITY);
    for d in 1..=max_d {
        let rows = (units.div_ceil(d) * g).min(rows_total);
        let sub = GemmShape::new(rows, shape.n, shape.k);
        let t = analytic_shard_seconds(ft, &sub, plan, cores) + LAUNCH_OVERHEAD_S * d as f64;
        if t < best_t {
            (best_d, best_t) = (d, t);
        }
    }
    (best_d, best_t)
}

/// Distribute `units` grains over the first `d` placement entries as
/// contiguous DSP stripes covering `[0, rows_total)`, remainder grains
/// to the earliest shards.
fn build_dsp_shards(
    placement: &[usize],
    d: usize,
    units: usize,
    g: usize,
    rows_total: usize,
) -> Vec<Shard> {
    let (base, rem) = (units / d, units % d);
    let mut shards = Vec::with_capacity(d);
    let mut r0 = 0;
    for (i, &cluster) in placement.iter().take(d).enumerate() {
        let u = base + usize::from(i < rem);
        let r1 = (r0 + u * g).min(rows_total);
        shards.push(Shard {
            cluster,
            r0,
            r1,
            backend: BackendKind::Dsp,
            origin: ShardOrigin::Planned,
        });
        r0 = r1;
    }
    debug_assert_eq!(r0, rows_total);
    shards
}

fn analytic_shard_seconds(ft: &FtImm, sub: &GemmShape, plan: &Plan, cores: usize) -> f64 {
    super::analytic_seconds(ft.cache(), ft.cfg(), sub, &plan.strategy, cores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspsim::HwConfig;

    #[test]
    fn shards_tile_m_exactly_and_contiguously() {
        let ft = FtImm::new(HwConfig::default());
        let shape = GemmShape::new(4099, 32, 64);
        let sp = plan_sharded(&ft, &shape, Strategy::Auto, 8, &[2, 0, 3, 1], 8);
        assert_eq!(sp.shards[0].r0, 0);
        assert_eq!(sp.shards.last().unwrap().r1, shape.m);
        for w in sp.shards.windows(2) {
            assert_eq!(w[0].r1, w[1].r0);
        }
        // Shards land on the placement order, best cluster first.
        assert_eq!(sp.shards[0].cluster, 2);
        assert!(sp.predicted_s.is_finite());
    }

    #[test]
    fn big_type1_shapes_split_but_tiny_ones_do_not() {
        let ft = FtImm::new(HwConfig::default());
        let big = GemmShape::new(1 << 18, 32, 32);
        let sp = plan_sharded(&ft, &big, Strategy::Auto, 8, &[0, 1, 2, 3], 8);
        assert!(sp.clusters_used() > 1, "{:?}", sp.shards);
        // A tiny problem is not worth a second 50 µs launch.
        let tiny = GemmShape::new(16, 16, 16);
        let sp = plan_sharded(&ft, &tiny, Strategy::Auto, 8, &[0, 1, 2, 3], 8);
        assert_eq!(sp.clusters_used(), 1);
    }

    #[test]
    fn boundaries_sit_on_the_checkpoint_grid() {
        let ft = FtImm::new(HwConfig::default());
        // 4099 = 8 * 512 + 3: interior boundaries must be multiples of
        // the grain, only the final r1 may be off-grid.
        for grain in [1usize, 4, 8, 16, 33] {
            let shape = GemmShape::new(4099, 32, 64);
            let sp = plan_sharded(&ft, &shape, Strategy::Auto, 8, &[0, 1, 2, 3], grain);
            for s in &sp.shards[..sp.shards.len() - 1] {
                assert_eq!(s.r1 % grain, 0, "grain {grain}: boundary {}", s.r1);
                assert!(s.rows() > 0);
            }
            assert_eq!(sp.shards.last().unwrap().r1, shape.m);
        }
        // Grain 0 (checkpointing off) has no grid to align to, so the
        // plan must not split at all.
        let sp = plan_sharded(
            &ft,
            &GemmShape::new(1 << 18, 32, 32),
            Strategy::Auto,
            8,
            &[0, 1, 2, 3],
            0,
        );
        assert_eq!(sp.clusters_used(), 1);
    }

    #[test]
    fn shard_count_never_exceeds_rows() {
        let ft = FtImm::new(HwConfig::default());
        let shape = GemmShape::new(2, 8, 8);
        let sp = plan_sharded(&ft, &shape, Strategy::Auto, 8, &[0, 1, 2, 3], 8);
        assert!(sp.clusters_used() <= 2);
        assert_eq!(sp.shards.iter().map(Shard::rows).sum::<usize>(), 2);
    }

    #[test]
    fn coexec_dsp_only_leg_is_bit_equal_to_plan_sharded() {
        let ft = FtImm::new(HwConfig::default());
        // Table II type-2 regime: tiny M, the DSP wins outright and the
        // degenerate pick must price the all-DSP leg with exactly the
        // same arithmetic plan_sharded uses.
        let shape = GemmShape::new(32, 32, 8192);
        let cpu = CpuConfig::default();
        let choice = choose_coexec_split(&ft, &shape, Strategy::Auto, 8, 4, 64, &cpu, 1.0);
        let sp = plan_sharded(&ft, &shape, Strategy::Auto, 8, &[0, 1, 2, 3], 64);
        assert_eq!(choice.cpu_rows, 0);
        assert_eq!(choice.dsp_only_s.to_bits(), sp.predicted_s.to_bits());
        assert_eq!(choice.predicted_s.to_bits(), sp.predicted_s.to_bits());
        // And the co-exec planner collapses to the ordinary DSP plan.
        let cp = plan_coexec(&ft, &shape, Strategy::Auto, 8, &[0, 1, 2, 3], 64, &cpu, 1.0);
        assert_eq!(cp, sp);
    }

    #[test]
    fn mixed_split_tiles_m_with_a_grid_aligned_cpu_tail() {
        let ft = FtImm::new(HwConfig::default());
        // Table I type-1 regime: tall-skinny M is where co-execution
        // pays — the default CPU model takes a real tail here.
        let shape = GemmShape::new(8192, 32, 32);
        let cpu = CpuConfig::default();
        let choice = choose_coexec_split(&ft, &shape, Strategy::Auto, 8, 4, 64, &cpu, 1.0);
        assert!(
            choice.cpu_rows > 0 && choice.cpu_rows < shape.m,
            "expected a mixed split, got {choice:?}"
        );
        assert_eq!((shape.m - choice.cpu_rows) % 64, 0);
        assert!(choice.predicted_s <= choice.dsp_only_s);
        assert!(choice.predicted_s <= choice.cpu_only_s);
        let cp = plan_coexec(&ft, &shape, Strategy::Auto, 8, &[0, 1, 2, 3], 64, &cpu, 1.0);
        // Shards tile [0, m) contiguously with a single CPU tail.
        assert_eq!(cp.shards[0].r0, 0);
        for w in cp.shards.windows(2) {
            assert_eq!(w[0].r1, w[1].r0);
        }
        let tail = cp.shards.last().unwrap();
        assert_eq!(tail.r1, shape.m);
        assert_eq!(tail.backend, BackendKind::Cpu);
        assert_eq!(tail.cluster, crate::cluster::CPU_LANE);
        assert_eq!(tail.origin, ShardOrigin::Planned);
        assert_eq!(tail.rows(), choice.cpu_rows);
        for s in &cp.shards[..cp.shards.len() - 1] {
            assert_eq!(s.backend, BackendKind::Dsp);
            assert_eq!(s.origin, ShardOrigin::Planned);
        }
        assert_eq!(cp.predicted_s.to_bits(), choice.predicted_s.to_bits());
    }

    #[test]
    fn dominance_degenerates_to_a_single_backend() {
        let ft = FtImm::new(HwConfig::default());
        let shape = GemmShape::new(8192, 32, 32);
        // A crippled CPU lane never gets rows...
        let slow = choose_coexec_split(
            &ft,
            &shape,
            Strategy::Auto,
            8,
            4,
            64,
            &CpuConfig::default(),
            1e9,
        );
        assert_eq!(slow.cpu_rows, 0);
        // ...and a host that dwarfs the DSP takes the whole GEMM.
        let fast_cpu = CpuConfig {
            clock_hz: 2.2e12,
            ddr_bw: 42.6e12,
            barrier_s: 8e-9,
            ..CpuConfig::default()
        };
        let fast = choose_coexec_split(&ft, &shape, Strategy::Auto, 8, 4, 64, &fast_cpu, 1.0);
        assert_eq!(fast.cpu_rows, shape.m);
        assert_eq!(fast.predicted_s.to_bits(), fast.cpu_only_s.to_bits());
        let cp = plan_coexec(
            &ft,
            &shape,
            Strategy::Auto,
            8,
            &[0, 1, 2, 3],
            64,
            &fast_cpu,
            1.0,
        );
        assert_eq!(cp.shards.len(), 1);
        assert_eq!(cp.shards[0].backend, BackendKind::Cpu);
        assert_eq!(cp.shards[0].rows(), shape.m);
    }

    #[test]
    fn grain_zero_permits_only_degenerate_splits() {
        let ft = FtImm::new(HwConfig::default());
        // No checkpoint grid: a mid-M split would break bitwise
        // identity, so the chooser may only pick 0 or m.
        for cpu in [
            CpuConfig::default(),
            CpuConfig {
                clock_hz: 2.2e12,
                ddr_bw: 42.6e12,
                barrier_s: 8e-9,
                ..CpuConfig::default()
            },
        ] {
            let shape = GemmShape::new(8192, 32, 32);
            let c = choose_coexec_split(&ft, &shape, Strategy::Auto, 8, 4, 0, &cpu, 1.0);
            assert!(c.cpu_rows == 0 || c.cpu_rows == shape.m, "{c:?}");
        }
    }

    #[test]
    fn full_shape_plan_is_lru_cached() {
        let ft = FtImm::new(HwConfig::default());
        let shape = GemmShape::new(4096, 32, 64);
        let _ = plan_sharded(&ft, &shape, Strategy::Auto, 8, &[0, 1], 8);
        let misses = ft.plan_cache_stats().misses;
        let _ = plan_sharded(&ft, &shape, Strategy::Auto, 8, &[1, 0], 8);
        assert_eq!(ft.plan_cache_stats().misses, misses);
        assert!(ft.plan_cache_stats().hits >= 1);
    }
}
