//! Multi-device plans: one GEMM split into M-stripe shards across a set
//! of independent clusters.
//!
//! FT-m7032 carries four GPDSP clusters, each with a private DDR
//! partition (§II of the paper), so the natural cross-device split is
//! data-parallel over M: every cluster runs the *same* resolved
//! [`ChosenStrategy`](crate::ChosenStrategy) on a contiguous stripe of C
//! rows.
//!
//! **Bitwise identity and the checkpoint grid.**  A row's f32
//! accumulation order is *not* independent of the rows around it: the
//! micro-kernel's `k_u`-way accumulator split is chosen per
//! `KernelSpec`, and a row's spec height depends on where the row falls
//! in the strategy's local M-blocking.  Re-anchoring that blocking —
//! which both sharding and checkpointed execution do (the resilience
//! layer runs every `ckpt_rows` span as an independent sub-run of the
//! pinned plan, see [`crate::resilience`]) — can therefore flip low
//! bits.  The sharded engine always executes shards through that
//! checkpointed path, so the invariant this module maintains is:
//! *shard boundaries land on multiples of `grain_rows` (the engine's
//! `ckpt_rows`)*.  The global span partition is then identical to a
//! single-cluster checkpointed run of the same plan, every span is a
//! deterministic sub-run, and the merged result — with or without
//! failover, whose salvage points sit on the same grid — is bitwise
//! identical to that single-cluster run.  `grain_rows == 0` disables
//! checkpointing and hence the grid, so the plan degenerates to a
//! single shard.
//!
//! Planning is two-staged and fully cached:
//!
//! 1. The full shape is planned once through [`crate::FtImm::plan_full`],
//!    which memoises in the shared LRU [`super::PlanCache`]; the
//!    resolved strategy is then *pinned* for every shard (replanning a
//!    shard's smaller sub-shape could choose different blocks and break
//!    bitwise identity between sharded and single-cluster runs).
//! 2. The shard count is chosen by the same analytic cost model the
//!    planner uses ([`super::analytic_seconds`]): a divisor search over
//!    `1..=clusters` minimising per-shard time plus the serialised host
//!    dispatch cost ([`crate::grid::LAUNCH_OVERHEAD_S`] per launch), the
//!    work-group tradeoff from the DPU partitioner exemplar.  The search
//!    is a pure O(clusters) function of the cached plan, so it needs no
//!    memo of its own.
//!
//! Because stage 1 goes through `plan_full`, sharded planning inherits
//! tuned plans transparently: a catalog-preloaded or
//! [`crate::FtImm::tune`]-installed plan under the `Strategy::Auto` key
//! is what gets pinned across every shard — and since the tuner only
//! adopts [`super::tune::BitSignature`]-equal variants, the sharded
//! bitwise-identity argument above is unaffected by tuning.

use crate::grid::LAUNCH_OVERHEAD_S;
use crate::plan::Plan;
use crate::{FtImm, GemmShape, Strategy};
use dspsim::BackendKind;

/// One contiguous M-stripe of a sharded GEMM, assigned to a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Index of the cluster (in the caller's pool) that runs the stripe.
    /// Meaningless when `backend` is [`BackendKind::Cpu`] (the sharded
    /// engine uses [`crate::cluster::CPU_LANE`]).
    pub cluster: usize,
    /// First C row of the stripe (inclusive).
    pub r0: usize,
    /// One past the last C row of the stripe.
    pub r1: usize,
    /// Device the stripe is placed on.  The cost-model planner only
    /// emits [`BackendKind::Dsp`] shards; CPU shards are built by the
    /// sharded engine when spill policy routes work to the host lane.
    pub backend: BackendKind,
}

impl Shard {
    /// Rows in the stripe.
    pub fn rows(&self) -> usize {
        self.r1 - self.r0
    }
}

/// A multi-device plan: the pinned full-shape [`Plan`] plus the M-stripe
/// shard assignment the cost model chose.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedPlan {
    /// The full-shape plan every shard pins (LRU-cached via
    /// [`crate::FtImm::plan_full`]).
    pub plan: Plan,
    /// Contiguous M-stripes, one per participating cluster, covering
    /// `[0, m)` exactly.
    pub shards: Vec<Shard>,
    /// Cost-model estimate of the sharded run: slowest shard plus the
    /// serialised launch overhead.
    pub predicted_s: f64,
}

impl ShardedPlan {
    /// Number of clusters the plan actually uses.
    pub fn clusters_used(&self) -> usize {
        self.shards.len()
    }
}

/// Plan one GEMM across `placement` (an ordered list of usable cluster
/// indices, best first).  The full shape is planned through the LRU plan
/// cache; the shard count is the divisor minimising the analytic
/// per-shard time plus `LAUNCH_OVERHEAD_S` per launch.  Every shard
/// boundary is a multiple of `grain_rows` — the caller's checkpoint
/// span (`ckpt_rows`) — so the sharded span partition matches a
/// single-cluster checkpointed run bit-for-bit (see the module docs);
/// `grain_rows == 0` means no checkpoint grid and forces a single
/// shard.  Panics if `placement` is empty (the caller decides what an
/// empty pool means).
pub fn plan_sharded(
    ft: &FtImm,
    shape: &GemmShape,
    strategy: Strategy,
    cores: usize,
    placement: &[usize],
    grain_rows: usize,
) -> ShardedPlan {
    assert!(!placement.is_empty(), "plan_sharded needs ≥ 1 cluster");
    let plan = ft.plan_full(shape, strategy, cores);
    // No checkpoint grid (grain 0) ⇒ one grain spanning all of M.
    let g = if grain_rows == 0 {
        shape.m.max(1)
    } else {
        grain_rows
    };
    // Whole grains of rows; the last grain may be short.
    let units = shape.m.div_ceil(g).max(1);
    let max_d = placement.len().min(units);
    let (mut best_d, mut best_t) = (1usize, f64::INFINITY);
    for d in 1..=max_d {
        let rows = (units.div_ceil(d) * g).min(shape.m);
        let sub = GemmShape::new(rows, shape.n, shape.k);
        let t = analytic_shard_seconds(ft, &sub, &plan, cores) + LAUNCH_OVERHEAD_S * d as f64;
        if t < best_t {
            (best_d, best_t) = (d, t);
        }
    }
    let (base, rem) = (units / best_d, units % best_d);
    let mut shards = Vec::with_capacity(best_d);
    let mut r0 = 0;
    for (i, &cluster) in placement.iter().take(best_d).enumerate() {
        let u = base + usize::from(i < rem);
        let r1 = (r0 + u * g).min(shape.m);
        shards.push(Shard {
            cluster,
            r0,
            r1,
            backend: BackendKind::Dsp,
        });
        r0 = r1;
    }
    debug_assert_eq!(r0, shape.m);
    ShardedPlan {
        plan,
        shards,
        predicted_s: best_t,
    }
}

fn analytic_shard_seconds(ft: &FtImm, sub: &GemmShape, plan: &Plan, cores: usize) -> f64 {
    super::analytic_seconds(ft.cache(), ft.cfg(), sub, &plan.strategy, cores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspsim::HwConfig;

    #[test]
    fn shards_tile_m_exactly_and_contiguously() {
        let ft = FtImm::new(HwConfig::default());
        let shape = GemmShape::new(4099, 32, 64);
        let sp = plan_sharded(&ft, &shape, Strategy::Auto, 8, &[2, 0, 3, 1], 8);
        assert_eq!(sp.shards[0].r0, 0);
        assert_eq!(sp.shards.last().unwrap().r1, shape.m);
        for w in sp.shards.windows(2) {
            assert_eq!(w[0].r1, w[1].r0);
        }
        // Shards land on the placement order, best cluster first.
        assert_eq!(sp.shards[0].cluster, 2);
        assert!(sp.predicted_s.is_finite());
    }

    #[test]
    fn big_type1_shapes_split_but_tiny_ones_do_not() {
        let ft = FtImm::new(HwConfig::default());
        let big = GemmShape::new(1 << 18, 32, 32);
        let sp = plan_sharded(&ft, &big, Strategy::Auto, 8, &[0, 1, 2, 3], 8);
        assert!(sp.clusters_used() > 1, "{:?}", sp.shards);
        // A tiny problem is not worth a second 50 µs launch.
        let tiny = GemmShape::new(16, 16, 16);
        let sp = plan_sharded(&ft, &tiny, Strategy::Auto, 8, &[0, 1, 2, 3], 8);
        assert_eq!(sp.clusters_used(), 1);
    }

    #[test]
    fn boundaries_sit_on_the_checkpoint_grid() {
        let ft = FtImm::new(HwConfig::default());
        // 4099 = 8 * 512 + 3: interior boundaries must be multiples of
        // the grain, only the final r1 may be off-grid.
        for grain in [1usize, 4, 8, 16, 33] {
            let shape = GemmShape::new(4099, 32, 64);
            let sp = plan_sharded(&ft, &shape, Strategy::Auto, 8, &[0, 1, 2, 3], grain);
            for s in &sp.shards[..sp.shards.len() - 1] {
                assert_eq!(s.r1 % grain, 0, "grain {grain}: boundary {}", s.r1);
                assert!(s.rows() > 0);
            }
            assert_eq!(sp.shards.last().unwrap().r1, shape.m);
        }
        // Grain 0 (checkpointing off) has no grid to align to, so the
        // plan must not split at all.
        let sp = plan_sharded(
            &ft,
            &GemmShape::new(1 << 18, 32, 32),
            Strategy::Auto,
            8,
            &[0, 1, 2, 3],
            0,
        );
        assert_eq!(sp.clusters_used(), 1);
    }

    #[test]
    fn shard_count_never_exceeds_rows() {
        let ft = FtImm::new(HwConfig::default());
        let shape = GemmShape::new(2, 8, 8);
        let sp = plan_sharded(&ft, &shape, Strategy::Auto, 8, &[0, 1, 2, 3], 8);
        assert!(sp.clusters_used() <= 2);
        assert_eq!(sp.shards.iter().map(Shard::rows).sum::<usize>(), 2);
    }

    #[test]
    fn full_shape_plan_is_lru_cached() {
        let ft = FtImm::new(HwConfig::default());
        let shape = GemmShape::new(4096, 32, 64);
        let _ = plan_sharded(&ft, &shape, Strategy::Auto, 8, &[0, 1], 8);
        let misses = ft.plan_cache_stats().misses;
        let _ = plan_sharded(&ft, &shape, Strategy::Auto, 8, &[1, 0], 8);
        assert_eq!(ft.plan_cache_stats().misses, misses);
        assert!(ft.plan_cache_stats().hits >= 1);
    }
}
