//! The planner's analytic cost model: a roofline-style estimate cheap
//! enough to rank every candidate, so the expensive timing model only
//! sees the top few.
//!
//! The estimate is `max(compute, ddr)` per the roofline argument
//! (cf. [`crate::roofline`]):
//!
//! * **compute** — useful flops over the cores' aggregate FMAC rate,
//!   derated by the generated micro-kernel's measured efficiency (pulled
//!   through the shared [`KernelCache`], so ranking candidates also
//!   pre-warms the kernels execution needs) and by the *parallel
//!   efficiency* of the strategy's chunk count: a strategy whose
//!   parallel dimension splits into fewer chunks than cores leaves
//!   cores idle, which is exactly what sinks the wrong strategy on the
//!   paper's type-1/type-2 shapes.
//! * **ddr** — per-strategy DDR traffic (which panels are re-streamed
//!   per pass differs between M-par, K-par and TGEMM) over the
//!   achievable bandwidth.
//!
//! A candidate whose kernel cannot be generated estimates
//! `f64::INFINITY` and is naturally discarded by ranking.

use crate::{ChosenStrategy, GemmShape, TgemmParams};
use dspsim::HwConfig;
use kernelgen::{KernelCache, KernelSpec};

/// Fraction of chunk-parallel peak a strategy retains: `chunks` work
/// items round-robined over `cores` finish in `ceil(chunks/cores)`
/// waves, of which the last is partially idle.
fn parallel_efficiency(chunks: usize, cores: usize) -> f64 {
    let chunks = chunks.max(1);
    let waves = chunks.div_ceil(cores);
    chunks as f64 / (waves * cores) as f64
}

/// Measured efficiency of the micro-kernel a candidate will invoke, or
/// `None` when generation fails (the candidate cannot run).
fn kernel_efficiency(
    cache: &KernelCache,
    cfg: &HwConfig,
    m_s: usize,
    k_a: usize,
    n_a: usize,
) -> Option<f64> {
    let spec = KernelSpec::new(m_s, k_a, n_a).ok()?;
    let kernel = cache.get(spec).ok()?;
    Some(kernel.efficiency(cfg).max(1e-3))
}

/// Analytic estimate of a candidate's execution time in seconds.
///
/// Deterministic in its inputs and far cheaper than a timing-model
/// simulation; `INFINITY` means the candidate cannot run (no kernel).
pub fn analytic_seconds(
    cache: &KernelCache,
    cfg: &HwConfig,
    shape: &GemmShape,
    strategy: &ChosenStrategy,
    cores: usize,
) -> f64 {
    let cores = cores.max(1);
    let flops = shape.flops() as f64;
    let (mf, nf, kf) = (shape.m as f64, shape.n as f64, shape.k as f64);

    let (eff, chunks, ddr_elems) = match strategy {
        ChosenStrategy::MPar(b) => {
            let Some(eff) = kernel_efficiency(cache, cfg, b.m_s, b.k_a.min(shape.k), b.n_a) else {
                return f64::INFINITY;
            };
            // A and B stream once; C is read+written once per K panel
            // pass (the AM-resident C_a accumulates only within a pass).
            let passes_k = shape.k.div_ceil(b.k_g.max(1)) as f64;
            let elems = mf * kf + kf * nf + 2.0 * passes_k * mf * nf;
            (eff, shape.m.div_ceil(b.m_a.max(1)), elems)
        }
        ChosenStrategy::KPar(b) => {
            let Some(eff) = kernel_efficiency(cache, cfg, b.m_s, b.k_a.min(shape.k), b.n_a) else {
                return f64::INFINITY;
            };
            // A and C move once; B is re-streamed once per C_g row panel
            // (the GSM-resident C_g covers m_g rows at a time).
            let passes_m = shape.m.div_ceil(b.m_g.max(1)) as f64;
            let elems = mf * kf + passes_m * kf * nf + 2.0 * mf * nf;
            (eff, shape.k.div_ceil(b.k_a.max(1)), elems)
        }
        ChosenStrategy::TGemm => {
            let tp = TgemmParams::default();
            let Some(eff) = kernel_efficiency(cache, cfg, tp.m_s, tp.k_g.min(shape.k), tp.n_a)
            else {
                return f64::INFINITY;
            };
            // B is re-streamed once per A_g row panel; the parallel loop
            // is over fixed n_a-wide column chunks.
            let passes_m = shape.m.div_ceil(tp.m_g.max(1)) as f64;
            let elems = mf * kf + passes_m * kf * nf + 2.0 * mf * nf;
            (eff, shape.n.div_ceil(tp.n_a.max(1)), elems)
        }
    };

    let par = parallel_efficiency(chunks, cores);
    let compute_s = flops / (cores as f64 * cfg.core_peak_flops() * eff * par);
    let ddr_s = 4.0 * ddr_elems / (cfg.ddr_bw * cfg.ddr_efficiency);
    compute_s.max(ddr_s)
}

/// [`analytic_seconds`] with the tuner's fitted per-(regime × strategy
/// kind) correction applied — the estimate the autotuner ranks
/// candidates by once calibration records exist (see
/// [`crate::plan::tune::Calibration`]).
pub fn corrected_seconds(
    cache: &KernelCache,
    cfg: &HwConfig,
    shape: &GemmShape,
    strategy: &ChosenStrategy,
    cores: usize,
    calibration: &crate::plan::tune::Calibration,
) -> f64 {
    let raw = analytic_seconds(cache, cfg, shape, strategy, cores);
    calibration.correct(
        shape.classify(),
        crate::plan::tune::StrategyKind::of(strategy),
        raw,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::planner;
    use crate::Strategy;

    fn setup() -> (KernelCache, HwConfig) {
        let cfg = HwConfig::default();
        (KernelCache::new(cfg.clone()), cfg)
    }

    #[test]
    fn parallel_efficiency_penalises_idle_cores() {
        assert!((parallel_efficiency(8, 8) - 1.0).abs() < 1e-12);
        assert!((parallel_efficiency(1, 8) - 0.125).abs() < 1e-12);
        assert!((parallel_efficiency(12, 8) - 0.75).abs() < 1e-12);
        assert!((parallel_efficiency(0, 8) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn cost_model_ranks_the_paper_type1_and_type2_shapes() {
        // Acceptance: the analytic model must agree with the §IV-C rules
        // (and the timing model — asserted by the workspace planner
        // tests) on the Fig. 5 shapes: M-par wins type-1, K-par type-2.
        let (cache, cfg) = setup();
        let ft = crate::FtImm::new(cfg.clone());
        for (shape, mpar_wins) in [
            (GemmShape::new(1 << 16, 32, 32), true),
            (GemmShape::new(32, 32, 1 << 16), false),
        ] {
            let mpar = ft.plan(&shape, Strategy::MPar, 8);
            let kpar = ft.plan(&shape, Strategy::KPar, 8);
            let t_m = analytic_seconds(&cache, &cfg, &shape, &mpar, 8);
            let t_k = analytic_seconds(&cache, &cfg, &shape, &kpar, 8);
            assert!(t_m.is_finite() && t_k.is_finite());
            assert_eq!(t_m < t_k, mpar_wins, "{shape}: mpar {t_m}s kpar {t_k}s");
        }
    }

    #[test]
    fn cost_model_agrees_with_rules_on_clear_shapes() {
        let (cache, cfg) = setup();
        for (m, n, k) in [(1 << 16, 32, 32), (32, 32, 1 << 16), (20480, 32, 20480)] {
            let shape = GemmShape::new(m, n, k);
            let rule = planner::choose_strategy(&cache, &cfg, &shape, 8);
            let t = analytic_seconds(&cache, &cfg, &shape, &rule, 8);
            assert!(t.is_finite() && t > 0.0, "{shape}: {t}");
        }
    }
}
