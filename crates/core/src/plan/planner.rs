//! The planner: turns a requested [`Strategy`] into a concrete [`Plan`].
//!
//! Forced and rule-based requests resolve directly through dynamic
//! adjusting ([`crate::adjust`]).  `Strategy::Auto` runs the full
//! pipeline: build a candidate space (the two rule-adjusted strategies,
//! TGEMM, and a block-size grid around the adjusted blocks), rank every
//! candidate with the analytic cost model, then evaluate only the §IV-C
//! rule pick, its alternative, and the top-K analytic extras on the
//! timing model.  Always simulating the two rule-adjusted candidates
//! keeps Auto a strict superset of the pre-planner behaviour: it can
//! never pick a slower plan than the old two-candidate evaluation.

use crate::adjust::{adjust_kpar, adjust_mpar, am_budget};
use crate::plan::cost::analytic_seconds;
use crate::plan::{Plan, PlanOrigin};
use crate::shape::BLOCK_ALIGN;
use crate::{ChosenStrategy, GemmShape, IrregularType, Strategy};
use dspsim::HwConfig;
use kernelgen::KernelCache;

/// Rule-based strategy selection (§IV-C): M-par when `N ≤ n_a` and M is
/// large; K-par when M is small and K is large; TGEMM otherwise.
pub fn choose_strategy(
    cache: &KernelCache,
    cfg: &HwConfig,
    shape: &GemmShape,
    cores: usize,
) -> ChosenStrategy {
    match shape.classify() {
        IrregularType::Regular => ChosenStrategy::TGemm,
        IrregularType::SkinnyTallTimesTallSkinny => {
            ChosenStrategy::KPar(adjust_kpar(cache, cfg, shape, cores))
        }
        IrregularType::TallSkinnyTimesSmall
        | IrregularType::RegularTimesTallSkinny
        | IrregularType::Small => ChosenStrategy::MPar(adjust_mpar(cache, cfg, shape, cores)),
    }
}

/// Grid variants around an adjusted candidate: scale the chunk dimension
/// of the parallel split (`m_a` for M-par, `k_a` for K-par) by ½ and 2,
/// within alignment and the original block's own capacity envelope.
/// Varying the chunk size trades per-chunk CMR against load balance —
/// exactly the axis the CMR search cannot see because it ignores the
/// concrete M (or K) extent.
fn grid_variants(cfg: &HwConfig, base: &ChosenStrategy, shape: &GemmShape) -> Vec<ChosenStrategy> {
    let align_down = |v: usize| (v / BLOCK_ALIGN).max(1) * BLOCK_ALIGN;
    let mut out = Vec::new();
    match base {
        ChosenStrategy::MPar(b) => {
            let budget = am_budget(cfg, b.n_a);
            for m_a in [align_down(b.m_a / 2), align_down(b.m_a * 2)] {
                if m_a != b.m_a
                    && m_a >= b.m_s
                    && m_a <= shape.m.div_ceil(BLOCK_ALIGN) * BLOCK_ALIGN
                    && m_a + 2 * b.k_a <= budget
                {
                    out.push(ChosenStrategy::MPar(crate::MparBlocks { m_a, ..*b }));
                }
            }
        }
        ChosenStrategy::KPar(b) => {
            let budget = am_budget(cfg, b.n_a);
            for k_a in [align_down(b.k_a / 2), align_down(b.k_a * 2)] {
                if k_a != b.k_a
                    && k_a <= shape.k.div_ceil(BLOCK_ALIGN) * BLOCK_ALIGN
                    && b.m_a + 2 * k_a <= budget
                {
                    out.push(ChosenStrategy::KPar(crate::KparBlocks { k_a, ..*b }));
                }
            }
        }
        ChosenStrategy::TGemm => {}
    }
    out
}

/// Produces [`Plan`]s from planning requests.  Holds no state of its
/// own — the memo lives in [`crate::plan::PlanCache`], owned by
/// [`crate::FtImm`] — so it is cheap to build per call.
pub struct Planner<'a> {
    cache: &'a KernelCache,
    cfg: &'a HwConfig,
    /// Analytic-grid candidates promoted to timing-model evaluation on
    /// top of the two always-simulated rule candidates.
    top_k: usize,
}

/// Grid candidates promoted to simulation by default.
pub const DEFAULT_TOP_K: usize = 2;

impl<'a> Planner<'a> {
    /// A planner over the shared kernel cache and hardware model.
    pub fn new(cache: &'a KernelCache, cfg: &'a HwConfig) -> Self {
        Planner {
            cache,
            cfg,
            top_k: DEFAULT_TOP_K,
        }
    }

    /// Override how many analytic-grid extras are simulated.
    pub fn top_k(mut self, top_k: usize) -> Self {
        self.top_k = top_k;
        self
    }

    /// Resolve a plan.  `simulate` evaluates one candidate on the timing
    /// model and returns predicted seconds (`INFINITY` for a candidate
    /// that cannot run); it is only invoked for `Strategy::Auto`.
    ///
    /// Deterministic: same shape/cores/strategy (and kernel cache
    /// contents, which are themselves deterministic) → identical plan.
    pub fn plan<F: FnMut(&ChosenStrategy) -> f64>(
        &self,
        shape: &GemmShape,
        strategy: Strategy,
        cores: usize,
        mut simulate: F,
    ) -> Plan {
        let direct = |chosen: ChosenStrategy, origin: PlanOrigin| Plan {
            shape: *shape,
            cores,
            strategy: chosen,
            origin,
            predicted_s: analytic_seconds(self.cache, self.cfg, shape, &chosen, cores),
            simulated_s: f64::INFINITY,
            candidates: 1,
            simulations: 0,
            coexec_cpu_rows: 0,
        };
        match strategy {
            Strategy::MPar => direct(
                ChosenStrategy::MPar(adjust_mpar(self.cache, self.cfg, shape, cores)),
                PlanOrigin::Forced,
            ),
            Strategy::KPar => direct(
                ChosenStrategy::KPar(adjust_kpar(self.cache, self.cfg, shape, cores)),
                PlanOrigin::Forced,
            ),
            Strategy::TGemm => direct(ChosenStrategy::TGemm, PlanOrigin::Forced),
            Strategy::Rules => direct(
                choose_strategy(self.cache, self.cfg, shape, cores),
                PlanOrigin::Rules,
            ),
            Strategy::Auto => self.plan_auto(shape, cores, &mut simulate),
        }
    }

    /// The cost-model pipeline behind `Strategy::Auto`.
    fn plan_auto<F: FnMut(&ChosenStrategy) -> f64>(
        &self,
        shape: &GemmShape,
        cores: usize,
        simulate: &mut F,
    ) -> Plan {
        // Candidate space.  The rule pick and its alternative lead (they
        // are always simulated); TGEMM and the block-size grid broaden
        // it.  Beyond the paper: for N > 96 the M-parallel strategy
        // (iterating 96-wide column panels) competes with TGEMM, whose
        // N-parallelism leaves cores idle when N spans few chunks.
        let rule = choose_strategy(self.cache, self.cfg, shape, cores);
        let alt = match rule {
            ChosenStrategy::MPar(_) => {
                ChosenStrategy::KPar(adjust_kpar(self.cache, self.cfg, shape, cores))
            }
            ChosenStrategy::KPar(_) | ChosenStrategy::TGemm => {
                ChosenStrategy::MPar(adjust_mpar(self.cache, self.cfg, shape, cores))
            }
        };
        let mut candidates = vec![rule, alt];
        for extra in [ChosenStrategy::TGemm]
            .into_iter()
            .chain(grid_variants(self.cfg, &rule, shape))
            .chain(grid_variants(self.cfg, &alt, shape))
        {
            if !candidates.contains(&extra) {
                candidates.push(extra);
            }
        }

        // Rank the whole space analytically; promote the top-K grid
        // extras (indices ≥ 2) to timing-model evaluation.
        let analytic: Vec<f64> = candidates
            .iter()
            .map(|c| analytic_seconds(self.cache, self.cfg, shape, c, cores))
            .collect();
        let mut extras: Vec<usize> = (2..candidates.len())
            .filter(|&i| analytic[i].is_finite())
            .collect();
        extras.sort_by(|&a, &b| analytic[a].total_cmp(&analytic[b]));
        extras.truncate(self.top_k);

        let mut best = (0usize, f64::INFINITY);
        let mut simulations = 0u32;
        for i in [0, 1].into_iter().chain(extras) {
            let t = simulate(&candidates[i]);
            simulations += 1;
            if t < best.1 {
                best = (i, t);
            }
        }
        Plan {
            shape: *shape,
            cores,
            strategy: candidates[best.0],
            origin: PlanOrigin::CostModel,
            predicted_s: analytic[best.0],
            simulated_s: best.1,
            candidates: candidates.len() as u32,
            simulations,
            coexec_cpu_rows: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (KernelCache, HwConfig) {
        let cfg = HwConfig::default();
        (KernelCache::new(cfg.clone()), cfg)
    }

    #[test]
    fn strategy_rules_follow_the_paper() {
        let (cache, cfg) = setup();
        let pick = |m, n, k| choose_strategy(&cache, &cfg, &GemmShape::new(m, n, k), 8);
        assert!(matches!(pick(1 << 16, 32, 32), ChosenStrategy::MPar(_)));
        assert!(matches!(pick(32, 32, 1 << 16), ChosenStrategy::KPar(_)));
        assert!(matches!(pick(20480, 32, 20480), ChosenStrategy::MPar(_)));
        assert!(matches!(pick(4096, 512, 4096), ChosenStrategy::TGemm));
    }

    #[test]
    fn forced_and_rule_plans_never_simulate() {
        let (cache, cfg) = setup();
        let planner = Planner::new(&cache, &cfg);
        let shape = GemmShape::new(4096, 32, 256);
        for s in [
            Strategy::MPar,
            Strategy::KPar,
            Strategy::TGemm,
            Strategy::Rules,
        ] {
            let plan = planner.plan(&shape, s, 8, |_| panic!("no simulation for {s:?}"));
            assert_eq!(plan.simulations, 0);
            assert_eq!(plan.simulated_s, f64::INFINITY);
            assert!(plan.predicted_s.is_finite());
        }
    }

    #[test]
    fn auto_simulates_rule_alt_and_topk_and_picks_the_fastest() {
        let (cache, cfg) = setup();
        let planner = Planner::new(&cache, &cfg);
        let shape = GemmShape::new(4096, 32, 4096);
        let mut seen = Vec::new();
        // A fake simulator that makes the *second* candidate (the rule
        // alternative) the fastest: the planner must pick it.
        let plan = planner.plan(&shape, Strategy::Auto, 8, |c| {
            seen.push(*c);
            if seen.len() == 2 {
                1.0
            } else {
                2.0
            }
        });
        assert!(seen.len() >= 2, "rule + alt always simulated");
        assert!(seen.len() <= 2 + DEFAULT_TOP_K);
        assert_eq!(plan.strategy, seen[1]);
        assert_eq!(plan.simulated_s, 1.0);
        assert_eq!(plan.simulations as usize, seen.len());
        assert!(plan.candidates >= plan.simulations);
        assert_eq!(plan.origin, PlanOrigin::CostModel);
    }

    #[test]
    fn grid_variants_stay_aligned_and_bounded() {
        let (cache, cfg) = setup();
        let shape = GemmShape::new(1 << 14, 32, 512);
        let base = ChosenStrategy::MPar(adjust_mpar(&cache, &cfg, &shape, 8));
        for v in grid_variants(&cfg, &base, &shape) {
            let ChosenStrategy::MPar(b) = v else {
                panic!("mpar variants stay mpar")
            };
            assert_eq!(b.m_a % BLOCK_ALIGN, 0);
            assert!(b.m_a >= b.m_s);
        }
    }
}
