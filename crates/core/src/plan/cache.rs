//! A bounded, shared memo of resolved plans.
//!
//! The ROADMAP's serving scenario repeats shapes constantly; planning a
//! repeated shape should be a lookup, not two timing-model simulations.
//! The cache keys on everything planning depends on — shape, core
//! count, and the *requested* [`Strategy`] (an `Auto` plan and a forced
//! `MPar` plan for the same shape are different entries) — and evicts
//! least-recently-used entries beyond its capacity, so a shape-diverse
//! workload cannot grow it without bound.
//!
//! Counters are cheap atomics read by the profiler exporters; the map
//! itself sits behind a [`Mutex`] (planning is rare and bounded — the
//! lock is never held across a simulation).

use crate::plan::Plan;
use crate::{GemmShape, Strategy};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default entry bound: a few hundred distinct (shape, cores, strategy)
/// workloads — far beyond any benchmark here — in well under a MiB.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

/// Everything a cached plan depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanKey {
    /// Problem shape.
    pub shape: GemmShape,
    /// Cores requested.
    pub cores: usize,
    /// The *requested* strategy (not the resolved one).
    pub strategy: Strategy,
}

/// Snapshot of a cache's lifetime counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Lookups that returned a cached plan.
    pub hits: u64,
    /// Lookups that found nothing (the caller then plans and inserts).
    pub misses: u64,
    /// Entries evicted to the capacity bound.
    pub evictions: u64,
    /// Entries currently held.
    pub len: usize,
    /// Entry bound (`0` disables caching entirely).
    pub capacity: usize,
}

/// Bounded LRU memo of `(shape, cores, strategy) → Plan`.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    /// LRU order: index 0 is the coldest entry, the back the hottest.
    /// Linear scan is fine at this capacity (planning is not hot).
    entries: Mutex<Vec<(PlanKey, Plan)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (`0` disables caching:
    /// every lookup misses, nothing is stored).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            entries: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look up a plan, refreshing its recency on a hit.
    pub fn get(&self, key: &PlanKey) -> Option<Plan> {
        let mut entries = self.entries.lock().expect("plan cache poisoned");
        if let Some(pos) = entries.iter().position(|(k, _)| k == key) {
            let entry = entries.remove(pos);
            let plan = entry.1;
            entries.push(entry);
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(plan)
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Store a plan, evicting the least-recently-used entry if full.
    pub fn insert(&self, key: PlanKey, plan: Plan) {
        if self.capacity == 0 {
            return;
        }
        let mut entries = self.entries.lock().expect("plan cache poisoned");
        if let Some(pos) = entries.iter().position(|(k, _)| *k == key) {
            entries.remove(pos);
        } else if entries.len() == self.capacity {
            entries.remove(0);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        entries.push((key, plan));
    }

    /// Bulk-load `entries` (a catalog warm start) in order, replacing
    /// duplicates in place, then trim to capacity in one step.
    ///
    /// Unlike per-plan [`PlanCache::insert`], an over-capacity preload
    /// counts **one** eviction for the whole trim, not one per dropped
    /// probe: the counter tracks capacity-pressure *events*, and a bulk
    /// load that overflows is a single event — counting every dropped
    /// catalog entry would make a large catalog look like cache thrash.
    /// Returns how many preloaded entries were kept.
    pub fn preload(&self, entries: &[(PlanKey, Plan)]) -> usize {
        if self.capacity == 0 || entries.is_empty() {
            return 0;
        }
        let mut held = self.entries.lock().expect("plan cache poisoned");
        for (key, plan) in entries {
            if let Some(pos) = held.iter().position(|(k, _)| k == key) {
                held.remove(pos);
            }
            held.push((*key, *plan));
        }
        if held.len() > self.capacity {
            let overflow = held.len() - self.capacity;
            held.drain(..overflow);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        held.iter()
            .filter(|(k, _)| entries.iter().any(|(bk, _)| bk == k))
            .count()
    }

    /// Lifetime counters and current occupancy.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.entries.lock().expect("plan cache poisoned").len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChosenStrategy;

    fn key(m: usize) -> PlanKey {
        PlanKey {
            shape: GemmShape::new(m, 32, 32),
            cores: 8,
            strategy: Strategy::Auto,
        }
    }

    fn plan(m: usize) -> Plan {
        Plan::pinned(GemmShape::new(m, 32, 32), 8, ChosenStrategy::TGemm)
    }

    #[test]
    fn hits_misses_and_evictions_are_counted() {
        let cache = PlanCache::new(2);
        assert_eq!(cache.get(&key(1)), None);
        cache.insert(key(1), plan(1));
        cache.insert(key(2), plan(2));
        assert_eq!(cache.get(&key(1)), Some(plan(1)));
        // Key 2 is now the LRU entry; inserting a third evicts it.
        cache.insert(key(3), plan(3));
        assert_eq!(cache.get(&key(2)), None);
        assert_eq!(cache.get(&key(1)), Some(plan(1)));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (2, 2, 1));
        assert_eq!((stats.len, stats.capacity), (2, 2));
    }

    #[test]
    fn reinserting_a_key_replaces_without_eviction() {
        let cache = PlanCache::new(2);
        cache.insert(key(1), plan(1));
        cache.insert(key(1), plan(7));
        assert_eq!(cache.get(&key(1)), Some(plan(7)));
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.stats().len, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(0);
        cache.insert(key(1), plan(1));
        assert_eq!(cache.get(&key(1)), None);
        assert_eq!(cache.stats().len, 0);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn over_capacity_preload_counts_one_eviction_not_per_probe() {
        let cache = PlanCache::new(3);
        cache.insert(key(0), plan(0));
        // Preload 5 entries into capacity 3: two oldest fall out (the
        // resident entry and preload #1), but that is ONE bulk-load
        // eviction event, not two — and certainly not one per probe.
        let batch: Vec<_> = (1..=5).map(|m| (key(m), plan(m))).collect();
        let kept = cache.preload(&batch);
        assert_eq!(kept, 3);
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1, "bulk load is one eviction event");
        assert_eq!(stats.len, 3);
        assert_eq!(cache.get(&key(0)), None);
        assert_eq!(cache.get(&key(1)), None);
        for m in 3..=5 {
            assert_eq!(cache.get(&key(m)), Some(plan(m)), "entry {m}");
        }
    }

    #[test]
    fn preload_replaces_duplicates_and_respects_zero_capacity() {
        let cache = PlanCache::new(4);
        cache.insert(key(1), plan(9));
        let kept = cache.preload(&[(key(1), plan(1)), (key(2), plan(2))]);
        assert_eq!(kept, 2);
        assert_eq!(cache.get(&key(1)), Some(plan(1)));
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.stats().len, 2);

        let disabled = PlanCache::new(0);
        assert_eq!(disabled.preload(&[(key(1), plan(1))]), 0);
        assert_eq!(disabled.stats().len, 0);
    }

    #[test]
    fn distinct_strategies_are_distinct_entries() {
        let cache = PlanCache::new(8);
        let auto = key(1);
        let forced = PlanKey {
            strategy: Strategy::MPar,
            ..auto
        };
        cache.insert(auto, plan(1));
        assert_eq!(cache.get(&forced), None);
        cache.insert(forced, plan(2));
        assert_eq!(cache.get(&auto), Some(plan(1)));
        assert_eq!(cache.get(&forced), Some(plan(2)));
    }
}
