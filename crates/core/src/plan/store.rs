//! The on-disk plan catalog: `ftimm-plan-catalog-v1`.
//!
//! Tuned plans and calibration records persist across processes through
//! a single JSON document built on the [`dspsim::minijson`] codec:
//!
//! ```json
//! {
//!   "schema": "ftimm-plan-catalog-v1",
//!   "entries": [ { "key": {...}, "plan": { ...ftimm-plan-v1... } } ],
//!   "records": [ { "m": .., "kind": "mpar", "analytic_s": .., ... } ]
//! }
//! ```
//!
//! Each entry embeds a complete [`super::plan_json`] document under
//! `"plan"`, so a catalog entry is exactly as expressive (and exactly as
//! strictly validated) as a standalone plan file.  Failure policy:
//!
//! * **Document-level** problems — unreadable file, truncated/invalid
//!   JSON, missing or unknown `schema`, duplicate keys — reject the whole
//!   catalog with `Err`.  A catalog that lies about its own structure
//!   cannot be trusted entry-by-entry.
//! * **Entry-level** corruption — a mangled plan or record, a key that
//!   disagrees with its plan's shape/cores — is *quarantined*: the entry
//!   is skipped and counted in [`CatalogLoad::quarantined`], never a
//!   panic and never a poisoned load.  One bad entry must not cost the
//!   warm start of every other shape.
//!
//! Loading a catalog pre-populates the LRU [`super::PlanCache`] (via
//! [`crate::FtImm::with_plan_catalog`]), which is what makes
//! `plan_full` warm-start simulation-free across processes.

use super::{field_usize, plan_from_value, plan_json, seconds_field, Plan, PlanKey};
use crate::plan::tune::{CalibrationRecord, StrategyKind};
use crate::{GemmShape, Strategy};
use dspsim::minijson::{quote, Parser, Value};
use std::fmt::Write as _;
use std::path::Path;

/// Document identifier embedded in (and required from) catalog JSON.
pub const PLAN_CATALOG_SCHEMA: &str = "ftimm-plan-catalog-v1";

/// A persistable set of tuned plans plus the calibration records they
/// were tuned from.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanCatalog {
    /// Tuned plans, keyed exactly like the in-memory plan cache.
    pub entries: Vec<(PlanKey, Plan)>,
    /// Observed (analytic, simulated) pairs for calibration refitting.
    pub records: Vec<CalibrationRecord>,
}

impl PlanCatalog {
    /// Insert or replace the plan stored under `key`.
    pub fn upsert(&mut self, key: PlanKey, plan: Plan) {
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = plan,
            None => self.entries.push((key, plan)),
        }
    }
}

/// The result of parsing a catalog: the clean part plus how many
/// corrupt entries/records were quarantined along the way.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogLoad {
    /// Every entry and record that validated.
    pub catalog: PlanCatalog,
    /// Corrupt entries/records skipped (0 for a pristine catalog).
    pub quarantined: usize,
}

/// Serialise a catalog as a self-contained pretty-printed JSON document
/// (stable field order, exact `f64` round-trip, `"inf"` sentinel for
/// infinities — the same conventions as [`plan_json`]).
pub fn catalog_json(catalog: &PlanCatalog) -> String {
    let sec = |v: f64| {
        if v.is_finite() {
            format!("{v:?}")
        } else {
            "\"inf\"".to_string()
        }
    };
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": {},", quote(PLAN_CATALOG_SCHEMA));
    s.push_str("  \"entries\": [");
    for (i, (key, plan)) in catalog.entries.iter().enumerate() {
        s.push_str(if i == 0 { "\n" } else { ",\n" });
        s.push_str("    {\n");
        let _ = writeln!(
            s,
            "      \"key\": {{\"m\": {}, \"n\": {}, \"k\": {}, \"cores\": {}, \
             \"strategy\": {}}},",
            key.shape.m,
            key.shape.n,
            key.shape.k,
            key.cores,
            quote(key.strategy.tag())
        );
        // The embedded plan is a verbatim ftimm-plan-v1 document,
        // re-indented to sit inside the entry object.
        let doc = plan_json(plan);
        let mut lines = doc.lines();
        let _ = write!(s, "      \"plan\": {}", lines.next().unwrap_or("{}"));
        for line in lines {
            let _ = write!(s, "\n      {line}");
        }
        s.push_str("\n    }");
    }
    s.push_str(if catalog.entries.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    s.push_str("  \"records\": [");
    for (i, r) in catalog.records.iter().enumerate() {
        s.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            s,
            "    {{\"m\": {}, \"n\": {}, \"k\": {}, \"cores\": {}, \"kind\": {}, \
             \"analytic_s\": {}, \"simulated_s\": {}}}",
            r.shape.m,
            r.shape.n,
            r.shape.k,
            r.cores,
            quote(r.kind.tag()),
            sec(r.analytic_s),
            sec(r.simulated_s)
        );
    }
    s.push_str(if catalog.records.is_empty() {
        "]\n"
    } else {
        "\n  ]\n"
    });
    s.push('}');
    s
}

fn parse_entry(v: &Value) -> Result<(PlanKey, Plan), String> {
    let key_v = v.get("key").ok_or("entry missing \"key\"")?;
    let key = PlanKey {
        shape: GemmShape::new(
            field_usize(key_v, "m")?,
            field_usize(key_v, "n")?,
            field_usize(key_v, "k")?,
        ),
        cores: field_usize(key_v, "cores")?,
        strategy: Strategy::from_tag(
            key_v
                .get("strategy")
                .ok_or("key missing \"strategy\"")?
                .as_str("strategy")?,
        )?,
    };
    let plan = plan_from_value(v.get("plan").ok_or("entry missing \"plan\"")?)?;
    if plan.shape != key.shape || plan.cores != key.cores {
        return Err("entry key does not match its plan".into());
    }
    Ok((key, plan))
}

fn parse_record(v: &Value) -> Result<CalibrationRecord, String> {
    Ok(CalibrationRecord {
        shape: GemmShape::new(
            field_usize(v, "m")?,
            field_usize(v, "n")?,
            field_usize(v, "k")?,
        ),
        cores: field_usize(v, "cores")?,
        kind: StrategyKind::from_tag(
            v.get("kind")
                .ok_or("record missing \"kind\"")?
                .as_str("kind")?,
        )?,
        analytic_s: seconds_field(v, "analytic_s")?,
        simulated_s: seconds_field(v, "simulated_s")?,
    })
}

/// Parse a catalog document produced by [`catalog_json`].
///
/// Structural problems (truncation, unknown schema, duplicate keys)
/// return `Err`; corrupt individual entries/records are quarantined and
/// counted, never panicked on.
pub fn catalog_from_json(text: &str) -> Result<CatalogLoad, String> {
    let value = Parser::new(text).parse()?;
    value.as_obj("catalog")?;
    let schema = value
        .get("schema")
        .ok_or("catalog missing \"schema\"")?
        .as_str("schema")?;
    if schema != PLAN_CATALOG_SCHEMA {
        return Err(format!("unsupported catalog schema {schema:?}"));
    }
    let mut catalog = PlanCatalog::default();
    let mut quarantined = 0usize;
    let entries = value
        .get("entries")
        .ok_or("catalog missing \"entries\"")?
        .as_arr("entries")?;
    for entry in entries {
        match parse_entry(entry) {
            Ok((key, plan)) => {
                if catalog.entries.iter().any(|(k, _)| *k == key) {
                    return Err(format!(
                        "duplicate catalog key for {} on {} cores",
                        key.shape, key.cores
                    ));
                }
                catalog.entries.push((key, plan));
            }
            Err(_) => quarantined += 1,
        }
    }
    let records = value
        .get("records")
        .ok_or("catalog missing \"records\"")?
        .as_arr("records")?;
    for r in records {
        match parse_record(r) {
            Ok(rec) => catalog.records.push(rec),
            Err(_) => quarantined += 1,
        }
    }
    Ok(CatalogLoad {
        catalog,
        quarantined,
    })
}

/// Write a catalog to `path` (atomicity is the caller's concern; the
/// document is always complete or the write errors).
pub fn save_catalog(path: &Path, catalog: &PlanCatalog) -> Result<(), String> {
    std::fs::write(path, catalog_json(catalog))
        .map_err(|e| format!("write {}: {e}", path.display()))
}

/// Read and parse a catalog from `path`.
pub fn load_catalog(path: &Path) -> Result<CatalogLoad, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    catalog_from_json(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanOrigin;
    use crate::{ChosenStrategy, MparBlocks};

    fn sample_plan(shape: GemmShape, cores: usize) -> Plan {
        Plan {
            shape,
            cores,
            strategy: ChosenStrategy::MPar(MparBlocks {
                n_g: 32,
                k_g: 512,
                m_a: 320,
                n_a: 32,
                k_a: 512,
                m_s: 8,
            }),
            origin: PlanOrigin::Tuned,
            predicted_s: 1.25e-3,
            simulated_s: 1.5e-3,
            candidates: 14,
            simulations: 9,
            coexec_cpu_rows: 0,
        }
    }

    fn sample_catalog() -> PlanCatalog {
        let shape = GemmShape::new(4096, 32, 512);
        let mut cat = PlanCatalog::default();
        cat.upsert(
            PlanKey {
                shape,
                cores: 8,
                strategy: Strategy::Auto,
            },
            sample_plan(shape, 8),
        );
        let other = GemmShape::new(32, 32, 16384);
        cat.upsert(
            PlanKey {
                shape: other,
                cores: 4,
                strategy: Strategy::Auto,
            },
            sample_plan(other, 4),
        );
        cat.records.push(CalibrationRecord {
            shape,
            cores: 8,
            kind: StrategyKind::MPar,
            analytic_s: 1.25e-3,
            simulated_s: 1.5e-3,
        });
        cat.records.push(CalibrationRecord {
            shape: other,
            cores: 4,
            kind: StrategyKind::TGemm,
            analytic_s: f64::INFINITY,
            simulated_s: 9.5e-2,
        });
        cat
    }

    #[test]
    fn catalogs_round_trip_exactly() {
        let cat = sample_catalog();
        let text = catalog_json(&cat);
        let load = catalog_from_json(&text).unwrap();
        assert_eq!(load.quarantined, 0);
        assert_eq!(load.catalog, cat);
        assert_eq!(catalog_json(&load.catalog), text);
    }

    #[test]
    fn empty_catalogs_round_trip() {
        let cat = PlanCatalog::default();
        let load = catalog_from_json(&catalog_json(&cat)).unwrap();
        assert_eq!(load.catalog, cat);
        assert_eq!(load.quarantined, 0);
    }

    #[test]
    fn truncated_and_unversioned_catalogs_are_rejected() {
        let text = catalog_json(&sample_catalog());
        assert!(catalog_from_json(&text[..text.len() / 2]).is_err());
        assert!(catalog_from_json(&text[..text.len() - 1]).is_err());
        let unknown = text.replace(PLAN_CATALOG_SCHEMA, "ftimm-plan-catalog-v9");
        assert!(catalog_from_json(&unknown)
            .unwrap_err()
            .contains("unsupported catalog schema"));
        assert!(catalog_from_json("{}").unwrap_err().contains("schema"));
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let mut cat = sample_catalog();
        let dup = cat.entries[0];
        cat.entries.push(dup);
        assert!(catalog_from_json(&catalog_json(&cat))
            .unwrap_err()
            .contains("duplicate catalog key"));
    }

    #[test]
    fn corrupt_entries_are_quarantined_not_fatal() {
        let text = catalog_json(&sample_catalog());
        // Mangle the first entry's plan origin: that entry quarantines,
        // the second entry and both records survive.
        let mangled = text.replacen("\"tuned\"", "\"vibes\"", 1);
        let load = catalog_from_json(&mangled).unwrap();
        assert_eq!(load.quarantined, 1);
        assert_eq!(load.catalog.entries.len(), 1);
        assert_eq!(load.catalog.records.len(), 2);
        // Mangle a record's kind: record quarantines, entries survive.
        let mangled = text.replacen("\"kind\": \"tgemm\"", "\"kind\": \"ggemm\"", 1);
        let load = catalog_from_json(&mangled).unwrap();
        assert_eq!(load.quarantined, 1);
        assert_eq!(load.catalog.entries.len(), 2);
        assert_eq!(load.catalog.records.len(), 1);
    }

    #[test]
    fn key_plan_disagreement_is_quarantined() {
        let shape = GemmShape::new(4096, 32, 512);
        let mut cat = PlanCatalog::default();
        cat.upsert(
            PlanKey {
                shape,
                cores: 8,
                strategy: Strategy::Auto,
            },
            sample_plan(shape, 4), // cores disagree with the key
        );
        let load = catalog_from_json(&catalog_json(&cat)).unwrap();
        assert_eq!(load.quarantined, 1);
        assert!(load.catalog.entries.is_empty());
    }

    #[test]
    fn upsert_replaces_in_place() {
        let shape = GemmShape::new(8, 8, 8);
        let key = PlanKey {
            shape,
            cores: 2,
            strategy: Strategy::Auto,
        };
        let mut cat = PlanCatalog::default();
        cat.upsert(key, sample_plan(shape, 2));
        let mut newer = sample_plan(shape, 2);
        newer.simulations = 99;
        cat.upsert(key, newer);
        assert_eq!(cat.entries.len(), 1);
        assert_eq!(cat.entries[0].1.simulations, 99);
    }

    #[test]
    fn save_and_load_round_trip_through_disk() {
        let cat = sample_catalog();
        let path =
            std::env::temp_dir().join(format!("ftimm-store-test-{}.json", std::process::id()));
        save_catalog(&path, &cat).unwrap();
        let load = load_catalog(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(load.catalog, cat);
        assert!(load_catalog(Path::new("/nonexistent/ftimm.json")).is_err());
    }
}
