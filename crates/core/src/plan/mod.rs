//! The Plan IR: an explicit, serialisable description of how one GEMM
//! will execute, separated from execution itself.
//!
//! The paper's headline claim is that ftIMM "automatically chooses the
//! optimal block sizes and parallelisation strategy" per irregular shape
//! (§III).  Before this module, that choice was scattered: rule-based
//! selection lived in `adjust`, `Strategy::Auto` ran two full
//! timing-model simulations inside [`crate::FtImm::plan`] on *every*
//! call, and each entry point re-derived what to run.  The plan layer
//! splits the concern three ways:
//!
//! * [`Plan`] — the IR itself: shape, cores, the resolved
//!   [`ChosenStrategy`] (with concrete block sizes), where the plan came
//!   from, and what the planner predicted/measured for it.  Serialisable
//!   via [`plan_json`]/[`plan_from_json`] so plans can be logged, diffed
//!   and pinned.
//! * [`planner::Planner`] — produces plans: a cheap analytic cost model
//!   ([`cost::analytic_seconds`]) ranks a broadened candidate space
//!   (mPar/kPar/TGEMM × a block-size grid), and only the top-K
//!   candidates are evaluated on the timing model.
//! * [`cache::PlanCache`] — a bounded, shared memo of
//!   `(shape, cores, strategy) → Plan` with hit/miss/eviction counters,
//!   so repeated shapes plan in O(1) with **zero** simulations.
//!
//! The [`crate::exec::Executor`] consumes plans; every entry point —
//! `gemm`, `tgemm`, the resilient variants, the job engine and the batch
//! API — routes through it, so this module is the only place planning
//! decisions are made.

pub mod cache;
pub mod cost;
pub mod planner;
pub mod sharded;
pub mod store;
pub mod tune;

pub use cache::{PlanCache, PlanCacheStats, PlanKey, DEFAULT_PLAN_CACHE_CAPACITY};
pub use cost::{analytic_seconds, corrected_seconds};
pub use planner::{choose_strategy, Planner};
pub use sharded::{
    choose_coexec_split, plan_coexec, plan_sharded, CoexecChoice, Shard, ShardOrigin, ShardedPlan,
};
pub use store::{
    catalog_from_json, catalog_json, load_catalog, save_catalog, CatalogLoad, PlanCatalog,
    PLAN_CATALOG_SCHEMA,
};
pub use tune::{
    bit_signature, ranking_agreement, BitSignature, Calibration, CalibrationRecord, CoexecTune,
    RegimeAgreement, StrategyKind, TuneConfig, TuneOutcome, Tuner, REGIMES,
};

use crate::{ChosenStrategy, GemmShape, KparBlocks, MparBlocks};
use dspsim::minijson::{quote, Parser, Value};
use std::fmt;
use std::fmt::Write as _;

/// Where a [`Plan`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanOrigin {
    /// The caller forced a strategy; only its blocks were adjusted.
    Forced,
    /// Rule-based selection (§IV-C rules, no model evaluation).
    Rules,
    /// The cost-model planner ranked candidates and simulated the top-K.
    CostModel,
    /// The caller handed the executor a pre-resolved strategy.
    Pinned,
    /// The autotuner searched beyond the planner's candidates and either
    /// adopted a bit-safe variant or confirmed the default pick
    /// (see [`tune::Tuner`]).
    Tuned,
}

impl PlanOrigin {
    /// Stable lower-case tag used by the JSON codec.
    pub fn tag(self) -> &'static str {
        match self {
            PlanOrigin::Forced => "forced",
            PlanOrigin::Rules => "rules",
            PlanOrigin::CostModel => "cost-model",
            PlanOrigin::Pinned => "pinned",
            PlanOrigin::Tuned => "tuned",
        }
    }

    /// Parse a [`PlanOrigin::tag`] back.
    pub fn from_tag(s: &str) -> Result<PlanOrigin, String> {
        [
            PlanOrigin::Forced,
            PlanOrigin::Rules,
            PlanOrigin::CostModel,
            PlanOrigin::Pinned,
            PlanOrigin::Tuned,
        ]
        .into_iter()
        .find(|o| o.tag() == s)
        .ok_or_else(|| format!("unknown plan origin {s:?}"))
    }
}

/// An explicit description of how one GEMM will execute.
///
/// Plans are plain values (`Copy`, `PartialEq`) and deliberately carry
/// **no wall-clock timestamps**: planning the same shape twice with the
/// same inputs yields bit-identical plans (asserted by the conformance
/// suite), which is what makes them cacheable and diffable.  Times that
/// *predict* the run (`predicted_s`, `simulated_s`) are part of the
/// plan; the time spent planning is observability and lives in the
/// profiler's `plan` phase instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plan {
    /// The problem shape this plan is for.
    pub shape: GemmShape,
    /// Cores the plan assigns work across.
    pub cores: usize,
    /// The resolved strategy with concrete block sizes.
    pub strategy: ChosenStrategy,
    /// How the strategy was selected.
    pub origin: PlanOrigin,
    /// Analytic cost-model estimate, seconds (`INFINITY` when the model
    /// could not evaluate the plan).
    pub predicted_s: f64,
    /// Timing-model estimate of the winning candidate, seconds
    /// (`INFINITY` when the planner ran no simulation for this plan).
    pub simulated_s: f64,
    /// Candidates the analytic model ranked to produce this plan.
    pub candidates: u32,
    /// Timing-model simulations the planner ran to produce this plan.
    pub simulations: u32,
    /// Co-execution hint: rows of the M *tail* the tuner planned onto
    /// the CPU lane (`0` = no hint; `m` = all-CPU).  Consumed by
    /// [`sharded::plan_coexec`] when the sharded engine runs under
    /// [`crate::cluster::SpillPolicy::CoExecute`]; purely advisory —
    /// the strategy and blocks above are untouched, so the bitwise
    /// identity contract is independent of this field.
    pub coexec_cpu_rows: usize,
}

impl Plan {
    /// Wrap a pre-resolved strategy the caller pinned (no planning ran).
    pub fn pinned(shape: GemmShape, cores: usize, strategy: ChosenStrategy) -> Plan {
        Plan {
            shape,
            cores,
            strategy,
            origin: PlanOrigin::Pinned,
            predicted_s: f64::INFINITY,
            simulated_s: f64::INFINITY,
            candidates: 0,
            simulations: 0,
            coexec_cpu_rows: 0,
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self.strategy {
            ChosenStrategy::MPar(_) => "M-par",
            ChosenStrategy::KPar(_) => "K-par",
            ChosenStrategy::TGemm => "TGEMM",
        };
        write!(
            f,
            "{name} for {} on {} cores ({})",
            self.shape,
            self.cores,
            self.origin.tag()
        )
    }
}

/// Document identifier embedded in (and required from) plan JSON.
const PLAN_SCHEMA: &str = "ftimm-plan-v1";

fn blocks_json(s: &mut String, strategy: &ChosenStrategy) {
    match strategy {
        ChosenStrategy::MPar(b) => {
            let _ = write!(
                s,
                "{{\"kind\": \"mpar\", \"n_g\": {}, \"k_g\": {}, \"m_a\": {}, \"n_a\": {}, \
                 \"k_a\": {}, \"m_s\": {}}}",
                b.n_g, b.k_g, b.m_a, b.n_a, b.k_a, b.m_s
            );
        }
        ChosenStrategy::KPar(b) => {
            let _ = write!(
                s,
                "{{\"kind\": \"kpar\", \"m_g\": {}, \"n_g\": {}, \"m_a\": {}, \"n_a\": {}, \
                 \"k_a\": {}, \"m_s\": {}}}",
                b.m_g, b.n_g, b.m_a, b.n_a, b.k_a, b.m_s
            );
        }
        ChosenStrategy::TGemm => s.push_str("{\"kind\": \"tgemm\"}"),
    }
}

/// Serialise a [`Plan`] as a self-contained pretty-printed JSON document
/// (stable field order; exact `f64` round-trip; `INFINITY` encodes as
/// the string `"inf"` since JSON has no infinity literal).
pub fn plan_json(plan: &Plan) -> String {
    let sec = |v: f64| {
        if v.is_finite() {
            format!("{v:?}")
        } else {
            "\"inf\"".to_string()
        }
    };
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": {},", quote(PLAN_SCHEMA));
    let _ = writeln!(
        s,
        "  \"shape\": {{\"m\": {}, \"n\": {}, \"k\": {}}},",
        plan.shape.m, plan.shape.n, plan.shape.k
    );
    let _ = writeln!(s, "  \"cores\": {},", plan.cores);
    s.push_str("  \"strategy\": ");
    blocks_json(&mut s, &plan.strategy);
    s.push_str(",\n");
    let _ = writeln!(s, "  \"origin\": {},", quote(plan.origin.tag()));
    let _ = writeln!(s, "  \"predicted_s\": {},", sec(plan.predicted_s));
    let _ = writeln!(s, "  \"simulated_s\": {},", sec(plan.simulated_s));
    let _ = writeln!(s, "  \"candidates\": {},", plan.candidates);
    // Co-execution hints are rare; omitting the zero default keeps every
    // pre-co-exec plan document byte-stable.
    if plan.coexec_cpu_rows != 0 {
        let _ = writeln!(s, "  \"coexec_cpu_rows\": {},", plan.coexec_cpu_rows);
    }
    let _ = writeln!(s, "  \"simulations\": {}", plan.simulations);
    s.push('}');
    s
}

fn field_usize(v: &Value, key: &str) -> Result<usize, String> {
    v.get(key)
        .ok_or_else(|| format!("missing {key:?}"))?
        .as_u64(key)
        .map(|x| x as usize)
}

fn seconds_field(v: &Value, key: &str) -> Result<f64, String> {
    let field = v.get(key).ok_or_else(|| format!("missing {key:?}"))?;
    if let Ok(s) = field.as_str(key) {
        return if s == "inf" {
            Ok(f64::INFINITY)
        } else {
            Err(format!("bad seconds value {s:?} for {key:?}"))
        };
    }
    field.as_f64(key)
}

fn strategy_from_json(v: &Value) -> Result<ChosenStrategy, String> {
    let kind = v
        .get("kind")
        .ok_or("strategy missing \"kind\"")?
        .as_str("kind")?;
    match kind {
        "mpar" => Ok(ChosenStrategy::MPar(MparBlocks {
            n_g: field_usize(v, "n_g")?,
            k_g: field_usize(v, "k_g")?,
            m_a: field_usize(v, "m_a")?,
            n_a: field_usize(v, "n_a")?,
            k_a: field_usize(v, "k_a")?,
            m_s: field_usize(v, "m_s")?,
        })),
        "kpar" => Ok(ChosenStrategy::KPar(KparBlocks {
            m_g: field_usize(v, "m_g")?,
            n_g: field_usize(v, "n_g")?,
            m_a: field_usize(v, "m_a")?,
            n_a: field_usize(v, "n_a")?,
            k_a: field_usize(v, "k_a")?,
            m_s: field_usize(v, "m_s")?,
        })),
        "tgemm" => Ok(ChosenStrategy::TGemm),
        other => Err(format!("unknown strategy kind {other:?}")),
    }
}

/// Parse a plan document produced by [`plan_json`].
pub fn plan_from_json(text: &str) -> Result<Plan, String> {
    let value = Parser::new(text).parse()?;
    plan_from_value(&value)
}

/// Parse an already-parsed plan object (the body of [`plan_from_json`],
/// shared with the [`store`] catalog codec which embeds plan documents
/// verbatim inside catalog entries).
pub(crate) fn plan_from_value(value: &Value) -> Result<Plan, String> {
    let obj = value.as_obj("plan")?;
    let mut schema_ok = false;
    for (key, v) in obj {
        if key.as_str() == "schema" {
            let s = v.as_str("schema")?;
            if s != PLAN_SCHEMA {
                return Err(format!("unsupported plan schema {s:?}"));
            }
            schema_ok = true;
        }
    }
    if !schema_ok {
        return Err("plan missing \"schema\"".into());
    }
    let shape = value.get("shape").ok_or("missing \"shape\"")?;
    let plan = Plan {
        shape: GemmShape::new(
            field_usize(shape, "m")?,
            field_usize(shape, "n")?,
            field_usize(shape, "k")?,
        ),
        cores: field_usize(value, "cores")?,
        strategy: strategy_from_json(value.get("strategy").ok_or("missing \"strategy\"")?)?,
        origin: PlanOrigin::from_tag(
            value
                .get("origin")
                .ok_or("missing \"origin\"")?
                .as_str("origin")?,
        )?,
        predicted_s: seconds_field(value, "predicted_s")?,
        simulated_s: seconds_field(value, "simulated_s")?,
        candidates: field_usize(value, "candidates")? as u32,
        simulations: field_usize(value, "simulations")? as u32,
        // Optional for backward compatibility with pre-co-exec documents.
        coexec_cpu_rows: match value.get("coexec_cpu_rows") {
            Some(v) => v.as_u64("coexec_cpu_rows")? as usize,
            None => 0,
        },
    };
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(strategy: ChosenStrategy) -> Plan {
        Plan {
            shape: GemmShape::new(4096, 32, 512),
            cores: 8,
            strategy,
            origin: PlanOrigin::CostModel,
            predicted_s: 1.25e-3,
            simulated_s: 1.5e-3,
            candidates: 9,
            simulations: 4,
            coexec_cpu_rows: 0,
        }
    }

    #[test]
    fn plan_documents_round_trip_exactly() {
        for strategy in [
            ChosenStrategy::MPar(MparBlocks {
                n_g: 32,
                k_g: 512,
                m_a: 320,
                n_a: 32,
                k_a: 512,
                m_s: 8,
            }),
            ChosenStrategy::KPar(KparBlocks {
                m_g: 1024,
                n_g: 32,
                m_a: 64,
                n_a: 32,
                k_a: 512,
                m_s: 8,
            }),
            ChosenStrategy::TGemm,
        ] {
            let plan = sample(strategy);
            let text = plan_json(&plan);
            let back = plan_from_json(&text).unwrap();
            assert_eq!(back, plan, "{text}");
            assert_eq!(plan_json(&back), text);
        }
    }

    #[test]
    fn coexec_hint_round_trips_and_zero_stays_byte_stable() {
        // A multi-backend plan carries its CPU-tail hint through the codec.
        let mut plan = sample(ChosenStrategy::TGemm);
        plan.coexec_cpu_rows = 1024;
        let text = plan_json(&plan);
        assert!(text.contains("\"coexec_cpu_rows\": 1024"), "{text}");
        let back = plan_from_json(&text).unwrap();
        assert_eq!(back, plan);
        assert_eq!(plan_json(&back), text);
        // The zero default is omitted, so pre-co-exec documents (which
        // lack the key entirely) parse to the same bytes they came from.
        let plain = sample(ChosenStrategy::TGemm);
        let text = plan_json(&plain);
        assert!(!text.contains("coexec_cpu_rows"), "{text}");
        assert_eq!(plan_from_json(&text).unwrap(), plain);
    }

    #[test]
    fn pinned_plans_encode_infinity() {
        let plan = Plan::pinned(GemmShape::new(8, 8, 8), 4, ChosenStrategy::TGemm);
        let text = plan_json(&plan);
        assert!(text.contains("\"inf\""), "{text}");
        assert_eq!(plan_from_json(&text).unwrap(), plan);
    }

    #[test]
    fn bad_plan_documents_fail_loudly() {
        let good = plan_json(&sample(ChosenStrategy::TGemm));
        for (text, needle) in [
            (good.replace(PLAN_SCHEMA, "ftimm-plan-v9"), "unsupported"),
            (good.replace("tgemm", "ggemm"), "unknown strategy kind"),
            (good.replace("cost-model", "vibes"), "unknown plan origin"),
            ("{}".to_string(), "missing \"schema\""),
        ] {
            let err = plan_from_json(&text).unwrap_err();
            assert!(err.contains(needle), "wanted {needle:?}, got {err:?}");
        }
    }

    #[test]
    fn display_names_the_strategy_and_origin() {
        let s = sample(ChosenStrategy::TGemm).to_string();
        assert!(s.contains("TGEMM") && s.contains("cost-model"), "{s}");
    }
}
