//! The autotuner: a real parameter search over the planner's candidate
//! space, plus a measured correction model for the analytic cost model.
//!
//! The paper picks block sizes from a fixed analytic grid (§IV-C); the
//! TVM line of work shows a search plus a fitted correction model beats
//! any fixed grid, and that the winning configuration shifts per shape
//! regime.  The [`Tuner`] implements that on top of the PR-5 planner:
//!
//! * **Search** — the planner's `Strategy::Auto` pipeline runs first
//!   (rule pick, alternative, TGEMM, grid variants), then the tuner
//!   widens it: chunk-size ladders around the analytic pick, seeded
//!   random probes, and a neighborhood refinement around the best
//!   simulated candidate, all budgeted by
//!   [`TuneConfig::max_simulations`].
//! * **Bit safety** — ftIMM's conformance regime demands that executing
//!   a tuned plan is *bitwise identical* to executing the default plan.
//!   Per-element f32 accumulation order here is a pure function of the
//!   strategy's partitions of M, N and K (each row group's micro-kernel
//!   height fixes the `k_u` accumulator split; each K slice is one
//!   partial sum; K-parallel adds the slice→core round-robin).  The
//!   tuner captures that as a [`BitSignature`] and only ever *adopts* a
//!   variant whose signature equals the default pick's — such variants
//!   change DMA shapes, reuse and load balance (time), never results.
//! * **Calibration** — every simulation is logged as a
//!   [`CalibrationRecord`]; [`Calibration`] fits one multiplicative
//!   correction factor per (shape regime × strategy kind) as the
//!   geometric mean of simulated/analytic ratios, and
//!   [`ranking_agreement`] reports how much the corrected model's
//!   candidate ranking agrees with the timing model, per regime.
//!   Variants that are *not* bit-safe (different `k_a`, `m_s`, strategy
//!   kind, or core count) are still simulated with spare budget — they
//!   feed the calibration even though they can never be adopted.
//!
//! Tuned plans and calibration records persist across processes through
//! the [`crate::plan::store`] catalog.

use crate::adjust::am_budget;
use crate::plan::cost::analytic_seconds;
use crate::plan::planner::Planner;
use crate::plan::{Plan, PlanOrigin};
use crate::shape::{MAX_MICROKERNEL_ROWS, MIN_MICROKERNEL_ROWS};
use crate::{ChosenStrategy, GemmShape, IrregularType, KparBlocks, MparBlocks, Strategy};
use dspsim::HwConfig;
use kernelgen::KernelCache;

/// The three strategy kinds, as a calibration key (a [`ChosenStrategy`]
/// carries blocks; the correction model only cares about the kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// M-dimension parallelisation.
    MPar,
    /// K-dimension parallelisation.
    KPar,
    /// The traditional baseline.
    TGemm,
}

/// Number of [`StrategyKind`] variants (calibration table dimension).
pub const STRATEGY_KINDS: usize = 3;

impl StrategyKind {
    /// Every kind, in calibration-table order.
    pub const ALL: [StrategyKind; STRATEGY_KINDS] =
        [StrategyKind::MPar, StrategyKind::KPar, StrategyKind::TGemm];

    /// The kind of a resolved strategy.
    pub fn of(strategy: &ChosenStrategy) -> StrategyKind {
        match strategy {
            ChosenStrategy::MPar(_) => StrategyKind::MPar,
            ChosenStrategy::KPar(_) => StrategyKind::KPar,
            ChosenStrategy::TGemm => StrategyKind::TGemm,
        }
    }

    /// Stable lower-case tag used by the catalog codec.
    pub fn tag(self) -> &'static str {
        match self {
            StrategyKind::MPar => "mpar",
            StrategyKind::KPar => "kpar",
            StrategyKind::TGemm => "tgemm",
        }
    }

    /// Parse a [`StrategyKind::tag`] back.
    pub fn from_tag(s: &str) -> Result<StrategyKind, String> {
        StrategyKind::ALL
            .into_iter()
            .find(|k| k.tag() == s)
            .ok_or_else(|| format!("unknown strategy kind {s:?}"))
    }

    fn index(self) -> usize {
        StrategyKind::ALL
            .iter()
            .position(|&k| k == self)
            .expect("in ALL")
    }
}

/// Every shape regime, in calibration-table order.
pub const REGIMES: [IrregularType; 5] = [
    IrregularType::TallSkinnyTimesSmall,
    IrregularType::SkinnyTallTimesTallSkinny,
    IrregularType::RegularTimesTallSkinny,
    IrregularType::Small,
    IrregularType::Regular,
];

fn regime_index(r: IrregularType) -> usize {
    REGIMES.iter().position(|&x| x == r).expect("in REGIMES")
}

/// One observed (analytic, simulated) pair from a tuner simulation — the
/// unit the correction model is fitted from, persisted in the catalog.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationRecord {
    /// The problem shape the candidate was evaluated for.
    pub shape: GemmShape,
    /// Core count the candidate was evaluated at.
    pub cores: usize,
    /// The candidate's strategy kind.
    pub kind: StrategyKind,
    /// What the analytic cost model predicted, seconds.
    pub analytic_s: f64,
    /// What the timing model measured, seconds.
    pub simulated_s: f64,
}

#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct CalCell {
    log_sum: f64,
    n: u32,
}

/// Per-(regime × strategy kind) multiplicative corrections for the
/// analytic cost model, fitted as the geometric mean of observed
/// simulated/analytic ratios.  A per-regime-only scalar would cancel out
/// of every within-regime comparison; keying on the kind as well is what
/// lets the corrected model re-rank candidates of different kinds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Calibration {
    cells: [[CalCell; STRATEGY_KINDS]; 5],
}

impl Calibration {
    /// Fit a calibration from a record set.
    pub fn fit(records: &[CalibrationRecord]) -> Calibration {
        let mut cal = Calibration::default();
        for r in records {
            cal.observe(r);
        }
        cal
    }

    /// Fold one record into the fit.  Records with non-finite or
    /// non-positive seconds are ignored.
    pub fn observe(&mut self, r: &CalibrationRecord) {
        if !(r.analytic_s.is_finite() && r.simulated_s.is_finite())
            || r.analytic_s <= 0.0
            || r.simulated_s <= 0.0
        {
            return;
        }
        let cell = &mut self.cells[regime_index(r.shape.classify())][r.kind.index()];
        cell.log_sum += (r.simulated_s / r.analytic_s).ln();
        cell.n += 1;
    }

    /// The fitted correction factor for a (regime, kind) cell (`1.0`
    /// until at least one record lands in it).
    pub fn factor(&self, regime: IrregularType, kind: StrategyKind) -> f64 {
        let cell = &self.cells[regime_index(regime)][kind.index()];
        if cell.n == 0 {
            1.0
        } else {
            (cell.log_sum / f64::from(cell.n)).exp()
        }
    }

    /// Apply the correction: the calibrated estimate of simulated
    /// seconds from an analytic prediction.
    pub fn correct(&self, regime: IrregularType, kind: StrategyKind, analytic_s: f64) -> f64 {
        analytic_s * self.factor(regime, kind)
    }

    /// Total records folded in.
    pub fn observations(&self) -> u64 {
        self.cells.iter().flatten().map(|c| u64::from(c.n)).sum()
    }
}

/// Per-regime analytic-vs-simulated ranking agreement, raw and after
/// correction (see [`ranking_agreement`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegimeAgreement {
    /// The regime.
    pub regime: IrregularType,
    /// Records that fell in this regime.
    pub records: usize,
    /// Comparable record pairs (same shape and cores, distinct finite
    /// simulated seconds).
    pub pairs: usize,
    /// Pairs the *raw* analytic model ordered the same way the timing
    /// model did.
    pub raw_agree: usize,
    /// Pairs the *corrected* model ordered the same way.
    pub corrected_agree: usize,
}

impl RegimeAgreement {
    /// Raw agreement fraction (`1.0` when there are no pairs).
    pub fn raw_fraction(&self) -> f64 {
        if self.pairs == 0 {
            1.0
        } else {
            self.raw_agree as f64 / self.pairs as f64
        }
    }

    /// Corrected agreement fraction (`1.0` when there are no pairs).
    pub fn corrected_fraction(&self) -> f64 {
        if self.pairs == 0 {
            1.0
        } else {
            self.corrected_agree as f64 / self.pairs as f64
        }
    }
}

/// Pairwise ranking agreement of the analytic model against the timing
/// model, per regime: over every pair of records for the *same planning
/// decision* (same shape, same cores), does the model order the two
/// candidates the way the timing model did?  Reported raw and with
/// `cal`'s corrections applied, so calibration improvements are
/// measurable.
pub fn ranking_agreement(records: &[CalibrationRecord], cal: &Calibration) -> Vec<RegimeAgreement> {
    let mut out: Vec<RegimeAgreement> = REGIMES
        .into_iter()
        .map(|regime| RegimeAgreement {
            regime,
            records: 0,
            pairs: 0,
            raw_agree: 0,
            corrected_agree: 0,
        })
        .collect();
    for r in records {
        out[regime_index(r.shape.classify())].records += 1;
    }
    for (i, a) in records.iter().enumerate() {
        for b in records.iter().skip(i + 1) {
            if a.shape != b.shape || a.cores != b.cores {
                continue;
            }
            if !(a.analytic_s.is_finite()
                && b.analytic_s.is_finite()
                && a.simulated_s.is_finite()
                && b.simulated_s.is_finite())
                || a.simulated_s == b.simulated_s
            {
                continue;
            }
            let regime = a.shape.classify();
            let agg = &mut out[regime_index(regime)];
            agg.pairs += 1;
            let sim_lt = a.simulated_s < b.simulated_s;
            if (a.analytic_s < b.analytic_s) == sim_lt {
                agg.raw_agree += 1;
            }
            let ca = cal.correct(regime, a.kind, a.analytic_s);
            let cb = cal.correct(regime, b.kind, b.analytic_s);
            if (ca < cb) == sim_lt {
                agg.corrected_agree += 1;
            }
        }
    }
    out
}

/// The per-element f32 accumulation-order fingerprint of a resolved
/// strategy on a shape: the partitions of M, N and K its blocking
/// induces (leaf group sizes, in traversal order) plus, for K-parallel,
/// the number of accumulation streams the slice round-robin spreads K
/// over.  Two strategies with equal signatures execute every element's
/// FMA chain in the same order and are therefore bitwise interchangeable
/// — the adoption gate of the [`Tuner`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSignature {
    kind: StrategyKind,
    streams: usize,
    m_groups: Vec<usize>,
    n_groups: Vec<usize>,
    k_groups: Vec<usize>,
}

/// Leaf group sizes of nested `step_by` blocking levels over `[0, total)`
/// (each level partitions its parent chunk from the chunk's own origin,
/// exactly like the strategy runners' loops).
fn push_partition(out: &mut Vec<usize>, total: usize, levels: &[usize]) {
    match levels.split_first() {
        None => {
            if total > 0 {
                out.push(total);
            }
        }
        Some((&level, rest)) => {
            let step = level.max(1);
            let mut i = 0;
            while i < total {
                let cur = step.min(total - i);
                push_partition(out, cur, rest);
                i += cur;
            }
        }
    }
}

/// Compute the [`BitSignature`] of a strategy on a shape at a core count.
pub fn bit_signature(strategy: &ChosenStrategy, shape: &GemmShape, cores: usize) -> BitSignature {
    let mut m_groups = Vec::new();
    let mut n_groups = Vec::new();
    let mut k_groups = Vec::new();
    let (kind, streams) = match strategy {
        ChosenStrategy::MPar(b) => {
            // Row chunks of m_a (whole chunk on one core, no cross-core
            // accumulation), row groups of m_s within; K panels of k_g,
            // slices of k_a within, accumulated in K order.
            push_partition(&mut m_groups, shape.m, &[b.m_a, b.m_s]);
            push_partition(&mut n_groups, shape.n, &[b.n_g, b.n_a]);
            push_partition(&mut k_groups, shape.k, &[b.k_g, b.k_a]);
            (StrategyKind::MPar, 0)
        }
        ChosenStrategy::KPar(b) => {
            // C_g panels of m_g, m_a panels within, row groups of m_s;
            // K slices of k_a round-robined over the active cores, whose
            // partials reduce in core order.
            push_partition(&mut m_groups, shape.m, &[b.m_g, b.m_a, b.m_s]);
            push_partition(&mut n_groups, shape.n, &[b.n_g, b.n_a]);
            push_partition(&mut k_groups, shape.k, &[b.k_a]);
            let slices = shape.k.div_ceil(b.k_a.max(1)).max(1);
            (StrategyKind::KPar, cores.min(slices).max(1))
        }
        ChosenStrategy::TGemm => (StrategyKind::TGemm, 0),
    };
    BitSignature {
        kind,
        streams,
        m_groups,
        n_groups,
        k_groups,
    }
}

/// Deterministic splitmix64 stream for the seeded random probes.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[1, n]` (`1` when `n == 0`).
    fn one_to(&mut self, n: u64) -> u64 {
        if n == 0 {
            1
        } else {
            1 + self.next() % n
        }
    }
}

/// Co-execution context for a tuning run: the CPU lane and placement
/// the tuned plan will be dispatched against.  When present,
/// [`crate::FtImm::tune`] searches the CPU/DSP split fraction with
/// [`super::choose_coexec_split`] and stamps the winning M tail into
/// [`super::Plan::coexec_cpu_rows`] — the first *non-blocking* tuning
/// dimension: the split moves work between devices on the checkpoint
/// grid without touching the strategy's blocks, so adoption is never
/// gated on a [`BitSignature`] comparison (there is nothing to gate —
/// the accumulation order per row is unchanged by construction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoexecTune {
    /// CPU model of the co-execution lane.
    pub cpu: cpublas::CpuConfig,
    /// Lane-health slowdown the split is searched under (1.0 = nominal).
    pub slowdown: f64,
    /// Checkpoint grain (`ckpt_rows`) the dispatching engine will use —
    /// split boundaries are quantised to it.
    pub grain_rows: usize,
    /// Usable DSP clusters the DSP side of the split spans.
    pub clusters: usize,
}

impl Default for CoexecTune {
    fn default() -> Self {
        CoexecTune {
            cpu: cpublas::CpuConfig::default(),
            slowdown: 1.0,
            grain_rows: 64,
            clusters: 4,
        }
    }
}

/// Knobs of one tuning run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuneConfig {
    /// Total timing-simulation budget, *including* the simulations the
    /// default `Strategy::Auto` planning pipeline itself runs.
    pub max_simulations: u32,
    /// Seeded random probes over the bit-safe chunk dimensions.
    pub random_probes: u32,
    /// Refinement simulations around the best candidate found.
    pub neighborhood: u32,
    /// Spend leftover budget on calibration-only variants (`k_a`/`m_s`
    /// blocks, alternate core counts) that can never be adopted.
    pub explore: bool,
    /// Seed of the random-probe stream (tuning is deterministic per
    /// seed).
    pub seed: u64,
    /// Also search the CPU/DSP co-execution split for this lane/pool
    /// (`None` = DSP-only tuning, the pre-co-exec behaviour).
    pub coexec: Option<CoexecTune>,
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig {
            max_simulations: 24,
            random_probes: 6,
            neighborhood: 4,
            explore: true,
            seed: 0x5EED_CAFE,
            coexec: None,
        }
    }
}

/// What one [`Tuner::tune`] produced.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// The tuned plan (origin [`PlanOrigin::Tuned`]); what the catalog
    /// persists and the plan cache serves.
    pub plan: Plan,
    /// The untuned `Strategy::Auto` pick the search started from.
    pub default_plan: Plan,
    /// Distinct bit-safe variants the search considered (beyond the
    /// planner's own candidates).
    pub variants: u32,
    /// Total timing simulations the tune ran (planner's included).
    pub simulations: u32,
    /// Whether a variant beat the default pick (else the tuned plan
    /// carries the default strategy).
    pub adopted_variant: bool,
    /// Every simulation's observed (analytic, simulated) pair.
    pub records: Vec<CalibrationRecord>,
}

/// Calibration-only exploration budget (simulations) when
/// [`TuneConfig::explore`] is set.
const EXPLORE_SIMS: u32 = 6;

/// Core counts the wide exploration samples the rule pick at (records
/// only — adopted plans never change core count, which would reorder the
/// K-parallel slice round-robin).
const EXPLORE_CORE_GRID: [usize; 2] = [2, 4];

/// The autotuner.  Stateless like the [`Planner`]; calibration state
/// lives with the caller (see [`crate::FtImm::tune`]).
pub struct Tuner<'a> {
    cache: &'a KernelCache,
    cfg: &'a HwConfig,
    config: TuneConfig,
}

impl<'a> Tuner<'a> {
    /// A tuner over the shared kernel cache and hardware model.
    pub fn new(cache: &'a KernelCache, cfg: &'a HwConfig, config: TuneConfig) -> Self {
        Tuner { cache, cfg, config }
    }

    /// Bit-safe chunk-dimension variants of `base`: the deterministic
    /// ladder plus `probes` seeded random draws.  Every returned variant
    /// has the same [`BitSignature`] as `base` (and fits the AM/GSM
    /// envelopes), so adopting it cannot change results.
    fn bit_safe_variants(
        &self,
        base: &ChosenStrategy,
        shape: &GemmShape,
        cores: usize,
        rng: &mut SplitMix64,
        probes: u32,
    ) -> Vec<ChosenStrategy> {
        let base_sig = bit_signature(base, shape, cores);
        let mut out: Vec<ChosenStrategy> = Vec::new();
        let mut admit = |cand: ChosenStrategy| {
            if cand != *base
                && !out.contains(&cand)
                && bit_signature(&cand, shape, cores) == base_sig
            {
                out.push(cand);
            }
        };
        match base {
            ChosenStrategy::MPar(b) => {
                let budget = am_budget(self.cfg, b.n_a);
                let fits = |m_a: usize| m_a >= 1 && m_a + 2 * b.k_a <= budget;
                let max_mult = budget.saturating_sub(2 * b.k_a) / b.m_s.max(1);
                // k_g stays a multiple of k_a within the double-buffered
                // GSM budget (larger trades B_g reuse against panel
                // latency; the partition over the real K is unchanged as
                // long as slice boundaries stay on k_a multiples).
                let kg_max_mult = (self.cfg.gsm_bytes / (2 * 4 * b.n_g.max(1)) / b.k_a.max(1))
                    .min(shape.k.div_ceil(b.k_a.max(1)))
                    .max(1);
                let mut ladder: Vec<usize> = vec![
                    b.m_a / 2 / b.m_s.max(1) * b.m_s,
                    b.m_a * 2 / b.m_s.max(1) * b.m_s,
                ];
                for j in 1..=3usize {
                    ladder.push(b.m_a.saturating_sub(j * b.m_s));
                    ladder.push(b.m_a + j * b.m_s);
                }
                for m_a in ladder {
                    if fits(m_a) {
                        admit(ChosenStrategy::MPar(MparBlocks { m_a, ..*b }));
                    }
                }
                if b.k_g % b.k_a.max(1) == 0 {
                    let p = (b.k_g / b.k_a.max(1)).max(1);
                    for q in [p / 2, p * 2, 1, kg_max_mult] {
                        let q = q.clamp(1, kg_max_mult);
                        admit(ChosenStrategy::MPar(MparBlocks {
                            k_g: q * b.k_a,
                            ..*b
                        }));
                    }
                }
                for _ in 0..probes {
                    let m_a = b.m_s.max(1) * rng.one_to(max_mult as u64) as usize;
                    let k_g = b.k_a * rng.one_to(kg_max_mult as u64) as usize;
                    if fits(m_a) {
                        admit(ChosenStrategy::MPar(MparBlocks { m_a, k_g, ..*b }));
                    }
                }
            }
            ChosenStrategy::KPar(b) => {
                let budget = am_budget(self.cfg, b.n_a);
                let gsm_elems = self.cfg.gsm_bytes / 4;
                let fits = |m_g: usize, m_a: usize| {
                    m_a >= 1 && m_a <= m_g && m_a + 2 * b.k_a <= budget && m_g * b.n_g <= gsm_elems
                };
                let mut ladder: Vec<(usize, usize)> =
                    vec![(b.m_g / 2, b.m_a.min(b.m_g / 2)), (b.m_g * 2, b.m_a)];
                for j in 1..=3usize {
                    ladder.push((b.m_g, b.m_a.saturating_sub(j * b.m_s)));
                    ladder.push((b.m_g, b.m_a + j * b.m_s));
                }
                for (m_g, m_a) in ladder {
                    if fits(m_g, m_a) {
                        admit(ChosenStrategy::KPar(KparBlocks { m_g, m_a, ..*b }));
                    }
                }
                let max_mult = budget.saturating_sub(2 * b.k_a) / b.m_s.max(1);
                for _ in 0..probes {
                    let m_a = b.m_s.max(1) * rng.one_to(max_mult as u64) as usize;
                    let m_g = b.m_g << (rng.next() % 3);
                    if fits(m_g, m_a) {
                        admit(ChosenStrategy::KPar(KparBlocks { m_g, m_a, ..*b }));
                    }
                }
            }
            ChosenStrategy::TGemm => {}
        }
        out
    }

    /// Calibration-only variants: block/kind/core-count changes that are
    /// *not* bit-safe and are simulated purely to feed the correction
    /// model.  Returned as (strategy, cores) pairs.
    fn exploration_variants(
        &self,
        base: &ChosenStrategy,
        cores: usize,
    ) -> Vec<(ChosenStrategy, usize)> {
        let mut out: Vec<(ChosenStrategy, usize)> = Vec::new();
        let mut push = |c: ChosenStrategy, n: usize| {
            if (c != *base || n != cores) && !out.contains(&(c, n)) {
                out.push((c, n));
            }
        };
        // The rule pick across the core grid: how parallel efficiency
        // really scales, per regime.
        for n in EXPLORE_CORE_GRID {
            if n != cores {
                push(*base, n);
            }
        }
        // k_a / m_s perturbations: different kernel specs, different
        // slice partitions — never adoptable, always informative.
        match base {
            ChosenStrategy::MPar(b) => {
                let budget = am_budget(self.cfg, b.n_a);
                for k_a in [b.k_a.saturating_sub(32), b.k_a + 32] {
                    if k_a >= 32 && b.m_a + 2 * k_a <= budget {
                        push(ChosenStrategy::MPar(MparBlocks { k_a, ..*b }), cores);
                    }
                }
                for m_s in [b.m_s.saturating_sub(1), b.m_s + 1] {
                    if (MIN_MICROKERNEL_ROWS..=MAX_MICROKERNEL_ROWS).contains(&m_s) {
                        push(ChosenStrategy::MPar(MparBlocks { m_s, ..*b }), cores);
                    }
                }
            }
            ChosenStrategy::KPar(b) => {
                let budget = am_budget(self.cfg, b.n_a);
                for k_a in [b.k_a.saturating_sub(32), b.k_a + 32] {
                    if k_a >= 32 && b.m_a + 2 * k_a <= budget {
                        push(ChosenStrategy::KPar(KparBlocks { k_a, ..*b }), cores);
                    }
                }
                for m_s in [b.m_s.saturating_sub(1), b.m_s + 1] {
                    if (MIN_MICROKERNEL_ROWS..=MAX_MICROKERNEL_ROWS).contains(&m_s) {
                        push(ChosenStrategy::KPar(KparBlocks { m_s, ..*b }), cores);
                    }
                }
            }
            ChosenStrategy::TGemm => {}
        }
        out
    }

    /// Tune one (shape, cores) request.
    ///
    /// `simulate` evaluates a candidate at a core count on the timing
    /// model and returns predicted seconds (`INFINITY` for a candidate
    /// that cannot run).  `calibration` steers which candidates are
    /// simulated first; passing [`Calibration::default`] is always
    /// valid.  Deterministic: the same inputs (including the seed and
    /// calibration) produce the identical outcome.
    ///
    /// The default `Strategy::Auto` pick is always simulated first and
    /// the tuned plan takes the minimum over everything simulated, so
    /// `plan.simulated_s <= default_plan.simulated_s` holds by
    /// construction — a tuned plan is never predicted slower than the
    /// analytic pick.
    pub fn tune<F: FnMut(&ChosenStrategy, usize) -> f64>(
        &self,
        shape: &GemmShape,
        cores: usize,
        calibration: &Calibration,
        mut simulate: F,
    ) -> TuneOutcome {
        let regime = shape.classify();
        let mut records: Vec<CalibrationRecord> = Vec::new();
        let mut sims: u32 = 0;

        // Phase 1: the planner's own pipeline (rule pick, alternative,
        // TGEMM, grid variants), with every simulation recorded.
        let default_plan = Planner::new(self.cache, self.cfg).plan(
            shape,
            Strategy::Auto,
            cores,
            |c: &ChosenStrategy| {
                sims += 1;
                let analytic_s = analytic_seconds(self.cache, self.cfg, shape, c, cores);
                let simulated_s = simulate(c, cores);
                records.push(CalibrationRecord {
                    shape: *shape,
                    cores,
                    kind: StrategyKind::of(c),
                    analytic_s,
                    simulated_s,
                });
                simulated_s
            },
        );
        let mut best = (default_plan.strategy, default_plan.simulated_s);
        let max = self.config.max_simulations.max(sims);
        let mut run = |c: &ChosenStrategy,
                       n: usize,
                       sims: &mut u32,
                       records: &mut Vec<CalibrationRecord>|
         -> f64 {
            *sims += 1;
            let analytic_s = analytic_seconds(self.cache, self.cfg, shape, c, n);
            let simulated_s = simulate(c, n);
            records.push(CalibrationRecord {
                shape: *shape,
                cores: n,
                kind: StrategyKind::of(c),
                analytic_s,
                simulated_s,
            });
            simulated_s
        };

        // Phase 2: bit-safe ladder + seeded random probes, ranked by the
        // calibration-corrected analytic model, simulated best-first
        // while budget (minus the refinement/exploration reserve) lasts.
        let mut rng = SplitMix64::new(
            self.config
                .seed
                .wrapping_add((shape.m as u64).wrapping_mul(0x9E37_79B9))
                .wrapping_add((shape.n as u64).wrapping_mul(0x85EB_CA6B))
                .wrapping_add((shape.k as u64).wrapping_mul(0xC2B2_AE35))
                .wrapping_add(cores as u64),
        );
        let variants = self.bit_safe_variants(
            &default_plan.strategy,
            shape,
            cores,
            &mut rng,
            self.config.random_probes,
        );
        let mut scored: Vec<(f64, ChosenStrategy)> = variants
            .iter()
            .map(|c| {
                let a = analytic_seconds(self.cache, self.cfg, shape, c, cores);
                (calibration.correct(regime, StrategyKind::of(c), a), *c)
            })
            .filter(|(a, _)| a.is_finite())
            .collect();
        scored.sort_by(|x, y| x.0.total_cmp(&y.0));
        let reserve = self.config.neighborhood + if self.config.explore { EXPLORE_SIMS } else { 0 };
        let mut simulated: Vec<ChosenStrategy> = Vec::new();
        for (_, cand) in &scored {
            if sims + reserve >= max {
                break;
            }
            let t = run(cand, cores, &mut sims, &mut records);
            simulated.push(*cand);
            if t < best.1 {
                best = (*cand, t);
            }
        }

        // Phase 3: neighborhood refinement — one chunk step either side
        // of the best candidate so far, still signature-gated.
        let mut refined = 0u32;
        while refined < self.config.neighborhood {
            let neighbors = self.bit_safe_variants(&best.0, shape, cores, &mut rng, 0);
            let next = neighbors
                .into_iter()
                .find(|c| *c != default_plan.strategy && !simulated.contains(c));
            let Some(cand) = next else { break };
            if sims + if self.config.explore { EXPLORE_SIMS } else { 0 } >= max {
                break;
            }
            let t = run(&cand, cores, &mut sims, &mut records);
            simulated.push(cand);
            refined += 1;
            if t < best.1 {
                best = (cand, t);
            }
        }

        // Phase 4: calibration-only exploration with whatever budget is
        // left — candidates that can never be adopted but teach the
        // correction model how the analytic model errs per regime.
        if self.config.explore {
            for (cand, n) in self.exploration_variants(&default_plan.strategy, cores) {
                if sims >= max {
                    break;
                }
                run(&cand, n, &mut sims, &mut records);
            }
        }

        let adopted_variant = best.0 != default_plan.strategy;
        let plan = Plan {
            shape: *shape,
            cores,
            strategy: best.0,
            origin: PlanOrigin::Tuned,
            predicted_s: analytic_seconds(self.cache, self.cfg, shape, &best.0, cores),
            simulated_s: best.1,
            candidates: default_plan.candidates + variants.len() as u32,
            simulations: sims,
            coexec_cpu_rows: 0,
        };
        TuneOutcome {
            plan,
            default_plan,
            variants: variants.len() as u32,
            simulations: sims,
            adopted_variant,
            records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjust::{adjust_kpar, adjust_mpar};

    fn setup() -> (KernelCache, HwConfig) {
        let cfg = HwConfig::default();
        (KernelCache::new(cfg.clone()), cfg)
    }

    #[test]
    fn partitions_match_the_runner_loops() {
        let mut groups = Vec::new();
        // 2-level: chunks of 10, groups of 4 over 23 rows.
        push_partition(&mut groups, 23, &[10, 4]);
        assert_eq!(groups, vec![4, 4, 2, 4, 4, 2, 3]);
        groups.clear();
        push_partition(&mut groups, 8, &[16]);
        assert_eq!(groups, vec![8]);
    }

    #[test]
    fn mpar_chunk_variants_share_the_signature_when_aligned() {
        let shape = GemmShape::new(4096, 32, 512);
        let base = MparBlocks {
            n_g: 32,
            k_g: 512,
            m_a: 320,
            n_a: 32,
            k_a: 256,
            m_s: 8,
        };
        let sig = bit_signature(&ChosenStrategy::MPar(base), &shape, 8);
        // m_a moved by a multiple of m_s: same row-group partition.
        let moved = MparBlocks { m_a: 328, ..base };
        assert_eq!(bit_signature(&ChosenStrategy::MPar(moved), &shape, 8), sig);
        // k_g moved by a multiple of k_a: same K-slice partition.
        let deeper = MparBlocks { k_g: 256, ..base };
        assert_eq!(bit_signature(&ChosenStrategy::MPar(deeper), &shape, 8), sig);
        // k_a change: different slice partition, different signature.
        let resliced = MparBlocks { k_a: 128, ..base };
        assert_ne!(
            bit_signature(&ChosenStrategy::MPar(resliced), &shape, 8),
            sig
        );
        // m_a misaligned to m_s: a short row group appears mid-matrix.
        let misaligned = MparBlocks { m_a: 323, ..base };
        assert_ne!(
            bit_signature(&ChosenStrategy::MPar(misaligned), &shape, 8),
            sig
        );
    }

    #[test]
    fn kpar_signature_tracks_core_streams() {
        let shape = GemmShape::new(32, 32, 1 << 14);
        let b = KparBlocks {
            m_g: 1024,
            n_g: 32,
            m_a: 32,
            n_a: 32,
            k_a: 512,
            m_s: 8,
        };
        let s8 = bit_signature(&ChosenStrategy::KPar(b), &shape, 8);
        let s4 = bit_signature(&ChosenStrategy::KPar(b), &shape, 4);
        assert_ne!(s8, s4, "core count reorders the slice round-robin");
    }

    #[test]
    fn tuner_variants_are_signature_gated() {
        let (cache, cfg) = setup();
        let tuner = Tuner::new(&cache, &cfg, TuneConfig::default());
        for shape in [
            GemmShape::new(1 << 14, 32, 512),
            GemmShape::new(32, 32, 1 << 14),
        ] {
            let base = match shape.classify() {
                IrregularType::SkinnyTallTimesTallSkinny => {
                    ChosenStrategy::KPar(adjust_kpar(&cache, &cfg, &shape, 8))
                }
                _ => ChosenStrategy::MPar(adjust_mpar(&cache, &cfg, &shape, 8)),
            };
            let sig = bit_signature(&base, &shape, 8);
            let mut rng = SplitMix64::new(1);
            let variants = tuner.bit_safe_variants(&base, &shape, 8, &mut rng, 8);
            assert!(!variants.is_empty(), "{shape}: no variants generated");
            for v in &variants {
                assert_eq!(bit_signature(v, &shape, 8), sig, "{shape}: {v:?}");
                assert_ne!(*v, base);
            }
        }
    }

    #[test]
    fn tuning_is_deterministic_and_never_worse_than_default() {
        let (cache, cfg) = setup();
        let shape = GemmShape::new(4096, 32, 512);
        // A deterministic fake timing model: a fixed skew of the
        // analytic estimate so candidate ranking is non-trivial.
        let fake = |c: &ChosenStrategy, n: usize| {
            analytic_seconds(&cache, &cfg, &shape, c, n) * 1.25 + 1e-6
        };
        let tuner = Tuner::new(&cache, &cfg, TuneConfig::default());
        let cal = Calibration::default();
        let o1 = tuner.tune(&shape, 8, &cal, fake);
        let o2 = tuner.tune(&shape, 8, &cal, fake);
        assert_eq!(o1.plan, o2.plan, "tuning must be deterministic");
        assert_eq!(o1.records, o2.records);
        assert!(o1.plan.simulated_s <= o1.default_plan.simulated_s);
        assert_eq!(o1.plan.origin, PlanOrigin::Tuned);
        assert!(o1.simulations <= TuneConfig::default().max_simulations);
        assert_eq!(o1.simulations as usize, o1.records.len());
        // Adopted strategies are bitwise interchangeable with the default.
        assert_eq!(
            bit_signature(&o1.plan.strategy, &shape, 8),
            bit_signature(&o1.default_plan.strategy, &shape, 8)
        );
    }

    #[test]
    fn calibration_improves_cross_kind_ranking() {
        // Synthetic regime where the analytic model under-costs KPar 4×:
        // raw ranking gets every MPar-vs-KPar pair wrong, the fitted
        // per-kind factors set it right.
        let shape = GemmShape::new(32, 32, 1 << 14);
        let mk = |kind: StrategyKind, analytic: f64, simulated: f64| CalibrationRecord {
            shape,
            cores: 8,
            kind,
            analytic_s: analytic,
            simulated_s: simulated,
        };
        let records = vec![
            mk(StrategyKind::KPar, 1.0e-3, 4.1e-3),
            mk(StrategyKind::KPar, 1.1e-3, 4.4e-3),
            mk(StrategyKind::MPar, 2.0e-3, 2.1e-3),
            mk(StrategyKind::MPar, 2.2e-3, 2.3e-3),
        ];
        let cal = Calibration::fit(&records);
        assert!(cal.factor(shape.classify(), StrategyKind::KPar) > 3.0);
        let agreement = ranking_agreement(&records, &cal);
        let regime = agreement
            .iter()
            .find(|a| a.regime == shape.classify())
            .unwrap();
        assert_eq!(regime.records, 4);
        assert!(regime.pairs >= 4);
        assert!(
            regime.corrected_agree > regime.raw_agree,
            "correction must improve ranking agreement: {regime:?}"
        );
        assert!(regime.corrected_fraction() >= 1.0 - 1e-12);
    }

    #[test]
    fn empty_calibration_is_identity() {
        let cal = Calibration::default();
        for regime in REGIMES {
            for kind in StrategyKind::ALL {
                assert_eq!(cal.factor(regime, kind), 1.0);
                assert_eq!(cal.correct(regime, kind, 2.5), 2.5);
            }
        }
        assert_eq!(cal.observations(), 0);
        // Non-finite and non-positive records are ignored.
        let mut cal = cal;
        cal.observe(&CalibrationRecord {
            shape: GemmShape::new(8, 8, 8),
            cores: 1,
            kind: StrategyKind::TGemm,
            analytic_s: f64::INFINITY,
            simulated_s: 1.0,
        });
        assert_eq!(cal.observations(), 0);
    }

    #[test]
    fn strategy_kind_tags_round_trip() {
        for kind in StrategyKind::ALL {
            assert_eq!(StrategyKind::from_tag(kind.tag()).unwrap(), kind);
        }
        assert!(StrategyKind::from_tag("nope").is_err());
    }
}
