//! Roofline model for a GPDSP cluster (used as the "maximum performance"
//! line in Fig 5 of the paper).

use crate::GemmShape;
use dspsim::HwConfig;

/// Bytes a GEMM must move across DDR at minimum: read A and B once, read
/// and write C once (the `C += A×B` contract).
pub fn min_ddr_bytes(shape: &GemmShape) -> u64 {
    4 * (shape.m as u64 * shape.k as u64
        + shape.k as u64 * shape.n as u64
        + 2 * shape.m as u64 * shape.n as u64)
}

/// Arithmetic intensity in flops per DDR byte.
pub fn arithmetic_intensity(shape: &GemmShape) -> f64 {
    shape.flops() as f64 / min_ddr_bytes(shape) as f64
}

/// Roofline-bounded performance (flop/s) for the given number of cores,
/// using the *theoretical* DDR bandwidth (as the paper does; achieved
/// performance is capped lower by the real bandwidth).
pub fn roofline_flops(cfg: &HwConfig, shape: &GemmShape, cores: usize) -> f64 {
    let peak = cfg.core_peak_flops() * cores as f64;
    let bw_bound = arithmetic_intensity(shape) * cfg.ddr_bw;
    peak.min(bw_bound)
}

/// Roofline GFLOPS convenience wrapper.
pub fn roofline_gflops(cfg: &HwConfig, shape: &GemmShape, cores: usize) -> f64 {
    roofline_flops(cfg, shape, cores) / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_bytes_counts_c_twice() {
        let s = GemmShape::new(10, 20, 30);
        assert_eq!(min_ddr_bytes(&s), 4 * (300 + 600 + 400));
    }

    #[test]
    fn skinny_shapes_are_bandwidth_bound() {
        let cfg = HwConfig::default();
        // Type 1 with tiny K: AI ≈ 2·K/…, far below the machine balance.
        let s = GemmShape::new(1 << 20, 32, 32);
        let r = roofline_flops(&cfg, &s, 8);
        assert!(r < cfg.cluster_peak_flops());
        assert!(r > 0.0);
        // More cores do not lift a bandwidth-bound roofline.
        assert_eq!(r, roofline_flops(&cfg, &s, 4).max(r.min(r)));
    }

    #[test]
    fn compute_bound_when_all_dims_large() {
        let cfg = HwConfig::default();
        let s = GemmShape::new(20480, 96, 20480);
        // AI = 2MNK / 4(MK + KN + 2MN) ≈ 46 flops/byte ⇒ 42.6 GB/s × 46
        // ≈ 1.96 TFLOPS < 2.76 TFLOPS peak: still bandwidth-limited on 8
        // cores, compute-bound on 4.
        let r8 = roofline_flops(&cfg, &s, 8);
        assert!(r8 < cfg.cluster_peak_flops());
        let r1 = roofline_flops(&cfg, &s, 1);
        assert_eq!(r1, cfg.core_peak_flops());
    }

    #[test]
    fn intensity_grows_with_n() {
        let a = arithmetic_intensity(&GemmShape::new(4096, 16, 4096));
        let b = arithmetic_intensity(&GemmShape::new(4096, 96, 4096));
        assert!(b > a);
    }
}
