//! Deadline-aware resilient job engine.
//!
//! [`JobQueue`] admits GEMM and batched-GEMM jobs with optional per-job
//! deadlines and drains them through the resilience layer
//! ([`crate::resilience::run_resilient_full`]) on one simulated machine:
//!
//! * **Deadlines** arm the simulator watchdog for the job's budget on the
//!   *simulated* clock.  A job that passes its deadline is preempted at
//!   the next work-issue point and reported as
//!   [`JobOutcome::DeadlineExceeded`] together with its checkpoint
//!   progress — never retried (a deadline is a budget decision, not a
//!   fault).
//! * **Circuit breakers** guard each physical core.  A breaker counts the
//!   consecutive transient faults its core was implicated in (including
//!   faults a retry absorbed); after [`EngineConfig::breaker_threshold`]
//!   it *opens* and the core is routed around via the machine's
//!   logical→physical map.  After [`EngineConfig::breaker_cooldown_s`]
//!   simulated seconds the breaker *half-opens*: the next job first
//!   probes the suspect core alone with a small canary GEMM, and the
//!   breaker closes on success or re-opens on another fault.
//! * **Quarantine**: a job whose resilient run fails on two different
//!   core maps is poisoned ([`JobOutcome::Poisoned`]) — on a
//!   deterministic machine the same job and map always fail identically,
//!   so a failure that survives a map change is blamed on the job, not
//!   the cores.
//!
//! Everything is driven by the simulated clock, so engine behaviour —
//! which jobs trip deadlines, when breakers open and close — is exactly
//! reproducible for a given job sequence and fault plan.

use crate::plan::Plan;
use crate::resilience::ResilienceConfig;
use crate::{
    BatchReport, Executor, FtImm, FtimmError, GemmBatch, GemmProblem, GemmShape, Strategy,
};
use dspsim::{Machine, RunReport};

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Consecutive transient faults implicating one physical core before
    /// its circuit breaker opens.
    pub breaker_threshold: u32,
    /// Simulated seconds an open breaker waits before half-opening for a
    /// canary probe.
    pub breaker_cooldown_s: f64,
    /// Core maps a failing job may try before it is poisoned.
    pub max_attempts: u32,
    /// Shape of the canary GEMM a half-open breaker probes its core with.
    pub canary: GemmShape,
    /// Hung-DMA budget armed alongside every job deadline (simulated
    /// seconds a single transfer may take before the watchdog calls it
    /// hung).  Infinite by default: only the fault plan's own timeout
    /// charge applies.
    pub dma_budget_s: f64,
    /// Recovery configuration for each job's resilient run.
    pub resilience: ResilienceConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            breaker_threshold: 3,
            breaker_cooldown_s: 1e-3,
            max_attempts: 2,
            canary: GemmShape::new(8, 8, 8),
            dma_budget_s: f64::INFINITY,
            resilience: ResilienceConfig::default(),
        }
    }
}

/// Engine-assigned job identifier (submission order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// What a job runs.
enum JobSpec {
    /// A GEMM over matrices the caller has already allocated and
    /// uploaded on the machine.
    Gemm { problem: GemmProblem },
    /// A batched small GEMM staged from host buffers (see
    /// [`GemmBatch::run`] for the layout).
    Batch {
        batch: GemmBatch,
        elements: Vec<f32>,
        operator: Vec<f32>,
        out: Vec<f32>,
    },
}

/// A unit of work admitted to the [`JobQueue`].
pub struct Job {
    /// Simulated-seconds budget measured from the moment the job starts;
    /// `None` runs without a watchdog deadline.
    pub deadline_s: Option<f64>,
    /// Planning strategy for the run.
    pub strategy: Strategy,
    /// Cores requested (clamped to the healthy map at run time).
    pub cores: usize,
    spec: JobSpec,
}

impl Job {
    /// A GEMM job over an already-staged problem.
    pub fn gemm(problem: GemmProblem, strategy: Strategy, cores: usize) -> Self {
        Job {
            deadline_s: None,
            strategy,
            cores,
            spec: JobSpec::Gemm { problem },
        }
    }

    /// A batched-GEMM job staged from host buffers; `out` is the stacked
    /// accumulator and is returned (updated) in the job's outcome.
    pub fn batch(
        batch: GemmBatch,
        elements: Vec<f32>,
        operator: Vec<f32>,
        out: Vec<f32>,
        strategy: Strategy,
        cores: usize,
    ) -> Self {
        Job {
            deadline_s: None,
            strategy,
            cores,
            spec: JobSpec::Batch {
                batch,
                elements,
                operator,
                out,
            },
        }
    }

    /// Set the job's deadline (simulated seconds from job start).
    pub fn with_deadline(mut self, seconds: f64) -> Self {
        self.deadline_s = Some(seconds);
        self
    }
}

/// Terminal state of one job.
#[derive(Debug)]
pub enum JobOutcome {
    /// The run finished (possibly after absorbed faults — see
    /// `report.faults`).  `out` carries the updated accumulator for batch
    /// jobs, `batch` their per-element statistics.
    Completed {
        /// The resilient run's report.
        report: Box<RunReport>,
        /// The plan the engine resolved for the final attempt.
        plan: Plan,
        /// Updated stacked accumulator (batch jobs only).
        out: Option<Vec<f32>>,
        /// Batch statistics (batch jobs only).
        batch: Option<Box<BatchReport>>,
    },
    /// The watchdog preempted the job past its deadline.
    DeadlineExceeded {
        /// Simulated time the watchdog tripped.
        at: f64,
        /// `C` rows whose checkpoint had completed by then.
        rows_verified: usize,
        /// The job's total row count.
        rows_total: usize,
    },
    /// The job failed on ≥ 2 distinct core maps and is quarantined.
    Poisoned {
        /// Attempts consumed.
        attempts: u32,
        /// The core maps the attempts ran on.
        core_maps: Vec<Vec<usize>>,
        /// The final attempt's error.
        last_error: FtimmError,
    },
    /// The job cannot run at all (invalid problem, capacity, dead
    /// cluster) — retrying is pointless.
    Failed {
        /// The error.
        error: FtimmError,
    },
}

/// A drained job: its id, outcome and the core map of its final attempt.
#[derive(Debug)]
pub struct JobRecord {
    /// Engine-assigned id (submission order).
    pub id: JobId,
    /// Terminal state.
    pub outcome: JobOutcome,
    /// Physical cores the final attempt ran on.
    pub core_map: Vec<usize>,
}

/// Circuit-breaker state for one physical core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: the core takes work; consecutive faults are counted.
    Closed,
    /// Tripped: the core is routed around until the cooldown expires.
    Open,
    /// Cooldown expired: the next job probes the core with a canary GEMM
    /// before it rejoins the map.
    HalfOpen,
}

/// Per-core breaker bookkeeping (simulated-clock driven).
///
/// Public so supervisors above [`JobQueue`] (the multi-cluster
/// [`crate::cluster::ShardedEngine`], property tests) can run the same
/// state machine per fault domain: Closed counts consecutive faults and
/// opens at a threshold, Open waits out a cooldown on the simulated
/// clock, HalfOpen admits one canary probe whose outcome either closes
/// or re-opens the breaker.
#[derive(Debug, Clone, Copy)]
pub struct CircuitBreaker {
    state: BreakerState,
    consecutive_faults: u32,
    opened_at: f64,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new()
    }
}

impl CircuitBreaker {
    /// A fresh breaker: Closed with no faults on record.
    pub fn new() -> Self {
        CircuitBreaker {
            state: BreakerState::Closed,
            consecutive_faults: 0,
            opened_at: 0.0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Consecutive faults recorded since the last success (resets on
    /// [`CircuitBreaker::record_success`]).
    pub fn consecutive_faults(&self) -> u32 {
        self.consecutive_faults
    }

    /// The core was implicated in a transient fault at simulated `now`.
    pub fn record_fault(&mut self, threshold: u32, now: f64) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_faults += 1;
                if self.consecutive_faults >= threshold {
                    self.state = BreakerState::Open;
                    self.opened_at = now;
                }
            }
            // A fault during the half-open probe re-opens immediately.
            BreakerState::HalfOpen | BreakerState::Open => {
                self.state = BreakerState::Open;
                self.opened_at = now;
            }
        }
    }

    /// The core completed work without a fault.
    pub fn record_success(&mut self) {
        self.consecutive_faults = 0;
        self.state = BreakerState::Closed;
    }

    /// Move Open → HalfOpen once the cooldown has elapsed.
    pub fn tick(&mut self, now: f64, cooldown_s: f64) {
        if self.state == BreakerState::Open && now - self.opened_at >= cooldown_s {
            self.state = BreakerState::HalfOpen;
        }
    }

    /// Whether the core may take regular work right now.
    pub fn admits_work(&self) -> bool {
        self.state == BreakerState::Closed
    }
}

/// A FIFO queue of jobs drained through the resilience layer with
/// deadlines, circuit breakers and poison quarantine.  See the module
/// docs for the model.
pub struct JobQueue {
    cfg: EngineConfig,
    jobs: Vec<(JobId, Job)>,
    next_id: u64,
    breakers: Vec<CircuitBreaker>,
}

impl JobQueue {
    /// An empty queue with the given configuration.
    pub fn new(cfg: EngineConfig) -> Self {
        JobQueue {
            cfg,
            jobs: Vec::new(),
            next_id: 0,
            breakers: Vec::new(),
        }
    }

    /// Admit a job; ids are assigned in submission order.
    pub fn submit(&mut self, job: Job) -> JobId {
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.jobs.push((id, job));
        id
    }

    /// Jobs waiting to run.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Breaker state per physical core (empty before the first
    /// [`JobQueue::run_all`]).
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        self.breakers.iter().map(|b| b.state).collect()
    }

    /// Drain the queue in submission order on `m`, returning one record
    /// per job.  The machine's core map is left covering every alive,
    /// breaker-admitted core.
    pub fn run_all(&mut self, ft: &FtImm, m: &mut Machine) -> Vec<JobRecord> {
        if self.breakers.is_empty() {
            self.breakers = vec![CircuitBreaker::new(); m.cfg.cores_per_cluster];
        }
        let mut records = Vec::with_capacity(self.jobs.len());
        for (id, job) in std::mem::take(&mut self.jobs) {
            self.probe_half_open_breakers(ft, m);
            let (outcome, core_map) = self.run_job(ft, m, job);
            records.push(JobRecord {
                id,
                outcome,
                core_map,
            });
            self.restore_map(m, &[]);
        }
        records
    }

    /// Every alive physical core (failed cores drop out permanently).
    fn alive_phys(&self, m: &Machine) -> Vec<usize> {
        (0..m.cfg.cores_per_cluster)
            .filter(|&p| !m.is_core_failed(p))
            .collect()
    }

    /// Point the machine at every alive core whose breaker admits work,
    /// additionally excluding `exclude`.  Falls back to all alive cores
    /// when that would leave the map empty (degraded beats dead).
    /// Returns the map installed.
    fn restore_map(&self, m: &mut Machine, exclude: &[usize]) -> Vec<usize> {
        let alive = self.alive_phys(m);
        let healthy: Vec<usize> = alive
            .iter()
            .copied()
            .filter(|&p| self.breakers[p].admits_work() && !exclude.contains(&p))
            .collect();
        let map = if healthy.is_empty() { alive } else { healthy };
        if !map.is_empty() {
            m.set_core_map(&map);
        }
        map
    }

    /// Probe each half-open breaker with a canary GEMM on the suspect
    /// core alone: success closes the breaker, a fault re-opens it.
    fn probe_half_open_breakers(&mut self, ft: &FtImm, m: &mut Machine) {
        let now = m.elapsed();
        for b in &mut self.breakers {
            b.tick(now, self.cfg.breaker_cooldown_s);
        }
        for phys in 0..self.breakers.len() {
            if self.breakers[phys].state != BreakerState::HalfOpen || m.is_core_failed(phys) {
                continue;
            }
            m.set_core_map(&[phys]);
            match self.run_canary(ft, m) {
                Ok(()) => self.breakers[phys].record_success(),
                Err(e) => {
                    if let FtimmError::Sim(dspsim::SimError::CoreFailed { core, .. }) = &e {
                        m.retire_core(*core);
                    }
                    self.breakers[phys].record_fault(self.cfg.breaker_threshold, m.elapsed());
                }
            }
        }
        self.restore_map(m, &[]);
    }

    /// One canary GEMM on whatever map is installed.
    fn run_canary(&self, ft: &FtImm, m: &mut Machine) -> Result<(), FtimmError> {
        let s = self.cfg.canary;
        let p = GemmProblem::alloc(m, s.m, s.n, s.k)?;
        if m.mode.is_functional() {
            p.a.upload(m, &crate::reference::fill_matrix(s.m * s.k, 11))?;
            p.b.upload(m, &crate::reference::fill_matrix(s.k * s.n, 12))?;
            p.c.upload(m, &vec![0.0; s.m * s.n])?;
        }
        ft.gemm(m, &p, Strategy::Rules, 1).map(|_| ())
    }

    /// Run one job to a terminal outcome.
    fn run_job(&mut self, ft: &FtImm, m: &mut Machine, job: Job) -> (JobOutcome, Vec<usize>) {
        // Snapshot the accumulator so a later attempt restarts from clean
        // state even if a failed attempt left C partially updated.
        let (problem, c0) = match &job.spec {
            JobSpec::Gemm { problem } => {
                let c0 = if m.mode.is_functional() {
                    match problem.c.download(m) {
                        Ok(v) => Some(v),
                        Err(e) => return (JobOutcome::Failed { error: e.into() }, Vec::new()),
                    }
                } else {
                    None
                };
                (Some(*problem), c0)
            }
            JobSpec::Batch { .. } => (None, None),
        };

        let mut exclude: Vec<usize> = Vec::new();
        let mut core_maps: Vec<Vec<usize>> = Vec::new();
        let mut attempt = 0u32;
        loop {
            let map = self.restore_map(m, &exclude);
            if map.is_empty() {
                let error = FtimmError::Invalid("no alive cores left in the cluster".into());
                return (JobOutcome::Failed { error }, map);
            }
            attempt += 1;

            // Stage this attempt's problem.
            let p = match &job.spec {
                JobSpec::Gemm { .. } => {
                    let p = problem.expect("gemm spec staged above");
                    if attempt > 1 {
                        if let Some(c0) = &c0 {
                            if let Err(e) = p.c.upload(m, c0) {
                                return (JobOutcome::Failed { error: e.into() }, map);
                            }
                        }
                    }
                    p
                }
                JobSpec::Batch {
                    batch,
                    elements,
                    operator,
                    out,
                    ..
                } => {
                    let shape = batch.flat_shape();
                    match Self::stage_batch(m, shape, elements, operator, out) {
                        Ok(p) => p,
                        Err(e) => return (JobOutcome::Failed { error: e }, map),
                    }
                }
            };

            // Plan and run this attempt through the shared executor: it
            // arms the watchdog for the job's budget, resolves the plan
            // and drives the resilient run.
            let run = match Executor::new(ft)
                .strategy(job.strategy)
                .cores(job.cores.clamp(1, map.len()))
                .resilient(self.cfg.resilience)
                .with_deadline(job.deadline_s)
                .dma_budget(self.cfg.dma_budget_s)
                .dispatch(m, &p)
            {
                Ok(run) => run,
                Err(error) => return (JobOutcome::Failed { error }, map),
            };
            let plan = run.plan;

            // Feed the breakers: implicated cores fault, the rest of the
            // map succeeded.  Breaker timestamps use the *healthy* cores'
            // clocks — a faulted core's clock is inflated by its hang
            // charges and would stall the cooldown once the core is
            // routed out of [`Machine::elapsed`]'s view.
            let now = map
                .iter()
                .filter(|p| !run.fault_cores.contains(p))
                .map(|&p| m.physical_time(p))
                .fold(0.0, f64::max);
            let now = if now > 0.0 { now } else { m.elapsed() };
            for &c in &run.fault_cores {
                self.breakers[c].record_fault(self.cfg.breaker_threshold, now);
            }
            if run.result.is_ok() {
                for &c in &map {
                    if !run.fault_cores.contains(&c) {
                        self.breakers[c].record_success();
                    }
                }
            }

            match run.result {
                Ok(report) => {
                    let (out, batch) = match job.spec {
                        JobSpec::Gemm { .. } => (None, None),
                        JobSpec::Batch { batch, mut out, .. } => {
                            if m.mode.is_functional() {
                                match p.c.download(m) {
                                    Ok(v) => out.copy_from_slice(&v),
                                    Err(e) => return (JobOutcome::Failed { error: e.into() }, map),
                                }
                            }
                            let br = BatchReport {
                                run: report,
                                plan,
                                faults: report.faults,
                                seconds_per_element: report.seconds / batch.count as f64,
                            };
                            (Some(out), Some(Box::new(br)))
                        }
                    };
                    return (
                        JobOutcome::Completed {
                            report: Box::new(report),
                            plan,
                            out,
                            batch,
                        },
                        map,
                    );
                }
                Err(e) if e.is_deadline() => {
                    let at = match &e {
                        FtimmError::Sim(dspsim::SimError::WatchdogTripped { at, .. }) => *at,
                        _ => now,
                    };
                    return (
                        JobOutcome::DeadlineExceeded {
                            at,
                            rows_verified: run.rows_verified,
                            rows_total: run.rows_total,
                        },
                        map,
                    );
                }
                Err(e) if e.is_transient_fault() => {
                    core_maps.push(map.clone());
                    // Route the next attempt around the implicated core
                    // even if its breaker has not opened yet.
                    if let Some(c) = e.implicated_core() {
                        if !exclude.contains(&c) {
                            exclude.push(c);
                        }
                    }
                    if attempt >= self.cfg.max_attempts {
                        return (
                            JobOutcome::Poisoned {
                                attempts: attempt,
                                core_maps,
                                last_error: e,
                            },
                            map,
                        );
                    }
                }
                Err(error) => return (JobOutcome::Failed { error }, map),
            }
        }
    }

    /// Allocate and upload a batch attempt's flat problem.
    fn stage_batch(
        m: &mut Machine,
        shape: GemmShape,
        elements: &[f32],
        operator: &[f32],
        out: &[f32],
    ) -> Result<GemmProblem, FtimmError> {
        let p = GemmProblem::alloc(m, shape.m, shape.n, shape.k)?;
        if m.mode.is_functional() {
            p.a.upload(m, elements)?;
            p.b.upload(m, operator)?;
            p.c.upload(m, out)?;
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::fill_matrix;
    use dspsim::{DmaPath, ExecMode, FaultPlan, HwConfig};

    fn problem(m: &mut Machine, mm: usize, nn: usize, kk: usize) -> GemmProblem {
        let p = GemmProblem::alloc(m, mm, nn, kk).unwrap();
        p.a.upload(m, &fill_matrix(mm * kk, 1)).unwrap();
        p.b.upload(m, &fill_matrix(kk * nn, 2)).unwrap();
        p.c.upload(m, &fill_matrix(mm * nn, 3)).unwrap();
        p
    }

    #[test]
    fn a_clean_job_completes_and_leaves_breakers_closed() {
        let ft = FtImm::new(HwConfig::default());
        let mut m = Machine::with_mode(ExecMode::Fast);
        let p = problem(&mut m, 64, 24, 48);
        let mut q = JobQueue::new(EngineConfig::default());
        let id = q.submit(Job::gemm(p, Strategy::MPar, 4));
        let recs = q.run_all(&ft, &mut m);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].id, id);
        assert!(
            matches!(recs[0].outcome, JobOutcome::Completed { .. }),
            "got {:?}",
            recs[0].outcome
        );
        assert!(q
            .breaker_states()
            .iter()
            .all(|s| *s == BreakerState::Closed));
    }

    #[test]
    fn deadline_zero_preempts_immediately_and_reproducibly() {
        let run = |_: u64| {
            let ft = FtImm::new(HwConfig::default());
            let mut m = Machine::with_mode(ExecMode::Fast);
            // Consume some simulated time first so the deadline is not
            // trivially at t = 0.
            let warm = problem(&mut m, 16, 8, 8);
            ft.gemm(&mut m, &warm, Strategy::Rules, 2).unwrap();
            let p = problem(&mut m, 64, 24, 48);
            let mut q = JobQueue::new(EngineConfig::default());
            q.submit(Job::gemm(p, Strategy::MPar, 4).with_deadline(0.0));
            let recs = q.run_all(&ft, &mut m);
            match &recs[0].outcome {
                JobOutcome::DeadlineExceeded { at, rows_total, .. } => {
                    assert_eq!(*rows_total, 64);
                    *at
                }
                o => panic!("expected deadline outcome, got {o:?}"),
            }
        };
        let a = run(0);
        let b = run(1);
        assert!(a > 0.0);
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "deadline trip must be reproducible"
        );
    }

    #[test]
    fn a_batch_job_returns_its_accumulator() {
        let batch = GemmBatch::new(10, 8, 12, 4).unwrap();
        let shape = batch.flat_shape();
        let ft = FtImm::new(HwConfig::default());
        let mut m = Machine::with_mode(ExecMode::Fast);
        let elements = fill_matrix(shape.m * shape.k, 1);
        let operator = fill_matrix(shape.k * shape.n, 2);
        let out = vec![0.0f32; shape.m * shape.n];

        // Oracle: the plain batch API on a fresh machine.
        let mut m2 = Machine::with_mode(ExecMode::Fast);
        let mut want = vec![0.0f32; shape.m * shape.n];
        batch
            .run(
                &ft,
                &mut m2,
                &elements,
                &operator,
                &mut want,
                Strategy::Auto,
                4,
            )
            .unwrap();

        let mut q = JobQueue::new(EngineConfig::default());
        q.submit(Job::batch(
            batch,
            elements,
            operator,
            out,
            Strategy::Auto,
            4,
        ));
        let recs = q.run_all(&ft, &mut m);
        match &recs[0].outcome {
            JobOutcome::Completed {
                out: Some(got),
                batch: Some(br),
                ..
            } => {
                assert!(br.seconds_per_element > 0.0);
                assert_eq!(br.faults.injected(), 0);
                for (a, b) in want.iter().zip(got) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            o => panic!("expected completed batch, got {o:?}"),
        }
    }

    #[test]
    fn breaker_opens_after_threshold_and_recloses_via_canary_probe() {
        let ft = FtImm::new(HwConfig::default());
        let mut m = Machine::with_mode(ExecMode::Fast);
        // Two DMA timeouts on the A-panel path: both absorbed by retries,
        // both implicating the same core (deterministic schedule).
        m.install_faults(
            &FaultPlan::new(7)
                .timeout_dma(DmaPath::DdrToAm, 1)
                .timeout_dma(DmaPath::DdrToAm, 2),
        );
        let cfg = EngineConfig {
            breaker_threshold: 2,
            // One DMA setup time is ~4e-7 s: the cooldown expires between
            // jobs but not within one.
            breaker_cooldown_s: 1e-7,
            ..EngineConfig::default()
        };
        let mut q = JobQueue::new(cfg);
        let p1 = problem(&mut m, 64, 24, 48);
        q.submit(Job::gemm(p1, Strategy::MPar, 4));
        let recs = q.run_all(&ft, &mut m);
        assert!(
            matches!(recs[0].outcome, JobOutcome::Completed { .. }),
            "faults should be absorbed, got {:?}",
            recs[0].outcome
        );
        let states = q.breaker_states();
        let opened: Vec<usize> = (0..states.len())
            .filter(|&i| states[i] == BreakerState::Open)
            .collect();
        assert_eq!(opened.len(), 1, "exactly one breaker open: {states:?}");
        let suspect = opened[0];

        // Second job: the cooldown (measured on the healthy cores'
        // clocks) has not elapsed yet, so the suspect stays routed out.
        let p2 = problem(&mut m, 64, 24, 48);
        q.submit(Job::gemm(p2, Strategy::MPar, 4));
        let recs = q.run_all(&ft, &mut m);
        assert!(matches!(recs[0].outcome, JobOutcome::Completed { .. }));
        assert!(
            !recs[0].core_map.contains(&suspect),
            "open core must be routed around: {:?}",
            recs[0].core_map
        );
        assert_eq!(q.breaker_states()[suspect], BreakerState::Open);

        // Third job: the second job advanced the healthy clocks past the
        // cooldown, the canary probe runs clean on the suspect core, and
        // the breaker closes again.
        let p3 = problem(&mut m, 64, 24, 48);
        q.submit(Job::gemm(p3, Strategy::MPar, 4));
        let recs = q.run_all(&ft, &mut m);
        assert!(matches!(recs[0].outcome, JobOutcome::Completed { .. }));
        assert_eq!(q.breaker_states()[suspect], BreakerState::Closed);
        assert!(
            recs[0].core_map.contains(&suspect),
            "re-closed core rejoins the map: {:?}",
            recs[0].core_map
        );
    }

    #[test]
    fn a_job_failing_on_two_maps_is_poisoned() {
        let ft = FtImm::new(HwConfig::default());
        let mut m = Machine::with_mode(ExecMode::Fast);
        // More timeouts than the retry budget on every attempt: the job
        // fails on its first map, is re-tried on a map excluding the
        // implicated core, fails again and is quarantined.
        let mut plan = FaultPlan::new(21);
        for n in 1..=64 {
            plan = plan.timeout_dma(DmaPath::DdrToAm, n);
        }
        m.install_faults(&plan);
        let cfg = EngineConfig {
            resilience: ResilienceConfig {
                max_retries: 1,
                ..ResilienceConfig::default()
            },
            ..EngineConfig::default()
        };
        let mut q = JobQueue::new(cfg);
        let p = problem(&mut m, 64, 24, 48);
        q.submit(Job::gemm(p, Strategy::MPar, 4));
        let recs = q.run_all(&ft, &mut m);
        match &recs[0].outcome {
            JobOutcome::Poisoned {
                attempts,
                core_maps,
                ..
            } => {
                assert_eq!(*attempts, 2);
                assert_eq!(core_maps.len(), 2);
                assert_ne!(core_maps[0], core_maps[1], "distinct maps were tried");
            }
            o => panic!("expected poisoned job, got {o:?}"),
        }
    }
}
