//! The public ftIMM entry point.

use crate::plan::store::{self, CatalogLoad, PlanCatalog};
use crate::plan::tune::{Calibration, CalibrationRecord, TuneConfig, TuneOutcome, Tuner};
use crate::plan::{Plan, PlanCache, PlanCacheStats, PlanKey, Planner, DEFAULT_PLAN_CACHE_CAPACITY};
use crate::{resilience, ChosenStrategy, Executor, FtimmError, GemmProblem, GemmShape};
use dspsim::{ExecMode, HwConfig, Machine, Phase, RunReport, SimError};
use kernelgen::{ExecutorCacheStats, KernelCache, KernelExecutor, DEFAULT_EXECUTOR_CACHE_CAPACITY};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Strategy requested by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Dynamic adjusting picks blocks and parallelisation (the ftIMM
    /// default): candidate strategies are evaluated on the timing model
    /// and the fastest wins.
    Auto,
    /// Rule-based selection only (§IV-C rules, no model evaluation).
    Rules,
    /// Force M-dimension parallelisation.
    MPar,
    /// Force K-dimension parallelisation.
    KPar,
    /// Force the traditional baseline (TGEMM).
    TGemm,
}

impl Strategy {
    /// Every requestable strategy, in tag order.
    pub const ALL: [Strategy; 5] = [
        Strategy::Auto,
        Strategy::Rules,
        Strategy::MPar,
        Strategy::KPar,
        Strategy::TGemm,
    ];

    /// Stable lower-case tag used by the plan-catalog codec.
    pub fn tag(self) -> &'static str {
        match self {
            Strategy::Auto => "auto",
            Strategy::Rules => "rules",
            Strategy::MPar => "mpar",
            Strategy::KPar => "kpar",
            Strategy::TGemm => "tgemm",
        }
    }

    /// Parse a [`Strategy::tag`] back.
    pub fn from_tag(s: &str) -> Result<Strategy, String> {
        Strategy::ALL
            .into_iter()
            .find(|x| x.tag() == s)
            .ok_or_else(|| format!("unknown strategy {s:?}"))
    }
}

/// Snapshot of a context's tuning and catalog counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TuningStats {
    /// [`FtImm::tune`] invocations over this context's lifetime.
    pub plans_tuned: u64,
    /// Tunes that adopted a bit-safe variant over the default pick.
    pub variants_adopted: u64,
    /// Calibration records held (tuner-observed plus catalog-loaded).
    pub calibration_records: u64,
    /// Whether a plan catalog has been loaded into this context.
    pub catalog_attached: bool,
    /// Plan-cache hits served by a catalog-preloaded entry.
    pub catalog_hits: u64,
    /// Plan-cache misses while a catalog was attached (shapes the
    /// catalog did not cover).
    pub catalog_misses: u64,
    /// Corrupt catalog entries/records quarantined during loads.
    pub quarantined: u64,
}

/// Tuning state carried by a context: calibration records, tuned plans
/// pending catalog persistence, and catalog bookkeeping.
#[derive(Debug, Default)]
struct TuningState {
    records: Mutex<Vec<CalibrationRecord>>,
    tuned: Mutex<Vec<(PlanKey, Plan)>>,
    catalog_keys: Mutex<Vec<PlanKey>>,
    catalog_attached: AtomicBool,
    catalog_hits: AtomicU64,
    catalog_misses: AtomicU64,
    plans_tuned: AtomicU64,
    variants_adopted: AtomicU64,
    quarantined: AtomicU64,
}

fn upsert_plan(entries: &mut Vec<(PlanKey, Plan)>, key: PlanKey, plan: Plan) {
    match entries.iter_mut().find(|(k, _)| *k == key) {
        Some(slot) => slot.1 = plan,
        None => entries.push((key, plan)),
    }
}

/// The ftIMM library context: a kernel cache and its host-tier executor
/// bound to a hardware configuration.
pub struct FtImm {
    cfg: HwConfig,
    /// Host-side kernel execution service: owns the shared kernel cache
    /// and the bounded memo of compiled (SIMD-lowered) kernels; every
    /// host kernel invocation dispatches through it.
    exec: Arc<KernelExecutor>,
    /// Memo of resolved plans: repeated shapes plan by lookup, without
    /// re-running the cost model or the timing simulations.
    plan_cache: PlanCache,
    /// Timing-model candidate evaluations performed over this context's
    /// lifetime (cache hits perform none).
    timing_simulations: AtomicU64,
    /// Shapes the planner failed to evaluate (capacity or generation
    /// limits): each counted evaluation returned `f64::INFINITY`.
    planning_failures: AtomicU64,
    /// Autotuner state: calibration records, tuned plans and catalog
    /// counters (see [`FtImm::tune`] / [`FtImm::with_plan_catalog`]).
    tuning: TuningState,
}

impl FtImm {
    /// Create a context for the given hardware, with the default plan
    /// cache capacity.
    pub fn new(cfg: HwConfig) -> Self {
        FtImm::with_plan_cache_capacity(cfg, DEFAULT_PLAN_CACHE_CAPACITY)
    }

    /// Create a context with an explicit plan cache capacity (`0`
    /// disables plan memoisation — every call plans from scratch).
    pub fn with_plan_cache_capacity(cfg: HwConfig, capacity: usize) -> Self {
        FtImm::with_cache_capacities(cfg, capacity, DEFAULT_EXECUTOR_CACHE_CAPACITY)
    }

    /// Create a context with explicit plan-cache and executor-cache
    /// capacities (`0` disables the respective memo; a disabled executor
    /// memo re-lowers the compiled tier on every invocation but stays
    /// bit-identical).
    pub fn with_cache_capacities(
        cfg: HwConfig,
        plan_capacity: usize,
        executor_capacity: usize,
    ) -> Self {
        FtImm {
            exec: Arc::new(KernelExecutor::with_capacity(
                Arc::new(KernelCache::new(cfg.clone())),
                executor_capacity,
            )),
            cfg,
            plan_cache: PlanCache::new(plan_capacity),
            timing_simulations: AtomicU64::new(0),
            planning_failures: AtomicU64::new(0),
            tuning: TuningState::default(),
        }
    }

    /// Create a context warm-started from an on-disk plan catalog: every
    /// catalog plan is preloaded into the plan cache, so
    /// [`FtImm::plan_full`] serves covered shapes with **zero** timing
    /// simulations, and the catalog's calibration records seed
    /// [`FtImm::calibration`].
    pub fn with_plan_catalog(cfg: HwConfig, path: &Path) -> Result<Self, String> {
        let ft = FtImm::new(cfg);
        ft.load_plan_catalog(path)?;
        Ok(ft)
    }

    /// The shared kernel cache.
    pub fn cache(&self) -> &KernelCache {
        self.exec.kernels()
    }

    /// The host-tier kernel executor (dispatch point for `Fast` and
    /// `Compiled` kernel invocations).
    pub fn executor(&self) -> &KernelExecutor {
        &self.exec
    }

    /// Hit/miss/eviction/compile counters of the compiled-kernel memo.
    pub fn executor_stats(&self) -> ExecutorCacheStats {
        self.exec.stats()
    }

    /// The hardware configuration.
    pub fn cfg(&self) -> &HwConfig {
        &self.cfg
    }

    /// Hit/miss/eviction counters of the shared plan cache.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Timing-model candidate evaluations performed so far.  A warm plan
    /// cache keeps this flat: planning a cached shape simulates nothing.
    pub fn timing_simulations(&self) -> u64 {
        self.timing_simulations.load(Ordering::Relaxed)
    }

    /// Resolve a full [`Plan`] for a shape without running anything,
    /// memoised in the plan cache.
    ///
    /// On a miss the [`Planner`] ranks the candidate space with the
    /// analytic cost model and evaluates only the short list on the
    /// timing model ([`FtImm::predict_seconds`]); on a hit the stored
    /// plan is returned as-is — zero simulations.
    pub fn plan_full(&self, shape: &GemmShape, strategy: Strategy, cores: usize) -> Plan {
        let key = PlanKey {
            shape: *shape,
            cores,
            strategy,
        };
        if let Some(plan) = self.plan_cache.get(&key) {
            if self.tuning.catalog_attached.load(Ordering::Relaxed)
                && self
                    .tuning
                    .catalog_keys
                    .lock()
                    .expect("tuning state poisoned")
                    .contains(&key)
            {
                self.tuning.catalog_hits.fetch_add(1, Ordering::Relaxed);
            }
            return plan;
        }
        if self.tuning.catalog_attached.load(Ordering::Relaxed) {
            self.tuning.catalog_misses.fetch_add(1, Ordering::Relaxed);
        }
        let plan = Planner::new(self.cache(), &self.cfg).plan(shape, strategy, cores, |cand| {
            self.timing_simulations.fetch_add(1, Ordering::Relaxed);
            self.predict_seconds(shape, cand, cores)
        });
        self.plan_cache.insert(key, plan);
        plan
    }

    /// Autotune a shape: search beyond the planner's candidates (bit-safe
    /// chunk variants, seeded random probes, neighborhood refinement),
    /// record every simulation as a calibration observation, and install
    /// the tuned plan under the `Strategy::Auto` cache key so subsequent
    /// [`FtImm::plan_full`] / [`FtImm::gemm`] calls use it without
    /// re-planning.
    ///
    /// Deterministic for a fixed [`TuneConfig::seed`] and context state.
    /// The tuned plan is never predicted slower than the analytic pick
    /// (the default is always simulated first and the minimum wins).
    ///
    /// With [`TuneConfig::coexec`] set, the CPU/DSP co-execution split
    /// is searched as well ([`crate::plan::choose_coexec_split`] against
    /// the tuned strategy) and the winning M tail is stamped into the
    /// installed plan's [`Plan::coexec_cpu_rows`] — a non-blocking
    /// dimension: the strategy's blocks are untouched, so no
    /// bit-signature gate applies, and the hint round-trips through the
    /// plan catalog like every other plan field.
    pub fn tune(&self, shape: &GemmShape, cores: usize, config: &TuneConfig) -> TuneOutcome {
        let calibration = self.calibration();
        let tuner = Tuner::new(self.cache(), &self.cfg, *config);
        let mut outcome = tuner.tune(shape, cores, &calibration, |cand, n| {
            self.timing_simulations.fetch_add(1, Ordering::Relaxed);
            self.predict_seconds(shape, cand, n)
        });
        self.tuning
            .records
            .lock()
            .expect("tuning state poisoned")
            .extend(outcome.records.iter().copied());
        self.tuning.plans_tuned.fetch_add(1, Ordering::Relaxed);
        if outcome.adopted_variant {
            self.tuning.variants_adopted.fetch_add(1, Ordering::Relaxed);
        }
        let key = PlanKey {
            shape: *shape,
            cores,
            strategy: Strategy::Auto,
        };
        // Install first so the split search below pins the *tuned*
        // strategy when it consults the plan cache.
        self.plan_cache.insert(key, outcome.plan);
        if let Some(cx) = config.coexec {
            let choice = crate::plan::choose_coexec_split(
                self,
                shape,
                Strategy::Auto,
                cores,
                cx.clusters,
                cx.grain_rows,
                &cx.cpu,
                cx.slowdown,
            );
            outcome.plan.coexec_cpu_rows = choice.cpu_rows;
            self.plan_cache.insert(key, outcome.plan);
        }
        upsert_plan(
            &mut self.tuning.tuned.lock().expect("tuning state poisoned"),
            key,
            outcome.plan,
        );
        outcome
    }

    /// [`FtImm::tune`] with the tuning time charged to the machine's
    /// profiler as a [`Phase::Tune`] span (host-side, like `Phase::Plan`:
    /// it shows up on the profile's `tuner` track and never counts
    /// toward core busy time).
    pub fn tune_on(
        &self,
        m: &mut Machine,
        shape: &GemmShape,
        cores: usize,
        config: &TuneConfig,
    ) -> TuneOutcome {
        let t0 = std::time::Instant::now();
        let outcome = self.tune(shape, cores, config);
        let dt = t0.elapsed().as_secs_f64();
        let now = m.elapsed();
        m.record_span(0, Phase::Tune, now, now + dt);
        outcome
    }

    /// The calibration fitted from every record this context holds
    /// (tuner-observed plus catalog-loaded).
    pub fn calibration(&self) -> Calibration {
        Calibration::fit(&self.tuning.records.lock().expect("tuning state poisoned"))
    }

    /// A copy of every calibration record this context holds.
    pub fn calibration_records(&self) -> Vec<CalibrationRecord> {
        self.tuning
            .records
            .lock()
            .expect("tuning state poisoned")
            .clone()
    }

    /// Load an on-disk plan catalog into this context: preload the plan
    /// cache (one bulk-load eviction event at most), adopt the catalog's
    /// calibration records, and start attributing cache traffic to
    /// catalog hit/miss counters.  Corrupt entries are quarantined (see
    /// [`TuningStats::quarantined`]), not fatal.  Returns the number of
    /// plans preloaded.
    pub fn load_plan_catalog(&self, path: &Path) -> Result<usize, String> {
        let load = store::load_catalog(path)?;
        Ok(self.attach_catalog(load))
    }

    /// Attach an already-parsed catalog (the body of
    /// [`FtImm::load_plan_catalog`]; exposed for fixture replay).
    pub fn attach_catalog(&self, load: CatalogLoad) -> usize {
        let kept = self.plan_cache.preload(&load.catalog.entries);
        self.tuning
            .quarantined
            .fetch_add(load.quarantined as u64, Ordering::Relaxed);
        {
            let mut keys = self
                .tuning
                .catalog_keys
                .lock()
                .expect("tuning state poisoned");
            for (key, _) in &load.catalog.entries {
                if !keys.contains(key) {
                    keys.push(*key);
                }
            }
        }
        {
            let mut tuned = self.tuning.tuned.lock().expect("tuning state poisoned");
            for (key, plan) in &load.catalog.entries {
                upsert_plan(&mut tuned, *key, *plan);
            }
        }
        self.tuning
            .records
            .lock()
            .expect("tuning state poisoned")
            .extend(load.catalog.records.iter().copied());
        self.tuning.catalog_attached.store(true, Ordering::Relaxed);
        kept
    }

    /// Persist every tuned plan and calibration record this context
    /// holds (including catalog-loaded ones, so load → tune → save
    /// accumulates) as an `ftimm-plan-catalog-v1` document at `path`.
    pub fn save_plan_catalog(&self, path: &Path) -> Result<(), String> {
        let mut catalog = PlanCatalog::default();
        for (key, plan) in self
            .tuning
            .tuned
            .lock()
            .expect("tuning state poisoned")
            .iter()
        {
            catalog.upsert(*key, *plan);
        }
        catalog.records = self.calibration_records();
        store::save_catalog(path, &catalog)
    }

    /// Tuning and catalog counters.
    pub fn tuning_stats(&self) -> TuningStats {
        TuningStats {
            plans_tuned: self.tuning.plans_tuned.load(Ordering::Relaxed),
            variants_adopted: self.tuning.variants_adopted.load(Ordering::Relaxed),
            calibration_records: self
                .tuning
                .records
                .lock()
                .expect("tuning state poisoned")
                .len() as u64,
            catalog_attached: self.tuning.catalog_attached.load(Ordering::Relaxed),
            catalog_hits: self.tuning.catalog_hits.load(Ordering::Relaxed),
            catalog_misses: self.tuning.catalog_misses.load(Ordering::Relaxed),
            quarantined: self.tuning.quarantined.load(Ordering::Relaxed),
        }
    }

    /// Resolve a strategy for a shape (without running anything): the
    /// [`ChosenStrategy`] of [`FtImm::plan_full`].
    pub fn plan(&self, shape: &GemmShape, strategy: Strategy, cores: usize) -> ChosenStrategy {
        self.plan_full(shape, strategy, cores).strategy
    }

    /// Predicted execution time of a plan on the timing model.
    ///
    /// A plan that cannot run at all — the problem does not fit the
    /// modelled DDR, a kernel cannot be generated for its blocks, or the
    /// shape is invalid — predicts `f64::INFINITY`, so candidate ranking
    /// naturally discards it.  Any *other* failure is a planner bug: it
    /// trips a debug assertion (and still predicts `INFINITY` in release
    /// builds).  Both cases tick [`FtImm::planning_failures`].
    pub fn predict_seconds(&self, shape: &GemmShape, plan: &ChosenStrategy, cores: usize) -> f64 {
        let mut m = Machine::new(self.cfg.clone(), ExecMode::Timing);
        let p = match GemmProblem::alloc(&mut m, shape.m, shape.n, shape.k) {
            Ok(p) => p,
            Err(e) => return self.note_planning_failure(&FtimmError::Sim(e)),
        };
        match self.run_plan(&mut m, &p, plan, cores) {
            Ok(r) => r.seconds,
            Err(e) => self.note_planning_failure(&e),
        }
    }

    /// Count a failed plan evaluation; unexpected error kinds indicate a
    /// planner bug and assert in debug builds.
    fn note_planning_failure(&self, e: &FtimmError) -> f64 {
        let capacity = matches!(
            e,
            FtimmError::Invalid(_)
                | FtimmError::Gen(_)
                | FtimmError::Sim(SimError::AllocFailure { .. })
                | FtimmError::Sim(SimError::OutOfBounds { .. })
        );
        debug_assert!(capacity, "unexpected planning failure: {e}");
        self.planning_failures.fetch_add(1, Ordering::Relaxed);
        f64::INFINITY
    }

    /// How many plan evaluations have failed (and predicted `INFINITY`)
    /// over this context's lifetime.
    pub fn planning_failures(&self) -> u64 {
        self.planning_failures.load(Ordering::Relaxed)
    }

    /// Execute a resolved plan.
    pub fn run_plan(
        &self,
        m: &mut Machine,
        p: &GemmProblem,
        plan: &ChosenStrategy,
        cores: usize,
    ) -> Result<RunReport, FtimmError> {
        Executor::new(self).with_plan(*plan).cores(cores).run(m, p)
    }

    /// Execute a resolved plan under the resilience layer: ABFT-checked,
    /// retried on injected faults, degraded onto surviving cores.
    ///
    /// For job-level control on top of this — per-job deadlines, per-core
    /// circuit breakers, poison quarantine — submit work to a
    /// [`crate::engine::JobQueue`] instead.
    pub fn run_plan_resilient(
        &self,
        m: &mut Machine,
        p: &GemmProblem,
        plan: &ChosenStrategy,
        cores: usize,
        rcfg: &resilience::ResilienceConfig,
    ) -> Result<RunReport, FtimmError> {
        Executor::new(self)
            .with_plan(*plan)
            .cores(cores)
            .resilient(*rcfg)
            .run(m, p)
    }

    /// Plan and execute resiliently in one call (the fault-tolerant
    /// analogue of [`FtImm::gemm`]).
    pub fn gemm_resilient(
        &self,
        m: &mut Machine,
        p: &GemmProblem,
        strategy: Strategy,
        cores: usize,
        rcfg: &resilience::ResilienceConfig,
    ) -> Result<(RunReport, Plan), FtimmError> {
        let run = Executor::new(self)
            .strategy(strategy)
            .cores(cores)
            .resilient(*rcfg)
            .dispatch(m, p)?;
        Ok((run.result?, run.plan))
    }

    /// `C += A × B`: plan and execute in one call.  Returns the run
    /// report and the plan that was used.
    pub fn gemm(
        &self,
        m: &mut Machine,
        p: &GemmProblem,
        strategy: Strategy,
        cores: usize,
    ) -> Result<(RunReport, Plan), FtimmError> {
        let run = Executor::new(self)
            .strategy(strategy)
            .cores(cores)
            .dispatch(m, p)?;
        Ok((run.result?, run.plan))
    }

    /// Run TGEMM (the baseline) regardless of shape.
    pub fn tgemm(
        &self,
        m: &mut Machine,
        p: &GemmProblem,
        cores: usize,
    ) -> Result<RunReport, FtimmError> {
        Executor::new(self)
            .with_plan(ChosenStrategy::TGemm)
            .cores(cores)
            .run(m, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_mpar_for_type1_and_kpar_for_type2() {
        let ft = FtImm::new(HwConfig::default());
        let p1 = ft.plan(&GemmShape::new(1 << 16, 32, 32), Strategy::Rules, 8);
        assert!(matches!(p1, ChosenStrategy::MPar(_)));
        let p2 = ft.plan(&GemmShape::new(32, 32, 1 << 16), Strategy::Rules, 8);
        assert!(matches!(p2, ChosenStrategy::KPar(_)));
    }

    #[test]
    fn invalid_problems_are_rejected_up_front() {
        let ft = FtImm::new(HwConfig::default());
        let mut m = Machine::with_mode(ExecMode::Fast);
        let p = GemmProblem::alloc(&mut m, 8, 8, 8).unwrap();
        // C with the wrong shape: caught before any core runs.
        let bad = GemmProblem {
            a: p.a,
            b: p.b,
            c: p.c.view(0, 0, 4, 4),
        };
        for r in [
            ft.run_plan(&mut m, &bad, &ChosenStrategy::TGemm, 4),
            ft.tgemm(&mut m, &bad, 4),
        ] {
            assert!(matches!(r, Err(FtimmError::Invalid(_))), "got {r:?}");
        }
        assert!(matches!(
            ft.gemm(&mut m, &bad, Strategy::Auto, 4),
            Err(FtimmError::Invalid(_))
        ));
    }

    #[test]
    fn impossible_plans_predict_infinity_and_are_counted() {
        let ft = FtImm::new(HwConfig::default());
        // A shape far beyond the modelled DDR partition cannot allocate.
        let huge = GemmShape::new(1 << 22, 1 << 22, 4);
        let plan = ChosenStrategy::TGemm;
        assert_eq!(ft.planning_failures(), 0);
        assert_eq!(ft.predict_seconds(&huge, &plan, 8), f64::INFINITY);
        assert_eq!(ft.planning_failures(), 1);
    }

    #[test]
    fn cached_auto_plans_skip_simulation() {
        let ft = FtImm::new(HwConfig::default());
        let shape = GemmShape::new(4096, 32, 256);
        let cold = ft.plan_full(&shape, Strategy::Auto, 8);
        assert!(cold.simulations > 0);
        let sims = ft.timing_simulations();
        assert!(sims >= u64::from(cold.simulations));
        let warm = ft.plan_full(&shape, Strategy::Auto, 8);
        assert_eq!(warm, cold, "cache returns the identical plan");
        assert_eq!(ft.timing_simulations(), sims, "warm plan simulates nothing");
        assert_eq!(ft.plan_cache_stats().hits, 1);
    }

    #[test]
    fn zero_capacity_context_replans_every_call() {
        let ft = FtImm::with_plan_cache_capacity(HwConfig::default(), 0);
        let shape = GemmShape::new(4096, 32, 256);
        let first = ft.plan_full(&shape, Strategy::Auto, 8);
        let sims = ft.timing_simulations();
        let second = ft.plan_full(&shape, Strategy::Auto, 8);
        assert_eq!(first, second, "planning is deterministic");
        assert!(ft.timing_simulations() > sims);
        assert_eq!(ft.plan_cache_stats().hits, 0);
    }

    #[test]
    fn tuned_plans_install_under_the_auto_key() {
        let ft = FtImm::new(HwConfig::default());
        let shape = GemmShape::new(4096, 32, 256);
        let outcome = ft.tune(&shape, 8, &crate::plan::TuneConfig::default());
        assert!(outcome.plan.simulated_s <= outcome.default_plan.simulated_s);
        assert_eq!(outcome.plan.origin, crate::plan::PlanOrigin::Tuned);
        let stats = ft.tuning_stats();
        assert_eq!(stats.plans_tuned, 1);
        assert_eq!(stats.calibration_records, outcome.records.len() as u64);
        assert!(!stats.catalog_attached);
        // The tuned plan now serves Auto requests with zero simulations.
        let sims = ft.timing_simulations();
        assert_eq!(ft.plan_full(&shape, Strategy::Auto, 8), outcome.plan);
        assert_eq!(ft.timing_simulations(), sims);
    }

    #[test]
    fn catalog_round_trip_warm_starts_a_fresh_context() {
        let path = std::env::temp_dir().join(format!("ftimm-api-cat-{}.json", std::process::id()));
        let shape = GemmShape::new(4096, 32, 256);
        let tuned = {
            let ft = FtImm::new(HwConfig::default());
            let outcome = ft.tune(&shape, 8, &crate::plan::TuneConfig::default());
            ft.save_plan_catalog(&path).unwrap();
            outcome.plan
        };
        let ft = FtImm::with_plan_catalog(HwConfig::default(), &path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(ft.plan_full(&shape, Strategy::Auto, 8), tuned);
        assert_eq!(ft.timing_simulations(), 0, "warm start simulates nothing");
        let stats = ft.tuning_stats();
        assert!(stats.catalog_attached);
        assert_eq!(stats.catalog_hits, 1);
        assert_eq!(stats.quarantined, 0);
        assert!(stats.calibration_records > 0);
        // A shape the catalog does not cover is a catalog miss.
        ft.plan_full(&GemmShape::new(64, 64, 64), Strategy::Auto, 4);
        assert_eq!(ft.tuning_stats().catalog_misses, 1);
    }

    #[test]
    fn tuning_stamps_a_coexec_hint_that_round_trips_the_catalog() {
        let path =
            std::env::temp_dir().join(format!("ftimm-api-coexec-{}.json", std::process::id()));
        // Table I type-1: the regime where the default CPU model takes a
        // real M tail, so the tuned hint is a genuine mixed split.
        let shape = GemmShape::new(8192, 32, 32);
        let cx = crate::plan::CoexecTune::default();
        let cfg = crate::plan::TuneConfig {
            coexec: Some(cx),
            ..crate::plan::TuneConfig::default()
        };
        let tuned = {
            let ft = FtImm::new(HwConfig::default());
            let outcome = ft.tune(&shape, 8, &cfg);
            // The stamp equals a chooser run against the installed tuned
            // plan (tune installs before searching, so this is the same
            // pinned strategy).
            let choice = crate::plan::choose_coexec_split(
                &ft,
                &shape,
                Strategy::Auto,
                8,
                cx.clusters,
                cx.grain_rows,
                &cx.cpu,
                cx.slowdown,
            );
            assert_eq!(outcome.plan.coexec_cpu_rows, choice.cpu_rows);
            assert!(
                choice.cpu_rows > 0 && choice.cpu_rows < shape.m,
                "premise: this regime mixes, got {choice:?}"
            );
            assert_eq!((shape.m - choice.cpu_rows) % cx.grain_rows, 0);
            ft.save_plan_catalog(&path).unwrap();
            outcome.plan
        };
        // A fresh context warm-started from the catalog serves the hint.
        let ft = FtImm::with_plan_catalog(HwConfig::default(), &path).unwrap();
        std::fs::remove_file(&path).ok();
        let warm = ft.plan_full(&shape, Strategy::Auto, 8);
        assert_eq!(warm, tuned);
        assert_eq!(warm.coexec_cpu_rows, tuned.coexec_cpu_rows);
        // plan_coexec honors the pinned split instead of re-searching.
        let sp = crate::plan::plan_coexec(
            &ft,
            &shape,
            Strategy::Auto,
            8,
            &[0, 1, 2, 3],
            cx.grain_rows,
            &cx.cpu,
            cx.slowdown,
        );
        let tail = sp.shards.last().unwrap();
        assert_eq!(tail.backend, dspsim::BackendKind::Cpu);
        assert_eq!(tail.rows(), tuned.coexec_cpu_rows);
    }

    #[test]
    fn strategy_tags_round_trip() {
        for s in Strategy::ALL {
            assert_eq!(Strategy::from_tag(s.tag()).unwrap(), s);
        }
        assert!(Strategy::from_tag("vibes").is_err());
    }

    #[test]
    fn auto_plan_never_picks_a_slower_candidate() {
        let ft = FtImm::new(HwConfig::default());
        let shape = GemmShape::new(4096, 32, 4096);
        let auto = ft.plan(&shape, Strategy::Auto, 8);
        let t_auto = ft.predict_seconds(&shape, &auto, 8);
        for s in [Strategy::MPar, Strategy::KPar] {
            let forced = ft.plan(&shape, s, 8);
            let t = ft.predict_seconds(&shape, &forced, 8);
            assert!(t_auto <= t + 1e-12, "auto {t_auto}s slower than {s:?} {t}s");
        }
    }
}
