//! The public ftIMM entry point.

use crate::{
    adjust, run_kpar, run_mpar, run_tgemm, ChosenStrategy, FtimmError, GemmProblem, GemmShape,
    TgemmParams,
};
use dspsim::{ExecMode, HwConfig, Machine, RunReport};
use kernelgen::KernelCache;
use std::sync::Arc;

/// Strategy requested by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Dynamic adjusting picks blocks and parallelisation (the ftIMM
    /// default): candidate strategies are evaluated on the timing model
    /// and the fastest wins.
    Auto,
    /// Rule-based selection only (§IV-C rules, no model evaluation).
    Rules,
    /// Force M-dimension parallelisation.
    MPar,
    /// Force K-dimension parallelisation.
    KPar,
    /// Force the traditional baseline (TGEMM).
    TGemm,
}

/// The ftIMM library context: a kernel cache bound to a hardware
/// configuration.
pub struct FtImm {
    cfg: HwConfig,
    cache: Arc<KernelCache>,
}

impl FtImm {
    /// Create a context for the given hardware.
    pub fn new(cfg: HwConfig) -> Self {
        FtImm {
            cache: Arc::new(KernelCache::new(cfg.clone())),
            cfg,
        }
    }

    /// The shared kernel cache.
    pub fn cache(&self) -> &KernelCache {
        &self.cache
    }

    /// The hardware configuration.
    pub fn cfg(&self) -> &HwConfig {
        &self.cfg
    }

    /// Resolve a strategy for a shape (without running anything).
    pub fn plan(&self, shape: &GemmShape, strategy: Strategy, cores: usize) -> ChosenStrategy {
        match strategy {
            Strategy::MPar => {
                ChosenStrategy::MPar(adjust::adjust_mpar(&self.cache, &self.cfg, shape, cores))
            }
            Strategy::KPar => {
                ChosenStrategy::KPar(adjust::adjust_kpar(&self.cache, &self.cfg, shape, cores))
            }
            Strategy::TGemm => ChosenStrategy::TGemm,
            Strategy::Rules => adjust::choose_strategy(&self.cache, &self.cfg, shape, cores),
            Strategy::Auto => {
                // Evaluate the rule choice and its alternative on the
                // timing model; keep the faster plan.  This realises the
                // paper's "automatically choose the optimal block sizes
                // and parallelisation strategy".  Beyond the paper: for
                // N > 96 the M-parallel strategy (iterating 96-wide column
                // panels) is also evaluated — TGEMM's N-parallelism leaves
                // cores idle whenever N spans fewer chunks than cores.
                let rule = adjust::choose_strategy(&self.cache, &self.cfg, shape, cores);
                let alt = match rule {
                    ChosenStrategy::MPar(_) => ChosenStrategy::KPar(adjust::adjust_kpar(
                        &self.cache,
                        &self.cfg,
                        shape,
                        cores,
                    )),
                    ChosenStrategy::KPar(_) | ChosenStrategy::TGemm => ChosenStrategy::MPar(
                        adjust::adjust_mpar(&self.cache, &self.cfg, shape, cores),
                    ),
                };
                let t_rule = self.predict_seconds(shape, &rule, cores);
                let t_alt = self.predict_seconds(shape, &alt, cores);
                if t_alt < t_rule {
                    alt
                } else {
                    rule
                }
            }
        }
    }

    /// Predicted execution time of a plan on the timing model.
    pub fn predict_seconds(&self, shape: &GemmShape, plan: &ChosenStrategy, cores: usize) -> f64 {
        let mut m = Machine::new(self.cfg.clone(), ExecMode::Timing);
        let p = match GemmProblem::alloc(&mut m, shape.m, shape.n, shape.k) {
            Ok(p) => p,
            Err(_) => return f64::INFINITY,
        };
        let r = self.run_plan(&mut m, &p, plan, cores);
        r.map_or(f64::INFINITY, |r| r.seconds)
    }

    /// Execute a resolved plan.
    pub fn run_plan(
        &self,
        m: &mut Machine,
        p: &GemmProblem,
        plan: &ChosenStrategy,
        cores: usize,
    ) -> Result<RunReport, FtimmError> {
        match plan {
            ChosenStrategy::MPar(bl) => run_mpar(m, &self.cache, p, bl, cores),
            ChosenStrategy::KPar(bl) => run_kpar(m, &self.cache, p, bl, cores),
            ChosenStrategy::TGemm => run_tgemm(m, &self.cache, p, &TgemmParams::default(), cores),
        }
    }

    /// `C += A × B`: plan and execute in one call.  Returns the run
    /// report and the plan that was used.
    pub fn gemm(
        &self,
        m: &mut Machine,
        p: &GemmProblem,
        strategy: Strategy,
        cores: usize,
    ) -> Result<(RunReport, ChosenStrategy), FtimmError> {
        p.validate().map_err(FtimmError::Invalid)?;
        let shape = GemmShape::new(p.m(), p.n(), p.k());
        let plan = self.plan(&shape, strategy, cores);
        let report = self.run_plan(m, p, &plan, cores)?;
        Ok((report, plan))
    }

    /// Run TGEMM (the baseline) regardless of shape.
    pub fn tgemm(
        &self,
        m: &mut Machine,
        p: &GemmProblem,
        cores: usize,
    ) -> Result<RunReport, FtimmError> {
        run_tgemm(m, &self.cache, p, &TgemmParams::default(), cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_mpar_for_type1_and_kpar_for_type2() {
        let ft = FtImm::new(HwConfig::default());
        let p1 = ft.plan(&GemmShape::new(1 << 16, 32, 32), Strategy::Rules, 8);
        assert!(matches!(p1, ChosenStrategy::MPar(_)));
        let p2 = ft.plan(&GemmShape::new(32, 32, 1 << 16), Strategy::Rules, 8);
        assert!(matches!(p2, ChosenStrategy::KPar(_)));
    }

    #[test]
    fn auto_plan_never_picks_a_slower_candidate() {
        let ft = FtImm::new(HwConfig::default());
        let shape = GemmShape::new(4096, 32, 4096);
        let auto = ft.plan(&shape, Strategy::Auto, 8);
        let t_auto = ft.predict_seconds(&shape, &auto, 8);
        for s in [Strategy::MPar, Strategy::KPar] {
            let forced = ft.plan(&shape, s, 8);
            let t = ft.predict_seconds(&shape, &forced, 8);
            assert!(t_auto <= t + 1e-12, "auto {t_auto}s slower than {s:?} {t}s");
        }
    }
}
