//! The public ftIMM entry point.

use crate::plan::{Plan, PlanCache, PlanCacheStats, PlanKey, Planner, DEFAULT_PLAN_CACHE_CAPACITY};
use crate::{resilience, ChosenStrategy, Executor, FtimmError, GemmProblem, GemmShape};
use dspsim::{ExecMode, HwConfig, Machine, RunReport, SimError};
use kernelgen::{ExecutorCacheStats, KernelCache, KernelExecutor, DEFAULT_EXECUTOR_CACHE_CAPACITY};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Strategy requested by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Dynamic adjusting picks blocks and parallelisation (the ftIMM
    /// default): candidate strategies are evaluated on the timing model
    /// and the fastest wins.
    Auto,
    /// Rule-based selection only (§IV-C rules, no model evaluation).
    Rules,
    /// Force M-dimension parallelisation.
    MPar,
    /// Force K-dimension parallelisation.
    KPar,
    /// Force the traditional baseline (TGEMM).
    TGemm,
}

/// The ftIMM library context: a kernel cache and its host-tier executor
/// bound to a hardware configuration.
pub struct FtImm {
    cfg: HwConfig,
    /// Host-side kernel execution service: owns the shared kernel cache
    /// and the bounded memo of compiled (SIMD-lowered) kernels; every
    /// host kernel invocation dispatches through it.
    exec: Arc<KernelExecutor>,
    /// Memo of resolved plans: repeated shapes plan by lookup, without
    /// re-running the cost model or the timing simulations.
    plan_cache: PlanCache,
    /// Timing-model candidate evaluations performed over this context's
    /// lifetime (cache hits perform none).
    timing_simulations: AtomicU64,
    /// Shapes the planner failed to evaluate (capacity or generation
    /// limits): each counted evaluation returned `f64::INFINITY`.
    planning_failures: AtomicU64,
}

impl FtImm {
    /// Create a context for the given hardware, with the default plan
    /// cache capacity.
    pub fn new(cfg: HwConfig) -> Self {
        FtImm::with_plan_cache_capacity(cfg, DEFAULT_PLAN_CACHE_CAPACITY)
    }

    /// Create a context with an explicit plan cache capacity (`0`
    /// disables plan memoisation — every call plans from scratch).
    pub fn with_plan_cache_capacity(cfg: HwConfig, capacity: usize) -> Self {
        FtImm::with_cache_capacities(cfg, capacity, DEFAULT_EXECUTOR_CACHE_CAPACITY)
    }

    /// Create a context with explicit plan-cache and executor-cache
    /// capacities (`0` disables the respective memo; a disabled executor
    /// memo re-lowers the compiled tier on every invocation but stays
    /// bit-identical).
    pub fn with_cache_capacities(
        cfg: HwConfig,
        plan_capacity: usize,
        executor_capacity: usize,
    ) -> Self {
        FtImm {
            exec: Arc::new(KernelExecutor::with_capacity(
                Arc::new(KernelCache::new(cfg.clone())),
                executor_capacity,
            )),
            cfg,
            plan_cache: PlanCache::new(plan_capacity),
            timing_simulations: AtomicU64::new(0),
            planning_failures: AtomicU64::new(0),
        }
    }

    /// The shared kernel cache.
    pub fn cache(&self) -> &KernelCache {
        self.exec.kernels()
    }

    /// The host-tier kernel executor (dispatch point for `Fast` and
    /// `Compiled` kernel invocations).
    pub fn executor(&self) -> &KernelExecutor {
        &self.exec
    }

    /// Hit/miss/eviction/compile counters of the compiled-kernel memo.
    pub fn executor_stats(&self) -> ExecutorCacheStats {
        self.exec.stats()
    }

    /// The hardware configuration.
    pub fn cfg(&self) -> &HwConfig {
        &self.cfg
    }

    /// Hit/miss/eviction counters of the shared plan cache.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Timing-model candidate evaluations performed so far.  A warm plan
    /// cache keeps this flat: planning a cached shape simulates nothing.
    pub fn timing_simulations(&self) -> u64 {
        self.timing_simulations.load(Ordering::Relaxed)
    }

    /// Resolve a full [`Plan`] for a shape without running anything,
    /// memoised in the plan cache.
    ///
    /// On a miss the [`Planner`] ranks the candidate space with the
    /// analytic cost model and evaluates only the short list on the
    /// timing model ([`FtImm::predict_seconds`]); on a hit the stored
    /// plan is returned as-is — zero simulations.
    pub fn plan_full(&self, shape: &GemmShape, strategy: Strategy, cores: usize) -> Plan {
        let key = PlanKey {
            shape: *shape,
            cores,
            strategy,
        };
        if let Some(plan) = self.plan_cache.get(&key) {
            return plan;
        }
        let plan = Planner::new(self.cache(), &self.cfg).plan(shape, strategy, cores, |cand| {
            self.timing_simulations.fetch_add(1, Ordering::Relaxed);
            self.predict_seconds(shape, cand, cores)
        });
        self.plan_cache.insert(key, plan);
        plan
    }

    /// Resolve a strategy for a shape (without running anything): the
    /// [`ChosenStrategy`] of [`FtImm::plan_full`].
    pub fn plan(&self, shape: &GemmShape, strategy: Strategy, cores: usize) -> ChosenStrategy {
        self.plan_full(shape, strategy, cores).strategy
    }

    /// Predicted execution time of a plan on the timing model.
    ///
    /// A plan that cannot run at all — the problem does not fit the
    /// modelled DDR, a kernel cannot be generated for its blocks, or the
    /// shape is invalid — predicts `f64::INFINITY`, so candidate ranking
    /// naturally discards it.  Any *other* failure is a planner bug: it
    /// trips a debug assertion (and still predicts `INFINITY` in release
    /// builds).  Both cases tick [`FtImm::planning_failures`].
    pub fn predict_seconds(&self, shape: &GemmShape, plan: &ChosenStrategy, cores: usize) -> f64 {
        let mut m = Machine::new(self.cfg.clone(), ExecMode::Timing);
        let p = match GemmProblem::alloc(&mut m, shape.m, shape.n, shape.k) {
            Ok(p) => p,
            Err(e) => return self.note_planning_failure(&FtimmError::Sim(e)),
        };
        match self.run_plan(&mut m, &p, plan, cores) {
            Ok(r) => r.seconds,
            Err(e) => self.note_planning_failure(&e),
        }
    }

    /// Count a failed plan evaluation; unexpected error kinds indicate a
    /// planner bug and assert in debug builds.
    fn note_planning_failure(&self, e: &FtimmError) -> f64 {
        let capacity = matches!(
            e,
            FtimmError::Invalid(_)
                | FtimmError::Gen(_)
                | FtimmError::Sim(SimError::AllocFailure { .. })
                | FtimmError::Sim(SimError::OutOfBounds { .. })
        );
        debug_assert!(capacity, "unexpected planning failure: {e}");
        self.planning_failures.fetch_add(1, Ordering::Relaxed);
        f64::INFINITY
    }

    /// How many plan evaluations have failed (and predicted `INFINITY`)
    /// over this context's lifetime.
    pub fn planning_failures(&self) -> u64 {
        self.planning_failures.load(Ordering::Relaxed)
    }

    /// Execute a resolved plan.
    pub fn run_plan(
        &self,
        m: &mut Machine,
        p: &GemmProblem,
        plan: &ChosenStrategy,
        cores: usize,
    ) -> Result<RunReport, FtimmError> {
        Executor::new(self).with_plan(*plan).cores(cores).run(m, p)
    }

    /// Execute a resolved plan under the resilience layer: ABFT-checked,
    /// retried on injected faults, degraded onto surviving cores.
    ///
    /// For job-level control on top of this — per-job deadlines, per-core
    /// circuit breakers, poison quarantine — submit work to a
    /// [`crate::engine::JobQueue`] instead.
    pub fn run_plan_resilient(
        &self,
        m: &mut Machine,
        p: &GemmProblem,
        plan: &ChosenStrategy,
        cores: usize,
        rcfg: &resilience::ResilienceConfig,
    ) -> Result<RunReport, FtimmError> {
        Executor::new(self)
            .with_plan(*plan)
            .cores(cores)
            .resilient(*rcfg)
            .run(m, p)
    }

    /// Plan and execute resiliently in one call (the fault-tolerant
    /// analogue of [`FtImm::gemm`]).
    pub fn gemm_resilient(
        &self,
        m: &mut Machine,
        p: &GemmProblem,
        strategy: Strategy,
        cores: usize,
        rcfg: &resilience::ResilienceConfig,
    ) -> Result<(RunReport, Plan), FtimmError> {
        let run = Executor::new(self)
            .strategy(strategy)
            .cores(cores)
            .resilient(*rcfg)
            .dispatch(m, p)?;
        Ok((run.result?, run.plan))
    }

    /// `C += A × B`: plan and execute in one call.  Returns the run
    /// report and the plan that was used.
    pub fn gemm(
        &self,
        m: &mut Machine,
        p: &GemmProblem,
        strategy: Strategy,
        cores: usize,
    ) -> Result<(RunReport, Plan), FtimmError> {
        let run = Executor::new(self)
            .strategy(strategy)
            .cores(cores)
            .dispatch(m, p)?;
        Ok((run.result?, run.plan))
    }

    /// Run TGEMM (the baseline) regardless of shape.
    pub fn tgemm(
        &self,
        m: &mut Machine,
        p: &GemmProblem,
        cores: usize,
    ) -> Result<RunReport, FtimmError> {
        Executor::new(self)
            .with_plan(ChosenStrategy::TGemm)
            .cores(cores)
            .run(m, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_mpar_for_type1_and_kpar_for_type2() {
        let ft = FtImm::new(HwConfig::default());
        let p1 = ft.plan(&GemmShape::new(1 << 16, 32, 32), Strategy::Rules, 8);
        assert!(matches!(p1, ChosenStrategy::MPar(_)));
        let p2 = ft.plan(&GemmShape::new(32, 32, 1 << 16), Strategy::Rules, 8);
        assert!(matches!(p2, ChosenStrategy::KPar(_)));
    }

    #[test]
    fn invalid_problems_are_rejected_up_front() {
        let ft = FtImm::new(HwConfig::default());
        let mut m = Machine::with_mode(ExecMode::Fast);
        let p = GemmProblem::alloc(&mut m, 8, 8, 8).unwrap();
        // C with the wrong shape: caught before any core runs.
        let bad = GemmProblem {
            a: p.a,
            b: p.b,
            c: p.c.view(0, 0, 4, 4),
        };
        for r in [
            ft.run_plan(&mut m, &bad, &ChosenStrategy::TGemm, 4),
            ft.tgemm(&mut m, &bad, 4),
        ] {
            assert!(matches!(r, Err(FtimmError::Invalid(_))), "got {r:?}");
        }
        assert!(matches!(
            ft.gemm(&mut m, &bad, Strategy::Auto, 4),
            Err(FtimmError::Invalid(_))
        ));
    }

    #[test]
    fn impossible_plans_predict_infinity_and_are_counted() {
        let ft = FtImm::new(HwConfig::default());
        // A shape far beyond the modelled DDR partition cannot allocate.
        let huge = GemmShape::new(1 << 22, 1 << 22, 4);
        let plan = ChosenStrategy::TGemm;
        assert_eq!(ft.planning_failures(), 0);
        assert_eq!(ft.predict_seconds(&huge, &plan, 8), f64::INFINITY);
        assert_eq!(ft.planning_failures(), 1);
    }

    #[test]
    fn cached_auto_plans_skip_simulation() {
        let ft = FtImm::new(HwConfig::default());
        let shape = GemmShape::new(4096, 32, 256);
        let cold = ft.plan_full(&shape, Strategy::Auto, 8);
        assert!(cold.simulations > 0);
        let sims = ft.timing_simulations();
        assert!(sims >= u64::from(cold.simulations));
        let warm = ft.plan_full(&shape, Strategy::Auto, 8);
        assert_eq!(warm, cold, "cache returns the identical plan");
        assert_eq!(ft.timing_simulations(), sims, "warm plan simulates nothing");
        assert_eq!(ft.plan_cache_stats().hits, 1);
    }

    #[test]
    fn zero_capacity_context_replans_every_call() {
        let ft = FtImm::with_plan_cache_capacity(HwConfig::default(), 0);
        let shape = GemmShape::new(4096, 32, 256);
        let first = ft.plan_full(&shape, Strategy::Auto, 8);
        let sims = ft.timing_simulations();
        let second = ft.plan_full(&shape, Strategy::Auto, 8);
        assert_eq!(first, second, "planning is deterministic");
        assert!(ft.timing_simulations() > sims);
        assert_eq!(ft.plan_cache_stats().hits, 0);
    }

    #[test]
    fn auto_plan_never_picks_a_slower_candidate() {
        let ft = FtImm::new(HwConfig::default());
        let shape = GemmShape::new(4096, 32, 4096);
        let auto = ft.plan(&shape, Strategy::Auto, 8);
        let t_auto = ft.predict_seconds(&shape, &auto, 8);
        for s in [Strategy::MPar, Strategy::KPar] {
            let forced = ft.plan(&shape, s, 8);
            let t = ft.predict_seconds(&shape, &forced, 8);
            assert!(t_auto <= t + 1e-12, "auto {t_auto}s slower than {s:?} {t}s");
        }
    }
}
