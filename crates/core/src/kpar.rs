//! ftIMM's K-dimension parallelisation (Algorithm 5): cores split the K
//! dimension, each accumulates a private partial `C_a` in AM, and partial
//! results are reduced through the GSM-cached `C_g` panel.  Suited to
//! shapes where both M and N are small but K is large (type 2), at the
//! price of a multi-core reduction.

use crate::{invoke_kernel, FtimmError, GemmProblem};
use dspsim::{transfer_time, Dma2d, DmaPath, DmaTicket, KernelBindings, Machine, Phase, RunReport};
use kernelgen::{KernelExecutor, KernelSpec};
use serde::{Deserialize, Serialize};

/// Block sizes for the K-parallel strategy (§IV-C, Eq. 3–4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KparBlocks {
    /// Rows of the GSM-cached `C_g` panel.
    pub m_g: usize,
    /// Columns of the `C_g` panel.
    pub n_g: usize,
    /// Rows of each core's private `C_a` accumulator in AM.
    pub m_a: usize,
    /// Micro-kernel width.
    pub n_a: usize,
    /// K-slice length per DMA (`B_a` rows in AM).
    pub k_a: usize,
    /// Micro-kernel height.
    pub m_s: usize,
}

/// Run `C += A × B` with the K-dimension strategy on `cores` cores.
pub fn run_kpar(
    m: &mut Machine,
    ex: &KernelExecutor,
    p: &GemmProblem,
    bl: &KparBlocks,
    cores: usize,
) -> Result<RunReport, FtimmError> {
    crate::exec::validate_problem(p)?;
    let (mm, nn, kk) = (p.m(), p.n(), p.k());
    let cores = cores.clamp(1, m.alive_cores().min(m.cfg.cores_per_cluster));

    // K slices of k_a, round-robin over cores (Algorithm 5 line 7).
    let slices: Vec<usize> = (0..kk).step_by(bl.k_a).collect();
    let active = cores.min(slices.len()).max(1);
    m.set_active_streams(active);
    let core_ids: Vec<usize> = (0..cores).collect();

    let pad = |n: usize| n.div_ceil(32) * 32;
    let c_a_off = 0u64;
    let c_a_bytes = (bl.m_a * pad(bl.n_a) * 4) as u64;
    let b_a_bytes = (bl.k_a * pad(bl.n_a) * 4) as u64;
    let b_a_off = [c_a_bytes, c_a_bytes + b_a_bytes];
    let a_s_off = [0u64, (bl.m_s * bl.k_a * 4) as u64];

    for i in (0..mm).step_by(bl.m_g) {
        let m_gcur = bl.m_g.min(mm - i);
        for j in (0..nn).step_by(bl.n_g) {
            let n_gcur = bl.n_g.min(nn - j);
            // Load the C_g panel into GSM (Algorithm 5 line 3).
            let tcg = m.dma(
                0,
                DmaPath::DdrToGsm,
                &Dma2d::block_f32(
                    m_gcur as u64,
                    n_gcur as u64,
                    p.c.elem_index(i, j),
                    p.c.ld as u64,
                    0,
                    n_gcur as u64,
                ),
            )?;
            m.barrier(&core_ids);
            for &c in &core_ids {
                m.wait(c, tcg);
            }

            for ii in (0..m_gcur).step_by(bl.m_a) {
                let m_acur = bl.m_a.min(m_gcur - ii);
                for jj in (0..n_gcur).step_by(bl.n_a) {
                    let n_acur = bl.n_a.min(n_gcur - jj);
                    let ld_cur = pad(n_acur) as u64;

                    // Each core zero-initialises its private C_a
                    // (Algorithm 5 line 6) and processes its K slices.
                    for (ci, &core) in core_ids.iter().enumerate().take(active) {
                        if m.mode.is_functional() {
                            m.core_mut(core)
                                .am
                                .zero(c_a_off, m_acur as u64 * ld_cur * 4)?;
                        }
                        // Zeroing cost: two vector-store units, one vector
                        // (32 f32) each per cycle.
                        let zero_cycles = (m_acur as u64 * ld_cur / 32).div_ceil(2);
                        m.compute(core, zero_cycles);

                        let my_slices: Vec<usize> =
                            slices.iter().copied().skip(ci).step_by(active).collect();
                        if my_slices.is_empty() {
                            continue;
                        }
                        let dma_ba = |m: &mut Machine,
                                      t: usize,
                                      bping: usize|
                         -> Result<DmaTicket, FtimmError> {
                            let k_acur = bl.k_a.min(kk - t);
                            Ok(m.dma(
                                core,
                                DmaPath::DdrToAm,
                                &Dma2d::block_f32(
                                    k_acur as u64,
                                    n_acur as u64,
                                    p.b.elem_index(t, j + jj),
                                    p.b.ld as u64,
                                    b_a_off[bping] / 4,
                                    ld_cur,
                                ),
                            )?)
                        };
                        let mut ba_ticket = dma_ba(m, my_slices[0], 0)?;
                        for (si, &t) in my_slices.iter().enumerate() {
                            let bping = si % 2;
                            let k_acur = bl.k_a.min(kk - t);
                            m.wait(core, ba_ticket);
                            if si + 1 < my_slices.len() {
                                ba_ticket = dma_ba(m, my_slices[si + 1], (si + 1) % 2)?;
                            }

                            let row_blocks: Vec<usize> = (0..m_acur).step_by(bl.m_s).collect();
                            let dma_as =
                                |m: &mut Machine,
                                 u: usize,
                                 sping: usize|
                                 -> Result<DmaTicket, FtimmError> {
                                    let ms_cur = bl.m_s.min(m_acur - u);
                                    Ok(m.dma(
                                        core,
                                        DmaPath::DdrToSm,
                                        &Dma2d::block_f32(
                                            ms_cur as u64,
                                            k_acur as u64,
                                            p.a.elem_index(i + ii + u, t),
                                            p.a.ld as u64,
                                            a_s_off[sping] / 4,
                                            k_acur as u64,
                                        ),
                                    )?)
                                };
                            let mut as_ticket = dma_as(m, row_blocks[0], 0)?;
                            for (ri, &u) in row_blocks.iter().enumerate() {
                                let sping = ri % 2;
                                let ms_cur = bl.m_s.min(m_acur - u);
                                m.wait(core, as_ticket);
                                if ri + 1 < row_blocks.len() {
                                    as_ticket = dma_as(m, row_blocks[ri + 1], (ri + 1) % 2)?;
                                }
                                let spec = KernelSpec::new(ms_cur, k_acur, n_acur)?;
                                let kernel = ex.kernels().get(spec)?;
                                invoke_kernel(
                                    m,
                                    core,
                                    ex,
                                    &kernel,
                                    KernelBindings {
                                        a_off: a_s_off[sping],
                                        b_off: b_a_off[bping],
                                        c_off: c_a_off + (u as u64 * ld_cur * 4),
                                    },
                                )?;
                            }
                        }
                    }

                    // Reduction: cores serialise their `C_g += C_a` adds
                    // through the GSM crossbar (Algorithm 5 line 12).
                    m.barrier(&core_ids);
                    let bytes = m_acur as u64 * n_acur as u64 * 4;
                    let red_dur = 2.0 * transfer_time(&m.cfg, DmaPath::AmToGsm, bytes, 1);
                    let mut prev_end = 0.0f64;
                    for &core in core_ids.iter().take(active) {
                        if m.mode.is_functional() {
                            for r in 0..m_acur {
                                m.gsm_accumulate_from_am(
                                    core,
                                    c_a_off + r as u64 * ld_cur * 4,
                                    (((ii + r) * n_gcur + jj) * 4) as u64,
                                    n_acur as u64,
                                )?;
                            }
                        }
                        let start = m.core_time(core).max(prev_end);
                        prev_end = start + red_dur;
                        m.record_span(core, Phase::Reduction, start, prev_end);
                        let cr = m.core_mut(core);
                        cr.t_compute = prev_end;
                        cr.stats.gsm_bytes += 2 * bytes;
                    }
                    m.barrier(&core_ids);
                }
            }
            // Store the C_g panel back (core 0's engine).
            let ts = m.dma(
                0,
                DmaPath::GsmToDdr,
                &Dma2d::block_f32(
                    m_gcur as u64,
                    n_gcur as u64,
                    0,
                    n_gcur as u64,
                    p.c.elem_index(i, j),
                    p.c.ld as u64,
                ),
            )?;
            m.wait(0, ts);
            m.barrier(&core_ids);
        }
    }
    Ok(m.report(p.flops(), &core_ids))
}
