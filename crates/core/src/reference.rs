//! Host-side reference GEMMs used to validate the simulated library.

/// Naive `c += a × b` in f32 (row-major, dense).
pub fn sgemm_naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= m * k && b.len() >= k * n && c.len() >= m * n);
    for i in 0..m {
        for kk in 0..k {
            let aik = a[i * k + kk];
            let brow = &b[kk * n..kk * n + n];
            let crow = &mut c[i * n..i * n + n];
            for j in 0..n {
                crow[j] += aik * brow[j];
            }
        }
    }
}

/// `c += a × b` accumulated in f64 (accuracy oracle).
pub fn sgemm_f64(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &[f32]) -> Vec<f64> {
    let mut out = vec![0.0f64; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = c[i * n + j] as f64;
            for kk in 0..k {
                acc += a[i * k + kk] as f64 * b[kk * n + j] as f64;
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Assert an f32 result is within a mixed absolute/relative tolerance of
/// the f64 oracle; panics with the first offending element.
pub fn assert_close(m: usize, n: usize, got: &[f32], want: &[f64], rel: f64) {
    for i in 0..m {
        for j in 0..n {
            let g = got[i * n + j] as f64;
            let w = want[i * n + j];
            let tol = rel * w.abs().max(1.0);
            assert!(
                (g - w).abs() <= tol,
                "({i},{j}): got {g}, want {w} (tol {tol})"
            );
        }
    }
}

/// Deterministic pseudo-random matrix filler (no `rand` dependency in the
/// core crate; workloads use proper RNGs).
pub fn fill_matrix(len: usize, seed: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as u32)
                .wrapping_mul(2654435761)
                .wrapping_add(seed.wrapping_mul(0x9E3779B9));
            let x = x ^ (x >> 15);
            ((x % 4001) as f32 - 2000.0) / 256.0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_matches_f64_on_small_input() {
        let (m, n, k) = (3, 4, 5);
        let a = fill_matrix(m * k, 1);
        let b = fill_matrix(k * n, 2);
        let c0 = fill_matrix(m * n, 3);
        let mut c = c0.clone();
        sgemm_naive(m, n, k, &a, &b, &mut c);
        let want = sgemm_f64(m, n, k, &a, &b, &c0);
        assert_close(m, n, &c, &want, 1e-5);
    }

    #[test]
    fn identity_times_b_is_b() {
        let n = 4;
        let mut a = vec![0.0f32; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let b = fill_matrix(n * n, 9);
        let mut c = vec![0.0f32; n * n];
        sgemm_naive(n, n, n, &a, &b, &mut c);
        assert_eq!(c, b);
    }

    #[test]
    #[should_panic(expected = "(0,0)")]
    fn assert_close_catches_errors() {
        assert_close(1, 1, &[2.0], &[1.0], 1e-6);
    }

    #[test]
    fn fill_matrix_is_deterministic_and_bounded() {
        let a = fill_matrix(100, 7);
        let b = fill_matrix(100, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|x| x.abs() <= 8.0));
        assert_ne!(fill_matrix(100, 8), a);
    }
}
