//! Classification of GEMM shapes into the paper's three irregular types
//! (§III-A): with `C += A×B` and `N ≤ 96`,
//!
//! * **Type 1** — tall-and-skinny × small: `M ≫ K ≈ N`;
//! * **Type 2** — skinny-and-tall × tall-and-skinny: `K ≫ M ≈ N`;
//! * **Type 3** — large regular × tall-and-skinny: `M ≈ K ≫ N`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// "Sufficiently large" dimension threshold from the paper's evaluation:
/// an `M` or `K` at or above this counts as the "≫" side of the §III-A
/// taxonomy.  Shared by [`GemmShape::classify`], the planner's candidate
/// pruning, and the conformance regime sampler.
pub const SUFFICIENTLY_LARGE: usize = 2048;

/// Alignment every adjusted block dimension is kept a multiple of (the
/// DMA burst / vector-width granule all scratchpad panels are padded to).
pub const BLOCK_ALIGN: usize = 32;

/// The paper's `m_s ≥ 6` rule: below this micro-kernel height the FMAC
/// pipeline cannot be kept full, so adjusting only goes lower when the
/// matrix itself has fewer rows.
pub const MIN_MICROKERNEL_ROWS: usize = 6;

/// Upper bound of the micro-kernel-height search: beyond 14 rows the
/// generator runs out of vector accumulator registers.
pub const MAX_MICROKERNEL_ROWS: usize = 14;

/// `K` at or below this is degenerate ("tiny-k"): prologue/epilogue and
/// remainder handling dominate.  Used by the conformance regime sampler.
pub const TINY_K_MAX: usize = 8;

/// Problem dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmShape {
    /// Rows of A/C.
    pub m: usize,
    /// Columns of B/C.
    pub n: usize,
    /// Depth.
    pub k: usize,
}

impl GemmShape {
    /// Construct a shape.
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        GemmShape { m, n, k }
    }

    /// Useful flops.
    pub fn flops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }

    /// Classify per §III-A.
    pub fn classify(&self) -> IrregularType {
        if self.n > kernelgen::MAX_NA {
            return IrregularType::Regular;
        }
        let m_big = self.m >= SUFFICIENTLY_LARGE;
        let k_big = self.k >= SUFFICIENTLY_LARGE;
        match (m_big, k_big) {
            (true, false) => IrregularType::TallSkinnyTimesSmall,
            (false, true) => IrregularType::SkinnyTallTimesTallSkinny,
            (true, true) => IrregularType::RegularTimesTallSkinny,
            (false, false) => IrregularType::Small,
        }
    }
}

impl fmt::Display for GemmShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.m, self.n, self.k)
    }
}

/// The paper's shape taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IrregularType {
    /// Type 1: `M ≫ K ≈ N` — a tall-and-skinny A times a small B.
    TallSkinnyTimesSmall,
    /// Type 2: `K ≫ M ≈ N` — a skinny-and-tall A times a tall-and-skinny B.
    SkinnyTallTimesTallSkinny,
    /// Type 3: `M ≈ K ≫ N` — a large regular A times a tall-and-skinny B.
    RegularTimesTallSkinny,
    /// All dimensions small (falls back to single-pass execution).
    Small,
    /// `N > 96`: outside the irregular-GEMM scope (handled by TGEMM).
    Regular,
}

impl fmt::Display for IrregularType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IrregularType::TallSkinnyTimesSmall => "type-1 (tall-skinny × small)",
            IrregularType::SkinnyTallTimesTallSkinny => "type-2 (skinny-tall × tall-skinny)",
            IrregularType::RegularTimesTallSkinny => "type-3 (regular × tall-skinny)",
            IrregularType::Small => "small",
            IrregularType::Regular => "regular (N > 96)",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_eval_shapes_classify_correctly() {
        // Fig 5(a): M = 2^16, small N and K.
        assert_eq!(
            GemmShape::new(1 << 16, 32, 32).classify(),
            IrregularType::TallSkinnyTimesSmall
        );
        // Fig 5(b): K = 2^16, M = N small.
        assert_eq!(
            GemmShape::new(32, 32, 1 << 16).classify(),
            IrregularType::SkinnyTallTimesTallSkinny
        );
        // Fig 5(c): M = K = 20480, N ≤ 96.
        assert_eq!(
            GemmShape::new(20480, 32, 20480).classify(),
            IrregularType::RegularTimesTallSkinny
        );
        assert_eq!(GemmShape::new(64, 32, 64).classify(), IrregularType::Small);
        assert_eq!(
            GemmShape::new(4096, 512, 4096).classify(),
            IrregularType::Regular
        );
    }

    #[test]
    fn flops_and_display() {
        let s = GemmShape::new(10, 20, 30);
        assert_eq!(s.flops(), 12000);
        assert_eq!(s.to_string(), "10x20x30");
    }
}
