//! # ftimm
//!
//! A reproduction of **ftIMM** — efficient irregular-shaped matrix-matrix
//! multiplication on the multi-core DSPs of the FT-m7032 heterogeneous
//! processor (CLUSTER 2022) — on top of the `dspsim` hardware model and
//! the `kernelgen` micro-kernel generator.
//!
//! The library provides:
//! * [`tgemm`]: the traditional fixed-block baseline (Algorithm 1);
//! * [`mpar`]: ftIMM's M-dimension parallelisation (Algorithm 4);
//! * [`kpar`]: ftIMM's K-dimension parallelisation with GSM reduction
//!   (Algorithm 5);
//! * [`adjust`]: dynamic adjusting — CMR-driven block sizes (Eq. 1–4);
//! * [`plan`]: the Plan IR — cost-model planner, strategy selection and
//!   the memoizing plan cache every entry point routes through;
//! * [`roofline`]: the roofline bound used in the paper's Fig 5;
//! * [`api::FtImm`]: the user-facing entry point;
//! * [`exec::Executor`]: the unified execution pipeline every entry
//!   point routes through, with optional phase-level profiling.
//!
//! ```
//! use dspsim::{ExecMode, Machine};
//! use ftimm::{FtImm, GemmProblem, Strategy};
//!
//! let ft = FtImm::new(dspsim::HwConfig::default());
//! let mut machine = Machine::with_mode(ExecMode::Fast);
//! let p = GemmProblem::alloc(&mut machine, 512, 32, 256).unwrap();
//! let a = ftimm::reference::fill_matrix(512 * 256, 1);
//! let b = ftimm::reference::fill_matrix(256 * 32, 2);
//! p.a.upload(&mut machine, &a).unwrap();
//! p.b.upload(&mut machine, &b).unwrap();
//! p.c.upload(&mut machine, &vec![0.0; 512 * 32]).unwrap();
//! let (report, _plan) = ft.gemm(&mut machine, &p, Strategy::Auto, 8).unwrap();
//! assert!(report.gflops() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjust;
pub mod api;
pub mod backend;
pub mod batch;
pub mod cluster;
pub mod engine;
pub mod error;
pub mod exec;
pub mod grid;
pub mod invoke;
pub mod kpar;
pub mod matrix;
pub mod mpar;
pub mod plan;
pub mod reference;
pub mod resilience;
pub mod roofline;
pub mod shape;
pub mod tgemm;

pub use adjust::{
    adjust_kpar, adjust_mpar, cmr_f1, cmr_f2, cmr_f3, cmr_f4, initial_kpar, initial_mpar,
    ChosenStrategy,
};
pub use api::{FtImm, Strategy, TuningStats};
pub use backend::{
    predict_cpu_stripe, Backend, BackendPrediction, CpuBackend, CpuLaneOutcome, CpuStripeRun,
    DspBackend,
};
pub use batch::{BatchReport, GemmBatch};
pub use cluster::{
    ClusterHealth, ClusterPool, FailoverEvent, ShardRun, ShardedConfig, ShardedEngine, ShardedJob,
    ShardedOutcome, ShardedRecord, ShardedReport, SpillPolicy, TenantId, TenantSpec, CPU_LANE,
};
pub use engine::{
    BreakerState, CircuitBreaker, EngineConfig, Job, JobId, JobOutcome, JobQueue, JobRecord,
};
pub use error::FtimmError;
pub use exec::{
    chrome_trace_json, chrome_trace_json_clusters, chrome_trace_json_hetero, profile_from_json,
    profile_json, validate_batch_dims, validate_problem, ExecOptions, ExecRun, Executor,
};
pub use grid::{ClusterGrid, GridReport};
pub use invoke::invoke_kernel;
pub use kpar::{run_kpar, KparBlocks};
pub use matrix::{DdrMatrix, GemmProblem};
pub use mpar::{run_mpar, MparBlocks};
pub use plan::{
    analytic_seconds, bit_signature, catalog_from_json, catalog_json, choose_coexec_split,
    choose_strategy, corrected_seconds, load_catalog, plan_coexec, plan_from_json, plan_json,
    plan_sharded, ranking_agreement, save_catalog, BitSignature, Calibration, CalibrationRecord,
    CatalogLoad, CoexecChoice, CoexecTune, Plan, PlanCache, PlanCacheStats, PlanCatalog, PlanKey,
    PlanOrigin, Planner, RegimeAgreement, Shard, ShardOrigin, ShardedPlan, StrategyKind,
    TuneConfig, TuneOutcome, Tuner, DEFAULT_PLAN_CACHE_CAPACITY, PLAN_CATALOG_SCHEMA, REGIMES,
};
pub use resilience::{
    max_abs_error_vs_oracle, run_resilient, run_resilient_full, ResilienceConfig, ResilientRun,
};
pub use shape::{GemmShape, IrregularType, BLOCK_ALIGN, SUFFICIENTLY_LARGE, TINY_K_MAX};
pub use tgemm::{run_tgemm, TgemmParams};
