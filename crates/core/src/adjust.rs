//! Dynamic adjusting (§IV-C): computation-to-memory-ratio (CMR) driven
//! initial block sizes, runtime block shrinking/growing to the matrix
//! shape, and parallelisation-strategy selection.

use crate::shape::{BLOCK_ALIGN, MAX_MICROKERNEL_ROWS, MIN_MICROKERNEL_ROWS};
use crate::{GemmShape, KparBlocks, MparBlocks};
use dspsim::HwConfig;
use kernelgen::{KernelCache, KernelSpec, MAX_NA};

/// Eq. 1: CMR of the `B_g`-in-GSM transfer level of the M-parallel
/// strategy.
pub fn cmr_f1(m_a: f64, k_g: f64, n_g: f64, cores: f64) -> f64 {
    2.0 * m_a * k_g * n_g * cores / (cores * m_a * (k_g + 2.0 * n_g) + k_g * n_g)
}

/// Eq. 2: CMR of the AM-resident level of the M-parallel strategy.
pub fn cmr_f2(m_a: f64, k_a: f64, n_a: f64, cores: f64) -> f64 {
    2.0 * m_a * k_a * n_a * cores / (cores * m_a * (k_a + 2.0 * n_a) + k_a * n_a)
}

/// Eq. 3: CMR of the `C_g`-in-GSM level of the K-parallel strategy.
pub fn cmr_f3(m_g: f64, k_a: f64, n_g: f64, cores: f64) -> f64 {
    2.0 * m_g * k_a * n_g * cores / (cores * k_a * (m_g + n_g) + 2.0 * m_g * n_g)
}

/// Eq. 4: CMR of the AM-resident level of the K-parallel strategy.
pub fn cmr_f4(m_a: f64, k_a: f64, n_a: f64, cores: f64) -> f64 {
    2.0 * m_a * k_a * n_a * cores / (cores * k_a * (m_a + n_a) + 2.0 * m_a * n_a)
}

pub(crate) fn pad32(n: usize) -> usize {
    n.div_ceil(BLOCK_ALIGN) * BLOCK_ALIGN
}

/// AM capacity envelope shared by both strategies' block searches (and
/// the planner's grid variants): `m_a + 2·k_a` must stay within this
/// many column-padded rows.
pub(crate) fn am_budget(cfg: &HwConfig, n_a: usize) -> usize {
    cfg.am_bytes / (4 * pad32(n_a))
}

/// Largest micro-kernel height whose double-buffered `A_s` panel fits SM.
fn ms_sm_cap(cfg: &HwConfig, k_a: usize) -> usize {
    (cfg.sm_bytes / (2 * 4 * k_a)).max(1)
}

/// Largest `k_a` that still lets an `m_s = 6` kernel fit SM (the paper's
/// `m_s ≥ 6` rule takes priority over deeper panels).
fn ka_sm_cap(cfg: &HwConfig) -> usize {
    (cfg.sm_bytes / (2 * 4 * MIN_MICROKERNEL_ROWS)) / BLOCK_ALIGN * BLOCK_ALIGN
}

/// Pick the micro-kernel height: the largest `m_s` that fits the
/// double-buffered SM budget and whose generated kernel is within 1 % of
/// the best efficiency; divisors of `m_a` are preferred (no m-tail).
fn pick_ms(cache: &KernelCache, cfg: &HwConfig, m_a: usize, k_a: usize, n_a: usize) -> usize {
    let ms_max = ms_sm_cap(cfg, k_a).min(MAX_MICROKERNEL_ROWS);
    let mut best_eff = 0.0f64;
    let mut effs = Vec::new();
    for m_s in 1..=ms_max {
        let eff = KernelSpec::new(m_s, k_a, n_a)
            .ok()
            .and_then(|s| cache.get(s).ok())
            .map_or(0.0, |k| k.efficiency(cfg));
        best_eff = best_eff.max(eff);
        effs.push((m_s, eff));
    }
    let good: Vec<usize> = effs
        .iter()
        .filter(|(_, e)| *e >= best_eff * 0.99)
        .map(|(m, _)| *m)
        .collect();
    good.iter()
        .rev()
        .find(|&&m| m_a.is_multiple_of(m))
        .copied()
        .or_else(|| good.last().copied())
        .unwrap_or(1)
}

/// CMR-optimal initial blocks for the M-parallel strategy, under the
/// scratchpad capacities (AM holds `C_a` once and `B_a` twice; SM holds
/// `A_s` twice; GSM holds `B_g` twice).
pub fn initial_mpar(cache: &KernelCache, cfg: &HwConfig, cores: usize) -> MparBlocks {
    let n_a = MAX_NA;
    let n_g = MAX_NA;
    let budget = am_budget(cfg, n_a); // m_a + 2·k_a ≤ budget
    let mut best = (0.0f64, 32usize, 32usize);
    let mut k_a = 32;
    while 2 * k_a + 32 <= budget {
        let m_a = (budget - 2 * k_a) / 32 * 32;
        if m_a >= 32 {
            let f = cmr_f2(m_a as f64, k_a as f64, n_a as f64, cores as f64);
            if f > best.0 {
                best = (f, m_a, k_a);
            }
        }
        k_a += 32;
    }
    let (_, m_a, k_a) = best;
    // k_g: as large as possible (maximises C_a reuse), a multiple of k_a,
    // within the double-buffered GSM budget.
    let k_g = (cfg.gsm_bytes / (2 * 4 * n_g) / k_a).max(1) * k_a;
    let m_s = pick_ms(cache, cfg, m_a, k_a, n_a);
    MparBlocks {
        n_g,
        k_g,
        m_a,
        n_a,
        k_a,
        m_s,
    }
}

/// CMR-optimal initial blocks for the K-parallel strategy (GSM holds the
/// `C_g` panel once; AM as in M-par).
pub fn initial_kpar(cache: &KernelCache, cfg: &HwConfig, cores: usize) -> KparBlocks {
    let n_a = MAX_NA;
    let budget = am_budget(cfg, n_a);
    let mut best = (0.0f64, 32usize, 32usize);
    let mut k_a = 32;
    while 2 * k_a + 32 <= budget {
        let m_a = (budget - 2 * k_a) / 32 * 32;
        if m_a >= 32 {
            let f = cmr_f4(m_a as f64, k_a as f64, n_a as f64, cores as f64);
            if f > best.0 {
                best = (f, m_a, k_a);
            }
        }
        k_a += 32;
    }
    let (_, m_a, k_a) = best;
    // C_g panel: maximise f3 over power-of-two (m_g, n_g) within half of
    // GSM (the rest is head-room for reduction staging).
    let elems = cfg.gsm_bytes / 8;
    let mut bestg = (0.0f64, 1024usize, 512usize);
    let mut m_g = m_a.next_power_of_two();
    while m_g * 128 <= elems {
        let n_g = (elems / m_g).next_power_of_two() / 2;
        let f = cmr_f3(m_g as f64, k_a as f64, n_g as f64, cores as f64);
        if f > bestg.0 {
            bestg = (f, m_g, n_g);
        }
        m_g *= 2;
    }
    let (_, m_g, n_g) = bestg;
    let m_s = pick_ms(cache, cfg, m_a, k_a, n_a);
    KparBlocks {
        m_g,
        n_g,
        m_a,
        n_a,
        k_a,
        m_s,
    }
}

/// Runtime adjustment of M-parallel blocks to a concrete shape (§IV-C):
/// shrink `n` blocks to the real N (freeing AM for deeper/taller blocks),
/// clamp to the matrix, and re-balance `m_a` so all cores get work.
pub fn adjust_mpar(
    cache: &KernelCache,
    cfg: &HwConfig,
    shape: &GemmShape,
    cores: usize,
) -> MparBlocks {
    let n_a = shape.n.min(MAX_NA);
    let n_g = n_a;
    let budget = am_budget(cfg, n_a);
    // Re-run the CMR search with the freed budget and the real K; k_a is
    // capped so an m_s ≥ 6 A_s panel still double-buffers in SM.
    let ka_cap = ka_sm_cap(cfg);
    let mut best = (0.0f64, 32usize, 32usize);
    let mut k_a = 32;
    while 2 * k_a + 32 <= budget && k_a <= ka_cap {
        if k_a >= shape.k + 32 {
            break;
        }
        let k_eff = k_a.min(shape.k);
        let m_a = (budget - 2 * k_a) / 32 * 32;
        if m_a >= 32 {
            let f = cmr_f2(m_a as f64, k_eff as f64, n_a as f64, cores as f64);
            if f > best.0 {
                best = (f, m_a, k_eff);
            }
        }
        k_a += 32;
    }
    let (_, mut m_a, k_a) = best;
    // Balance the parallel dimension: no core should sit idle while
    // another holds more than one chunk of slack.
    let per_core = shape.m.div_ceil(cores);
    if per_core < m_a {
        m_a = per_core.div_ceil(32).max(1) * 32;
    }
    m_a = m_a.min(budget.saturating_sub(2 * 32).max(32));
    let m_s = if shape.m >= MIN_MICROKERNEL_ROWS {
        pick_ms(cache, cfg, m_a, k_a, n_a).max(MIN_MICROKERNEL_ROWS.min(m_a))
    } else {
        shape.m
    };
    let k_g = (cfg.gsm_bytes / (2 * 4 * n_g.max(1)) / k_a).max(1) * k_a;
    let k_g = k_g.min(shape.k.div_ceil(k_a) * k_a);
    MparBlocks {
        n_g,
        k_g,
        m_a,
        n_a,
        k_a,
        m_s,
    }
}

/// Runtime adjustment of K-parallel blocks to a concrete shape.
pub fn adjust_kpar(
    cache: &KernelCache,
    cfg: &HwConfig,
    shape: &GemmShape,
    cores: usize,
) -> KparBlocks {
    let init = initial_kpar(cache, cfg, cores);
    let n_a = shape.n.min(MAX_NA);
    let n_g = n_a;
    let budget = am_budget(cfg, n_a);
    let mut m_a = init.m_a.min(shape.m.div_ceil(32) * 32).max(32);
    // Grow the parallel (K) dimension block as far as the AM budget, the
    // SM budget (m_s ≥ 6 must still fit) and balance allow.
    let mut k_a = ((budget.saturating_sub(m_a)) / 2 / 32).max(1) * 32;
    let per_core = shape.k.div_ceil(cores);
    if per_core < k_a {
        k_a = per_core.div_ceil(32).max(1) * 32;
    }
    k_a = k_a
        .min(shape.k.div_ceil(32) * 32)
        .min(ka_sm_cap(cfg))
        .max(32);
    // Whatever k_a freed goes back to m_a.
    m_a = ((budget.saturating_sub(2 * k_a)) / 32 * 32)
        .min(shape.m.div_ceil(32) * 32)
        .max(32.min(budget.saturating_sub(2 * k_a).max(1)));
    let m_g = init.m_g.min(shape.m.next_power_of_two()).max(1);
    let m_s = if shape.m >= MIN_MICROKERNEL_ROWS {
        pick_ms(cache, cfg, m_a, k_a, n_a).max(MIN_MICROKERNEL_ROWS.min(m_a.min(shape.m)))
    } else {
        shape.m
    };
    KparBlocks {
        m_g,
        n_g,
        m_a: m_a.min(m_g),
        n_a,
        k_a,
        m_s,
    }
}

/// The strategy dynamic adjusting settles on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChosenStrategy {
    /// M-dimension parallelisation with the given blocks.
    MPar(MparBlocks),
    /// K-dimension parallelisation with the given blocks.
    KPar(KparBlocks),
    /// Traditional fixed-block GEMM (shapes outside the irregular scope).
    TGemm,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (KernelCache, HwConfig) {
        let cfg = HwConfig::default();
        (KernelCache::new(cfg.clone()), cfg)
    }

    #[test]
    fn cmr_formulas_match_paper_examples() {
        // Paper's M-par initial blocks maximise f2 under m_a + 2k_a = 2048.
        let f_paper = cmr_f2(320.0, 864.0, 96.0, 8.0);
        for (m_a, k_a) in [
            (256.0, 896.0),
            (384.0, 832.0),
            (448.0, 800.0),
            (128.0, 960.0),
        ] {
            assert!(
                f_paper >= cmr_f2(m_a, k_a, 96.0, 8.0) - 0.5,
                "({m_a},{k_a}) should not beat the paper's blocks decisively"
            );
        }
        // All CMRs grow with block volume.
        assert!(cmr_f1(320.0, 5888.0, 96.0, 8.0) > cmr_f1(320.0, 512.0, 96.0, 8.0));
        assert!(cmr_f3(1024.0, 512.0, 512.0, 8.0) > cmr_f3(128.0, 512.0, 512.0, 8.0));
        assert!(cmr_f4(1024.0, 512.0, 96.0, 8.0) > cmr_f4(64.0, 512.0, 96.0, 8.0));
    }

    #[test]
    fn initial_mpar_reproduces_paper_blocks() {
        let (cache, cfg) = setup();
        let b = initial_mpar(&cache, &cfg, 8);
        // The AM capacity constraint is exactly the paper's: m_a + 2k_a = 2048.
        assert_eq!(b.m_a + 2 * b.k_a, 2048, "{b:?}");
        // CMR optimum at (320, 864) as in §IV-C.
        assert_eq!((b.m_a, b.k_a), (320, 864), "{b:?}");
        assert_eq!(b.n_a, 96);
        assert_eq!(b.n_g, 96);
        // k_g is a multiple of k_a and fills the double-buffered GSM.
        assert_eq!(b.k_g % b.k_a, 0);
        assert!(2 * b.k_g * b.n_g * 4 <= cfg.gsm_bytes);
        assert!(
            (b.k_g + b.k_a) * 2 * b.n_g * 4 > cfg.gsm_bytes,
            "k_g maximal"
        );
        // m_s: ≥ 6, fits SM double-buffered, divides m_a (paper: 8).
        assert!(b.m_s >= 6);
        assert_eq!(b.m_a % b.m_s, 0);
        assert!(2 * b.m_s * b.k_a * 4 <= cfg.sm_bytes);
        assert_eq!(b.m_s, 8, "paper's §IV-C value");
    }

    #[test]
    fn initial_kpar_blocks_fit_and_match_family() {
        let (cache, cfg) = setup();
        let b = initial_kpar(&cache, &cfg, 8);
        assert_eq!(b.m_a + 2 * b.k_a, 2048, "AM exactly filled: {b:?}");
        assert!(b.m_g * b.n_g * 4 <= cfg.gsm_bytes);
        assert!(2 * b.m_s * b.k_a * 4 <= cfg.sm_bytes);
        assert_eq!(b.n_a, 96);
        // The paper lands on m_a = 1024, k_a = 512; f4 is quite flat, so we
        // accept the same order of magnitude with k_a ≥ 256.
        assert!(b.m_a >= 512, "{b:?}");
        assert!(b.k_a >= 256, "{b:?}");
    }

    #[test]
    fn adjust_shrinks_to_small_n_and_grows_depth() {
        let (cache, cfg) = setup();
        let shape = GemmShape::new(1 << 16, 32, 32);
        let b = adjust_mpar(&cache, &cfg, &shape, 8);
        assert_eq!(b.n_a, 32);
        assert!(b.k_a >= 32);
        // Freed AM goes to taller C panels than the N=96 default.
        let init = initial_mpar(&cache, &cfg, 8);
        assert!(b.m_a >= init.m_a, "{b:?} vs {init:?}");
        assert!(b.m_s >= 6);
    }

    #[test]
    fn adjust_balances_small_m_across_cores() {
        let (cache, cfg) = setup();
        let shape = GemmShape::new(512, 32, 1 << 16);
        let b = adjust_mpar(&cache, &cfg, &shape, 8);
        // 512 rows over 8 cores: chunks of ≤ 64 rows keep all cores busy.
        assert!(b.m_a <= 64, "{b:?}");
        let bk = adjust_kpar(&cache, &cfg, &shape, 8);
        assert!(bk.k_a * 8 <= (1 << 16) + bk.k_a * 8, "sane");
        assert!(bk.n_a == 32);
    }

    #[test]
    fn tiny_m_clamps_ms() {
        let (cache, cfg) = setup();
        let shape = GemmShape::new(3, 16, 4096);
        let b = adjust_kpar(&cache, &cfg, &shape, 8);
        assert_eq!(b.m_s, 3);
        assert!(b.m_a >= 3);
    }
}
