//! Library error type.

use dspsim::{SimError, WatchdogUnit};
use std::fmt;

/// Errors from the ftIMM library.
#[derive(Debug)]
pub enum FtimmError {
    /// Simulator failure (bounds, hazards, allocation).
    Sim(dspsim::SimError),
    /// Kernel generation failure.
    Gen(kernelgen::GenError),
    /// Transient failure of the host CPU fallback backend (injected via
    /// [`dspsim::FaultPlan::fail_cpu`]): the dispatched span's work is
    /// lost, but the backend itself survives and may be retried — or the
    /// job shed — by the caller's policy.
    CpuFault(String),
    /// Problem-level validation failure.
    Invalid(String),
}

impl FtimmError {
    /// Whether this error is a *transient hardware fault* the resilience
    /// layers retry or route around: an injected DMA timeout, a hung DMA
    /// caught by the watchdog, a core failure, or detected data
    /// corruption.  Deadline preemption and caller errors (invalid
    /// problems, capacity) are not transient.
    pub fn is_transient_fault(&self) -> bool {
        matches!(
            self,
            FtimmError::Sim(
                SimError::DmaTimeout { .. }
                    | SimError::CoreFailed { .. }
                    | SimError::DataCorrupt { .. }
                    | SimError::WatchdogTripped {
                        unit: WatchdogUnit::Dma { .. },
                        ..
                    }
            )
        )
    }

    /// Whether this error is a whole-cluster death (injected via
    /// [`dspsim::FaultPlan::kill_cluster`]).  Not transient: the fault
    /// domain is gone and no retry on the same machine can succeed — the
    /// sharded engine recovers by failing the shard over to a surviving
    /// cluster instead.
    pub fn is_cluster_death(&self) -> bool {
        matches!(self, FtimmError::Sim(SimError::ClusterFailed { .. }))
    }

    /// Whether this error is a transient fault of the host CPU fallback
    /// backend.  Like [`FtimmError::is_transient_fault`] it marks lost
    /// work rather than a dead domain, but it feeds the *CPU* circuit
    /// breaker: since the CPU lane is the last fault domain there is
    /// nowhere further to fail over, so the sharded engine sheds the job
    /// with a reason instead of retrying.
    pub fn is_cpu_fault(&self) -> bool {
        matches!(self, FtimmError::CpuFault(_))
    }

    /// Whether this error is a deadline preemption (the armed watchdog
    /// stopped a core that passed its deadline).
    pub fn is_deadline(&self) -> bool {
        matches!(
            self,
            FtimmError::Sim(SimError::WatchdogTripped {
                unit: WatchdogUnit::Core { .. },
                ..
            })
        )
    }

    /// The physical core this error implicates, if it carries one.
    pub fn implicated_core(&self) -> Option<usize> {
        match self {
            FtimmError::Sim(
                SimError::DmaTimeout { core, .. }
                | SimError::CoreFailed { core, .. }
                | SimError::WatchdogTripped {
                    unit: WatchdogUnit::Dma { core, .. } | WatchdogUnit::Core { core },
                    ..
                },
            ) => Some(*core),
            _ => None,
        }
    }
}

impl fmt::Display for FtimmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtimmError::Sim(e) => write!(f, "simulator error: {e}"),
            FtimmError::Gen(e) => write!(f, "kernel generation error: {e}"),
            FtimmError::CpuFault(s) => write!(f, "cpu backend fault: {s}"),
            FtimmError::Invalid(s) => write!(f, "invalid problem: {s}"),
        }
    }
}

impl std::error::Error for FtimmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FtimmError::Sim(e) => Some(e),
            FtimmError::Gen(e) => Some(e),
            FtimmError::CpuFault(_) | FtimmError::Invalid(_) => None,
        }
    }
}

impl From<dspsim::SimError> for FtimmError {
    fn from(e: dspsim::SimError) -> Self {
        FtimmError::Sim(e)
    }
}

impl From<kernelgen::GenError> for FtimmError {
    fn from(e: kernelgen::GenError) -> Self {
        FtimmError::Gen(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: FtimmError = kernelgen::GenError::NaTooLarge { n_a: 100, max: 96 }.into();
        assert!(e.to_string().contains("100"));
        assert!(std::error::Error::source(&e).is_some());
        let e = FtimmError::Invalid("bad".into());
        assert!(e.to_string().contains("bad"));
        let e = FtimmError::CpuFault("span 3 lost".into());
        assert!(e.to_string().contains("cpu backend fault"));
        assert!(e.is_cpu_fault());
        assert!(!e.is_transient_fault() && !e.is_cluster_death() && !e.is_deadline());
        assert!(std::error::Error::source(&e).is_none());
    }
}
