//! Mode-dispatched micro-kernel invocation.
//!
//! * `Interpret`: run the generated VLIW program through the simulator's
//!   hazard-checking interpreter (bit-exact, slow).
//! * `Fast` / `Compiled`: read the panels out of the simulated
//!   scratchpads, execute the matching host tier through the
//!   [`KernelExecutor`] dispatch point (both bit-equal to `Interpret`;
//!   `Compiled` runs the kernel's SIMD lowering), write C back, and
//!   advance the clock by the kernel's cycle count.
//! * `Timing`: advance the clock only.

use crate::FtimmError;
use dspsim::{ExecMode, KernelBindings, Machine};
use kernelgen::{HostTier, KernelExecutor, MicroKernel};

/// Execute one kernel invocation on `core` with the given buffer bindings.
pub fn invoke_kernel(
    m: &mut Machine,
    core: usize,
    ex: &KernelExecutor,
    kernel: &MicroKernel,
    bind: KernelBindings,
) -> Result<(), FtimmError> {
    m.check_core_alive(core)?;
    match m.mode {
        ExecMode::Interpret => {
            m.run_kernel(core, &kernel.program, bind, true)?;
        }
        ExecMode::Fast | ExecMode::Compiled => {
            let tier = HostTier::from_mode(m.mode).expect("functional host mode");
            let spec = kernel.spec;
            let ld = spec.na_pad();
            let mut a = vec![0.0f32; spec.m_s * spec.k_a];
            let mut b = vec![0.0f32; spec.k_a * ld];
            let mut c = vec![0.0f32; spec.m_s * ld];
            {
                let cr = m.core_mut(core);
                cr.sm.read_f32_slice(bind.a_off, &mut a)?;
                cr.am.read_f32_slice(bind.b_off, &mut b)?;
                cr.am.read_f32_slice(bind.c_off, &mut c)?;
            }
            ex.execute(tier, kernel, &a, &b, &mut c)?;
            let cr = m.core_mut(core);
            cr.am.write_f32_slice(bind.c_off, &c)?;
            cr.stats.flops += kernel.program.flops();
            cr.stats.kernel_calls += 1;
            m.compute(core, kernel.cycles);
        }
        ExecMode::Timing => {
            let cr = m.core_mut(core);
            cr.stats.flops += kernel.program.flops();
            cr.stats.kernel_calls += 1;
            m.compute(core, kernel.cycles);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspsim::HwConfig;
    use kernelgen::{KernelCache, KernelSpec};
    use std::sync::Arc;

    fn setup(mode: ExecMode) -> (Machine, KernelExecutor, Arc<MicroKernel>, KernelBindings) {
        let cfg = HwConfig::default();
        let ex = KernelExecutor::new(Arc::new(KernelCache::new(cfg.clone())));
        let kernel = ex
            .kernels()
            .get(KernelSpec::new(4, 16, 32).unwrap())
            .unwrap();
        let mut m = Machine::new(cfg, mode);
        if mode.is_functional() {
            let a = crate::reference::fill_matrix(4 * 16, 1);
            let b = crate::reference::fill_matrix(16 * 32, 2);
            m.core_mut(0).sm.write_f32_slice(0, &a).unwrap();
            m.core_mut(0).am.write_f32_slice(0, &b).unwrap();
            m.core_mut(0).am.zero(8192, 4 * 32 * 4).unwrap();
        }
        (
            m,
            ex,
            kernel,
            KernelBindings {
                a_off: 0,
                b_off: 0,
                c_off: 8192,
            },
        )
    }

    fn read_c(m: &mut Machine) -> Vec<f32> {
        let mut c = vec![0.0f32; 4 * 32];
        m.core_mut(0).am.read_f32_slice(8192, &mut c).unwrap();
        c
    }

    #[test]
    fn fast_and_interpret_agree_bitwise() {
        let (mut mi, exi, kernel, bind) = setup(ExecMode::Interpret);
        invoke_kernel(&mut mi, 0, &exi, &kernel, bind).unwrap();
        let (mut mf, exf, _, _) = setup(ExecMode::Fast);
        invoke_kernel(&mut mf, 0, &exf, &kernel, bind).unwrap();
        let ci = read_c(&mut mi);
        let cf = read_c(&mut mf);
        for (x, y) in ci.iter().zip(&cf) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // Both advance the clock by the same cycles.
        assert!((mi.core_time(0) - mf.core_time(0)).abs() < 1e-18);
    }

    #[test]
    fn compiled_and_interpret_agree_bitwise_and_on_the_clock() {
        let (mut mi, exi, kernel, bind) = setup(ExecMode::Interpret);
        invoke_kernel(&mut mi, 0, &exi, &kernel, bind).unwrap();
        let (mut mc, exc, _, _) = setup(ExecMode::Compiled);
        invoke_kernel(&mut mc, 0, &exc, &kernel, bind).unwrap();
        let ci = read_c(&mut mi);
        let cc = read_c(&mut mc);
        for (x, y) in ci.iter().zip(&cc) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert!((mi.core_time(0) - mc.core_time(0)).abs() < 1e-18);
        // The invocation went through the compiled memo.
        let stats = exc.stats();
        assert_eq!(stats.compiles, 1);
    }

    #[test]
    fn timing_mode_only_advances_clock() {
        let (mut mt, ext, kernel, bind) = setup(ExecMode::Timing);
        invoke_kernel(&mut mt, 0, &ext, &kernel, bind).unwrap();
        assert_eq!(mt.core(0).stats.kernel_calls, 1);
        assert_eq!(mt.core(0).stats.compute_cycles, kernel.cycles);
        assert!(mt.core_time(0) > 0.0);
    }
}
