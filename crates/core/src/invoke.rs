//! Mode-dispatched micro-kernel invocation.
//!
//! * `Interpret`: run the generated VLIW program through the simulator's
//!   hazard-checking interpreter (bit-exact, slow).
//! * `Fast`: read the panels out of the simulated scratchpads, execute the
//!   order-mirroring host kernel (bit-equal to `Interpret`), write C back,
//!   and advance the clock by the kernel's cycle count.
//! * `Timing`: advance the clock only.

use crate::FtimmError;
use dspsim::{ExecMode, KernelBindings, Machine};
use kernelgen::MicroKernel;

/// Execute one kernel invocation on `core` with the given buffer bindings.
pub fn invoke_kernel(
    m: &mut Machine,
    core: usize,
    kernel: &MicroKernel,
    bind: KernelBindings,
) -> Result<(), FtimmError> {
    m.check_core_alive(core)?;
    match m.mode {
        ExecMode::Interpret => {
            m.run_kernel(core, &kernel.program, bind, true)?;
        }
        ExecMode::Fast => {
            let spec = kernel.spec;
            let ld = spec.na_pad();
            let mut a = vec![0.0f32; spec.m_s * spec.k_a];
            let mut b = vec![0.0f32; spec.k_a * ld];
            let mut c = vec![0.0f32; spec.m_s * ld];
            {
                let cr = m.core_mut(core);
                cr.sm.read_f32_slice(bind.a_off, &mut a)?;
                cr.am.read_f32_slice(bind.b_off, &mut b)?;
                cr.am.read_f32_slice(bind.c_off, &mut c)?;
            }
            kernel.execute_fast(&a, &b, &mut c);
            let cr = m.core_mut(core);
            cr.am.write_f32_slice(bind.c_off, &c)?;
            cr.stats.flops += kernel.program.flops();
            cr.stats.kernel_calls += 1;
            m.compute(core, kernel.cycles);
        }
        ExecMode::Timing => {
            let cr = m.core_mut(core);
            cr.stats.flops += kernel.program.flops();
            cr.stats.kernel_calls += 1;
            m.compute(core, kernel.cycles);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspsim::HwConfig;
    use kernelgen::{KernelCache, KernelSpec};

    fn setup(mode: ExecMode) -> (Machine, std::sync::Arc<MicroKernel>, KernelBindings) {
        let cfg = HwConfig::default();
        let cache = KernelCache::new(cfg.clone());
        let kernel = cache.get(KernelSpec::new(4, 16, 32).unwrap()).unwrap();
        let mut m = Machine::new(cfg, mode);
        if mode.is_functional() {
            let a = crate::reference::fill_matrix(4 * 16, 1);
            let b = crate::reference::fill_matrix(16 * 32, 2);
            m.core_mut(0).sm.write_f32_slice(0, &a).unwrap();
            m.core_mut(0).am.write_f32_slice(0, &b).unwrap();
            m.core_mut(0).am.zero(8192, 4 * 32 * 4).unwrap();
        }
        (
            m,
            kernel,
            KernelBindings {
                a_off: 0,
                b_off: 0,
                c_off: 8192,
            },
        )
    }

    #[test]
    fn fast_and_interpret_agree_bitwise() {
        let (mut mi, kernel, bind) = setup(ExecMode::Interpret);
        invoke_kernel(&mut mi, 0, &kernel, bind).unwrap();
        let (mut mf, _, _) = setup(ExecMode::Fast);
        invoke_kernel(&mut mf, 0, &kernel, bind).unwrap();
        let mut ci = vec![0.0f32; 4 * 32];
        let mut cf = vec![0.0f32; 4 * 32];
        mi.core_mut(0).am.read_f32_slice(8192, &mut ci).unwrap();
        mf.core_mut(0).am.read_f32_slice(8192, &mut cf).unwrap();
        for (x, y) in ci.iter().zip(&cf) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // Both advance the clock by the same cycles.
        assert!((mi.core_time(0) - mf.core_time(0)).abs() < 1e-18);
    }

    #[test]
    fn timing_mode_only_advances_clock() {
        let (mut mt, kernel, bind) = setup(ExecMode::Timing);
        invoke_kernel(&mut mt, 0, &kernel, bind).unwrap();
        assert_eq!(mt.core(0).stats.kernel_calls, 1);
        assert_eq!(mt.core(0).stats.compute_cycles, kernel.cycles);
        assert!(mt.core_time(0) > 0.0);
    }
}
