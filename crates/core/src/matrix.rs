//! Matrices resident in the simulated DDR.

use dspsim::{Machine, SimError};

/// A row-major f32 matrix in the machine's DDR partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DdrMatrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Leading dimension in elements (≥ `cols`).
    pub ld: usize,
    /// Byte offset of element (0, 0) in DDR.
    pub off: u64,
}

impl DdrMatrix {
    /// Bump-allocate a dense matrix in DDR (no data is written; in timing
    /// mode the backing store is never materialised).
    pub fn alloc(m: &mut Machine, rows: usize, cols: usize) -> Result<Self, SimError> {
        let bytes = rows as u64 * cols as u64 * 4;
        let off = m.ddr.alloc(bytes, 64)?;
        Ok(DdrMatrix {
            rows,
            cols,
            ld: cols,
            off,
        })
    }

    /// Byte offset of element `(r, c)`.
    pub fn elem_off(&self, r: usize, c: usize) -> u64 {
        self.off + (r as u64 * self.ld as u64 + c as u64) * 4
    }

    /// Element offset (in elements, relative to DDR byte 0 / 4).
    pub fn elem_index(&self, r: usize, c: usize) -> u64 {
        self.elem_off(r, c) / 4
    }

    /// A sub-matrix view: rows `[r0, r0+rows)` × columns `[c0, c0+cols)`
    /// of this matrix, sharing the same storage (leading dimension is
    /// inherited).  All GEMM entry points accept views.
    pub fn view(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Self {
        assert!(
            r0 + rows <= self.rows && c0 + cols <= self.cols,
            "view out of bounds"
        );
        DdrMatrix {
            rows,
            cols,
            ld: self.ld,
            off: self.elem_off(r0, c0),
        }
    }

    /// Write host data into the simulated DDR (no-op in timing mode).
    pub fn upload(&self, m: &mut Machine, data: &[f32]) -> Result<(), SimError> {
        if !m.mode.is_functional() {
            return Ok(());
        }
        assert_eq!(data.len(), self.rows * self.cols, "shape mismatch");
        if self.ld == self.cols {
            m.ddr.write_f32_slice(self.off, data)
        } else {
            for r in 0..self.rows {
                m.ddr.write_f32_slice(
                    self.elem_off(r, 0),
                    &data[r * self.cols..(r + 1) * self.cols],
                )?;
            }
            Ok(())
        }
    }

    /// Read the matrix back from simulated DDR.
    pub fn download(&self, m: &mut Machine) -> Result<Vec<f32>, SimError> {
        let mut out = vec![0.0f32; self.rows * self.cols];
        if self.ld == self.cols {
            m.ddr.read_f32_slice(self.off, &mut out)?;
        } else {
            for r in 0..self.rows {
                m.ddr.read_f32_slice(
                    self.elem_off(r, 0),
                    &mut out[r * self.cols..(r + 1) * self.cols],
                )?;
            }
        }
        Ok(out)
    }
}

/// One GEMM problem: `C += A × B` with `A: M×K`, `B: K×N`, `C: M×N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmProblem {
    /// The A operand.
    pub a: DdrMatrix,
    /// The B operand.
    pub b: DdrMatrix,
    /// The C accumulator.
    pub c: DdrMatrix,
}

impl GemmProblem {
    /// Allocate all three matrices for an `M×N×K` problem.
    pub fn alloc(m: &mut Machine, mm: usize, nn: usize, kk: usize) -> Result<Self, SimError> {
        Ok(GemmProblem {
            a: DdrMatrix::alloc(m, mm, kk)?,
            b: DdrMatrix::alloc(m, kk, nn)?,
            c: DdrMatrix::alloc(m, mm, nn)?,
        })
    }

    /// M dimension.
    pub fn m(&self) -> usize {
        self.a.rows
    }

    /// N dimension.
    pub fn n(&self) -> usize {
        self.b.cols
    }

    /// K dimension.
    pub fn k(&self) -> usize {
        self.a.cols
    }

    /// Useful flops (2·M·N·K).
    pub fn flops(&self) -> u64 {
        2 * self.m() as u64 * self.n() as u64 * self.k() as u64
    }

    /// Validate operand shape agreement.
    pub fn validate(&self) -> Result<(), String> {
        if self.b.rows != self.a.cols {
            return Err(format!(
                "K mismatch: A is {}×{}, B is {}×{}",
                self.a.rows, self.a.cols, self.b.rows, self.b.cols
            ));
        }
        if self.c.rows != self.a.rows || self.c.cols != self.b.cols {
            return Err(format!(
                "C is {}×{}, expected {}×{}",
                self.c.rows, self.c.cols, self.a.rows, self.b.cols
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspsim::ExecMode;

    #[test]
    fn upload_download_round_trip() {
        let mut m = Machine::with_mode(ExecMode::Fast);
        let mat = DdrMatrix::alloc(&mut m, 3, 5).unwrap();
        let data: Vec<f32> = (0..15).map(|i| i as f32).collect();
        mat.upload(&mut m, &data).unwrap();
        assert_eq!(mat.download(&mut m).unwrap(), data);
        assert_eq!(mat.elem_off(1, 2), mat.off + 7 * 4);
    }

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut m = Machine::with_mode(ExecMode::Fast);
        let a = DdrMatrix::alloc(&mut m, 4, 4).unwrap();
        let b = DdrMatrix::alloc(&mut m, 4, 4).unwrap();
        assert_eq!(a.off % 64, 0);
        assert_eq!(b.off % 64, 0);
        assert!(b.off >= a.off + 64);
    }

    #[test]
    fn timing_mode_upload_is_a_noop() {
        let mut m = Machine::with_mode(ExecMode::Timing);
        let mat = DdrMatrix::alloc(&mut m, 1 << 12, 1 << 10).unwrap();
        mat.upload(&mut m, &[]).unwrap(); // would panic on shape in functional mode
    }

    #[test]
    fn problem_accessors_and_validation() {
        let mut m = Machine::with_mode(ExecMode::Fast);
        let p = GemmProblem::alloc(&mut m, 8, 3, 17).unwrap();
        assert_eq!((p.m(), p.n(), p.k()), (8, 3, 17));
        assert_eq!(p.flops(), 2 * 8 * 3 * 17);
        p.validate().unwrap();
        let bad = GemmProblem {
            a: p.a,
            b: p.b,
            c: p.a,
        };
        assert!(bad.validate().is_err());
    }
}
