//! Execution backends: the heterogeneous dispatch layer.
//!
//! FT-m7032 is a heterogeneous part — four GPDSP clusters *plus* a
//! 16-core ARMv8 CPU (§II of the paper).  Everything else in this crate
//! targets the simulated DSP cluster; this module promotes the CPU from
//! a Fig. 7 chart baseline to a real execution resource:
//!
//! * [`Backend`] — the common surface over both devices: identity
//!   ([`dspsim::BackendKind`]), peak flop/s, and an analytic performance
//!   prediction ([`BackendPrediction`]).  The planner's analytic cost
//!   model covers the DSP side; [`cpublas::predict`] covers the CPU
//!   side, so the Fig. 7 comparison and live dispatch share one model
//!   and one config.
//! * [`DspBackend`] — the DSP cluster seen through [`crate::FtImm`]'s
//!   planner and timing model.
//! * [`CpuBackend`] — a stateful host executor that runs a resolved
//!   [`crate::ChosenStrategy`] on the host CPU with the **same blocking
//!   and accumulation order as the DSP path** (the kernelgen tiling
//!   walk, *not* `cpublas::sgemm`'s Goto order), so a job that fails
//!   over from the DSP pool to the CPU produces bitwise identical
//!   output.  Simulated time is charged from [`cpublas::predict`]; see
//!   [`cpu`] for the fault and deadline model.
//!
//! The sharded engine ([`crate::cluster::ShardedEngine`]) uses the CPU
//! backend in two roles: as a planned *peer* under
//! [`crate::cluster::SpillPolicy::CoExecute`] (the co-execution planner
//! in [`crate::plan::plan_coexec`] places an M-stripe tail on the CPU
//! when both cost models say the split wins), and as the *last fault
//! domain* — when every cluster is dead or unusable, shards spill to
//! the CPU instead of being shed (gated by
//! [`crate::cluster::SpillPolicy`]).  See DESIGN.md §4.4.
//!
//! Every consumer of the CPU cost model — the [`Backend`] impl, the
//! stripe executor's time charge, the co-execution split chooser and the
//! bench fig7/hetero gates — routes through [`predict_cpu_stripe`], so
//! the ±30% `--assert-cpu-model` gate and the planner can never drift
//! apart.

pub mod cpu;
pub(crate) mod host;

pub use cpu::{CpuBackend, CpuLaneOutcome, CpuStripeRun};

use crate::{FtImm, GemmShape, Strategy};
use dspsim::BackendKind;

/// An analytic performance prediction from a backend's cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendPrediction {
    /// Predicted wall time, seconds.
    pub seconds: f64,
    /// Achieved flop/s implied by the prediction.
    pub flops_per_s: f64,
    /// Efficiency against the backend's own peak.
    pub efficiency: f64,
}

/// The one shared evaluation of the CPU cost model: predict a
/// `m × n × k` GEMM stripe on the host described by `cfg`, scaled by a
/// lane-health `slowdown` factor (1.0 = nominal).  Everything that
/// consults the CPU model — [`CpuBackend`]'s [`Backend::predict`] and
/// per-dispatch time charge, the co-execution split chooser
/// ([`crate::plan::choose_coexec_split`]) and the bench CPU-model gates —
/// calls this, so a change to the slowdown or derivation arithmetic can
/// never leave one call site behind.
///
/// `flops_per_s` and `efficiency` are derived from the *scaled* seconds,
/// so a degraded lane honestly reports degraded throughput.  Panics if
/// any dimension is zero (as [`cpublas::predict`] does): callers decide
/// what an empty stripe means.
pub fn predict_cpu_stripe(
    cfg: &cpublas::CpuConfig,
    m: usize,
    n: usize,
    k: usize,
    slowdown: f64,
) -> BackendPrediction {
    let p = cpublas::predict(cfg, m, n, k);
    let seconds = p.seconds * slowdown;
    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    let flops_per_s = if seconds > 0.0 { flops / seconds } else { 0.0 };
    BackendPrediction {
        seconds,
        flops_per_s,
        efficiency: flops_per_s / cfg.peak_flops(),
    }
}

/// A compute device that can be asked who it is, how fast it could ever
/// go, and how long a GEMM of a given shape should take on it.
///
/// This is the planner-facing surface: placement and spill decisions,
/// the Fig. 7 CPU-vs-DSP comparison and the bench gates all consume the
/// same predictions the dispatch layer charges as simulated time, so
/// the model can never drift from the execution path.
pub trait Backend {
    /// Which device this is.
    fn kind(&self) -> BackendKind;

    /// Peak single-precision flop/s of the device.
    fn peak_flops(&self) -> f64;

    /// Predicted performance for `C += A×B` of `shape`.
    fn predict(&self, shape: &GemmShape) -> BackendPrediction;
}

/// The simulated GPDSP cluster as a [`Backend`]: predictions come from
/// [`FtImm`]'s planner (analytic ranking refined on the timing model,
/// memoized in the plan cache).
pub struct DspBackend<'a> {
    ft: &'a FtImm,
    strategy: Strategy,
    cores: usize,
}

impl<'a> DspBackend<'a> {
    /// A DSP backend planning with `strategy` on `cores` cores.
    pub fn new(ft: &'a FtImm, strategy: Strategy, cores: usize) -> Self {
        DspBackend {
            ft,
            strategy,
            cores,
        }
    }
}

impl Backend for DspBackend<'_> {
    fn kind(&self) -> BackendKind {
        BackendKind::Dsp
    }

    fn peak_flops(&self) -> f64 {
        self.ft.cfg().core_peak_flops() * self.cores as f64
    }

    fn predict(&self, shape: &GemmShape) -> BackendPrediction {
        let plan = self.ft.plan_full(shape, self.strategy, self.cores);
        // Prefer the timing-model estimate; fall back to the analytic one
        // (both are INFINITY-when-unknown sentinels).
        let seconds = if plan.simulated_s.is_finite() {
            plan.simulated_s
        } else {
            plan.predicted_s
        };
        let flops = 2.0 * shape.m as f64 * shape.n as f64 * shape.k as f64;
        let flops_per_s = if seconds > 0.0 { flops / seconds } else { 0.0 };
        BackendPrediction {
            seconds,
            flops_per_s,
            efficiency: flops_per_s / self.peak_flops(),
        }
    }
}

impl Backend for CpuBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Cpu
    }

    fn peak_flops(&self) -> f64 {
        self.cpu_cfg().peak_flops()
    }

    fn predict(&self, shape: &GemmShape) -> BackendPrediction {
        // The trait prediction is the *nominal* model (slowdown 1.0):
        // placement comparisons and the bench gates reason about the
        // healthy device; lane-health scaling is the dispatcher's
        // business (see [`CpuBackend::run_stripe`]).
        predict_cpu_stripe(self.cpu_cfg(), shape.m, shape.n, shape.k, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspsim::HwConfig;

    #[test]
    fn dsp_backend_predicts_through_the_plan_cache() {
        let ft = FtImm::new(HwConfig::default());
        let be = DspBackend::new(&ft, Strategy::Auto, 8);
        assert_eq!(be.kind(), BackendKind::Dsp);
        let shape = GemmShape::new(512, 32, 256);
        let p = be.predict(&shape);
        assert!(p.seconds > 0.0 && p.seconds.is_finite());
        assert!(p.flops_per_s > 0.0);
        assert!(p.efficiency > 0.0 && p.efficiency <= 1.0);
        // A second prediction of the same shape is a plan-cache hit.
        let misses = ft.plan_cache_stats().misses;
        let p2 = be.predict(&shape);
        assert_eq!(ft.plan_cache_stats().misses, misses);
        assert_eq!(p.seconds.to_bits(), p2.seconds.to_bits());
    }

    #[test]
    fn cpu_backend_prediction_matches_the_cpublas_model() {
        let be = CpuBackend::new(cpublas::CpuConfig::default());
        assert_eq!(be.kind(), BackendKind::Cpu);
        let shape = GemmShape::new(2560, 32, 2560);
        let want = cpublas::predict(&cpublas::CpuConfig::default(), 2560, 32, 2560);
        let got = be.predict(&shape);
        assert_eq!(got.seconds.to_bits(), want.seconds.to_bits());
        assert_eq!(got.efficiency.to_bits(), want.efficiency.to_bits());
        assert!((be.peak_flops() - 281.6e9).abs() < 1e6);
    }
}
