//! The host CPU as a fallback execution backend.
//!
//! [`CpuBackend`] executes a resolved [`ChosenStrategy`] on the host with
//! the DSP path's exact blocking and accumulation order (see
//! [`super::host`]), making it a drop-in *last fault domain* for the
//! sharded engine: output bits are indistinguishable from an all-DSP run.
//!
//! ## Timing
//!
//! The host walk computes real values but the simulation's notion of time
//! stays analytic: each dispatch charges
//! [`cpublas::predict`]`(rows, n, k).seconds × slowdown` to the backend's
//! own clock, distributed pro-rata (by rows) across the dispatch's
//! checkpoint spans so mid-dispatch faults and deadlines land on span
//! boundaries exactly like the DSP's checkpointed salvage.  The CPU clock
//! is independent of any cluster's clock — the engine merges them when it
//! accounts a job.
//!
//! ## Faults and deadlines
//!
//! Seeded fault plans extend to the CPU lane
//! ([`dspsim::FaultPlan::cpu_slowdown`] multiplies charged time;
//! [`dspsim::FaultPlan::fail_cpu`] kills the n-th span ever run, counting
//! from 1, losing that span's work).  A dispatch given a deadline budget
//! stops at the first span that would overrun it, clamping the clock to
//! the budget.  Either way [`CpuStripeRun::rows_verified`] tells the
//! caller exactly which prefix of the stripe completed, and the backend's
//! [`CircuitBreaker`] records the fault so spill policies can stop
//! routing work at a trip threshold.

use crate::engine::CircuitBreaker;
use crate::error::FtimmError;
use crate::resilience::ckpt_spans;
use crate::ChosenStrategy;
use cpublas::CpuConfig;
use dspsim::{FaultPlan, Phase, Profiler, Span};
use kernelgen::{HostTier, KernelExecutor};

/// How a CPU-lane dispatch ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CpuLaneOutcome {
    /// Every span of the stripe completed.
    Done,
    /// An armed transient CPU fault killed the `nth` span ever run on
    /// this backend (1-based, across all dispatches).
    Fault {
        /// Which armed failure fired (its `nth` counter value).
        nth: u64,
    },
    /// The dispatch's deadline budget expired before the failing span;
    /// the clock was clamped to `at` seconds on the CPU clock.
    Deadline {
        /// CPU-clock time at which the budget ran out.
        at: f64,
    },
}

/// Result of one stripe dispatch on the CPU backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuStripeRun {
    /// Terminal state of the dispatch.
    pub outcome: CpuLaneOutcome,
    /// Rows of the stripe whose output is complete and correct (always a
    /// prefix: spans run in row order and a failed span's work is lost).
    pub rows_verified: usize,
    /// Simulated seconds this dispatch charged to the CPU clock.
    pub seconds: f64,
}

/// A stateful host CPU executor: the last fault domain of the sharded
/// engine.  Carries its own simulated clock, circuit breaker, armed
/// faults and profiler track.
pub struct CpuBackend {
    cfg: CpuConfig,
    /// `cores_per_cluster` of the DSP plans being replayed — the host
    /// walk must clamp the plan's core count exactly as a fully-healthy
    /// cluster would.
    dsp_cores_per_cluster: usize,
    clock: f64,
    /// Spans ever run on this backend, 1-based at comparison time:
    /// incremented before each span, matched against armed `fail_cpu`
    /// nths.
    spans_run: u64,
    slowdown: f64,
    /// Host tier kernels run on.  Defaults to `Compiled` (the SIMD
    /// lowering) — bit-identical to `Fast` by contract, so failover
    /// output never depends on this choice.
    tier: HostTier,
    armed_failures: Vec<u64>,
    dispatches: u64,
    breaker: CircuitBreaker,
    profiler: Profiler,
}

impl CpuBackend {
    /// A fresh CPU backend with clock at zero, no armed faults, a closed
    /// breaker and profiling off.  Plans are replayed as if for a
    /// default-config cluster; see [`CpuBackend::with_dsp_cores`].
    pub fn new(cfg: CpuConfig) -> Self {
        CpuBackend {
            cfg,
            dsp_cores_per_cluster: dspsim::HwConfig::default().cores_per_cluster,
            clock: 0.0,
            spans_run: 0,
            slowdown: 1.0,
            tier: HostTier::Compiled,
            armed_failures: Vec::new(),
            dispatches: 0,
            breaker: CircuitBreaker::new(),
            profiler: Profiler::disabled(),
        }
    }

    /// Set the `cores_per_cluster` of the DSP machines whose plans this
    /// backend replays (the host walk's core clamp must match the
    /// cluster the plan was pinned for).
    pub fn with_dsp_cores(mut self, cores_per_cluster: usize) -> Self {
        self.dsp_cores_per_cluster = cores_per_cluster;
        self
    }

    /// Pick the host tier kernel invocations run on (`Compiled` by
    /// default; `Fast` is the scalar reference mirror — bit-identical).
    pub fn with_tier(mut self, tier: HostTier) -> Self {
        self.tier = tier;
        self
    }

    /// The host tier this backend dispatches kernels on.
    pub fn tier(&self) -> HostTier {
        self.tier
    }

    /// The CPU model config (also the analytic cost model's input).
    pub fn cpu_cfg(&self) -> &CpuConfig {
        &self.cfg
    }

    /// The compounded lane-health slowdown factor charged per dispatch
    /// (1.0 until a [`FaultPlan::cpu_slowdown`] is installed).  The
    /// co-execution planner reads this so a degraded lane is split
    /// against honestly.
    pub fn slowdown(&self) -> f64 {
        self.slowdown
    }

    /// Arm the CPU-lane faults of `plan`: slowdowns compound
    /// multiplicatively into the charged time; each `fail_cpu(nth)`
    /// kills the nth span ever run on this backend.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        self.slowdown *= plan.cpu_slowdown_factor();
        self.armed_failures
            .extend(plan.cpu_failures.iter().map(|f| f.nth));
    }

    /// Simulated seconds elapsed on the CPU's own clock.
    pub fn elapsed(&self) -> f64 {
        self.clock
    }

    /// Number of stripe dispatches ever issued to this backend.
    pub fn dispatches(&self) -> u64 {
        self.dispatches
    }

    /// The CPU lane's circuit breaker (read side).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// The CPU lane's circuit breaker (policy side: engines record
    /// faults/successes and tick cooldowns here).
    pub fn breaker_mut(&mut self) -> &mut CircuitBreaker {
        &mut self.breaker
    }

    /// Enable the profiler track (one span per checkpoint span run).
    pub fn enable_profiling(&mut self, capacity: usize) {
        self.profiler = Profiler::enabled(capacity);
    }

    /// Take the profiler track, leaving profiling disabled.
    pub fn take_profiler(&mut self) -> Profiler {
        std::mem::replace(&mut self.profiler, Profiler::disabled())
    }

    /// Execute a `rows × n × k` GEMM stripe (`C += A×B`) on the host
    /// with the blocking walk of `strategy`, checkpointed every
    /// `ckpt_rows` rows (0 = one span).  `a`/`c` are the *stripe* slices
    /// (`rows × k` and `rows × n`, dense); `b` is the full `k × n`
    /// matrix.  In timing mode the buffers are empty and only time is
    /// charged (the sharded engine's data-free job convention).
    /// `deadline_budget` is this dispatch's allowance on the CPU clock,
    /// if any.
    ///
    /// Values are computed span by span so a fault or deadline loses
    /// only the failing span; completed spans stay in `c` (the engine's
    /// salvage contract).  Errors never surface as `Err` — the terminal
    /// state is in [`CpuStripeRun::outcome`] — but the signature keeps
    /// kernel-generation errors honest.
    #[allow(clippy::too_many_arguments)]
    pub fn run_stripe(
        &mut self,
        ex: &KernelExecutor,
        strategy: &ChosenStrategy,
        cores: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        n: usize,
        k: usize,
        rows: usize,
        ckpt_rows: usize,
        deadline_budget: Option<f64>,
    ) -> Result<CpuStripeRun, FtimmError> {
        self.dispatches += 1;
        let t_start = self.clock;
        if rows == 0 {
            return Ok(CpuStripeRun {
                outcome: CpuLaneOutcome::Done,
                rows_verified: 0,
                seconds: 0.0,
            });
        }
        // One model evaluation per dispatch, distributed pro-rata by
        // rows across the checkpoint spans.
        let total_s = super::predict_cpu_stripe(&self.cfg, rows, n, k, self.slowdown).seconds;
        let per_row_s = total_s / rows as f64;
        let spans = ckpt_spans(rows, ckpt_rows);
        let mut rows_verified = 0usize;
        for &(s0, s1) in &spans {
            let span_s = per_row_s * (s1 - s0) as f64;
            // Deadline check first: a span that cannot finish inside the
            // budget is not started (matching the DSP watchdog, which
            // preempts the span rather than letting it complete late).
            if let Some(budget) = deadline_budget {
                if self.clock - t_start + span_s > budget {
                    // Deadline preemption is not a backend fault — the
                    // breaker is untouched (the engine decides policy).
                    self.clock = t_start + budget;
                    return Ok(CpuStripeRun {
                        outcome: CpuLaneOutcome::Deadline { at: self.clock },
                        rows_verified,
                        seconds: self.clock - t_start,
                    });
                }
            }
            self.spans_run += 1;
            if let Some(pos) = self
                .armed_failures
                .iter()
                .position(|&nth| nth == self.spans_run)
            {
                // The span's time was spent but its work is lost.
                self.armed_failures.swap_remove(pos);
                let nth = self.spans_run;
                self.clock += span_s;
                return Ok(CpuStripeRun {
                    outcome: CpuLaneOutcome::Fault { nth },
                    rows_verified,
                    seconds: self.clock - t_start,
                });
            }
            if !c.is_empty() {
                super::host::run_strategy_host(
                    ex,
                    self.tier,
                    strategy,
                    cores,
                    self.dsp_cores_per_cluster,
                    &a[s0 * k..s1 * k],
                    b,
                    &mut c[s0 * n..s1 * n],
                    s1 - s0,
                    n,
                    k,
                )?;
            }
            let t0 = self.clock;
            self.clock += span_s;
            self.profiler.record(Span {
                phase: Phase::Compute,
                core: 0,
                t0,
                t1: self.clock,
            });
            rows_verified = s1;
        }
        self.breaker.record_success();
        Ok(CpuStripeRun {
            outcome: CpuLaneOutcome::Done,
            rows_verified,
            seconds: self.clock - t_start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reference, FtImm, GemmShape, Strategy};
    use dspsim::HwConfig;

    fn setup(m: usize, n: usize, k: usize) -> (FtImm, Vec<f32>, Vec<f32>, Vec<f32>) {
        let ft = FtImm::new(HwConfig::default());
        (
            ft,
            reference::fill_matrix(m * k, 11),
            reference::fill_matrix(k * n, 12),
            reference::fill_matrix(m * n, 13),
        )
    }

    #[test]
    fn stripe_run_matches_reference_and_charges_model_time() {
        let (m, n, k) = (96, 32, 64);
        let (ft, a, b, c0) = setup(m, n, k);
        let strategy = ft.plan(&GemmShape::new(m, n, k), Strategy::Auto, 8);
        let want = reference::sgemm_f64(m, n, k, &a, &b, &c0);

        let mut be = CpuBackend::new(CpuConfig::default());
        let mut c = c0;
        let run = be
            .run_stripe(
                ft.executor(),
                &strategy,
                8,
                &a,
                &b,
                &mut c,
                n,
                k,
                m,
                32,
                None,
            )
            .unwrap();
        assert_eq!(run.outcome, CpuLaneOutcome::Done);
        assert_eq!(run.rows_verified, m);
        let model = cpublas::predict(&CpuConfig::default(), m, n, k).seconds;
        assert!((run.seconds - model).abs() < 1e-12 * model.max(1.0));
        assert!((be.elapsed() - run.seconds).abs() < 1e-15);
        assert_eq!(be.dispatches(), 1);
        reference::assert_close(m, n, &c, &want, 1e-4);
    }

    #[test]
    fn armed_cpu_fault_kills_the_nth_span_and_keeps_the_prefix() {
        let (m, n, k) = (128, 32, 48);
        let (ft, a, b, c0) = setup(m, n, k);
        let strategy = ft.plan(&GemmShape::new(m, n, k), Strategy::Auto, 8);
        let mut be = CpuBackend::new(CpuConfig::default());
        be.install_faults(&FaultPlan::new(7).fail_cpu(2).cpu_slowdown(3.0));

        let mut c = c0.clone();
        let run = be
            .run_stripe(
                ft.executor(),
                &strategy,
                8,
                &a,
                &b,
                &mut c,
                n,
                k,
                m,
                32,
                None,
            )
            .unwrap();
        assert_eq!(run.outcome, CpuLaneOutcome::Fault { nth: 2 });
        // Span 1 (rows 0..32) survived; span 2 died before computing.
        assert_eq!(run.rows_verified, 32);
        // Slowdown compounds into the charged time: 2 spans' worth at 3×.
        let base = cpublas::predict(&CpuConfig::default(), m, n, k).seconds / 4.0;
        assert!((run.seconds - 2.0 * base * 3.0).abs() < 1e-12);
        // The fault tripped nothing yet (threshold is the engine's call),
        // but a later clean dispatch records success.
        let run2 = be
            .run_stripe(
                ft.executor(),
                &strategy,
                8,
                &a,
                &b,
                &mut c,
                n,
                k,
                m,
                0,
                None,
            )
            .unwrap();
        assert_eq!(run2.outcome, CpuLaneOutcome::Done);
        assert_eq!(be.dispatches(), 2);
    }

    #[test]
    fn deadline_budget_clamps_the_clock_on_a_span_boundary() {
        let (m, n, k) = (128, 32, 48);
        let (ft, a, b, c0) = setup(m, n, k);
        let strategy = ft.plan(&GemmShape::new(m, n, k), Strategy::Auto, 8);
        let mut be = CpuBackend::new(CpuConfig::default());
        let total = cpublas::predict(&CpuConfig::default(), m, n, k).seconds;
        // Budget covers two of the four 32-row spans plus change.
        let budget = total * 0.6;
        let mut c = c0;
        let run = be
            .run_stripe(
                ft.executor(),
                &strategy,
                8,
                &a,
                &b,
                &mut c,
                n,
                k,
                m,
                32,
                Some(budget),
            )
            .unwrap();
        assert_eq!(run.outcome, CpuLaneOutcome::Deadline { at: budget });
        assert_eq!(run.rows_verified, 64);
        assert!((be.elapsed() - budget).abs() < 1e-15);
    }

    #[test]
    fn profiler_track_records_one_compute_span_per_ckpt_span() {
        let (m, n, k) = (96, 32, 40);
        let (ft, a, b, c0) = setup(m, n, k);
        let strategy = ft.plan(&GemmShape::new(m, n, k), Strategy::Auto, 8);
        let mut be = CpuBackend::new(CpuConfig::default());
        be.enable_profiling(64);
        let mut c = c0;
        be.run_stripe(
            ft.executor(),
            &strategy,
            8,
            &a,
            &b,
            &mut c,
            n,
            k,
            m,
            32,
            None,
        )
        .unwrap();
        let prof = be.take_profiler();
        let spans: Vec<_> = prof.spans().copied().collect();
        assert_eq!(spans.len(), 3);
        assert!(spans.iter().all(|s| s.phase == Phase::Compute));
        assert!(spans.windows(2).all(|w| w[0].t1 <= w[1].t0));
        assert!((spans.last().unwrap().t1 - be.elapsed()).abs() < 1e-15);
    }
}
