//! Host-side mirrors of the DSP strategy walks, bit-exact with the
//! simulated cluster.
//!
//! The CPU fallback backend must produce *bitwise identical* output to
//! the DSP path it replaces, or cross-backend failover would silently
//! change results.  Per-element f32 accumulation order on the DSP is
//! fixed by three things: the strategy's blocking walk (which panels in
//! which order), the micro-kernel's `k_u`-way accumulator split (chosen
//! per [`KernelSpec`], so it depends on each row block's exact height),
//! and — for K-parallel — the serial core-order GSM reduction.  These
//! functions replay exactly that: the same loop nests as
//! [`crate::mpar::run_mpar`], [`crate::kpar::run_kpar`] and
//! [`crate::tgemm::run_tgemm`], invoking the *same* generated kernels
//! from the shared kernel cache through the [`KernelExecutor`] dispatch
//! point ([`panel_rows`] is the one shared inner loop).  Both host tiers
//! qualify: `Fast` and `Compiled` are bit-identical by contract, so the
//! spill lane may run the SIMD tier without perturbing failover bits.
//!
//! Two deliberate differences, both bit-neutral:
//!
//! * DMA round trips (DDR↔GSM↔AM) move f32s verbatim, so panel staging
//!   collapses to slice copies and the K-parallel `C_g` panel is the
//!   output matrix itself (load/accumulate/store ≡ accumulate in
//!   place).
//! * On the DSP the pad columns of AM panels hold stale garbage; the
//!   kernel computes them but stores never transfer them, and each
//!   output column depends only on its own column of `B`.  Here pads
//!   are zero-filled instead — same real columns, defined behaviour.
//!
//! Cores matter *functionally* only for K-parallel (the round-robin
//! slice-to-core grouping feeds the reduction order); M-parallel and
//! TGEMM chunk assignment only changes timing, never values.  Each
//! core's private `C_a` is independent of the shared `C`, so computing
//! and reducing the cores one after another is bitwise identical to the
//! DSP's compute-in-parallel-then-reduce-serially schedule.

use crate::{ChosenStrategy, FtimmError, KparBlocks, MparBlocks, TgemmParams};
use kernelgen::{HostTier, KernelExecutor, KernelSpec};

/// Stage a `rows × cols` block of `src` (leading dimension `src_ld`) at
/// `(r0, c0)` into `dst` with leading dimension `ld >= cols`, zeroing
/// the pad columns (the DSP leaves them as stale garbage; both choices
/// leave the real columns bit-identical).
#[allow(clippy::too_many_arguments)]
fn load_block(
    dst: &mut Vec<f32>,
    src: &[f32],
    src_ld: usize,
    r0: usize,
    c0: usize,
    rows: usize,
    cols: usize,
    ld: usize,
) {
    dst.clear();
    dst.resize(rows * ld, 0.0);
    for r in 0..rows {
        let s = (r0 + r) * src_ld + c0;
        dst[r * ld..r * ld + cols].copy_from_slice(&src[s..s + cols]);
    }
}

/// Store the `rows × cols` real columns of `src` (leading dimension
/// `ld`) back to `(r0, c0)` of `dst` (leading dimension `dst_ld`).
#[allow(clippy::too_many_arguments)]
fn store_block(
    dst: &mut [f32],
    dst_ld: usize,
    r0: usize,
    c0: usize,
    rows: usize,
    cols: usize,
    src: &[f32],
    ld: usize,
) {
    for r in 0..rows {
        let d = (r0 + r) * dst_ld + c0;
        dst[d..d + cols].copy_from_slice(&src[r * ld..r * ld + cols]);
    }
}

/// Execute `C += A × B` on the host with the same blocking and
/// accumulation order as the DSP path for `strategy`.  `a` is `mm × kk`
/// (leading dimension `kk`), `b` is `kk × nn` (leading dimension `nn`),
/// `c` is `mm × nn` (leading dimension `nn`).  `cores` is the DSP core
/// count the plan was pinned for, clamped exactly as a fully-healthy
/// cluster would ([`crate::mpar::run_mpar`] clamps to alive cores ∧
/// `cores_per_cluster`; the CPU mirrors a cluster with all cores
/// alive).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_strategy_host(
    ex: &KernelExecutor,
    tier: HostTier,
    strategy: &ChosenStrategy,
    cores: usize,
    cores_per_cluster: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    mm: usize,
    nn: usize,
    kk: usize,
) -> Result<(), FtimmError> {
    debug_assert!(a.len() >= mm * kk && b.len() >= kk * nn && c.len() >= mm * nn);
    let cores = cores.clamp(1, cores_per_cluster);
    match strategy {
        ChosenStrategy::MPar(bl) => mpar_host(ex, tier, bl, a, b, c, mm, nn, kk),
        ChosenStrategy::KPar(bl) => kpar_host(ex, tier, bl, cores, a, b, c, mm, nn, kk),
        ChosenStrategy::TGemm => tgemm_host(ex, tier, a, b, c, mm, nn, kk),
    }
}

fn pad(n: usize) -> usize {
    n.div_ceil(32) * 32
}

/// The inner panel loop shared by all three strategy mirrors: walk the
/// `m_s`-row sub-blocks of one staged `(B, C)` panel pair, stage the
/// matching `A` block, generate the exact-shape kernel (auto-tuned, or
/// with `forced_ku` for TGEMM's fixed micro-kernel) and execute it
/// through the [`KernelExecutor`] on the requested tier.
///
/// `rows` is the staged C panel's height, stepped by `m_s`; the A block
/// for row offset `u` starts at `(a_r0 + u, a_c0)` of the full `a`
/// matrix (leading dimension `kk`); `c_a`/`b_a` share leading dimension
/// `ld`.
#[allow(clippy::too_many_arguments)]
fn panel_rows(
    ex: &KernelExecutor,
    tier: HostTier,
    a: &[f32],
    kk: usize,
    a_s: &mut Vec<f32>,
    b_a: &[f32],
    c_a: &mut [f32],
    ld: usize,
    rows: usize,
    m_s: usize,
    k_cur: usize,
    n_a: usize,
    a_r0: usize,
    a_c0: usize,
    forced_ku: Option<usize>,
) -> Result<(), FtimmError> {
    for u in (0..rows).step_by(m_s) {
        let ms_cur = m_s.min(rows - u);
        let spec = KernelSpec::new(ms_cur, k_cur, n_a)?;
        let kernel = match forced_ku {
            None => ex.kernels().get(spec)?,
            Some(k_u) => ex.kernels().get_forced(spec, ms_cur, k_u)?,
        };
        load_block(a_s, a, kk, a_r0 + u, a_c0, ms_cur, k_cur, k_cur);
        ex.execute(tier, &kernel, a_s, b_a, &mut c_a[u * ld..(u + ms_cur) * ld])?;
    }
    Ok(())
}

/// Mirror of [`crate::mpar::run_mpar`]'s walk.  Chunk-to-core
/// assignment is timing-only (chunks write disjoint C rows), so the
/// chunks run in issue order.
#[allow(clippy::too_many_arguments)]
fn mpar_host(
    ex: &KernelExecutor,
    tier: HostTier,
    bl: &MparBlocks,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    mm: usize,
    nn: usize,
    kk: usize,
) -> Result<(), FtimmError> {
    let (mut c_a, mut b_a, mut a_s) = (Vec::new(), Vec::new(), Vec::new());
    for i in (0..nn).step_by(bl.n_g) {
        let n_gcur = bl.n_g.min(nn - i);
        for j in (0..kk).step_by(bl.k_g) {
            let k_gcur = bl.k_g.min(kk - j);
            for t in (0..mm).step_by(bl.m_a) {
                let m_acur = bl.m_a.min(mm - t);
                for ii in (0..n_gcur).step_by(bl.n_a) {
                    let n_acur = bl.n_a.min(n_gcur - ii);
                    let ld_cur = pad(n_acur);
                    // C panel accumulates across this panel's k blocks
                    // and round-trips through DDR between (i, j) panels.
                    load_block(&mut c_a, c, nn, t, i + ii, m_acur, n_acur, ld_cur);
                    for jj in (0..k_gcur).step_by(bl.k_a) {
                        let k_acur = bl.k_a.min(k_gcur - jj);
                        load_block(&mut b_a, b, nn, j + jj, i + ii, k_acur, n_acur, ld_cur);
                        panel_rows(
                            ex,
                            tier,
                            a,
                            kk,
                            &mut a_s,
                            &b_a,
                            &mut c_a,
                            ld_cur,
                            m_acur,
                            bl.m_s,
                            k_acur,
                            n_acur,
                            t,
                            j + jj,
                            None,
                        )?;
                    }
                    store_block(c, nn, t, i + ii, m_acur, n_acur, &c_a, ld_cur);
                }
            }
        }
    }
    Ok(())
}

/// Mirror of [`crate::kpar::run_kpar`]'s walk.  The round-robin
/// slice-to-core grouping and the serial core-order reduction *are*
/// value-significant, so `cores` (via `active`) is replayed exactly;
/// each core's private `C_a` never reads `C`, so serialising
/// compute-then-reduce per core preserves the bits.
#[allow(clippy::too_many_arguments)]
fn kpar_host(
    ex: &KernelExecutor,
    tier: HostTier,
    bl: &KparBlocks,
    cores: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    mm: usize,
    nn: usize,
    kk: usize,
) -> Result<(), FtimmError> {
    let slices: Vec<usize> = (0..kk).step_by(bl.k_a).collect();
    let active = cores.min(slices.len()).max(1);
    let (mut c_a, mut b_a, mut a_s) = (Vec::new(), Vec::new(), Vec::new());
    for i in (0..mm).step_by(bl.m_g) {
        let m_gcur = bl.m_g.min(mm - i);
        for j in (0..nn).step_by(bl.n_g) {
            let n_gcur = bl.n_g.min(nn - j);
            // The GSM C_g panel is an exact f32 round trip of C, so the
            // reduction accumulates into C in place.
            for ii in (0..m_gcur).step_by(bl.m_a) {
                let m_acur = bl.m_a.min(m_gcur - ii);
                for jj in (0..n_gcur).step_by(bl.n_a) {
                    let n_acur = bl.n_a.min(n_gcur - jj);
                    let ld_cur = pad(n_acur);
                    for ci in 0..active {
                        c_a.clear();
                        c_a.resize(m_acur * ld_cur, 0.0);
                        for &t in slices.iter().skip(ci).step_by(active) {
                            let k_acur = bl.k_a.min(kk - t);
                            load_block(&mut b_a, b, nn, t, j + jj, k_acur, n_acur, ld_cur);
                            panel_rows(
                                ex,
                                tier,
                                a,
                                kk,
                                &mut a_s,
                                &b_a,
                                &mut c_a,
                                ld_cur,
                                m_acur,
                                bl.m_s,
                                k_acur,
                                n_acur,
                                i + ii,
                                t,
                                None,
                            )?;
                        }
                        // Serial reduction in core order: C_g += C_a.
                        for r in 0..m_acur {
                            let dst = &mut c[(i + ii + r) * nn + j + jj..][..n_acur];
                            for (acc, v) in dst.iter_mut().zip(&c_a[r * ld_cur..]) {
                                *acc += *v;
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Mirror of [`crate::tgemm::run_tgemm`]'s walk (fixed 96-wide kernel,
/// `k_u = 1`, N-chunk parallelisation — timing-only, chunks write
/// disjoint C columns).
#[allow(clippy::too_many_arguments)]
fn tgemm_host(
    ex: &KernelExecutor,
    tier: HostTier,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    mm: usize,
    nn: usize,
    kk: usize,
) -> Result<(), FtimmError> {
    let tp = TgemmParams::default();
    let (mut c_a, mut b_a, mut a_s) = (Vec::new(), Vec::new(), Vec::new());
    for i in (0..mm).step_by(tp.m_g) {
        let m_cur = tp.m_g.min(mm - i);
        for j in (0..kk).step_by(tp.k_g) {
            let k_cur = tp.k_g.min(kk - j);
            for t in (0..nn).step_by(tp.n_a) {
                let n_cur = tp.n_a.min(nn - t);
                load_block(&mut b_a, b, nn, j, t, k_cur, n_cur, tp.n_a);
                load_block(&mut c_a, c, nn, i, t, m_cur, n_cur, tp.n_a);
                panel_rows(
                    ex,
                    tier,
                    a,
                    kk,
                    &mut a_s,
                    &b_a,
                    &mut c_a,
                    tp.n_a,
                    m_cur,
                    tp.m_s,
                    k_cur,
                    tp.n_a,
                    i,
                    j,
                    Some(1),
                )?;
                store_block(c, nn, i, t, m_cur, n_cur, &c_a, tp.n_a);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reference, FtImm, GemmProblem, GemmShape, Strategy};
    use dspsim::{ExecMode, HwConfig, Machine};

    /// Run `shape` on the DSP with the resolved plan for `strategy`,
    /// then replay it on the host mirror and demand bitwise identity.
    fn check_bitwise(shape: GemmShape, strategy: Strategy, cores: usize) {
        let ft = FtImm::new(HwConfig::default());
        let (mm, nn, kk) = (shape.m, shape.n, shape.k);
        let a = reference::fill_matrix(mm * kk, 1);
        let b = reference::fill_matrix(kk * nn, 2);
        let c0 = reference::fill_matrix(mm * nn, 3);

        let mut m = Machine::with_mode(ExecMode::Fast);
        let p = GemmProblem::alloc(&mut m, mm, nn, kk).unwrap();
        p.a.upload(&mut m, &a).unwrap();
        p.b.upload(&mut m, &b).unwrap();
        p.c.upload(&mut m, &c0).unwrap();
        let plan = ft.plan(&shape, strategy, cores);
        ft.run_plan(&mut m, &p, &plan, cores).unwrap();
        let want = p.c.download(&mut m).unwrap();

        for tier in [HostTier::Fast, HostTier::Compiled] {
            let mut c = c0.clone();
            run_strategy_host(
                ft.executor(),
                tier,
                &plan,
                cores,
                HwConfig::default().cores_per_cluster,
                &a,
                &b,
                &mut c,
                mm,
                nn,
                kk,
            )
            .unwrap();
            let mismatches = want
                .iter()
                .zip(&c)
                .filter(|(w, g)| w.to_bits() != g.to_bits())
                .count();
            assert_eq!(
                mismatches,
                0,
                "{strategy:?} ({tier:?}) {mm}x{nn}x{kk} on {cores} cores: \
                 {mismatches} of {} elements differ",
                want.len()
            );
        }
    }

    #[test]
    fn mpar_host_is_bitwise_identical_to_the_dsp_walk() {
        // Irregular edges: off-grid M, N below n_a, K with a tail.
        check_bitwise(GemmShape::new(97, 24, 50), Strategy::MPar, 4);
        check_bitwise(GemmShape::new(64, 96, 33), Strategy::MPar, 8);
    }

    #[test]
    fn kpar_host_is_bitwise_identical_to_the_dsp_walk() {
        // K-parallel is the hard case: the reduction order depends on
        // the core count.  Cover several core counts including more
        // cores than slices.
        for cores in [1, 3, 8] {
            check_bitwise(GemmShape::new(16, 16, 300), Strategy::KPar, cores);
        }
        check_bitwise(GemmShape::new(30, 20, 128), Strategy::KPar, 4);
    }

    #[test]
    fn tgemm_host_is_bitwise_identical_to_the_dsp_walk() {
        check_bitwise(GemmShape::new(70, 100, 40), Strategy::TGemm, 4);
        check_bitwise(GemmShape::new(33, 96, 96), Strategy::TGemm, 8);
    }

    #[test]
    fn auto_planned_shapes_stay_bitwise_across_backends() {
        // Whatever Auto resolves to (per-regime), the host mirror must
        // agree with the DSP bit for bit.
        for shape in [
            GemmShape::new(256, 32, 32),
            GemmShape::new(32, 32, 512),
            GemmShape::new(96, 32, 96),
        ] {
            check_bitwise(shape, Strategy::Auto, 8);
        }
    }
}
