//! A pool of independent cluster fault domains.

use super::health::{ClusterHealth, HealthMonitor, HealthPolicy};
use crate::engine::CircuitBreaker;
use dspsim::{ExecMode, FaultPlan, HwConfig, Machine};

/// One cluster fault domain: a private machine (own DDR partition, own
/// simulated clocks, own installed [`FaultPlan`]) plus the supervisor
/// state that watches it — per-core circuit breakers and the health
/// monitor.
#[derive(Debug)]
pub struct ClusterNode {
    /// The simulated cluster.
    pub machine: Machine,
    /// Per-physical-core circuit breakers (same state machine the
    /// single-cluster [`crate::JobQueue`] runs).
    pub breakers: Vec<CircuitBreaker>,
    /// Health state machine.
    pub monitor: HealthMonitor,
}

impl ClusterNode {
    fn new(cfg: &HwConfig, mode: ExecMode) -> Self {
        ClusterNode {
            machine: Machine::new(cfg.clone(), mode),
            breakers: vec![CircuitBreaker::new(); cfg.cores_per_cluster],
            monitor: HealthMonitor::new(),
        }
    }

    /// Open (non-admitting) breakers right now.
    pub fn open_breakers(&self) -> usize {
        self.breakers.iter().filter(|b| !b.admits_work()).count()
    }

    /// Latest simulated time over the node's alive cores — the load
    /// signal placement sorts on.
    pub fn load_s(&self) -> f64 {
        self.machine.elapsed()
    }
}

/// N independent cluster fault domains, each with its own machine,
/// fault plan, watchdog and breakers.  The pool only owns state; the
/// scheduling logic lives in [`super::ShardedEngine`].
#[derive(Debug)]
pub struct ClusterPool {
    nodes: Vec<ClusterNode>,
    policy: HealthPolicy,
}

impl ClusterPool {
    /// Build a pool of `clusters` machines in the given mode.
    pub fn new(cfg: &HwConfig, mode: ExecMode, clusters: usize) -> Self {
        ClusterPool {
            nodes: (0..clusters.max(1))
                .map(|_| ClusterNode::new(cfg, mode))
                .collect(),
            policy: HealthPolicy::default(),
        }
    }

    /// Replace the health policy (defaults are fine for most uses).
    pub fn with_health_policy(mut self, policy: HealthPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The health policy in force.
    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    /// Number of clusters (dead ones included).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the pool has no clusters (never true — `new` clamps to 1).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Install a fault plan into one cluster's machine (each fault
    /// domain gets its own plan; plans compose per machine).
    pub fn install_faults(&mut self, cluster: usize, plan: &FaultPlan) {
        self.nodes[cluster].machine.install_faults(plan);
    }

    /// A node by index.
    pub fn node(&self, cluster: usize) -> &ClusterNode {
        &self.nodes[cluster]
    }

    /// Mutable node access.
    pub fn node_mut(&mut self, cluster: usize) -> &mut ClusterNode {
        &mut self.nodes[cluster]
    }

    /// Current health of one cluster.
    pub fn health(&self, cluster: usize) -> ClusterHealth {
        self.nodes[cluster].monitor.health()
    }

    /// Clusters still usable (not dead).
    pub fn usable(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.monitor.health().is_usable())
            .count()
    }

    /// Mark a cluster's fault domain dead (its machine raised
    /// [`dspsim::SimError::ClusterFailed`]).
    pub fn mark_dead(&mut self, cluster: usize) {
        self.nodes[cluster].monitor.mark_dead();
    }

    /// Fold the cluster's current distress signals (machine watchdog
    /// trips, open breakers) into its health state; returns the result.
    pub fn observe(&mut self, cluster: usize) -> ClusterHealth {
        let node = &mut self.nodes[cluster];
        let trips = node.machine.fault_stats().watchdog_trips;
        let open = node.breakers.iter().filter(|b| !b.admits_work()).count();
        node.monitor.observe(&self.policy, trips, open)
    }

    /// Usable clusters ordered for placement: healthy before degraded,
    /// then by load (earliest simulated clock first), then by index.
    ///
    /// The ordering is **fully deterministic** so failover traces replay
    /// identically run to run: equal loads always fall through to the
    /// index tie-break.  Loads are compared after normalising `-0.0` to
    /// `+0.0` — [`f64::total_cmp`] orders `-0.0 < +0.0`, so without the
    /// normalisation two idle clusters could be ordered by the sign of
    /// a zero their clock arithmetic happened to produce instead of by
    /// index.
    pub fn placement(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].monitor.health().is_usable())
            .collect();
        let load = |i: usize| {
            let l = self.nodes[i].load_s();
            if l == 0.0 {
                0.0
            } else {
                l
            }
        };
        order.sort_by(|&a, &b| {
            let (na, nb) = (&self.nodes[a], &self.nodes[b]);
            na.monitor
                .health()
                .cmp(&nb.monitor.health())
                .then(load(a).total_cmp(&load(b)))
                .then(a.cmp(&b))
        });
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_builds_independent_machines() {
        let pool = ClusterPool::new(&HwConfig::default(), ExecMode::Timing, 3);
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.usable(), 3);
        assert_eq!(pool.placement(), vec![0, 1, 2]);
    }

    #[test]
    fn dead_clusters_leave_placement() {
        let mut pool = ClusterPool::new(&HwConfig::default(), ExecMode::Timing, 3);
        pool.mark_dead(1);
        assert_eq!(pool.usable(), 2);
        assert_eq!(pool.placement(), vec![0, 2]);
        assert_eq!(pool.health(1), ClusterHealth::Dead);
    }

    #[test]
    fn placement_prefers_lightly_loaded_clusters() {
        let mut pool = ClusterPool::new(&HwConfig::default(), ExecMode::Timing, 2);
        // Advance cluster 0's clock so cluster 1 looks idle.
        pool.node_mut(0).machine.stall(0, 1e-3);
        assert_eq!(pool.placement(), vec![1, 0]);
    }

    #[test]
    fn equal_loads_tie_break_by_index_deterministically() {
        let mut pool = ClusterPool::new(&HwConfig::default(), ExecMode::Timing, 4);
        // Identical nonzero loads on every cluster: placement must fall
        // through to the index tie-break, and repeat calls must agree
        // (failover traces replay identically).
        for ci in 0..4 {
            pool.node_mut(ci).machine.stall(0, 2.5e-4);
        }
        assert_eq!(pool.placement(), vec![0, 1, 2, 3]);
        assert_eq!(pool.placement(), pool.placement());
        // A strictly lighter cluster still wins over a lower index.
        let mut pool = ClusterPool::new(&HwConfig::default(), ExecMode::Timing, 3);
        pool.node_mut(0).machine.stall(0, 2e-4);
        pool.node_mut(1).machine.stall(0, 2e-4);
        assert_eq!(pool.placement(), vec![2, 0, 1]);
    }

    #[test]
    fn degraded_clusters_sort_after_healthy_ones() {
        let mut pool = ClusterPool::new(&HwConfig::default(), ExecMode::Timing, 2);
        // Saturate cluster 0's breakers so it degrades, then give cluster
        // 1 a heavy load: health still dominates the ordering.
        for b in &mut pool.node_mut(0).breakers[..2] {
            for _ in 0..3 {
                b.record_fault(3, 0.0);
            }
        }
        pool.node_mut(1).machine.stall(0, 5e-2);
        assert_eq!(pool.observe(0), ClusterHealth::Degraded);
        assert_eq!(pool.observe(1), ClusterHealth::Healthy);
        assert_eq!(pool.placement(), vec![1, 0]);
    }
}
