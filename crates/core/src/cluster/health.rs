//! Cluster-level health state machine.
//!
//! Each cluster in a [`super::ClusterPool`] is a *fault domain*: its own
//! machine, fault plan, watchdog and per-core circuit breakers.  This
//! module reduces those per-core signals to one coarse health state the
//! placement and shedding policies can act on:
//!
//! * **Healthy** — the cluster takes shards normally.
//! * **Degraded** — the cluster still works but is showing distress
//!   (accumulated watchdog trips, or enough open circuit breakers that a
//!   meaningful fraction of its cores is routed around).  Placement
//!   prefers healthy clusters and uses degraded ones only when needed.
//! * **Dead** — the whole fault domain failed (an injected
//!   [`dspsim::FaultPlan::kill_cluster`] fired, surfacing as
//!   [`dspsim::SimError::ClusterFailed`]).  Dead is terminal: nothing is
//!   ever scheduled there again; only host-side DDR reads survive for
//!   checkpoint salvage.
//!
//! Transitions are monotone (healthy → degraded → dead): on a
//! deterministic simulator a cluster that degraded under one workload
//! would degrade again under the same workload, so "recovering" the
//! coarse state would only make placement flap.  Fine-grained recovery
//! still happens *below* this layer — individual breakers half-open and
//! close again — it just no longer upgrades the cluster's coarse state.

/// Coarse health of one cluster fault domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ClusterHealth {
    /// Fully serviceable.
    Healthy,
    /// Serviceable but showing distress; placed only after healthy
    /// clusters.
    Degraded,
    /// Permanently failed; never placed again.
    Dead,
}

impl ClusterHealth {
    /// Whether shards may still be placed on the cluster.
    pub fn is_usable(self) -> bool {
        self != ClusterHealth::Dead
    }

    /// Stable lower-case name (for reports and traces).
    pub fn name(self) -> &'static str {
        match self {
            ClusterHealth::Healthy => "healthy",
            ClusterHealth::Degraded => "degraded",
            ClusterHealth::Dead => "dead",
        }
    }
}

/// Thresholds driving healthy → degraded transitions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// Cumulative watchdog trips on the cluster's machine at which it
    /// degrades.
    pub degrade_watchdog_trips: u64,
    /// Open (non-admitting) circuit breakers at which it degrades
    /// (breaker saturation).
    pub degrade_open_breakers: usize,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            degrade_watchdog_trips: 2,
            degrade_open_breakers: 2,
        }
    }
}

/// The per-cluster state machine: folds observations into the monotone
/// health lattice.
#[derive(Debug, Clone, Copy, Default)]
pub struct HealthMonitor {
    health: Option<ClusterHealth>,
}

impl HealthMonitor {
    /// A fresh monitor (healthy).
    pub fn new() -> Self {
        HealthMonitor {
            health: Some(ClusterHealth::Healthy),
        }
    }

    /// Current health.
    pub fn health(&self) -> ClusterHealth {
        self.health.unwrap_or(ClusterHealth::Healthy)
    }

    /// Fold in an observation of the cluster's distress signals; returns
    /// the (possibly advanced) health.  Never moves backwards.
    pub fn observe(
        &mut self,
        policy: &HealthPolicy,
        watchdog_trips: u64,
        open_breakers: usize,
    ) -> ClusterHealth {
        if watchdog_trips >= policy.degrade_watchdog_trips
            || open_breakers >= policy.degrade_open_breakers
        {
            self.advance_to(ClusterHealth::Degraded);
        }
        self.health()
    }

    /// The fault domain died ([`dspsim::SimError::ClusterFailed`]).
    pub fn mark_dead(&mut self) {
        self.advance_to(ClusterHealth::Dead);
    }

    fn advance_to(&mut self, to: ClusterHealth) {
        let cur = self.health();
        self.health = Some(cur.max(to));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_are_monotone() {
        let policy = HealthPolicy::default();
        let mut m = HealthMonitor::new();
        assert_eq!(m.health(), ClusterHealth::Healthy);
        // Below both thresholds: stays healthy.
        assert_eq!(m.observe(&policy, 1, 1), ClusterHealth::Healthy);
        // Breaker saturation degrades.
        assert_eq!(m.observe(&policy, 0, 2), ClusterHealth::Degraded);
        // A calm observation does not upgrade back.
        assert_eq!(m.observe(&policy, 0, 0), ClusterHealth::Degraded);
        m.mark_dead();
        assert_eq!(m.health(), ClusterHealth::Dead);
        // Dead is terminal.
        assert_eq!(m.observe(&policy, 0, 0), ClusterHealth::Dead);
        assert!(!m.health().is_usable());
    }

    #[test]
    fn watchdog_trips_degrade() {
        let policy = HealthPolicy::default();
        let mut m = HealthMonitor::new();
        assert_eq!(m.observe(&policy, 2, 0), ClusterHealth::Degraded);
        assert!(m.health().is_usable());
    }
}
