//! Multi-tenant admission control for the sharded engine.
//!
//! Tenants are registered up front with a priority and a quota; every
//! job is submitted on behalf of a tenant.  Admission is enforced at
//! submit time (a tenant over its quota gets an immediate terminal
//! `Rejected` outcome — never a silent drop), and under degraded
//! capacity the engine sheds queued jobs of the lowest-priority tenants
//! first.

/// Engine-assigned tenant identifier (registration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u64);

/// A tenant's contract with the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Human-readable name (reports and traces).
    pub name: String,
    /// Scheduling priority: higher values are more important and are
    /// shed *last* under degraded capacity.
    pub priority: u8,
    /// Admission quota: jobs the tenant may have queued at once.
    /// Submissions beyond it are terminally rejected.
    pub max_queued: usize,
    /// Default per-job deadline in simulated seconds, applied when a job
    /// does not carry its own.
    pub default_deadline_s: Option<f64>,
}

impl TenantSpec {
    /// A tenant with the given name and priority, a generous quota and
    /// no default deadline.
    pub fn new(name: &str, priority: u8) -> Self {
        TenantSpec {
            name: name.to_string(),
            priority,
            max_queued: usize::MAX,
            default_deadline_s: None,
        }
    }

    /// Cap the number of jobs the tenant may have queued at once.
    pub fn with_quota(mut self, max_queued: usize) -> Self {
        self.max_queued = max_queued;
        self
    }

    /// Default deadline applied to the tenant's jobs.
    pub fn with_deadline(mut self, seconds: f64) -> Self {
        self.default_deadline_s = Some(seconds);
        self
    }
}

/// Registration table plus per-tenant bookkeeping.
#[derive(Debug, Default)]
pub struct TenantTable {
    entries: Vec<TenantState>,
}

#[derive(Debug)]
struct TenantState {
    spec: TenantSpec,
    queued: usize,
}

impl TenantTable {
    /// An empty table.
    pub fn new() -> Self {
        TenantTable::default()
    }

    /// Register a tenant; the returned id is its handle for submissions.
    pub fn register(&mut self, spec: TenantSpec) -> TenantId {
        self.entries.push(TenantState { spec, queued: 0 });
        TenantId(self.entries.len() as u64 - 1)
    }

    /// The tenant's spec, if registered.
    pub fn spec(&self, id: TenantId) -> Option<&TenantSpec> {
        self.entries.get(id.0 as usize).map(|e| &e.spec)
    }

    /// Jobs the tenant currently has queued.
    pub fn queued(&self, id: TenantId) -> usize {
        self.entries.get(id.0 as usize).map_or(0, |e| e.queued)
    }

    /// Try to admit one more queued job for the tenant.  Returns an
    /// error string (for the terminal `Rejected` outcome) if the tenant
    /// is unknown or over quota.
    pub fn admit(&mut self, id: TenantId) -> Result<(), String> {
        let Some(e) = self.entries.get_mut(id.0 as usize) else {
            return Err(format!("unknown tenant {:?}", id));
        };
        if e.queued >= e.spec.max_queued {
            return Err(format!(
                "tenant {:?} over quota ({} jobs queued, max {})",
                e.spec.name, e.queued, e.spec.max_queued
            ));
        }
        e.queued += 1;
        Ok(())
    }

    /// A queued job left the queue (ran or was shed).
    pub fn release(&mut self, id: TenantId) {
        if let Some(e) = self.entries.get_mut(id.0 as usize) {
            e.queued = e.queued.saturating_sub(1);
        }
    }

    /// The tenant's priority (0 if unknown; unknown tenants are rejected
    /// at submit so this never drives a real scheduling decision).
    pub fn priority(&self, id: TenantId) -> u8 {
        self.spec(id).map_or(0, |s| s.priority)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_is_enforced_and_released() {
        let mut t = TenantTable::new();
        let id = t.register(TenantSpec::new("batch", 1).with_quota(2));
        assert!(t.admit(id).is_ok());
        assert!(t.admit(id).is_ok());
        let err = t.admit(id).unwrap_err();
        assert!(err.contains("over quota"), "{err}");
        t.release(id);
        assert!(t.admit(id).is_ok());
        assert_eq!(t.queued(id), 2);
    }

    #[test]
    fn unknown_tenants_are_rejected() {
        let mut t = TenantTable::new();
        assert!(t.admit(TenantId(9)).unwrap_err().contains("unknown"));
        assert_eq!(t.priority(TenantId(9)), 0);
    }

    #[test]
    fn ids_are_registration_order() {
        let mut t = TenantTable::new();
        let a = t.register(TenantSpec::new("a", 3));
        let b = t.register(TenantSpec::new("b", 1).with_deadline(1e-3));
        assert_eq!((a, b), (TenantId(0), TenantId(1)));
        assert_eq!(t.priority(a), 3);
        assert_eq!(t.spec(b).unwrap().default_deadline_s, Some(1e-3));
    }
}
