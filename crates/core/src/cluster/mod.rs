//! Multi-cluster sharded GEMM service: cluster-level fault domains with
//! checkpointed shard failover.
//!
//! The FT-m7032 the paper targets carries **four GPDSP clusters** plus a
//! 16-core CPU front end (§II); the rest of this crate simulates exactly
//! one cluster.  This module is the front end: a [`ClusterPool`] of N
//! independent [`dspsim::Machine`]s — each a *fault domain* with its own
//! [`dspsim::FaultPlan`], watchdog and per-core
//! [`crate::CircuitBreaker`]s — driven by a [`ShardedEngine`] that
//! generalises the single-machine [`crate::JobQueue`]:
//!
//! * **Planning** — one GEMM is split across clusters by the
//!   multi-device plan IR ([`crate::plan::sharded`]): the full shape is
//!   planned once through the LRU plan cache, and the analytic cost
//!   model picks the M-stripe shard count (per-shard time + serialised
//!   launch overhead, the work-group tradeoff of the DPU partitioner).
//! * **Health** — each cluster runs a monotone healthy → degraded → dead
//!   state machine ([`ClusterHealth`]) fed by watchdog trips, breaker
//!   saturation and injected cluster death; placement is load-aware and
//!   prefers healthy clusters.
//! * **Failover** — a shard whose cluster dies mid-run resumes from its
//!   last `ckpt_rows` row-span checkpoint on a surviving cluster, and
//!   the merged result is bitwise identical to a fault-free
//!   single-cluster checkpointed run of the same plan and ckpt grid
//!   (shard boundaries and salvage points sit on that grid, the plan
//!   and core count are pinned — see [`crate::plan::sharded`]).
//! * **Admission control** — per-tenant quotas, priorities and default
//!   deadlines; lowest-priority jobs are shed first under degraded
//!   capacity, and every submitted [`crate::JobId`] gets exactly one
//!   terminal [`ShardedOutcome`].
//!
//! See DESIGN.md §4.3 for the full model and invariants.

pub mod health;
pub mod pool;
pub mod sharded;
pub mod tenant;

pub use health::{ClusterHealth, HealthMonitor, HealthPolicy};
pub use pool::{ClusterNode, ClusterPool};
pub use sharded::{
    FailoverEvent, ShardRun, ShardedConfig, ShardedEngine, ShardedJob, ShardedOutcome,
    ShardedRecord, ShardedReport, SpillPolicy, CPU_LANE,
};
pub use tenant::{TenantId, TenantSpec, TenantTable};
