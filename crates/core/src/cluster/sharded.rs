//! The sharded GEMM engine: multi-tenant jobs planned across a
//! [`ClusterPool`] with checkpointed shard failover.
//!
//! [`ShardedEngine`] generalises the single-machine [`crate::JobQueue`]
//! to N cluster fault domains.  Jobs are host-resident (`A`, `B`, `C`
//! live in host memory, like [`crate::ClusterGrid`]): each shard stages
//! its stripe onto its cluster's private DDR partition, runs through the
//! resilience layer with the *pinned* full-shape plan, and merges its
//! verified rows back.  Pinning matters twice over: replanning a shard's
//! smaller sub-shape could pick different blocks, and resuming with a
//! different core count would regroup the K-parallel reduction — either
//! would break the engine's core invariant that the merged result is
//! **bitwise identical** to a fault-free single-cluster checkpointed
//! run of the same plan and `ckpt_rows` grid (shard boundaries are
//! quantised to that grid — see [`crate::plan::sharded`] for why the
//! grid, not the row split, is what accumulation order depends on).
//!
//! **Failover.** A shard whose cluster dies mid-run
//! ([`dspsim::SimError::ClusterFailed`], injected via
//! [`dspsim::FaultPlan::kill_cluster`]) is not lost: the resilience
//! layer's row-span checkpoints mean the first `rows_verified` rows of
//! the stripe are complete and ABFT-verified in the dead cluster's DDR,
//! which outlives the cluster for host reads.  The engine salvages those
//! rows, marks the fault domain dead, and resumes the *remainder* of the
//! stripe on the best surviving cluster — same plan, same core count —
//! so recovery costs one partial stripe re-run, not the job.
//!
//! **Admission control.** Tenants carry priorities, quotas and default
//! deadlines ([`super::TenantSpec`]).  Over-quota submissions are
//! terminally rejected at submit; when capacity degrades (clusters die)
//! the queue is shed lowest-priority-first.  Every submitted [`JobId`]
//! reaches exactly one terminal [`ShardedOutcome`] — nothing is ever
//! silently dropped.

use super::pool::ClusterPool;
use super::tenant::{TenantId, TenantSpec, TenantTable};
use crate::engine::{EngineConfig, JobId};
use crate::grid::LAUNCH_OVERHEAD_S;
use crate::plan::sharded::{plan_sharded, Shard, ShardedPlan};
use crate::{ExecRun, Executor, FtImm, FtimmError, GemmProblem, GemmShape, Strategy};
use dspsim::{Profiler, SimError, DEFAULT_PROFILE_CAPACITY};
use std::collections::VecDeque;

/// Tuning knobs for the sharded engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardedConfig {
    /// Breaker/resilience knobs shared with the single-cluster engine.
    /// `engine.resilience.ckpt_rows` is both the failover checkpoint
    /// grain (a dead shard resumes from its last completed row span)
    /// and the shard-boundary grid (see [`crate::plan::sharded`]); 0
    /// disables checkpointing and forces single-shard plans, so
    /// [`ShardedConfig::default`] overrides the all-purpose
    /// [`EngineConfig::default`] with a non-zero grain.
    pub engine: EngineConfig,
    /// Queued jobs one usable cluster is expected to absorb; when the
    /// queue exceeds `usable_clusters × this`, lowest-priority jobs are
    /// shed (graceful degradation after cluster deaths).
    pub max_queue_per_cluster: usize,
    /// Record per-cluster profiles for Chrome-trace export.
    pub profile: bool,
    /// Span-ring capacity per shard dispatch when profiling.
    pub profile_capacity: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            engine: EngineConfig {
                resilience: crate::ResilienceConfig {
                    ckpt_rows: 64,
                    ..crate::ResilienceConfig::default()
                },
                ..EngineConfig::default()
            },
            max_queue_per_cluster: 64,
            profile: false,
            profile_capacity: DEFAULT_PROFILE_CAPACITY,
        }
    }
}

/// A host-resident GEMM job: `C += A × B` with row-major dense buffers.
/// In timing mode the buffers may be empty (no data is touched).
pub struct ShardedJob {
    /// Rows of A/C.
    pub m: usize,
    /// Columns of B/C.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Host A (`m × k`).
    pub a: Vec<f32>,
    /// Host B (`k × n`).
    pub b: Vec<f32>,
    /// Host C accumulator (`m × n`), updated in the outcome.
    pub c: Vec<f32>,
    /// Planning strategy.
    pub strategy: Strategy,
    /// Cores per cluster (kept constant across failover for bitwise
    /// identity).
    pub cores: usize,
    /// Per-job deadline in simulated seconds (each shard is armed with
    /// this budget); falls back to the tenant's default.
    pub deadline_s: Option<f64>,
}

impl ShardedJob {
    /// A functional job over host buffers.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm(
        m: usize,
        n: usize,
        k: usize,
        a: Vec<f32>,
        b: Vec<f32>,
        c: Vec<f32>,
        strategy: Strategy,
        cores: usize,
    ) -> Self {
        ShardedJob {
            m,
            n,
            k,
            a,
            b,
            c,
            strategy,
            cores,
            deadline_s: None,
        }
    }

    /// A data-free job for timing-mode pools (paper-scale sweeps).
    pub fn timing(m: usize, n: usize, k: usize, strategy: Strategy, cores: usize) -> Self {
        ShardedJob::gemm(m, n, k, Vec::new(), Vec::new(), Vec::new(), strategy, cores)
    }

    /// Set the job's deadline (simulated seconds per shard dispatch).
    pub fn with_deadline(mut self, seconds: f64) -> Self {
        self.deadline_s = Some(seconds);
        self
    }

    fn shape(&self) -> GemmShape {
        GemmShape::new(self.m, self.n, self.k)
    }
}

/// One shard dispatch that ran (possibly partially, if its cluster died).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardRun {
    /// Cluster the dispatch ran on.
    pub cluster: usize,
    /// First C row covered.
    pub r0: usize,
    /// One past the last C row *completed* (on cluster death this is the
    /// salvage point, not the stripe end).
    pub r1: usize,
    /// Simulated seconds the dispatch occupied the cluster.
    pub seconds: f64,
}

/// A shard failover: where the stripe died and where it resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverEvent {
    /// The cluster that died.
    pub from: usize,
    /// The surviving cluster the remainder resumed on.
    pub to: usize,
    /// First row of the resumed remainder (== salvage checkpoint).
    pub at_row: usize,
    /// Rows salvaged from the dead cluster's checkpointed DDR.
    pub rows_salvaged: usize,
    /// Rows re-staged and re-run on the surviving cluster.
    pub rows_resumed: usize,
}

/// Report of one completed sharded job.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// The multi-device plan the job ran under.
    pub plan: ShardedPlan,
    /// Every shard dispatch, in execution order (failover remainders
    /// appear as extra entries).
    pub shard_runs: Vec<ShardRun>,
    /// Shard failovers absorbed by the job.
    pub failovers: Vec<FailoverEvent>,
    /// End-to-end simulated seconds: slowest cluster's busy time plus
    /// the serialised launch overhead per dispatch.
    pub seconds: f64,
    /// Useful flops of the whole problem.
    pub useful_flops: u64,
}

impl ShardedReport {
    /// Aggregate GFLOPS.
    pub fn gflops(&self) -> f64 {
        self.useful_flops as f64 / self.seconds / 1e9
    }
}

/// Terminal state of one sharded job.  Every submitted [`JobId`] gets
/// exactly one of these — the sharded analogue of
/// [`crate::JobOutcome`], extended with the admission-control verdicts.
#[derive(Debug)]
pub enum ShardedOutcome {
    /// The job finished (possibly after absorbed faults and failovers);
    /// `c` is the merged accumulator, bitwise identical to a fault-free
    /// single-cluster checkpointed run of the same plan and ckpt grid.
    Completed {
        /// Updated host C.
        c: Vec<f32>,
        /// The run's report.
        report: Box<ShardedReport>,
    },
    /// Admission control refused the job at submit (unknown tenant or
    /// over quota).
    Rejected {
        /// Why.
        reason: String,
    },
    /// The job was shed from the queue under degraded capacity.
    Shed {
        /// The owning tenant's priority (lowest shed first).
        priority: u8,
        /// Why.
        reason: String,
    },
    /// A shard passed the job's deadline and was preempted.
    DeadlineExceeded {
        /// Simulated time the watchdog tripped.
        at: f64,
        /// Total C rows verified across all shards by then.
        rows_verified: usize,
        /// The job's M dimension.
        rows_total: usize,
    },
    /// The job cannot complete (invalid problem, or every cluster died).
    Failed {
        /// The error.
        error: FtimmError,
    },
}

impl ShardedOutcome {
    /// Stable lower-case label (reports, logs).
    pub fn label(&self) -> &'static str {
        match self {
            ShardedOutcome::Completed { .. } => "completed",
            ShardedOutcome::Rejected { .. } => "rejected",
            ShardedOutcome::Shed { .. } => "shed",
            ShardedOutcome::DeadlineExceeded { .. } => "deadline_exceeded",
            ShardedOutcome::Failed { .. } => "failed",
        }
    }
}

/// A drained job: id, owning tenant and terminal outcome.
#[derive(Debug)]
pub struct ShardedRecord {
    /// Engine-assigned id (submission order).
    pub id: JobId,
    /// The tenant the job was submitted for.
    pub tenant: TenantId,
    /// Terminal state.
    pub outcome: ShardedOutcome,
}

/// The multi-cluster front end: admission control, cost-model shard
/// placement, health-aware scheduling and checkpointed failover over a
/// [`ClusterPool`].  See the module docs for the model.
pub struct ShardedEngine {
    pool: ClusterPool,
    cfg: ShardedConfig,
    tenants: TenantTable,
    queue: VecDeque<(JobId, TenantId, ShardedJob)>,
    records: Vec<ShardedRecord>,
    next_id: u64,
    profilers: Vec<Vec<Profiler>>,
}

impl ShardedEngine {
    /// Build an engine over a pool.
    pub fn new(pool: ClusterPool, cfg: ShardedConfig) -> Self {
        let clusters = pool.len();
        ShardedEngine {
            pool,
            cfg,
            tenants: TenantTable::new(),
            queue: VecDeque::new(),
            records: Vec::new(),
            next_id: 0,
            profilers: vec![Vec::new(); clusters],
        }
    }

    /// The underlying pool (health, machines).
    pub fn pool(&self) -> &ClusterPool {
        &self.pool
    }

    /// Install a fault plan into one cluster's fault domain.
    pub fn install_faults(&mut self, cluster: usize, plan: &dspsim::FaultPlan) {
        self.pool.install_faults(cluster, plan);
    }

    /// Register a tenant.
    pub fn register_tenant(&mut self, spec: TenantSpec) -> TenantId {
        self.tenants.register(spec)
    }

    /// Submit a job on behalf of a tenant.  Always returns a fresh
    /// [`JobId`]; a job refused by admission control is recorded with a
    /// terminal [`ShardedOutcome::Rejected`] rather than dropped.
    pub fn submit(&mut self, tenant: TenantId, job: ShardedJob) -> JobId {
        let id = JobId(self.next_id);
        self.next_id += 1;
        match self.tenants.admit(tenant) {
            Ok(()) => self.queue.push_back((id, tenant, job)),
            Err(reason) => self.records.push(ShardedRecord {
                id,
                tenant,
                outcome: ShardedOutcome::Rejected { reason },
            }),
        }
        id
    }

    /// Per-cluster profiler recordings (one entry per shard dispatch)
    /// accumulated while [`ShardedConfig::profile`] is on; drained by
    /// the caller for Chrome-trace export.
    pub fn take_profilers(&mut self) -> Vec<Vec<Profiler>> {
        std::mem::replace(&mut self.profilers, vec![Vec::new(); self.pool.len()])
    }

    /// Drain the queue: run every queued job to a terminal outcome and
    /// return all records (including submit-time rejections) in id
    /// order.
    pub fn run_all(&mut self, ft: &FtImm) -> Vec<ShardedRecord> {
        loop {
            self.tick_breakers();
            self.shed_over_capacity();
            let Some((id, tenant, job)) = self.queue.pop_front() else {
                break;
            };
            self.tenants.release(tenant);
            let outcome = if self.pool.placement().is_empty() {
                ShardedOutcome::Failed {
                    error: FtimmError::Invalid(
                        "no usable clusters: every fault domain is dead".into(),
                    ),
                }
            } else {
                self.run_job(ft, tenant, job)
            };
            self.records.push(ShardedRecord {
                id,
                tenant,
                outcome,
            });
        }
        let mut records = std::mem::take(&mut self.records);
        records.sort_by_key(|r| r.id);
        records
    }

    // ------------------------------------------------------------ internals

    /// Move open breakers towards half-open on each cluster's clock.
    fn tick_breakers(&mut self) {
        let cooldown = self.cfg.engine.breaker_cooldown_s;
        for ci in 0..self.pool.len() {
            let node = self.pool.node_mut(ci);
            let now = node.machine.elapsed();
            for b in &mut node.breakers {
                b.tick(now, cooldown);
            }
        }
    }

    /// Shed lowest-priority queued jobs while the queue exceeds the
    /// usable clusters' capacity.  Within one priority the most recently
    /// submitted job is shed first.
    fn shed_over_capacity(&mut self) {
        if self.pool.usable() == 0 {
            // No capacity to degrade towards: the drain loop fails the
            // remaining jobs terminally instead of shedding them.
            return;
        }
        let capacity = self.pool.usable() * self.cfg.max_queue_per_cluster;
        while self.queue.len() > capacity {
            let min_pri = self
                .queue
                .iter()
                .map(|(_, t, _)| self.tenants.priority(*t))
                .min()
                .expect("queue is non-empty");
            let idx = self
                .queue
                .iter()
                .rposition(|(_, t, _)| self.tenants.priority(*t) == min_pri)
                .expect("a minimum exists");
            let (id, tenant, _job) = self.queue.remove(idx).expect("index in range");
            self.tenants.release(tenant);
            self.records.push(ShardedRecord {
                id,
                tenant,
                outcome: ShardedOutcome::Shed {
                    priority: min_pri,
                    reason: format!(
                        "queue {} over capacity {} ({} usable clusters)",
                        self.queue.len() + 1,
                        capacity,
                        self.pool.usable()
                    ),
                },
            });
        }
    }

    /// Feed one shard dispatch's fault record into the cluster's
    /// breakers and health monitor.  Unlike [`crate::JobQueue`] the
    /// sharded engine never shrinks a cluster's core map (that would
    /// regroup reductions and break bitwise identity); breakers here
    /// drive the *health* state, pushing placement away from distressed
    /// clusters.
    fn absorb(&mut self, ci: usize, exec: &ExecRun) {
        let threshold = self.cfg.engine.breaker_threshold;
        let node = self.pool.node_mut(ci);
        let now = node.machine.elapsed();
        for &core in &exec.fault_cores {
            if let Some(b) = node.breakers.get_mut(core) {
                b.record_fault(threshold, now);
            }
        }
        if exec.result.is_ok() {
            let map = node.machine.core_map().to_vec();
            for p in map {
                if !exec.fault_cores.contains(&p) {
                    node.breakers[p].record_success();
                }
            }
        }
        self.pool.observe(ci);
    }

    /// Run one job to a terminal outcome: plan across usable clusters,
    /// dispatch shards, fail over on cluster death, merge.
    fn run_job(&mut self, ft: &FtImm, tenant: TenantId, mut job: ShardedJob) -> ShardedOutcome {
        let shape = job.shape();
        let functional = self.pool.node(0).machine.mode.is_functional();
        if functional
            && (job.a.len() != job.m * job.k
                || job.b.len() != job.k * job.n
                || job.c.len() != job.m * job.n)
        {
            return ShardedOutcome::Failed {
                error: FtimmError::Invalid(format!(
                    "host buffer sizes do not match {}x{}x{}",
                    job.m, job.n, job.k
                )),
            };
        }
        let deadline = job
            .deadline_s
            .or_else(|| self.tenants.spec(tenant).and_then(|s| s.default_deadline_s));
        let splan = plan_sharded(
            ft,
            &shape,
            job.strategy,
            job.cores,
            &self.pool.placement(),
            self.cfg.engine.resilience.ckpt_rows,
        );
        let mut work: VecDeque<Shard> = splan.shards.iter().copied().collect();
        let mut shard_runs = Vec::new();
        let mut failovers = Vec::new();
        let mut busy = vec![0.0f64; self.pool.len()];
        let mut launches = 0usize;
        let mut rows_done = 0usize;

        while let Some(shard) = work.pop_front() {
            launches += 1;
            let (mut exec, problem, dt) = match self.run_shard(ft, &splan, &job, shard, deadline) {
                Ok(run) => run,
                Err(error) => return ShardedOutcome::Failed { error },
            };
            busy[shard.cluster] += dt;
            if let Some(prof) = exec.profiler.take() {
                self.profilers[shard.cluster].push(prof);
            }
            self.absorb(shard.cluster, &exec);
            match exec.result {
                Ok(_) => {
                    if functional {
                        let m = &mut self.pool.node_mut(shard.cluster).machine;
                        match problem.c.download(m) {
                            Ok(out) => {
                                job.c[shard.r0 * job.n..shard.r1 * job.n].copy_from_slice(&out)
                            }
                            Err(e) => return ShardedOutcome::Failed { error: e.into() },
                        }
                    }
                    rows_done += shard.rows();
                    shard_runs.push(ShardRun {
                        cluster: shard.cluster,
                        r0: shard.r0,
                        r1: shard.r1,
                        seconds: dt,
                    });
                }
                Err(e) if e.is_cluster_death() => {
                    self.pool.mark_dead(shard.cluster);
                    let salvaged = exec.rows_verified.min(shard.rows());
                    if functional && salvaged > 0 {
                        let m = &mut self.pool.node_mut(shard.cluster).machine;
                        // The DDR partition outlives the cluster: salvage
                        // the checkpoint-verified rows host-side.
                        let span = problem.c.view(0, 0, salvaged, job.n);
                        match span.download(m) {
                            Ok(out) => job.c[shard.r0 * job.n..(shard.r0 + salvaged) * job.n]
                                .copy_from_slice(&out),
                            Err(e) => return ShardedOutcome::Failed { error: e.into() },
                        }
                    }
                    rows_done += salvaged;
                    shard_runs.push(ShardRun {
                        cluster: shard.cluster,
                        r0: shard.r0,
                        r1: shard.r0 + salvaged,
                        seconds: dt,
                    });
                    if salvaged == shard.rows() {
                        continue; // died after its last span: nothing to resume
                    }
                    let Some(&to) = self.pool.placement().first() else {
                        return ShardedOutcome::Failed { error: e };
                    };
                    failovers.push(FailoverEvent {
                        from: shard.cluster,
                        to,
                        at_row: shard.r0 + salvaged,
                        rows_salvaged: salvaged,
                        rows_resumed: shard.r1 - shard.r0 - salvaged,
                    });
                    work.push_front(Shard {
                        cluster: to,
                        r0: shard.r0 + salvaged,
                        r1: shard.r1,
                    });
                }
                Err(e) if e.is_deadline() => {
                    let at = match &e {
                        FtimmError::Sim(SimError::WatchdogTripped { at, .. }) => *at,
                        _ => 0.0,
                    };
                    return ShardedOutcome::DeadlineExceeded {
                        at,
                        rows_verified: rows_done + exec.rows_verified,
                        rows_total: job.m,
                    };
                }
                Err(error) => return ShardedOutcome::Failed { error },
            }
        }

        let worst = busy.iter().copied().fold(0.0f64, f64::max);
        ShardedOutcome::Completed {
            c: std::mem::take(&mut job.c),
            report: Box::new(ShardedReport {
                plan: splan,
                shard_runs,
                failovers,
                seconds: worst + LAUNCH_OVERHEAD_S * launches as f64,
                useful_flops: shape.flops(),
            }),
        }
    }

    /// Stage and dispatch one shard on its cluster; returns the exec
    /// record, the staged problem (for salvage downloads) and the
    /// simulated seconds the dispatch occupied the cluster.
    fn run_shard(
        &mut self,
        ft: &FtImm,
        splan: &ShardedPlan,
        job: &ShardedJob,
        shard: Shard,
        deadline: Option<f64>,
    ) -> Result<(ExecRun, GemmProblem, f64), FtimmError> {
        let cfg = self.cfg;
        let node = self.pool.node_mut(shard.cluster);
        let m = &mut node.machine;
        let t0 = m.elapsed();
        m.ddr.reset_alloc();
        let problem = GemmProblem::alloc(m, shard.rows(), job.n, job.k)?;
        if m.mode.is_functional() {
            problem
                .a
                .upload(m, &job.a[shard.r0 * job.k..shard.r1 * job.k])?;
            problem.b.upload(m, &job.b)?;
            problem
                .c
                .upload(m, &job.c[shard.r0 * job.n..shard.r1 * job.n])?;
        }
        let mut ex = Executor::new(ft)
            .with_plan(splan.plan.strategy)
            .cores(job.cores)
            .resilient(cfg.engine.resilience)
            .with_deadline(deadline)
            .dma_budget(cfg.engine.dma_budget_s);
        if cfg.profile {
            ex = ex.profiled().profile_capacity(cfg.profile_capacity);
        }
        let exec = ex.dispatch(m, &problem)?;
        let dt = m.elapsed() - t0;
        Ok((exec, problem, dt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterHealth;
    use crate::reference::fill_matrix;
    use crate::resilience::ResilienceConfig;
    use dspsim::{ExecMode, FaultPlan, HwConfig, Machine};

    const M: usize = 96;
    const N: usize = 16;
    const K: usize = 24;
    const CORES: usize = 4;

    fn test_cfg() -> ShardedConfig {
        ShardedConfig {
            engine: EngineConfig {
                resilience: ResilienceConfig {
                    ckpt_rows: 8,
                    ..ResilienceConfig::default()
                },
                ..EngineConfig::default()
            },
            ..ShardedConfig::default()
        }
    }

    fn job() -> ShardedJob {
        ShardedJob::gemm(
            M,
            N,
            K,
            fill_matrix(M * K, 1),
            fill_matrix(K * N, 2),
            fill_matrix(M * N, 3),
            Strategy::Auto,
            CORES,
        )
    }

    /// Fault-free single-cluster *checkpointed* run with the same pinned
    /// plan and ckpt grid — the bitwise oracle for everything sharded
    /// (checkpoint spans re-anchor the kernel blocking, so a plain
    /// un-checkpointed run is not bit-comparable).
    fn single_cluster_oracle(ft: &FtImm) -> Vec<f32> {
        let mut m = Machine::new(HwConfig::default(), ExecMode::Fast);
        let p = GemmProblem::alloc(&mut m, M, N, K).unwrap();
        p.a.upload(&mut m, &fill_matrix(M * K, 1)).unwrap();
        p.b.upload(&mut m, &fill_matrix(K * N, 2)).unwrap();
        p.c.upload(&mut m, &fill_matrix(M * N, 3)).unwrap();
        let plan = ft.plan_full(&GemmShape::new(M, N, K), Strategy::Auto, CORES);
        Executor::new(ft)
            .with_plan(plan.strategy)
            .cores(CORES)
            .resilient(test_cfg().engine.resilience)
            .run(&mut m, &p)
            .unwrap();
        p.c.download(&mut m).unwrap()
    }

    fn assert_bits_eq(got: &[f32], want: &[f32]) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert!(
                g.to_bits() == w.to_bits(),
                "bit mismatch at {i}: {g} vs {w}"
            );
        }
    }

    #[test]
    fn fault_free_sharded_run_is_bitwise_identical_to_single_cluster() {
        let ft = FtImm::new(HwConfig::default());
        let pool = ClusterPool::new(&HwConfig::default(), ExecMode::Fast, 3);
        let mut eng = ShardedEngine::new(pool, test_cfg());
        let t = eng.register_tenant(TenantSpec::new("ci", 5));
        let id = eng.submit(t, job());
        let records = eng.run_all(&ft);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].id, id);
        let ShardedOutcome::Completed { c, report } = &records[0].outcome else {
            panic!("expected completion, got {}", records[0].outcome.label());
        };
        assert!(report.failovers.is_empty());
        assert_bits_eq(c, &single_cluster_oracle(&ft));
    }

    #[test]
    fn cluster_death_mid_run_fails_over_and_stays_bitwise_identical() {
        let ft = FtImm::new(HwConfig::default());

        // Measure how long the first shard keeps its cluster busy when
        // nothing fails, so the kill lands mid-shard.
        let pool = ClusterPool::new(&HwConfig::default(), ExecMode::Fast, 2);
        let mut eng = ShardedEngine::new(pool, test_cfg());
        let t = eng.register_tenant(TenantSpec::new("probe", 5));
        eng.submit(t, job());
        let records = eng.run_all(&ft);
        let ShardedOutcome::Completed { report, .. } = &records[0].outcome else {
            panic!("probe run failed");
        };
        let shard0 = report.shard_runs[0];
        assert!(shard0.seconds > 0.0);

        // Now kill shard 0's cluster halfway through that window.
        let pool = ClusterPool::new(&HwConfig::default(), ExecMode::Fast, 2);
        let mut eng = ShardedEngine::new(pool, test_cfg());
        eng.install_faults(0, &FaultPlan::new(1).kill_cluster(shard0.seconds * 0.5));
        let t = eng.register_tenant(TenantSpec::new("chaos", 5));
        let id = eng.submit(t, job());
        let records = eng.run_all(&ft);
        assert_eq!(records[0].id, id);
        let ShardedOutcome::Completed { c, report } = &records[0].outcome else {
            panic!("expected completion, got {}", records[0].outcome.label());
        };
        assert_eq!(report.failovers.len(), 1);
        let fo = report.failovers[0];
        assert_eq!(fo.from, 0);
        assert_eq!(fo.to, 1);
        assert!(fo.rows_salvaged % 8 == 0, "salvage lands on a checkpoint");
        assert_eq!(eng.pool().health(0), ClusterHealth::Dead);
        assert_bits_eq(c, &single_cluster_oracle(&ft));
    }

    #[test]
    fn quota_rejection_and_shedding_are_terminal_outcomes() {
        let ft = FtImm::new(HwConfig::default());
        let pool = ClusterPool::new(&HwConfig::default(), ExecMode::Fast, 2);
        let mut eng = ShardedEngine::new(
            pool,
            ShardedConfig {
                max_queue_per_cluster: 2,
                ..test_cfg()
            },
        );
        let gold = eng.register_tenant(TenantSpec::new("gold", 9).with_quota(2));
        let best = eng.register_tenant(TenantSpec::new("best-effort", 1).with_quota(2));
        let ids = [
            eng.submit(gold, job()),
            eng.submit(best, job()),
            eng.submit(gold, job()),
            eng.submit(best, job()),
            eng.submit(best, job()), // over best-effort's quota of 2
        ];
        // Kill cluster 0 before anything runs: capacity halves to 1, so
        // the 3-deep queue sheds its lowest-priority jobs.
        eng.install_faults(0, &FaultPlan::new(2).kill_cluster(0.0));
        eng.pool.mark_dead(0);
        let records = eng.run_all(&ft);
        assert_eq!(records.len(), ids.len());
        let labels: Vec<&str> = records.iter().map(|r| r.outcome.label()).collect();
        // Every submitted job reached a terminal outcome; gold survived,
        // best-effort was shed/rejected.
        assert_eq!(
            labels,
            vec!["completed", "shed", "completed", "shed", "rejected"]
        );
        for (r, id) in records.iter().zip(ids) {
            assert_eq!(r.id, id);
        }
    }

    #[test]
    fn all_clusters_dead_fails_jobs_terminally() {
        let ft = FtImm::new(HwConfig::default());
        let pool = ClusterPool::new(&HwConfig::default(), ExecMode::Fast, 1);
        let mut eng = ShardedEngine::new(pool, test_cfg());
        eng.pool.mark_dead(0);
        let t = eng.register_tenant(TenantSpec::new("t", 1));
        eng.submit(t, job());
        let records = eng.run_all(&ft);
        assert_eq!(records[0].outcome.label(), "failed");
    }

    #[test]
    fn timing_mode_jobs_run_without_data() {
        let ft = FtImm::new(HwConfig::default());
        let pool = ClusterPool::new(&HwConfig::default(), ExecMode::Timing, 4);
        let mut eng = ShardedEngine::new(pool, test_cfg());
        let t = eng.register_tenant(TenantSpec::new("sweep", 5));
        eng.submit(t, ShardedJob::timing(1 << 16, 32, 32, Strategy::Auto, 8));
        let records = eng.run_all(&ft);
        let ShardedOutcome::Completed { report, .. } = &records[0].outcome else {
            panic!("timing job failed: {}", records[0].outcome.label());
        };
        assert!(report.plan.clusters_used() > 1);
        assert!(report.seconds > 0.0);
        assert!(report.gflops() > 0.0);
    }
}
